/**
 * @file
 * Tests for the synthetic activation-sparsity substrate: the three
 * Fig. 4 / Sec. III statistical properties every Hermes mechanism
 * relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "model/llm_config.hh"
#include "sparsity/stats.hh"
#include "sparsity/trace.hh"

namespace hermes::sparsity {
namespace {

model::LlmConfig
smallModel(std::uint32_t layers = 6)
{
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = layers;
    return llm;
}

TEST(Trace, MeanActiveFractionMatchesConfig)
{
    ActivationTrace trace(smallModel(), SparsityConfig{}, 1);
    double sum = 0.0;
    const int tokens = 64;
    for (int t = 0; t < tokens; ++t) {
        trace.nextToken();
        sum += trace.currentActiveFraction();
    }
    EXPECT_NEAR(sum / tokens, 0.2, 0.02);
}

TEST(Trace, HotNeuronsCarry80PercentOfMass)
{
    ActivationTrace trace(smallModel(), SparsityConfig{}, 1);
    const auto profile = profileTrace(trace, 96, 16, 2);
    EXPECT_NEAR(profile.hotMassCoverage, 0.8, 0.08);
}

TEST(Trace, AdjacentTokenSimilarityExceeds90Percent)
{
    ActivationTrace trace(smallModel(), SparsityConfig{}, 1);
    const auto profile = profileTrace(trace, 96, 16, 2);
    EXPECT_GT(profile.similarity.byDistance[0], 0.90);
}

TEST(Trace, SimilarityDecaysThenPlateaus)
{
    // Fig. 4a is a within-context property; hold the context fixed.
    SparsityConfig config;
    config.phaseTokens = 0;
    ActivationTrace trace(smallModel(), config, 1);
    const auto profile = profileTrace(trace, 128, 50, 2);
    const auto &sim = profile.similarity.byDistance;
    EXPECT_GT(sim[0], sim[9]);   // Decay over 10 tokens...
    EXPECT_GT(sim[9], sim[24]);  // ... and further to 25 ...
    EXPECT_NEAR(sim[24], sim[49], 0.06); // ... then flat (Fig. 4a).
    EXPECT_GT(sim[49], 0.55);    // Plateau from the frequency skew.
}

TEST(Trace, LayerCorrelationBoostsChildProbability)
{
    ActivationTrace trace(smallModel(), SparsityConfig{}, 1);
    const auto profile = profileTrace(trace, 96, 16, 2);
    // Fig. 4b: conditioned on the sampled parent, activation
    // probability rises far above the ~0.2 marginal.
    EXPECT_GT(profile.parentConditional, 0.80);
    EXPECT_GT(profile.parentConditional,
              3.0 * profile.childMarginal);
}

TEST(Trace, DeterministicForSameSeed)
{
    ActivationTrace a(smallModel(), SparsityConfig{}, 1);
    ActivationTrace b(smallModel(), SparsityConfig{}, 1);
    for (int t = 0; t < 5; ++t) {
        a.nextToken();
        b.nextToken();
    }
    EXPECT_EQ(a.mlp(2).activeList, b.mlp(2).activeList);
    EXPECT_EQ(a.attn(1).activeList, b.attn(1).activeList);
}

TEST(Trace, DifferentSeedsDiffer)
{
    SparsityConfig other;
    other.seed = 99;
    ActivationTrace a(smallModel(), SparsityConfig{}, 1);
    ActivationTrace b(smallModel(), other, 1);
    a.nextToken();
    b.nextToken();
    EXPECT_NE(a.mlp(2).activeList, b.mlp(2).activeList);
}

TEST(Trace, ResetRestartsSequence)
{
    ActivationTrace trace(smallModel(), SparsityConfig{}, 1);
    trace.nextToken();
    const auto first = trace.mlp(1).activeList;
    trace.reset(0);
    trace.nextToken();
    EXPECT_EQ(trace.mlp(1).activeList, first);
    EXPECT_EQ(trace.tokenIndex(), 1u);
}

TEST(Trace, BatchUnionRaisesActiveFraction)
{
    ActivationTrace b1(smallModel(), SparsityConfig{}, 1);
    ActivationTrace b8(smallModel(), SparsityConfig{}, 8);
    double f1 = 0.0, f8 = 0.0;
    for (int t = 0; t < 16; ++t) {
        b1.nextToken();
        b8.nextToken();
        f1 += b1.currentActiveFraction();
        f8 += b8.currentActiveFraction();
    }
    EXPECT_GT(f8 / 16, 1.8 * (f1 / 16));
    EXPECT_LT(f8 / 16, 0.9); // Union never saturates fully.
}

TEST(Trace, MaskAndActiveListConsistent)
{
    ActivationTrace trace(smallModel(), SparsityConfig{}, 1);
    trace.nextToken();
    const BlockTrace &block = trace.mlp(3);
    std::uint64_t mask_count = 0;
    for (const auto bit : block.mask)
        mask_count += bit;
    EXPECT_EQ(mask_count, block.activeCount());
    for (const auto id : block.activeList)
        EXPECT_TRUE(block.mask[id]);
}

TEST(Trace, ParentsPointIntoParentBlock)
{
    ActivationTrace trace(smallModel(), SparsityConfig{}, 1);
    // MLP parents live in the same layer's attention block.
    const BlockTrace &mlp = trace.mlp(2);
    const BlockTrace &attn = trace.attn(2);
    for (std::uint32_t i = 0; i < mlp.neurons(); ++i) {
        EXPECT_LT(mlp.parent1[i], attn.neurons());
        EXPECT_LT(mlp.parent2[i], attn.neurons());
    }
}

TEST(Trace, CalibratedExponentHitsTarget)
{
    SparsityConfig config;
    const double exponent =
        ActivationTrace::calibrateExponent(16384, config);
    EXPECT_GT(exponent, 0.3);
    EXPECT_LT(exponent, 2.5);
}

TEST(Trace, PhaseDriftChangesHotMembership)
{
    // Sec. III-B/IV-C: ~52% of the initially hot neurons change
    // activity during inference.  With the default drift, a large
    // minority of the hot set must change identity over ~150 tokens
    // while the marginal statistics stay put.
    model::LlmConfig llm = smallModel(3);
    ActivationTrace trace(llm, SparsityConfig{}, 1);

    auto hot_set = [&] {
        const BlockTrace &block = trace.mlp(1);
        const std::size_t hot =
            static_cast<std::size_t>(0.2 * block.neurons());
        std::vector<std::uint32_t> ids(block.idOfRank.begin(),
                                       block.idOfRank.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               hot));
        std::sort(ids.begin(), ids.end());
        return ids;
    };

    const auto before = hot_set();
    for (int t = 0; t < 150; ++t)
        trace.nextToken();
    const auto after = hot_set();

    std::vector<std::uint32_t> common;
    std::set_intersection(before.begin(), before.end(), after.begin(),
                          after.end(), std::back_inserter(common));
    const double retained = static_cast<double>(common.size()) /
                            static_cast<double>(before.size());
    EXPECT_LT(retained, 0.9);
    EXPECT_GT(retained, 0.2);

    // Marginals survive the drift.
    double fraction = 0.0;
    for (int t = 0; t < 16; ++t) {
        trace.nextToken();
        fraction += trace.currentActiveFraction();
    }
    EXPECT_NEAR(fraction / 16, 0.2, 0.03);
}

TEST(Trace, DriftDisabledKeepsHotSetFixed)
{
    model::LlmConfig llm = smallModel(3);
    SparsityConfig config;
    config.phaseTokens = 0;
    ActivationTrace trace(llm, config, 1);
    const auto before = trace.mlp(1).idOfRank;
    for (int t = 0; t < 150; ++t)
        trace.nextToken();
    EXPECT_EQ(trace.mlp(1).idOfRank, before);
}

TEST(Stats, MaskSimilarityBasics)
{
    std::vector<std::uint8_t> a = {1, 1, 0, 0};
    std::vector<std::uint8_t> b = {1, 0, 1, 0};
    EXPECT_DOUBLE_EQ(maskSimilarity(a, a), 1.0);
    EXPECT_DOUBLE_EQ(maskSimilarity(a, b), 0.5);
    std::vector<std::uint8_t> empty = {0, 0, 0, 0};
    EXPECT_DOUBLE_EQ(maskSimilarity(empty, b), 0.0);
}

TEST(Stats, HotMassCoverageBasics)
{
    // One neuron holds everything.
    EXPECT_DOUBLE_EQ(hotMassCoverage({1.0, 0.0, 0.0, 0.0, 0.0}, 0.2),
                     1.0);
    // Uniform: top 20% holds 20%.
    EXPECT_NEAR(hotMassCoverage(std::vector<double>(10, 0.1), 0.2),
                0.2, 1e-9);
    EXPECT_DOUBLE_EQ(hotMassCoverage({}, 0.2), 0.0);
}

/** The Fig. 4 statistics hold across models and batch sizes. */
struct TraceParam
{
    const char *model;
    std::uint32_t batch;
};

class TraceSweepTest : public ::testing::TestWithParam<TraceParam>
{
};

TEST_P(TraceSweepTest, CoreStatisticsHold)
{
    model::LlmConfig llm = model::modelByName(GetParam().model);
    llm.layers = 4;
    ActivationTrace trace(llm, SparsityConfig{}, GetParam().batch);
    const auto profile = profileTrace(trace, 64, 10, 1);
    EXPECT_GT(profile.similarity.byDistance[0], 0.85);
    EXPECT_GT(profile.parentConditional, 2.0 * profile.childMarginal);
    EXPECT_GT(profile.meanActiveFraction, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndBatches, TraceSweepTest,
    ::testing::Values(TraceParam{"OPT-13B", 1},
                      TraceParam{"LLaMA2-13B", 4},
                      TraceParam{"Falcon-40B", 1},
                      TraceParam{"OPT-66B", 2}));

} // namespace
} // namespace hermes::sparsity
