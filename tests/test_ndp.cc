/**
 * @file
 * Unit tests for the NDP-DIMM device models: GEMV unit, activation
 * unit, and the composed NdpDimm kernels.
 */

#include <gtest/gtest.h>

#include "ndp/activation_unit.hh"
#include "ndp/gemv_unit.hh"
#include "ndp/ndp_dimm.hh"

namespace hermes::ndp {
namespace {

TEST(GemvUnitTest, TableIiThroughput)
{
    const GemvUnitConfig config;
    // 256 multipliers * 8 lanes / 16 bit-serial cycles = 128 MAC/cyc.
    EXPECT_DOUBLE_EQ(config.macsPerCycle(), 128.0);
    // = 256 GFLOP/s at 1 GHz: "hundreds of GFLOPS" (Sec. I).
    EXPECT_DOUBLE_EQ(config.sustainedFlops(), 256.0e9);
    // Weight demand 256 GB/s: beyond one DIMM's internal bandwidth,
    // so batch-1 GEMV is memory bound (Fig. 16's premise).
    EXPECT_DOUBLE_EQ(config.weightDemandBandwidth(), 256.0e9);
}

TEST(GemvUnitTest, ComputeCyclesScaleWithMacs)
{
    const GemvUnit unit;
    EXPECT_EQ(unit.computeCycles(0), 0u);
    const Cycles small = unit.computeCycles(128);
    const Cycles large = unit.computeCycles(128 * 1000);
    EXPECT_EQ(small, 1u + unit.config().pipelineDepth);
    EXPECT_EQ(large, 1000u + unit.config().pipelineDepth);
}

TEST(GemvUnitTest, MoreMultipliersFasterCompute)
{
    GemvUnitConfig narrow;
    narrow.multipliers = 32;
    GemvUnitConfig wide;
    wide.multipliers = 512;
    const GemvUnit a(narrow);
    const GemvUnit b(wide);
    EXPECT_GT(a.computeTime(1 << 20), b.computeTime(1 << 20));
}

TEST(GemvUnitTest, SpillOnlyBeyondBuffer)
{
    const GemvUnit unit;
    EXPECT_EQ(unit.spillBytes(1000), 0u);
    EXPECT_EQ(unit.spillBytes(256 * kKiB), 0u);
    EXPECT_EQ(unit.spillBytes(256 * kKiB + 100), 200u);
}

TEST(ActivationUnitTest, ReluLinearInValues)
{
    const ActivationUnit unit;
    EXPECT_EQ(unit.reluCycles(0), 0u);
    EXPECT_EQ(unit.reluCycles(1), 2u);
    EXPECT_EQ(unit.reluCycles(256), 2u);
    EXPECT_EQ(unit.reluCycles(257), 3u);
}

TEST(ActivationUnitTest, SoftmaxThreePassStructure)
{
    const ActivationUnit unit;
    EXPECT_EQ(unit.softmaxCycles(0, 128), 0u);
    const Cycles one = unit.softmaxCycles(1, 256);
    // max pass (1) + exp/sum (1 + tree 8) + divide (1 + 12) = 23.
    EXPECT_EQ(one, 23u);
    EXPECT_EQ(unit.softmaxCycles(10, 256), 10 * one);
}

TEST(NdpDimmTest, InternalBandwidthNearTableIiPeak)
{
    NdpDimm dimm;
    const double bw = dimm.internalBandwidth();
    // 4 ranks x 25.6 GB/s peak, ~94% achievable for row streams.
    EXPECT_GT(bw, 0.85 * 4 * 25.6e9);
    EXPECT_LE(bw, 4 * 25.6e9);
}

TEST(NdpDimmTest, SparseGemvMemoryBoundAtBatchOne)
{
    NdpDimm dimm;
    const auto time = dimm.sparseGemv(1024, 8192, 1);
    EXPECT_TRUE(time.memoryBound());
    EXPECT_GT(time.total, time.memory * 0.99);
}

TEST(NdpDimmTest, SparseGemvComputeBoundAtLargeBatch)
{
    NdpDimm dimm;
    const auto time = dimm.sparseGemv(1024, 8192, 16);
    EXPECT_FALSE(time.memoryBound());
    // Memory time is batch independent (weights read once).
    const auto b1 = dimm.sparseGemv(1024, 8192, 1);
    EXPECT_NEAR(time.memory, b1.memory, 1e-12);
}

TEST(NdpDimmTest, ZeroWorkIsFree)
{
    NdpDimm dimm;
    EXPECT_DOUBLE_EQ(dimm.sparseGemv(0, 8192, 1).total, 0.0);
    EXPECT_DOUBLE_EQ(dimm.attention(0, 8, 128, 128, 8).total, 0.0);
    EXPECT_DOUBLE_EQ(dimm.merge(0).total, 0.0);
    EXPECT_DOUBLE_EQ(dimm.relu(0).total, 0.0);
}

TEST(NdpDimmTest, AttentionScalesWithSequence)
{
    NdpDimm dimm;
    const auto short_seq = dimm.attention(1, 8, 128, 128, 8);
    const auto long_seq = dimm.attention(1, 8, 128, 1024, 8);
    EXPECT_GT(long_seq.total, 4.0 * short_seq.total);
}

TEST(NdpDimmTest, MergeIsCheap)
{
    NdpDimm dimm;
    // Merging a token's hidden state (16 KB) should take ~ a command
    // overhead, far below a GEMV over megabytes.
    const auto merge = dimm.merge(16 * kKiB);
    const auto gemv = dimm.sparseGemv(1024, 8192, 1);
    EXPECT_LT(merge.total, 0.05 * gemv.total);
}

/** Fig. 16 DSE invariant: batch-1 saturates early, batch-16 late. */
class GemvDseTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(GemvDseTest, MultiplierScalingRespectsRoofline)
{
    const std::uint32_t batch = GetParam();
    Seconds prev = 1e30;
    for (std::uint32_t mult : {32u, 64u, 128u, 256u, 512u}) {
        NdpDimmConfig config;
        config.gemv.multipliers = mult;
        NdpDimm dimm(config);
        const Seconds t = dimm.sparseGemv(2048, 8192, batch).total;
        EXPECT_LE(t, prev * (1.0 + 1e-9));
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, GemvDseTest,
                         ::testing::Values(1, 4, 16));

TEST(GemvDseTest, Batch1SaturatesBy128Multipliers)
{
    NdpDimmConfig small;
    small.gemv.multipliers = 128;
    NdpDimmConfig large;
    large.gemv.multipliers = 512;
    NdpDimm a(small);
    NdpDimm b(large);
    const Seconds t_small = a.sparseGemv(2048, 8192, 1).total;
    const Seconds t_large = b.sparseGemv(2048, 8192, 1).total;
    // Memory bound: no more than a few percent improvement.
    EXPECT_LT(t_small, 1.05 * t_large);
}

TEST(GemvDseTest, Batch16KeepsScalingTo512)
{
    NdpDimmConfig small;
    small.gemv.multipliers = 128;
    NdpDimmConfig large;
    large.gemv.multipliers = 512;
    NdpDimm a(small);
    NdpDimm b(large);
    const Seconds t_small = a.sparseGemv(2048, 8192, 16).total;
    const Seconds t_large = b.sparseGemv(2048, 8192, 16).total;
    EXPECT_GT(t_small, 1.5 * t_large);
}

} // namespace
} // namespace hermes::ndp
