/**
 * @file
 * Tests for the shared timeline / decode-pipeline layer: overlap and
 * critical-path invariants, plus the guarantee that the ported
 * engines reproduce the pre-refactor Hermes vs. baseline ordering.
 */

#include <gtest/gtest.h>

#include "model/llm_config.hh"
#include "runtime/decode_pipeline.hh"
#include "runtime/factory.hh"
#include "runtime/timeline.hh"

namespace hermes::runtime {
namespace {

constexpr double kEps = 1e-12;

TEST(Timeline, SerialChainSums)
{
    Timeline timeline;
    const auto gpu = timeline.addResource("gpu");
    const auto a = timeline.post(gpu, CostCategory::Fc, 1.0);
    const auto b = timeline.post(gpu, CostCategory::Attention, 2.0);
    EXPECT_DOUBLE_EQ(timeline.startOf(b), timeline.endOf(a));
    EXPECT_DOUBLE_EQ(timeline.makespan(), 3.0);
    EXPECT_DOUBLE_EQ(timeline.busy(gpu), 3.0);
}

TEST(Timeline, IndependentResourcesOverlap)
{
    Timeline timeline;
    const auto gpu = timeline.addResource("gpu");
    const auto pcie = timeline.addResource("pcie");
    timeline.post(gpu, CostCategory::Fc, 2.0);
    timeline.post(pcie, CostCategory::Communication, 5.0);
    EXPECT_DOUBLE_EQ(timeline.makespan(), 5.0);
}

TEST(Timeline, DependenciesGateStart)
{
    Timeline timeline;
    const auto gpu = timeline.addResource("gpu");
    const auto pcie = timeline.addResource("pcie");
    const auto sync =
        timeline.post(pcie, CostCategory::Communication, 1.0);
    const auto work =
        timeline.post(gpu, CostCategory::Fc, 2.0, {sync});
    EXPECT_DOUBLE_EQ(timeline.startOf(work), 1.0);
    EXPECT_DOUBLE_EQ(timeline.makespan(), 3.0);
}

TEST(Timeline, CriticalPathSumsToMakespan)
{
    Timeline timeline;
    const auto gpu = timeline.addResource("gpu");
    const auto pcie = timeline.addResource("pcie");
    const auto link = timeline.addResource("link");
    const auto sync =
        timeline.post(pcie, CostCategory::Communication, 1.0);
    const auto fc = timeline.post(gpu, CostCategory::Fc, 4.0, {sync});
    timeline.post(link, CostCategory::Communication, 2.0, {sync});
    timeline.post(gpu, CostCategory::Others, 0.5, {fc});

    const CategoryTimes path = timeline.criticalPath();
    EXPECT_NEAR(path.total(), timeline.makespan(), kEps);
    EXPECT_DOUBLE_EQ(path[CostCategory::Fc], 4.0);
    EXPECT_DOUBLE_EQ(path[CostCategory::Communication], 1.0);
    EXPECT_DOUBLE_EQ(path[CostCategory::Others], 0.5);
}

TEST(Timeline, NegativeDurationsClampToZero)
{
    Timeline timeline;
    const auto gpu = timeline.addResource("gpu");
    timeline.post(gpu, CostCategory::Fc, -1.0);
    EXPECT_DOUBLE_EQ(timeline.makespan(), 0.0);
}

TEST(Timeline, EmptyTimelineIsZero)
{
    Timeline timeline;
    timeline.addResource("gpu");
    EXPECT_DOUBLE_EQ(timeline.makespan(), 0.0);
    EXPECT_NEAR(timeline.criticalPath().total(), 0.0, kEps);
}

TEST(Pipeline, ShadowedMigrationHidesWhenSlackSuffices)
{
    // Migration shorter than the projection it shadows: the token is
    // exactly as long as without it, and no communication appears on
    // the critical path.
    DecodePipeline with(4);
    with.beginToken();
    with.gpuStage(CostCategory::Fc, 10.0e-3);
    with.shadowedDimmLink(5.0e-3);
    with.gpuStage(CostCategory::Fc, 2.0e-3);
    const Seconds with_time = with.endToken();

    DecodePipeline without(4);
    without.beginToken();
    without.gpuStage(CostCategory::Fc, 10.0e-3);
    without.gpuStage(CostCategory::Fc, 2.0e-3);
    const Seconds without_time = without.endToken();

    EXPECT_DOUBLE_EQ(with_time, without_time);
    EXPECT_DOUBLE_EQ(
        with.accumulated()[CostCategory::Communication], 0.0);
}

TEST(Pipeline, ShadowedMigrationExposesOnlySurplus)
{
    DecodePipeline pipeline(4);
    pipeline.beginToken();
    pipeline.gpuStage(CostCategory::Fc, 10.0e-3);
    pipeline.shadowedDimmLink(15.0e-3);
    pipeline.gpuStage(CostCategory::Fc, 2.0e-3);
    const Seconds token = pipeline.endToken();
    EXPECT_NEAR(token, 17.0e-3, kEps);
}

TEST(Pipeline, ExactlyShadowedTransferCreditsCompute)
{
    // Tie-break: a transfer finishing at the same instant as the
    // compute it hides behind must not steal the attribution.
    DecodePipeline pipeline(2);
    pipeline.beginToken();
    pipeline.gpuStage(CostCategory::Fc, 10.0e-3);
    pipeline.shadowedPcie(10.0e-3);
    pipeline.gpuStage(CostCategory::Others, 1.0e-3);
    pipeline.endToken();
    EXPECT_DOUBLE_EQ(
        pipeline.accumulated()[CostCategory::Communication], 0.0);
    EXPECT_DOUBLE_EQ(pipeline.accumulated()[CostCategory::Fc],
                     10.0e-3);
}

TEST(Pipeline, SplitStageJoinsOnSlowerSide)
{
    // GPU side: 1 + 4 + 1 = 6 ms; lanes: max 9 ms -> 9 ms total.
    DecodePipeline pipeline(3);
    pipeline.beginToken();
    pipeline.splitStage(CostCategory::Fc, 4.0e-3, 1.0e-3, 1.0e-3,
                        {3.0e-3, 9.0e-3, 2.0e-3});
    const Seconds dimm_bound = pipeline.endToken();
    EXPECT_NEAR(dimm_bound, 9.0e-3, kEps);

    pipeline.beginToken();
    pipeline.splitStage(CostCategory::Fc, 4.0e-3, 1.0e-3, 1.0e-3,
                        {3.0e-3, 2.0e-3, 2.0e-3});
    const Seconds gpu_bound = pipeline.endToken();
    EXPECT_NEAR(gpu_bound, 6.0e-3, kEps);
}

TEST(Pipeline, BackgroundTransferOverlapsWholeToken)
{
    // FlexGen shape: compute 6 ms, background stream 10 ms, epilogue
    // 1 ms after the join -> 11 ms.
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    pipeline.backgroundPcie(10.0e-3);
    pipeline.gpuStage(CostCategory::Fc, 6.0e-3);
    pipeline.joinBackground();
    pipeline.gpuStage(CostCategory::Others, 1.0e-3);
    const Seconds token = pipeline.endToken();
    EXPECT_NEAR(token, 11.0e-3, kEps);
}

TEST(Pipeline, EndTokenScalesAndRepeats)
{
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    pipeline.gpuStage(CostCategory::Fc, 2.0e-3);
    pipeline.endToken(/*scale=*/4.0, /*repeat=*/10);
    EXPECT_NEAR(pipeline.totalTime(), 80.0e-3, kEps);
    EXPECT_NEAR(pipeline.accumulated()[CostCategory::Fc], 80.0e-3,
                kEps);
    EXPECT_EQ(pipeline.tokensSimulated(), 10u);

    pipeline.addSerial(CostCategory::Others, 1.0e-3);
    EXPECT_NEAR(pipeline.totalTime(), 81.0e-3, kEps);
}

TEST(Pipeline, ZeroDimmConfigFallsBackToHost)
{
    // ndpStage on a lane-less pipeline must account the work rather
    // than dropping it (and must not crash).
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    pipeline.ndpStage(CostCategory::Attention, 3.0e-3);
    EXPECT_NEAR(pipeline.endToken(), 3.0e-3, kEps);
}

// ---- Ported engines: breakdowns come from the timeline and the ----
// ---- pre-refactor orderings hold.                              ----

SystemConfig
fastPlatform()
{
    SystemConfig config;
    config.simulatedLayers = 4;
    return config;
}

InferenceRequest
smallRequest(const std::string &model, std::uint32_t batch = 1)
{
    InferenceRequest request;
    request.llm = model::modelByName(model);
    request.batch = batch;
    request.profileTokens = 24;
    request.generateTokens = 24;
    return request;
}

TEST(PortedEngines, BreakdownSumsToTotalForAllEngines)
{
    const SystemConfig config = fastPlatform();
    const InferenceRequest request = smallRequest("OPT-66B");
    for (const EngineKind kind : allEngineKinds()) {
        auto engine = makeEngine(kind, config);
        const InferenceResult result = engine->run(request);
        if (!result.supported)
            continue;
        const Seconds total =
            result.prefillTime + result.generateTime;
        EXPECT_NEAR(result.breakdown.total(), total,
                    1e-9 + 0.01 * total)
            << engineKindName(kind);
    }
}

TEST(PortedEngines, HermesOrderingSurvivesRefactor)
{
    const SystemConfig config = fastPlatform();
    const InferenceRequest request = smallRequest("OPT-66B");
    auto rate = [&](EngineKind kind) {
        return makeEngine(kind, config)->run(request).tokensPerSecond;
    };
    const double accelerate = rate(EngineKind::Accelerate);
    const double dejavu = rate(EngineKind::DejaVu);
    const double base = rate(EngineKind::HermesBase);
    const double hermes = rate(EngineKind::Hermes);
    EXPECT_LT(accelerate, dejavu);
    EXPECT_LT(dejavu, hermes);
    EXPECT_LT(base, hermes);
    EXPECT_GT(hermes / accelerate, 10.0);
}

TEST(PortedEngines, ZeroDimmPlatformIsUnsupportedNotFatal)
{
    SystemConfig config = fastPlatform();
    config.numDimms = 0;
    const InferenceRequest request = smallRequest("OPT-13B");
    EXPECT_FALSE(
        makeEngine(EngineKind::Hermes, config)->run(request).supported);
    EXPECT_FALSE(makeEngine(EngineKind::HermesBase, config)
                     ->run(request)
                     .supported);
}

TEST(PortedEngines, ZeroGenerateTokensIsWellDefined)
{
    const SystemConfig config = fastPlatform();
    InferenceRequest request = smallRequest("OPT-13B");
    request.generateTokens = 0;
    auto engine = makeEngine(EngineKind::Hermes, config);
    const InferenceResult result = engine->run(request);
    EXPECT_TRUE(result.supported);
    EXPECT_DOUBLE_EQ(result.generateTime, 0.0);
    EXPECT_DOUBLE_EQ(result.tokensPerSecond, 0.0);
}

} // namespace
} // namespace hermes::runtime
