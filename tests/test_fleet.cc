/**
 * @file
 * Fleet serving tests: router policies, replica aggregation
 * invariants, heterogeneous fleets, and seed-for-seed determinism.
 */

#include <array>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/fleet.hh"
#include "core/hermes.hh"
#include "core/workload.hh"

namespace hermes::fleet {
namespace {

serving::ServingConfig
fastServing(std::uint32_t max_batch = 4)
{
    serving::ServingConfig config;
    config.maxBatch = max_batch;
    config.calibrationTokens = 4;
    return config;
}

std::vector<serving::ServedRequest>
smallTrace(std::uint32_t requests = 12, double rate = 8.0,
           std::uint64_t seed = 9)
{
    serving::ScenarioConfig scenario;
    scenario.process = serving::ArrivalProcess::Poisson;
    scenario.requests = requests;
    scenario.ratePerSecond = rate;
    scenario.prompt = {64, 16, 0.0, 1.0};
    scenario.generate = {8, 4, 0.0, 1.0};
    scenario.seed = seed;
    return serving::generateWorkload(scenario);
}

FleetSimulator
uniformSimulator(std::uint32_t replicas, sched::RouterPolicy policy,
                 Seconds deadline = 30.0)
{
    return FleetSimulator(
        uniformFleet(replicas, fastConfig(4), fastServing(), policy,
                     deadline),
        model::opt13b());
}

/** The per-request / aggregate invariants every run must satisfy. */
void
checkReportInvariants(const FleetReport &report,
                      std::size_t trace_size)
{
    EXPECT_EQ(report.requests.size(), trace_size);
    EXPECT_EQ(report.assignment.size(), trace_size);

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    for (std::size_t i = 0; i < report.requests.size(); ++i) {
        const serving::RequestMetrics &request =
            report.requests[i];
        if (request.rejected) {
            ++rejected;
            // Rejected (or shed) => no lifecycle timestamps.
            EXPECT_DOUBLE_EQ(request.admitted, 0.0);
            EXPECT_DOUBLE_EQ(request.firstToken, 0.0);
            EXPECT_DOUBLE_EQ(request.completed, 0.0);
            EXPECT_EQ(request.tokens, 0u);
        } else {
            ++completed;
            EXPECT_LE(request.arrival, request.admitted);
            EXPECT_LE(request.admitted, request.firstToken);
            EXPECT_LE(request.firstToken, request.completed);
            EXPECT_GE(report.assignment[i], 0);
        }
        if (report.assignment[i] < 0) {
            EXPECT_TRUE(request.rejected);
        }
    }
    EXPECT_EQ(report.completed, completed);
    EXPECT_EQ(report.rejected, rejected);
    EXPECT_EQ(report.completed + report.rejected, trace_size);
    EXPECT_LE(report.shed, report.rejected);

    // Fleet aggregates are exactly the replica aggregates.
    double throughput = 0.0;
    Seconds makespan = 0.0;
    std::uint64_t replica_completed = 0;
    for (const serving::ServingReport &replica :
         report.replicaReports) {
        throughput += replica.throughputTps;
        makespan = std::max(makespan, replica.makespan);
        replica_completed += replica.completed;
    }
    EXPECT_DOUBLE_EQ(report.throughputTps, throughput);
    EXPECT_DOUBLE_EQ(report.makespan, makespan);
    EXPECT_EQ(report.completed, replica_completed);
}

TEST(Fleet, InvariantsHoldForEveryPolicy)
{
    const auto trace = smallTrace();
    for (const sched::RouterPolicy policy :
         sched::allRouterPolicies()) {
        auto simulator = uniformSimulator(2, policy);
        const auto report = simulator.run(trace);
        checkReportInvariants(report, trace.size());
        EXPECT_EQ(report.policy,
                  sched::routerPolicyName(policy));
        EXPECT_GT(report.throughputTps, 0.0);
    }
}

TEST(Fleet, SameSeedSameFleetIdenticalReport)
{
    const auto trace = smallTrace();
    auto a = uniformSimulator(
                 2, sched::RouterPolicy::JoinShortestQueue)
                 .run(trace);
    auto b = uniformSimulator(
                 2, sched::RouterPolicy::JoinShortestQueue)
                 .run(trace);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.throughputTps, b.throughputTps);
    EXPECT_DOUBLE_EQ(a.p50Ttft, b.p50Ttft);
    EXPECT_DOUBLE_EQ(a.p99Ttft, b.p99Ttft);
    EXPECT_DOUBLE_EQ(a.sloAttainment, b.sloAttainment);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.requests[i].admitted,
                         b.requests[i].admitted);
        EXPECT_DOUBLE_EQ(a.requests[i].firstToken,
                         b.requests[i].firstToken);
        EXPECT_DOUBLE_EQ(a.requests[i].completed,
                         b.requests[i].completed);
    }
}

TEST(Fleet, RoundRobinInterleavesInArrivalOrder)
{
    const auto trace = smallTrace();
    auto simulator =
        uniformSimulator(3, sched::RouterPolicy::RoundRobin);
    const auto report = simulator.run(trace);
    for (std::size_t i = 0; i < report.assignment.size(); ++i)
        EXPECT_EQ(report.assignment[i],
                  static_cast<int>(i % 3));
}

TEST(Fleet, JsqSpreadsASimultaneousBurstEvenly)
{
    // All requests arrive at t = 0: queue depths tick up one by one,
    // so the burst must split evenly across identical replicas.
    auto trace = smallTrace(12, 8.0, 9);
    for (auto &request : trace)
        request.arrival = 0.0;
    auto simulator = uniformSimulator(
        2, sched::RouterPolicy::JoinShortestQueue);
    const auto report = simulator.run(trace);
    std::array<int, 2> counts{0, 0};
    for (const int replica : report.assignment)
        ++counts[static_cast<std::size_t>(replica)];
    EXPECT_EQ(counts[0], counts[1]);
}

TEST(Fleet, MoreReplicasNoWorseThroughput)
{
    const auto trace = smallTrace(16, 16.0, 5);
    auto one =
        uniformSimulator(1, sched::RouterPolicy::RoundRobin);
    auto four =
        uniformSimulator(4, sched::RouterPolicy::RoundRobin);
    const auto report1 = one.run(trace);
    const auto report4 = four.run(trace);
    EXPECT_GT(report4.throughputTps, report1.throughputTps);
    EXPECT_LE(report4.makespan, report1.makespan);
}

TEST(Fleet, StateAwarePoliciesStarveADeadReplica)
{
    // Replica 1 cannot serve the model at all (no NDP-DIMM pool).
    FleetConfig config;
    config.ttftDeadline = 60.0;
    ReplicaConfig healthy;
    healthy.system = fastConfig(4);
    healthy.serving = fastServing();
    ReplicaConfig dead = healthy;
    dead.system.numDimms = 0;
    config.replicas = {healthy, dead};

    const auto trace = smallTrace();

    // SLO-aware estimates the dead replica's TTFT as effectively
    // infinite and never picks it: everything is served.
    config.policy = sched::RouterPolicy::SloAware;
    {
        FleetSimulator simulator(config, model::opt13b());
        const auto report = simulator.run(trace);
        EXPECT_EQ(report.replicaReports[1].completed, 0u);
        EXPECT_EQ(report.rejected, 0u);
        EXPECT_EQ(report.completed, trace.size());
    }

    // Least-outstanding-tokens is speed-blind by design, but the
    // dead replica's backlog never drains, so the router backs off
    // after a few requests instead of splitting the trace evenly.
    config.policy = sched::RouterPolicy::LeastOutstandingTokens;
    {
        FleetSimulator simulator(config, model::opt13b());
        const auto report = simulator.run(trace);
        const std::uint64_t routed_to_dead =
            report.replicaReports[1].requests.size();
        EXPECT_LT(routed_to_dead, trace.size() / 2);
        EXPECT_EQ(report.rejected, routed_to_dead);
        EXPECT_EQ(report.completed,
                  trace.size() - routed_to_dead);
    }
}

TEST(Fleet, SloAwareShedsWhenOverloadedAndProtectsTail)
{
    // One slot, long generations, simultaneous burst: most requests
    // cannot meet a tight deadline and must be shed at the router.
    serving::ServingConfig serving = fastServing(1);
    const auto trace = [] {
        auto t = smallTrace(10, 8.0, 9);
        for (auto &request : t) {
            request.arrival = 0.0;
            request.generateTokens = 16;
        }
        return t;
    }();
    FleetSimulator strict(
        uniformFleet(1, fastConfig(4), serving,
                     sched::RouterPolicy::SloAware,
                     /*ttft_deadline=*/1.0),
        model::opt13b());
    const auto report = strict.run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_GT(report.shed, 0u);
    EXPECT_GT(report.completed, 0u);
    // Everything actually served met a TTFT no worse than a fleet
    // that admits everything.
    FleetSimulator lax(
        uniformFleet(1, fastConfig(4), serving,
                     sched::RouterPolicy::RoundRobin,
                     /*ttft_deadline=*/1.0),
        model::opt13b());
    const auto admit_all = lax.run(trace);
    EXPECT_LT(report.p99Ttft, admit_all.p99Ttft);
}

TEST(Fleet, NamesRoundTripThroughTheFactories)
{
    // The fleet layer is configured by name (CLI sweeps, CSV-driven
    // experiments): pin the name <-> enum round trips.
    for (const sched::RouterPolicy policy :
         sched::allRouterPolicies())
        EXPECT_EQ(sched::routerPolicyByName(
                      sched::routerPolicyName(policy)),
                  policy);
    EXPECT_THROW(sched::routerPolicyByName("fifo"),
                 std::invalid_argument);

    for (const runtime::EngineKind kind :
         runtime::allEngineKinds())
        EXPECT_EQ(runtime::engineKindByName(
                      runtime::engineKindName(kind)),
                  kind);
    EXPECT_THROW(runtime::engineKindByName("vLLM"),
                 std::invalid_argument);

    const auto presets = runtime::platformPresetNames();
    ASSERT_EQ(presets.size(), 3u);
    for (const std::string &name : presets) {
        const auto config = runtime::platformPreset(name, 4);
        EXPECT_GT(config.numDimms, 0u) << name;
        EXPECT_EQ(config.simulatedLayers, 4u);
    }
    EXPECT_LT(runtime::platformPreset("budget").numDimms,
              runtime::platformPreset("scaled").numDimms);
    EXPECT_THROW(runtime::platformPreset("mainframe"),
                 std::invalid_argument);
}

TEST(Fleet, EmptyWorkloadYieldsEmptyReport)
{
    auto simulator =
        uniformSimulator(2, sched::RouterPolicy::SloAware);
    const auto report =
        simulator.run(std::vector<serving::ServedRequest>{});
    EXPECT_EQ(report.completed, 0u);
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_DOUBLE_EQ(report.sloAttainment, 1.0);
    EXPECT_DOUBLE_EQ(report.throughputTps, 0.0);
}

/** Compare two fleet reports field by field, exactly. */
void
expectIdenticalReports(const FleetReport &a, const FleetReport &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.throughputTps, b.throughputTps);
    EXPECT_DOUBLE_EQ(a.p50Ttft, b.p50Ttft);
    EXPECT_DOUBLE_EQ(a.p99Ttft, b.p99Ttft);
    EXPECT_DOUBLE_EQ(a.sloAttainment, b.sloAttainment);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].id, b.requests[i].id);
        EXPECT_EQ(a.requests[i].rejected, b.requests[i].rejected);
        EXPECT_EQ(a.requests[i].tokens, b.requests[i].tokens);
        EXPECT_DOUBLE_EQ(a.requests[i].admitted,
                         b.requests[i].admitted);
        EXPECT_DOUBLE_EQ(a.requests[i].firstToken,
                         b.requests[i].firstToken);
        EXPECT_DOUBLE_EQ(a.requests[i].completed,
                         b.requests[i].completed);
    }
}

TEST(EventKernel, MatchesTwoPhaseOnEveryEstimatePolicy)
{
    // The tentpole equivalence: on estimate-based policies the
    // event-driven kernel must reproduce the two-phase path's
    // per-request metrics exactly — the routing decisions are
    // identical and each replica's boundary arithmetic is the same
    // float sequence, merely interleaved on the shared clock.
    for (const auto policy :
         {sched::RouterPolicy::RoundRobin,
          sched::RouterPolicy::JoinShortestQueue,
          sched::RouterPolicy::LeastOutstandingTokens,
          sched::RouterPolicy::SloAware}) {
        for (const double rate : {8.0, 64.0}) {
            const auto trace = smallTrace(14, rate, 9);
            FleetConfig config =
                uniformFleet(2, fastConfig(4), fastServing(),
                             policy, /*ttft_deadline=*/1.5);
            config.kernel = FleetKernel::EventDriven;
            const auto event_report =
                FleetSimulator(config, model::opt13b())
                    .run(trace);
            config.kernel = FleetKernel::TwoPhase;
            const auto two_phase_report =
                FleetSimulator(config, model::opt13b())
                    .run(trace);
            EXPECT_EQ(event_report.kernel, "event");
            EXPECT_EQ(two_phase_report.kernel, "two-phase");
            expectIdenticalReports(event_report,
                                   two_phase_report);
        }
    }
}

TEST(EventKernel, TiedTimestampsAreDeterministic)
{
    // Pile arrivals onto identical instants so every tie-break in
    // the event order is exercised; two fresh fleets must agree on
    // everything, including the kernel's own event counts.
    auto trace = smallTrace(16, 8.0, 9);
    for (std::size_t i = 0; i < trace.size(); ++i)
        trace[i].arrival =
            static_cast<double>(i / 4) * 0.05;
    FleetConfig config = uniformFleet(
        3, fastConfig(4), fastServing(),
        sched::RouterPolicy::TrueJsq, /*ttft_deadline=*/30.0);
    config.workStealing = true;

    const auto a =
        FleetSimulator(config, model::opt13b()).run(trace);
    const auto b =
        FleetSimulator(config, model::opt13b()).run(trace);
    expectIdenticalReports(a, b);
    EXPECT_EQ(a.kernelStats.events.popped(),
              b.kernelStats.events.popped());
    EXPECT_EQ(a.kernelStats.steals, b.kernelStats.steals);
    EXPECT_EQ(a.kernelStats.stolenRequests,
              b.kernelStats.stolenRequests);
    EXPECT_EQ(a.kernelStats.events.arrivals, trace.size());
    EXPECT_EQ(a.kernelStats.events.requestsDone, a.completed);
    checkReportInvariants(a, trace.size());
}

TEST(EventKernel, FeedbackPoliciesBeatEstimateJsqOnBurstyTail)
{
    // Under a hard burst the estimate drifts from ground truth;
    // routing on observed state at the arrival event must win on
    // the TTFT tail.  Scenario chosen (and pinned by determinism)
    // so both feedback policies beat the estimate JSQ.
    serving::ScenarioConfig scenario;
    scenario.process = serving::ArrivalProcess::Bursty;
    scenario.requests = 40;
    scenario.ratePerSecond = 16.0;
    scenario.burstiness = 8.0;
    scenario.prompt = {96, 32, 0.0, 1.0};
    scenario.generate = {16, 8, 0.0, 1.0};
    scenario.seed = 5;
    const auto trace = serving::generateWorkload(scenario);

    const auto run = [&](sched::RouterPolicy policy) {
        return uniformSimulator(2, policy, 30.0).run(trace);
    };
    const auto estimate =
        run(sched::RouterPolicy::JoinShortestQueue);
    const auto true_jsq = run(sched::RouterPolicy::TrueJsq);
    const auto least_backlog =
        run(sched::RouterPolicy::LeastActualBacklog);
    EXPECT_EQ(estimate.completed, trace.size());
    EXPECT_EQ(true_jsq.completed, trace.size());
    EXPECT_EQ(least_backlog.completed, trace.size());
    EXPECT_LT(true_jsq.p99Ttft, estimate.p99Ttft);
    EXPECT_LT(least_backlog.p99Ttft, estimate.p99Ttft);
}

TEST(EventKernel, FeedbackAndStealingRequireTheEventKernel)
{
    const auto trace = smallTrace();
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(),
        sched::RouterPolicy::TrueJsq, 30.0);
    config.kernel = FleetKernel::TwoPhase;
    EXPECT_THROW(
        FleetSimulator(config, model::opt13b()).run(trace),
        std::invalid_argument);

    config.policy = sched::RouterPolicy::RoundRobin;
    config.workStealing = true;
    EXPECT_THROW(
        FleetSimulator(config, model::opt13b()).run(trace),
        std::invalid_argument);

    for (const char *name : {"event", "two-phase"})
        EXPECT_EQ(fleetKernelName(fleetKernelByName(name)),
                  name);
    EXPECT_THROW(fleetKernelByName("offline"),
                 std::invalid_argument);
}

TEST(EventKernel, DuplicateRequestIdsAreRejected)
{
    // The report merge joins replica rows by request id; a
    // duplicate would make the join ambiguous, so it is an error.
    auto trace = smallTrace();
    trace[3].id = trace[7].id;
    auto simulator =
        uniformSimulator(2, sched::RouterPolicy::RoundRobin);
    EXPECT_THROW(simulator.run(trace), std::invalid_argument);
}

TEST(WorkStealing, RescuesRequestsStrandedOnADeadReplica)
{
    // Replica 1 cannot serve the model; round-robin keeps routing
    // to it anyway.  With the stealing hook, replica 0 drains the
    // stranded queue whenever it runs dry, so *everything* is
    // served — the fault-tolerance story the two-phase path could
    // not express.
    FleetConfig config;
    config.ttftDeadline = 60.0;
    config.policy = sched::RouterPolicy::RoundRobin;
    ReplicaConfig healthy;
    healthy.system = fastConfig(4);
    healthy.serving = fastServing();
    ReplicaConfig dead = healthy;
    dead.system.numDimms = 0;
    config.replicas = {healthy, dead};

    const auto trace = smallTrace();

    config.workStealing = false;
    const auto stranded =
        FleetSimulator(config, model::opt13b()).run(trace);
    EXPECT_EQ(stranded.rejected, trace.size() / 2);

    config.workStealing = true;
    const auto rescued =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(rescued, trace.size());
    EXPECT_EQ(rescued.completed, trace.size());
    EXPECT_EQ(rescued.rejected, 0u);
    EXPECT_EQ(rescued.replicaReports[1].completed, 0u);
    EXPECT_GE(rescued.kernelStats.stolenRequests,
              trace.size() / 2);
    // Every stolen request ends the run assigned to the thief.
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(rescued.assignment[i], 0);
}

TEST(WorkStealing, SimultaneousThievesResolveDeterministically)
{
    // Three single-slot replicas, nine simultaneous arrivals under
    // round-robin.  Replicas 0 and 2 get one-token requests and
    // drain at the exact same instant; replica 1's long request
    // leaves two queued behind it.  The tie resolves in replica
    // order: r0 steals first (taking the newest, id 7), then r2
    // (id 4) — pinned here, and stable across reruns.
    auto trace = smallTrace(9, 8.0, 9);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival = 0.0;
        trace[i].promptTokens = 64;
        trace[i].generateTokens = i % 3 == 1 ? 200 : 1;
    }
    FleetConfig config = uniformFleet(
        3, fastConfig(4), fastServing(/*max_batch=*/1),
        sched::RouterPolicy::RoundRobin, 60.0);
    config.workStealing = true;

    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.kernelStats.steals, 2u);
    EXPECT_EQ(report.kernelStats.stolenRequests, 2u);
    EXPECT_EQ(report.assignment,
              (std::vector<int>{0, 1, 2, 0, 2, 2, 0, 0, 2}));

    const auto again =
        FleetSimulator(config, model::opt13b()).run(trace);
    expectIdenticalReports(report, again);
}

TEST(WorkStealing, KeepsInvariantsUnderOverload)
{
    // A hard burst against a small fleet: stealing must never
    // lose, duplicate, or double-serve a request.
    auto trace = smallTrace(24, 8.0, 9);
    for (auto &request : trace)
        request.arrival = 0.0;
    FleetConfig config = uniformFleet(
        3, fastConfig(4), fastServing(2),
        sched::RouterPolicy::RoundRobin, 60.0);
    config.workStealing = true;
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
}

// ---- The composable control plane (sched/control_policy.hh) ----

/**
 * Explicit ControlPolicy objects must reproduce the deprecated
 * enum/bool configuration bit for bit: the legacy fields are thin
 * adapters over the same built-ins.
 */
TEST(ControlPlane, ExplicitPoliciesMatchTheDeprecatedConfig)
{
    const auto trace = smallTrace();
    for (const sched::RouterPolicy policy :
         sched::allRouterPolicies()) {
        FleetConfig legacy = uniformFleet(
            2, fastConfig(4), fastServing(), policy, 30.0);
        FleetConfig explicit_config = legacy;
        explicit_config.control = sched::controlPolicyByName(
            sched::routerPolicyName(policy));
        const auto a =
            FleetSimulator(legacy, model::opt13b()).run(trace);
        const auto b =
            FleetSimulator(explicit_config, model::opt13b())
                .run(trace);
        EXPECT_EQ(a.policy, b.policy);
        expectIdenticalReports(a, b);
    }
}

TEST(ControlPlane, ExplicitStealingMatchesTheDeprecatedBool)
{
    // The dead-replica rescue scenario forces steals; the explicit
    // "round-robin+greedy-steal" composite must reproduce the
    // legacy workStealing bool exactly, steal counters included.
    FleetConfig config;
    config.ttftDeadline = 60.0;
    config.policy = sched::RouterPolicy::RoundRobin;
    ReplicaConfig healthy;
    healthy.system = fastConfig(4);
    healthy.serving = fastServing();
    ReplicaConfig dead = healthy;
    dead.system.numDimms = 0;
    config.replicas = {healthy, dead};
    const auto trace = smallTrace();

    config.workStealing = true;
    const auto legacy =
        FleetSimulator(config, model::opt13b()).run(trace);

    config.workStealing = false;
    config.control =
        sched::controlPolicyByName("round-robin+greedy-steal");
    const auto explicit_report =
        FleetSimulator(config, model::opt13b()).run(trace);

    expectIdenticalReports(legacy, explicit_report);
    EXPECT_EQ(legacy.kernelStats.steals,
              explicit_report.kernelStats.steals);
    EXPECT_EQ(legacy.kernelStats.stolenRequests,
              explicit_report.kernelStats.stolenRequests);
    EXPECT_GT(explicit_report.kernelStats.stolenRequests, 0u);
    EXPECT_EQ(explicit_report.policy, "round-robin+greedy-steal");
}

TEST(ControlPlane, RegistryRoundTripsAndComposes)
{
    const auto names = sched::controlPolicyNames();
    ASSERT_EQ(names.size(), 12u);
    for (const std::string &name : names)
        EXPECT_EQ(sched::controlPolicyByName(name)->name(), name);

    const auto composite =
        sched::controlPolicyByName("least-tokens+slo-steal");
    EXPECT_EQ(composite->name(), "least-tokens+slo-steal");
    EXPECT_TRUE(composite->wants() &
                sched::ControlPolicy::kIdle);
    EXPECT_FALSE(composite->wants() &
                 sched::ControlPolicy::kObservations);
    EXPECT_TRUE(sched::controlPolicyByName("true-jsq")->wants() &
                sched::ControlPolicy::kObservations);
    EXPECT_TRUE(
        sched::controlPolicyByName("priority-preempt")->wants() &
        sched::ControlPolicy::kPreempt);
    EXPECT_TRUE(
        sched::controlPolicyByName("drain-migrate")->wants() &
        sched::ControlPolicy::kMigrate);

    EXPECT_THROW(sched::controlPolicyByName("fifo"),
                 std::invalid_argument);
    EXPECT_THROW(sched::controlPolicyByName("jsq+"),
                 std::invalid_argument);
    EXPECT_THROW(sched::controlPolicyByName(""),
                 std::invalid_argument);
    EXPECT_THROW(sched::composeControlPolicies({}),
                 std::invalid_argument);
}

TEST(ControlPlane, CustomPoliciesNeedTheEventKernel)
{
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(),
        sched::RouterPolicy::RoundRobin, 30.0);
    config.kernel = FleetKernel::TwoPhase;
    config.control = sched::controlPolicyByName("round-robin");
    EXPECT_THROW(
        FleetSimulator(config, model::opt13b()).run(smallTrace()),
        std::invalid_argument);
}

/** Routes arrivals to a fixed replica (test scaffolding). */
class PinnedRoutePolicy : public sched::ControlPolicy
{
  public:
    explicit PinnedRoutePolicy(std::uint32_t target)
        : target_(target)
    {
    }

    std::string name() const override { return "pinned"; }

    void onArrival(const sched::ArrivalContext &,
                   const sched::FleetView &,
                   sched::FleetActions &actions) override
    {
        actions.routeTo(target_);
    }

  private:
    std::uint32_t target_;
};

TEST(ControlPlane, CustomPolicyPlacesByItsOwnRule)
{
    // The API point: a user-written policy, never seen by the
    // kernel before, places requests by its own rule.  Odd ids to
    // replica 1, even to replica 0.
    class ParityPolicy final : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "parity"; }

        void onArrival(const sched::ArrivalContext &context,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(
                static_cast<std::uint32_t>(context.requestId % 2));
        }
    };

    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(),
        sched::RouterPolicy::RoundRobin, 30.0);
    config.control = std::make_shared<ParityPolicy>();
    const auto trace = smallTrace();
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.policy, "parity");
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(report.assignment[i],
                  static_cast<int>(trace[i].id % 2));
}

TEST(ControlPlane, IllegalActionsThrowInsteadOfCorruptingState)
{
    const auto trace = smallTrace(4);
    const auto run_with =
        [&](std::shared_ptr<sched::ControlPolicy> control) {
            FleetConfig config = uniformFleet(
                2, fastConfig(4), fastServing(),
                sched::RouterPolicy::RoundRobin, 30.0);
            config.control = std::move(control);
            return FleetSimulator(config, model::opt13b())
                .run(trace);
        };

    // No decision at all.
    class SilentPolicy final : public sched::ControlPolicy
    {
        std::string name() const override { return "silent"; }
    };
    EXPECT_THROW(run_with(std::make_shared<SilentPolicy>()),
                 std::logic_error);

    // Two decisions for one arrival.
    class DoubleRoutePolicy final : public sched::ControlPolicy
    {
        std::string name() const override { return "double"; }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(0);
            actions.shed();
        }
    };
    EXPECT_THROW(run_with(std::make_shared<DoubleRoutePolicy>()),
                 std::logic_error);

    // Out-of-range replica.
    EXPECT_THROW(run_with(std::make_shared<PinnedRoutePolicy>(99)),
                 std::logic_error);

    // Routing to a replica the policy itself drained.
    class RouteDrainedPolicy final : public sched::ControlPolicy
    {
        std::string name() const override { return "drained"; }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.requestDrain(1);
            actions.routeTo(1);
        }
    };
    EXPECT_THROW(run_with(std::make_shared<RouteDrainedPolicy>()),
                 std::logic_error);

    // Stealing from itself.
    class SelfStealPolicy final : public sched::ControlPolicy
    {
        std::string name() const override { return "self-steal"; }
        std::uint32_t wants() const override { return kIdle; }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(0);
        }
        void onReplicaIdle(std::uint32_t replica, Seconds,
                           const sched::FleetView &,
                           sched::FleetActions &actions) override
        {
            actions.steal(replica, replica, 1);
        }
    };
    EXPECT_THROW(run_with(std::make_shared<SelfStealPolicy>()),
                 std::logic_error);
}

TEST(ControlPlane, StealingARunningRequestThrows)
{
    // Request A (long) runs alone on replica 0 — nothing queued
    // behind it.  When replica 1 drains its own short request and
    // greedily tries to steal A anyway, the action surface throws:
    // running requests cannot be stolen.
    class StealRunningPolicy final : public sched::ControlPolicy
    {
      public:
        std::string name() const override
        {
            return "steal-running";
        }
        std::uint32_t wants() const override { return kIdle; }
        void onArrival(const sched::ArrivalContext &context,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(context.requestId == 0 ? 0 : 1);
        }
        void onReplicaIdle(std::uint32_t replica, Seconds,
                           const sched::FleetView &,
                           sched::FleetActions &actions) override
        {
            actions.steal(replica, replica == 0 ? 1 : 0, 1);
        }
    };

    std::vector<serving::ServedRequest> trace(2);
    trace[0].id = 0;
    trace[0].arrival = 0.0;
    trace[0].promptTokens = 64;
    trace[0].generateTokens = 64; // Long: still running later.
    trace[1].id = 1;
    trace[1].arrival = 0.0;
    trace[1].promptTokens = 64;
    trace[1].generateTokens = 1; // Short: replica 1 idles first.

    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(1),
        sched::RouterPolicy::RoundRobin, 30.0);
    config.control = std::make_shared<StealRunningPolicy>();
    EXPECT_THROW(
        FleetSimulator(config, model::opt13b()).run(trace),
        std::logic_error);
}

TEST(ControlPlane, StealingIntoTheCompletingReplicaIsLegal)
{
    // The natural "grab more work the moment I finish a step"
    // pattern: a kReplicaEvents subscriber steals into the very
    // replica whose step just completed.  The kernel must resume
    // that replica through the steal (not double-start it) and
    // still serve everything.
    class StepStealPolicy final : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "step-steal"; }
        std::uint32_t wants() const override
        {
            return kReplicaEvents;
        }
        void onArrival(const sched::ArrivalContext &context,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(context.requestId == 0 ? 0 : 1);
        }
        void onStepComplete(std::uint32_t replica, Seconds,
                            const sched::FleetView &view,
                            sched::FleetActions &actions) override
        {
            if (replica == 0 && view.knownServable(0) &&
                !view.busy(0) && view.queuedCount(1) > 0)
                actions.steal(0, 1, 1);
        }
    };

    std::vector<serving::ServedRequest> trace(5);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = i;
        trace[i].arrival = 0.0;
        trace[i].promptTokens = 64;
        trace[i].generateTokens = i == 0 ? 6 : 2;
    }
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(1),
        sched::RouterPolicy::RoundRobin, 30.0);
    config.control = std::make_shared<StepStealPolicy>();
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_GT(report.kernelStats.stolenRequests, 0u);
}

TEST(ControlPlane, AutoscalingIntentsAreRecorded)
{
    // requestSpawn stays the legacy intent counter (recorded, no
    // physics); requestDrain walks the lifecycle machine — both
    // intents land in KernelStats, and the drain is enforced on
    // routing.  The physics verb is spawnReplica (test_autoscale).
    class DrainSecondReplicaPolicy final
        : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "drainer"; }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &view,
                       sched::FleetActions &actions) override
        {
            if (!view.draining(1)) {
                actions.requestDrain(1);
                actions.requestSpawn();
            }
            actions.routeTo(0);
        }
    };

    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(),
        sched::RouterPolicy::RoundRobin, 30.0);
    config.control = std::make_shared<DrainSecondReplicaPolicy>();
    const auto trace = smallTrace();
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.kernelStats.drainRequests, 1u);
    EXPECT_EQ(report.kernelStats.spawnRequests, 1u);
    for (const int replica : report.assignment)
        EXPECT_EQ(replica, 0);
}

TEST(ControlPlane, TickHeartbeatFiresWithoutPerturbingPhysics)
{
    // A tick subscriber that only watches must leave every
    // physical outcome identical to the plain policy — the
    // heartbeat rides the same virtual clock but touches nothing.
    class WatchingTickPolicy final : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "watcher"; }
        std::uint32_t wants() const override { return kTick; }
        Seconds tickPeriod() const override { return 0.01; }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(next_++ % 2);
        }
        void onTick(Seconds, const sched::FleetView &,
                    sched::FleetActions &) override
        {
            ++ticks_;
        }
        std::uint64_t ticks() const { return ticks_; }

      private:
        std::uint32_t next_ = 0;
        std::uint64_t ticks_ = 0;
    };

    const auto trace = smallTrace();
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(),
        sched::RouterPolicy::RoundRobin, 30.0);
    const auto plain =
        FleetSimulator(config, model::opt13b()).run(trace);

    auto watcher = std::make_shared<WatchingTickPolicy>();
    config.control = watcher;
    const auto watched =
        FleetSimulator(config, model::opt13b()).run(trace);

    expectIdenticalReports(plain, watched);
    EXPECT_GT(watcher->ticks(), 0u);
    EXPECT_EQ(watcher->ticks(),
              watched.kernelStats.events.ticks);
    EXPECT_EQ(plain.kernelStats.events.ticks, 0u);
}

TEST(SloSteal, StillRescuesQueuesStrandedOnADeadReplica)
{
    // A dead victim's estimated wait is infinite, so SLO-aware
    // stealing always beats it: the fault-tolerance story of the
    // greedy hook is preserved.
    FleetConfig config;
    config.ttftDeadline = 60.0;
    ReplicaConfig healthy;
    healthy.system = fastConfig(4);
    healthy.serving = fastServing();
    ReplicaConfig dead = healthy;
    dead.system.numDimms = 0;
    config.replicas = {healthy, dead};
    config.control =
        sched::controlPolicyByName("round-robin+slo-steal");

    const auto trace = smallTrace();
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_GT(report.kernelStats.stolenRequests, 0u);
}

TEST(SloSteal, BeatsGreedyStealingOnABurstyHeterogeneousFleet)
{
    // A fast Hermes replica next to an Accelerate tier whose
    // prefill alone (~4.3s) blows the 2s TTFT deadline.  JSQ
    // routing keeps the slow tier lightly loaded, so it idles
    // between bursts while the fast replica still has a short
    // queue; occupancy-greedy stealing happily moves that queue
    // onto the slow tier — every stolen request then pays the
    // slow prefill — while slo-steal declines any steal whose
    // estimated TTFT on the thief is worse than waiting out the
    // victim's backlog.  Scenario chosen (and pinned by the
    // determinism tests) so the divergence shows on both the TTFT
    // tail and SLO attainment; a sweep over seeds x rates x burst
    // factors showed every diverging cell winning on attainment.
    serving::ScenarioConfig scenario;
    scenario.process = serving::ArrivalProcess::Bursty;
    scenario.requests = 24;
    scenario.ratePerSecond = 4.0;
    scenario.burstiness = 8.0;
    scenario.prompt = {96, 32, 0.0, 1.0};
    scenario.generate = {2, 1, 0.0, 1.0};
    scenario.seed = 5;
    const auto trace = serving::generateWorkload(scenario);

    FleetConfig config;
    config.ttftDeadline = 2.0;
    ReplicaConfig fast;
    fast.name = "fast";
    fast.system = fastConfig(4);
    fast.serving = fastServing(2);
    ReplicaConfig slow = fast;
    slow.name = "slow";
    slow.serving.engine = runtime::EngineKind::Accelerate;
    config.replicas = {fast, slow};

    const auto run_with = [&](const std::string &control) {
        config.control = sched::controlPolicyByName(control);
        return FleetSimulator(config, model::opt13b()).run(trace);
    };
    const auto greedy = run_with("jsq+greedy-steal");
    const auto slo = run_with("jsq+slo-steal");
    checkReportInvariants(greedy, trace.size());
    checkReportInvariants(slo, trace.size());

    // Greedy actually stole onto the slow tier; slo-steal declined
    // the losing subset of those steals.
    EXPECT_GT(greedy.kernelStats.stolenRequests, 0u);
    EXPECT_LT(slo.kernelStats.stolenRequests,
              greedy.kernelStats.stolenRequests);
    EXPECT_GT(slo.kernelStats.stolenRequests, 0u);

    // The acceptance pin: strictly better tail AND attainment.
    EXPECT_LT(slo.p99Ttft, greedy.p99Ttft);
    EXPECT_GT(slo.sloAttainment, greedy.sloAttainment);
}

// ---- The request lifecycle (preempt / resume / migrate) ----

TEST(Lifecycle, MigrationCostsAKvTransferProportionalToContext)
{
    // kvMigrationSeconds is the DIMM-link price of moving a
    // request's accumulated KV: linear in context length above the
    // per-transfer hop latency, zero when nothing accumulated.
    const auto system = fastConfig(4);
    const auto llm = model::opt13b();
    EXPECT_DOUBLE_EQ(kvMigrationSeconds(system, llm, 0), 0.0);
    const Seconds hop = system.link.hopLatency;
    const Seconds t1 = kvMigrationSeconds(system, llm, 1000);
    const Seconds t2 = kvMigrationSeconds(system, llm, 2000);
    EXPECT_GT(t1, hop);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(t2 - hop, 2.0 * (t1 - hop), 1e-12 * (t2 - hop));

    // A policy that migrates the lone running request after a few
    // decode steps: the kernel must charge exactly that transfer
    // and the destination must finish the request.
    class MigrateOncePolicy final : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "migrate-once"; }
        std::uint32_t wants() const override
        {
            return kReplicaEvents | kMigrate;
        }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(0);
        }
        void onStepComplete(std::uint32_t replica, Seconds,
                            const sched::FleetView &view,
                            sched::FleetActions &actions) override
        {
            if (migrated_ || replica != 0)
                return;
            const auto running = view.runningRequests(0);
            if (running.empty() ||
                running.front().tokensGenerated < 3)
                return;
            tokensAtMigration_ = running.front().tokensGenerated;
            actions.migrate(running.front().id, 1);
            migrated_ = true;
        }
        std::uint32_t tokensAtMigration() const
        {
            return tokensAtMigration_;
        }

      private:
        bool migrated_ = false;
        std::uint32_t tokensAtMigration_ = 0;
    };

    std::vector<serving::ServedRequest> trace(1);
    trace[0] = serving::ServedRequest{0, 0.0, 64, 12, 0};
    FleetConfig config = uniformFleet(
        2, system, fastServing(2),
        sched::RouterPolicy::RoundRobin, 30.0);
    auto policy = std::make_shared<MigrateOncePolicy>();
    config.control = policy;
    const auto report =
        FleetSimulator(config, llm).run(trace);

    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, 1u);
    EXPECT_EQ(report.kernelStats.migrations, 1u);
    EXPECT_EQ(report.kernelStats.preemptions, 0u);
    EXPECT_EQ(report.kernelStats.events.resumes, 1u);
    EXPECT_EQ(report.assignment, (std::vector<int>{1}));
    EXPECT_GE(policy->tokensAtMigration(), 3u);
    // The pinned cost: one transfer of (prompt + generated) tokens
    // of KV at the source's link parameters, nothing else.
    EXPECT_DOUBLE_EQ(
        report.kernelStats.kvTransferSeconds,
        kvMigrationSeconds(system, llm,
                           64 + policy->tokensAtMigration()));
    // The request finished on the destination with every token and
    // its migration recorded; the source reports nothing.
    EXPECT_TRUE(report.replicaReports[0].requests.empty());
    ASSERT_EQ(report.replicaReports[1].requests.size(), 1u);
    EXPECT_EQ(report.requests[0].tokens, 12u);
    EXPECT_EQ(report.requests[0].migrations, 1u);
}

TEST(Lifecycle, PriorityPreemptBeatsSloStealOnHighPriorityTail)
{
    // The acceptance pin: on an overloaded bursty fleet with a
    // high-priority slice, "jsq+priority-preempt" must strictly
    // improve the high-priority p99 TTFT over "jsq+slo-steal" —
    // stealing can only move queued work between replicas, while
    // preemption evicts low-priority running work the moment a
    // high-priority request would miss its deadline.
    serving::ScenarioConfig scenario;
    scenario.process = serving::ArrivalProcess::Bursty;
    scenario.requests = 24;
    scenario.ratePerSecond = 16.0;
    scenario.burstiness = 8.0;
    scenario.prompt = {96, 32, 0.0, 1.0};
    scenario.generate = {48, 16, 0.0, 1.0};
    scenario.highPriorityFraction = 0.25;
    scenario.seed = 11;
    const auto trace = serving::generateWorkload(scenario);
    std::size_t high_priority = 0;
    for (const auto &request : trace)
        high_priority += request.priority > 0 ? 1 : 0;
    ASSERT_GT(high_priority, 2u);
    ASSERT_LT(high_priority, trace.size() / 2);

    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(2),
        sched::RouterPolicy::JoinShortestQueue,
        /*ttft_deadline=*/1.0);
    const auto run_with = [&](const char *control) {
        config.control = sched::controlPolicyByName(control);
        return FleetSimulator(config, model::opt13b()).run(trace);
    };
    const auto steal = run_with("jsq+slo-steal");
    const auto preempt = run_with("jsq+priority-preempt");
    checkReportInvariants(steal, trace.size());
    checkReportInvariants(preempt, trace.size());
    EXPECT_EQ(steal.completed, trace.size());
    EXPECT_EQ(preempt.completed, trace.size());
    EXPECT_GT(preempt.kernelStats.preemptions, 0u);

    const Seconds steal_hi = ttftPercentile(steal, 99.0, 1);
    const Seconds preempt_hi = ttftPercentile(preempt, 99.0, 1);
    EXPECT_LT(preempt_hi, steal_hi);
    // The preempted low-priority work is resumed, not lost: every
    // request still completes with all its tokens.
    for (const auto &request : preempt.requests)
        EXPECT_GE(request.tokens, 1u);
}

TEST(Lifecycle, DrainMigrateCompletesWhatADeadReplicaAbandons)
{
    // Round-robin keeps feeding a dead replica.  Without lifecycle
    // verbs those requests are abandoned (no idle thief ever shows
    // up to steal on this loaded fleet); with "drain-migrate" every
    // one of them moves to the healthy replica and completes.
    FleetConfig config;
    config.ttftDeadline = 60.0;
    config.policy = sched::RouterPolicy::RoundRobin;
    ReplicaConfig healthy;
    healthy.system = fastConfig(4);
    healthy.serving = fastServing();
    ReplicaConfig dead = healthy;
    dead.system.numDimms = 0;
    config.replicas = {healthy, dead};
    const auto trace = smallTrace();

    const auto abandoned =
        FleetSimulator(config, model::opt13b()).run(trace);
    EXPECT_EQ(abandoned.rejected, trace.size() / 2);

    config.control =
        sched::controlPolicyByName("round-robin+drain-migrate");
    const auto rescued =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(rescued, trace.size());
    EXPECT_EQ(rescued.completed, trace.size());
    EXPECT_EQ(rescued.rejected, 0u);
    EXPECT_EQ(rescued.replicaReports[1].completed, 0u);
    EXPECT_GE(rescued.kernelStats.migrations, trace.size() / 2);
    // Nothing on the dead replica ever started, so the transfers
    // carried no KV: the moves are instant re-routes.
    EXPECT_DOUBLE_EQ(rescued.kernelStats.kvTransferSeconds, 0.0);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(rescued.assignment[i], 0);
    // The per-request lifecycle counter survives a never-started
    // migration: exactly the moved rows carry migrations == 1.
    std::uint64_t migrated_rows = 0;
    for (const auto &request : rescued.requests)
        migrated_rows += request.migrations != 0 ? 1 : 0;
    EXPECT_EQ(migrated_rows, rescued.kernelStats.migrations);
}

TEST(Lifecycle, DrainMigrateEvacuatesRunningWorkWithItsKv)
{
    // A policy drains replica 1 mid-run; drain-migrate hands its
    // running requests (KV included, at a DIMM-link cost) to the
    // healthy replica at the next decode boundary, and everything
    // still completes exactly once.
    class DrainSecondMidRunPolicy final
        : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "drain-at-4"; }
        void onArrival(const sched::ArrivalContext &context,
                       const sched::FleetView &view,
                       sched::FleetActions &actions) override
        {
            if (context.requestId >= 4 && !view.draining(1))
                actions.requestDrain(1);
            actions.routeTo(view.draining(1)
                                ? 0
                                : static_cast<std::uint32_t>(
                                      context.requestId % 2));
        }
    };

    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(2),
        sched::RouterPolicy::RoundRobin, 60.0);
    config.control = sched::composeControlPolicies(
        {std::make_shared<DrainSecondMidRunPolicy>(),
         sched::controlPolicyByName("drain-migrate")});
    const auto trace = smallTrace(12, 4.0, 9);
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_GT(report.kernelStats.migrations, 0u);
    // At least one migrated request had started running, so its KV
    // transfer took real virtual time.
    EXPECT_GT(report.kernelStats.kvTransferSeconds, 0.0);
    // The drained replica kept nothing that arrived after the
    // drain: every request it reports was one of the early ones.
    for (const auto &request :
         report.replicaReports[1].requests)
        EXPECT_LT(request.id, 4u);
}

TEST(Lifecycle, IllegalLifecycleActionsThrow)
{
    const auto trace = smallTrace(6, 4.0, 9);
    const auto run_with =
        [&](std::shared_ptr<sched::ControlPolicy> control) {
            FleetConfig config = uniformFleet(
                2, fastConfig(4), fastServing(1),
                sched::RouterPolicy::RoundRobin, 30.0);
            config.control = std::move(control);
            return FleetSimulator(config, model::opt13b())
                .run(trace);
        };

    // The verbs are capability-gated: acting without declaring
    // kPreempt / kMigrate throws even when the action itself would
    // be legal.
    class UndeclaredPreemptPolicy final
        : public sched::ControlPolicy
    {
        std::string name() const override { return "undeclared"; }
        std::uint32_t wants() const override
        {
            return kReplicaEvents;
        }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(0);
        }
        void onStepComplete(std::uint32_t, Seconds,
                            const sched::FleetView &view,
                            sched::FleetActions &actions) override
        {
            const auto running = view.runningRequests(0);
            if (!running.empty())
                actions.preempt(0, running.front().id);
        }
    };
    EXPECT_THROW(
        run_with(std::make_shared<UndeclaredPreemptPolicy>()),
        std::logic_error);

    // Preempting a queued (not running) request throws.
    class PreemptQueuedPolicy final : public sched::ControlPolicy
    {
        std::string name() const override
        {
            return "preempt-queued";
        }
        std::uint32_t wants() const override
        {
            return kReplicaEvents | kPreempt;
        }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(0);
        }
        void onStepComplete(std::uint32_t, Seconds,
                            const sched::FleetView &view,
                            sched::FleetActions &actions) override
        {
            const auto queued = view.queuedRequests(0);
            if (!queued.empty())
                actions.preempt(0, queued.front().id);
        }
    };
    EXPECT_THROW(
        run_with(std::make_shared<PreemptQueuedPolicy>()),
        std::logic_error);

    // Migrating to a replica the policy itself drained throws, as
    // does migrating a request that does not exist.
    class MigrateToDrainedPolicy final
        : public sched::ControlPolicy
    {
        std::string name() const override
        {
            return "migrate-to-drained";
        }
        std::uint32_t wants() const override
        {
            return kReplicaEvents | kMigrate;
        }
        void onArrival(const sched::ArrivalContext &context,
                       const sched::FleetView &view,
                       sched::FleetActions &actions) override
        {
            if (!view.draining(1))
                actions.requestDrain(1);
            (void)context;
            actions.routeTo(0);
        }
        void onStepComplete(std::uint32_t, Seconds,
                            const sched::FleetView &view,
                            sched::FleetActions &actions) override
        {
            const auto running = view.runningRequests(0);
            if (!running.empty())
                actions.migrate(running.front().id, 1);
        }
    };
    EXPECT_THROW(
        run_with(std::make_shared<MigrateToDrainedPolicy>()),
        std::logic_error);

    class MigrateUnknownPolicy final : public sched::ControlPolicy
    {
        std::string name() const override
        {
            return "migrate-unknown";
        }
        std::uint32_t wants() const override
        {
            return kReplicaEvents | kMigrate;
        }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(0);
        }
        void onStepComplete(std::uint32_t, Seconds,
                            const sched::FleetView &,
                            sched::FleetActions &actions) override
        {
            actions.migrate(987654, 1);
        }
    };
    EXPECT_THROW(
        run_with(std::make_shared<MigrateUnknownPolicy>()),
        std::logic_error);
}

TEST(Lifecycle, RequestStateIsVisibleThroughTheFleetView)
{
    // The state machine is observable from a policy: a watched
    // request reads Queued before admission, Running at boundaries
    // afterwards, Done once retired, and names round-trip.
    EXPECT_EQ(serving::requestStateName(
                  serving::RequestState::Preempted),
              "preempted");
    class WatchStatesPolicy final : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "watcher"; }
        std::uint32_t wants() const override
        {
            return kReplicaEvents;
        }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &view,
                       sched::FleetActions &actions) override
        {
            // Request 0 has been delivered yet? Before its own
            // arrival decision it is unknown.
            if (!sawQueued_)
                sawQueued_ = view.requestState(0, 0) ==
                             serving::RequestState::Queued;
            actions.routeTo(0);
        }
        void onStepComplete(std::uint32_t, Seconds,
                            const sched::FleetView &view,
                            sched::FleetActions &actions) override
        {
            (void)actions;
            const auto state = view.requestState(0, 0);
            sawRunning_ |= state == serving::RequestState::Running;
            sawDone_ |= state == serving::RequestState::Done;
        }
        bool sawQueued() const { return sawQueued_; }
        bool sawRunning() const { return sawRunning_; }
        bool sawDone() const { return sawDone_; }

      private:
        bool sawQueued_ = false;
        bool sawRunning_ = false;
        bool sawDone_ = false;
    };

    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(1),
        sched::RouterPolicy::RoundRobin, 30.0);
    auto watcher = std::make_shared<WatchStatesPolicy>();
    config.control = watcher;
    const auto trace = smallTrace(4, 2.0, 9);
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_TRUE(watcher->sawRunning());
    EXPECT_TRUE(watcher->sawDone());
}

// ---- Multi-turn sessions and KV-affinity routing ----

serving::SessionTrace
conversationalTrace(std::uint32_t sessions, double rate,
                    std::uint64_t seed)
{
    return serving::generateSessionWorkload(
        serving::scenarioByName("multiturn", sessions, rate, seed));
}

TEST(Sessions, FollowupsArriveThinkTimeAfterThePreviousTurn)
{
    // The closed-loop contract: a follow-up turn is not an open
    // arrival — it fires exactly think-time after its predecessor
    // completes, and the whole chain replays deterministically.
    const auto trace = conversationalTrace(6, 4.0, 9);
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(2),
        sched::RouterPolicy::JoinShortestQueue, 30.0);

    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.requests.size());
    EXPECT_EQ(report.completed, trace.requests.size());

    std::uint64_t followups = 0;
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        if (trace.turnOf[i] == 0)
            continue;
        ++followups;
        const std::size_t prev = i - 1;
        ASSERT_FALSE(report.requests[prev].rejected);
        ASSERT_FALSE(report.requests[i].rejected);
        EXPECT_DOUBLE_EQ(report.requests[i].arrival,
                         report.requests[prev].completed +
                             trace.thinkAfter[prev]);
        EXPECT_GT(report.requests[i].arrival,
                  report.requests[prev].completed);
    }
    EXPECT_GT(followups, 0u);
    EXPECT_EQ(report.kernelStats.events.sessionContinues,
              followups);

    // Same trace, fresh simulator: byte-identical physics.
    const auto replay =
        FleetSimulator(config, model::opt13b()).run(trace);
    EXPECT_EQ(report.assignment, replay.assignment);
    EXPECT_DOUBLE_EQ(report.makespan, replay.makespan);

    // Closed-loop arrivals need the event kernel.
    config.kernel = FleetKernel::TwoPhase;
    EXPECT_THROW(
        FleetSimulator(config, model::opt13b()).run(trace),
        std::invalid_argument);
}

TEST(Sessions, AffinityBeatsJsqOnMultiTurnTailLatency)
{
    // The headline pin: on a conversational workload the affinity
    // policy keeps follow-up turns on the replica still holding
    // their session KV, so grown contexts skip re-prefill; jsq
    // scatters turns by queue depth and pays the full prompt every
    // time.  The win is end-to-end latency (a conversation blocks
    // on the whole turn), pinned on the p99 tail.
    const auto trace = conversationalTrace(12, 0.3, 7);
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(2),
        sched::RouterPolicy::JoinShortestQueue, 120.0);

    const auto run_with = [&](const std::string &control) {
        config.control = sched::controlPolicyByName(control);
        return FleetSimulator(config, model::opt13b()).run(trace);
    };
    const auto affinity = run_with("affinity");
    const auto jsq = run_with("jsq");
    checkReportInvariants(affinity, trace.requests.size());
    checkReportInvariants(jsq, trace.requests.size());
    EXPECT_EQ(affinity.completed, trace.requests.size());
    EXPECT_EQ(jsq.completed, trace.requests.size());
    EXPECT_GT(affinity.kernelStats.events.sessionContinues, 0u);

    EXPECT_LT(latencyPercentile(affinity, 99.0),
              latencyPercentile(jsq, 99.0));
    EXPECT_LT(latencyPercentile(affinity, 50.0),
              latencyPercentile(jsq, 50.0));
}

TEST(Sessions, CalibrationTimeIsAccountedSeparatelyFromTheLoop)
{
    // Cost-cache engine simulations are real wall-clock but not
    // kernel work: a session run bills them to
    // kernelStats.calibrationSeconds and keeps loopSeconds clean
    // of mid-loop cold-bucket fills, in both cost models.
    const auto trace = conversationalTrace(6, 1.0, 11);
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(2),
        sched::RouterPolicy::JoinShortestQueue, 120.0);
    for (const serving::CostModel model :
         {serving::CostModel::Exact, serving::CostModel::Interp}) {
        for (ReplicaConfig &replica : config.replicas)
            replica.serving.costModel = model;
        const auto report =
            FleetSimulator(config, model::opt13b()).run(trace);
        checkReportInvariants(report, trace.requests.size());
        EXPECT_EQ(report.completed, trace.requests.size());
        EXPECT_GT(report.kernelStats.calibrationSeconds, 0.0)
            << serving::costModelName(model);
        EXPECT_GE(report.kernelStats.loopSeconds, 0.0)
            << serving::costModelName(model);
    }
}

TEST(Sessions, CalibrationThreadsDoNotChangeThePhysics)
{
    // calibrationThreads controls only how fast shared cost caches
    // fill (router calibration and pre-loop cost warming); the
    // simulated physics of a session run is byte-identical at any
    // thread count, in either cost model.
    const auto trace = conversationalTrace(8, 0.5, 13);
    for (const serving::CostModel model :
         {serving::CostModel::Exact, serving::CostModel::Interp}) {
        FleetConfig config = uniformFleet(
            2, fastConfig(4), fastServing(2),
            sched::RouterPolicy::JoinShortestQueue, 120.0);
        for (ReplicaConfig &replica : config.replicas)
            replica.serving.costModel = model;
        config.calibrationThreads = 1;
        const auto lazy =
            FleetSimulator(config, model::opt13b()).run(trace);
        config.calibrationThreads = 4;
        const auto warmed =
            FleetSimulator(config, model::opt13b()).run(trace);
        checkReportInvariants(lazy, trace.requests.size());
        EXPECT_EQ(lazy.assignment, warmed.assignment)
            << serving::costModelName(model);
        EXPECT_DOUBLE_EQ(lazy.makespan, warmed.makespan)
            << serving::costModelName(model);
        EXPECT_DOUBLE_EQ(latencyPercentile(lazy, 99.0),
                         latencyPercentile(warmed, 99.0))
            << serving::costModelName(model);
    }
}

TEST(Sessions, AffinityFallsBackWhenTheStickyReplicaDrains)
{
    // KV residency must not pin a conversation to a replica on its
    // way out: once the holder is draining, affinity re-routes the
    // follow-up like jsq instead of throwing on an illegal route.
    serving::SessionTrace two_turn;
    serving::ServedRequest first{0, 0.0, 64, 8, 0};
    first.sessionId = 1;
    serving::ServedRequest second{1, 0.0, 136, 8, 0};
    second.sessionId = 1;
    two_turn.requests = {first, second};
    two_turn.turnOf = {0, 1};
    two_turn.successor = {1, -1};
    two_turn.thinkAfter = {0.5, 0.0};

    class DrainHolderPolicy final : public sched::ControlPolicy
    {
      public:
        std::string name() const override { return "drain-holder"; }
        std::uint32_t wants() const override
        {
            return kReplicaEvents;
        }
        void onPrefillComplete(std::uint32_t replica, Seconds,
                               const sched::FleetView &,
                               sched::FleetActions &actions) override
        {
            if (replica == 0 && !drained_) {
                drained_ = true;
                actions.requestDrain(0);
            }
        }

      private:
        bool drained_ = false;
    };

    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(2),
        sched::RouterPolicy::JoinShortestQueue, 30.0);

    // Sticky baseline: both turns land on replica 0.
    config.control = sched::controlPolicyByName("affinity");
    const auto sticky =
        FleetSimulator(config, model::opt13b()).run(two_turn);
    EXPECT_EQ(sticky.assignment, (std::vector<int>{0, 0}));
    EXPECT_EQ(sticky.completed, 2u);

    // Drain the holder mid-conversation: the follow-up re-routes.
    config.control = sched::composeControlPolicies(
        {sched::controlPolicyByName("affinity"),
         std::make_shared<DrainHolderPolicy>()});
    const auto drained =
        FleetSimulator(config, model::opt13b()).run(two_turn);
    EXPECT_EQ(drained.assignment, (std::vector<int>{0, 1}));
    EXPECT_EQ(drained.completed, 2u);
    checkReportInvariants(drained, 2u);
}

TEST(Fleet, CacheReuseAcrossRunsKeepsPhysicsIdentical)
{
    // Same simulator, same trace twice: the second run answers from
    // the calibrated cost cache and must reproduce the first.
    auto simulator = uniformSimulator(
        2, sched::RouterPolicy::LeastOutstandingTokens);
    const auto trace = smallTrace();
    const auto first = simulator.run(trace);
    const auto second = simulator.run(trace);
    EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
    EXPECT_DOUBLE_EQ(first.throughputTps,
                     second.throughputTps);
    EXPECT_EQ(first.assignment, second.assignment);
}

} // namespace
} // namespace hermes::fleet
