/**
 * @file
 * Calibration-pool stress tests, built for ThreadSanitizer.
 *
 * The only real threads in the simulator are the calibration pools:
 * parallel router calibration over cache-group leaders
 * (core/fleet.cc) and the shared cost-cache warming pool
 * (FleetSimulator::warmSessionCosts -> ServingSimulator::warmCosts).
 * These tests drive both pools at high thread counts
 * (calibrationThreads = 8, well past the CI runners' core counts)
 * so TSan sees real contention, and pin that the physics stays
 * byte-identical to the single-threaded run — the determinism
 * contract the pools were designed around.
 *
 * CI runs this binary twice: in the normal suites, and under
 * -fsanitize=thread in the dedicated `tsan` job (HERMES_TSAN=ON).
 */

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet.hh"
#include "core/hermes.hh"
#include "core/workload.hh"

namespace hermes::fleet {
namespace {

serving::ServingConfig
fastServing(std::uint32_t max_batch)
{
    serving::ServingConfig config;
    config.maxBatch = max_batch;
    config.calibrationTokens = 4;
    return config;
}

/** A fleet where every replica is its own cache group (distinct
 *  serving config), so parallel router calibration has one leader
 *  per replica and the pool actually fans out. */
FleetConfig
heterogeneousFleet(std::uint32_t replicas)
{
    FleetConfig config = uniformFleet(
        replicas, fastConfig(4), fastServing(2),
        sched::RouterPolicy::JoinShortestQueue, 120.0);
    for (std::uint32_t i = 0; i < replicas; ++i) {
        // Distinct seqBucket per replica splits the cache groups
        // without touching engine physics knobs shared by tests.
        config.replicas[i].serving.seqBucket =
            192 + 64 * (i % 4);
        config.replicas[i].serving.maxBatch = 1 + (i % 3);
    }
    return config;
}

void
expectIdenticalReports(const FleetReport &a, const FleetReport &b)
{
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.throughputTps, b.throughputTps);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.requests[i].latency(),
                         b.requests[i].latency())
            << "request " << i;
        EXPECT_DOUBLE_EQ(a.requests[i].ttft(),
                         b.requests[i].ttft())
            << "request " << i;
    }
}

TEST(CalibrationStress, ParallelRouterCalibrationManyGroups)
{
    // 8 cache-group leaders calibrated by an 8-thread pool: every
    // worker claims whole leaders off the shared atomic cursor.
    // Any cross-thread write to a shared cost cache or model slot
    // is a TSan report; any physics difference fails the pin.
    serving::ScenarioConfig scenario;
    scenario.process = serving::ArrivalProcess::Poisson;
    scenario.requests = 24;
    scenario.ratePerSecond = 6.0;
    scenario.prompt = {64, 16, 0.0, 1.0};
    scenario.generate = {8, 4, 0.0, 1.0};
    scenario.seed = 21;
    const auto trace = serving::generateWorkload(scenario);

    FleetConfig config = heterogeneousFleet(8);
    config.calibrationThreads = 1;
    const auto serial =
        FleetSimulator(config, model::opt13b()).run(trace);
    for (const std::uint32_t threads : {4u, 8u}) {
        config.calibrationThreads = threads;
        const auto pooled =
            FleetSimulator(config, model::opt13b()).run(trace);
        expectIdenticalReports(serial, pooled);
    }
    EXPECT_EQ(serial.requests.size(), trace.size());
    EXPECT_GT(serial.completed, 0u);
}

TEST(CalibrationStress, SharedCacheSessionWarmingHighThreads)
{
    // Uniform fleet = one shared cost cache; warmSessionCosts fans
    // the distinct cost-surface cells of a known session trace out
    // over the pool, each worker owning a private engine, results
    // inserted sequentially afterwards.  Exercised in both cost
    // models: Interp collapses the grid to anchor buckets, Exact
    // warms the cells themselves.
    const auto trace = serving::generateSessionWorkload(
        serving::scenarioByName("multiturn", 8, 1.0, 17));
    for (const serving::CostModel model :
         {serving::CostModel::Exact, serving::CostModel::Interp}) {
        FleetConfig config = uniformFleet(
            4, fastConfig(4), fastServing(2),
            sched::RouterPolicy::JoinShortestQueue, 120.0);
        for (ReplicaConfig &replica : config.replicas)
            replica.serving.costModel = model;
        config.calibrationThreads = 1;
        const auto lazy =
            FleetSimulator(config, model::opt13b()).run(trace);
        for (const std::uint32_t threads : {4u, 8u}) {
            config.calibrationThreads = threads;
            const auto warmed =
                FleetSimulator(config, model::opt13b()).run(trace);
            expectIdenticalReports(lazy, warmed);
        }
        EXPECT_EQ(lazy.completed, trace.requests.size())
            << serving::costModelName(model);
    }
}

TEST(CalibrationStress, ThreadsOversubscribedPastLeaderCount)
{
    // More threads than leaders (and than hardware): the pool must
    // cap at the job count, leave the surplus unspawned, and still
    // reproduce the serial run exactly.
    const auto trace = serving::generateSessionWorkload(
        serving::scenarioByName("multiturn", 4, 2.0, 29));
    FleetConfig config = uniformFleet(
        2, fastConfig(4), fastServing(2),
        sched::RouterPolicy::JoinShortestQueue, 120.0);
    config.calibrationThreads = 1;
    const auto serial =
        FleetSimulator(config, model::opt13b()).run(trace);
    config.calibrationThreads = 16;
    const auto flooded =
        FleetSimulator(config, model::opt13b()).run(trace);
    expectIdenticalReports(serial, flooded);
}

} // namespace
} // namespace hermes::fleet
