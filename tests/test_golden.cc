/**
 * @file
 * Deterministic golden regression tests.
 *
 * The simulator is the product: scale and speed PRs must prove they
 * did not change the physics.  These tests pin the serving metrics of
 * one small fixed scenario for every engine kind; any change to the
 * numbers below is a *physics* change and must be loud and deliberate.
 *
 * Updating after an intentional physics change (the single switch):
 *
 *     HERMES_UPDATE_GOLDEN=1 ./build/test_golden
 *
 * prints a fresh `kGolden` table; paste it over the one below and
 * explain the physics change in the commit message.  See README
 * "Golden regression tests".
 *
 * Values are compared at 1e-6 relative tolerance: loose enough for
 * libm differences across toolchains, tight enough that any real
 * modelling change trips it.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hermes.hh"
#include "core/workload.hh"

namespace hermes::serving {
namespace {

/** Pinned metrics of the fixed scenario on one engine. */
struct GoldenRow
{
    const char *engine;
    std::uint64_t completed;
    std::uint64_t rejected;
    double makespan;
    double p50Ttft;
    double p99TokenLatency;
};

// Fixed scenario: OPT-13B, 4-layer sample platform, 10 steady
// arrivals at 4 req/s, seeded.  Regenerate with
// HERMES_UPDATE_GOLDEN=1 (see file header).
constexpr GoldenRow kGolden[] = {
    // clang-format off
    // engine, completed, rejected, makespan, p50Ttft, p99TokenLatency
    {"Accelerate", 10, 0, 185.06990465968667, 59.815382975201658, 4.3111947022305523},
    {"FlexGen", 10, 0, 54.469847485310943, 16.323882581827, 1.4541456135258779},
    {"DejaVu", 10, 0, 54.459966902088908, 17.925440398458161, 1.6190870506076336},
    {"Hermes-host", 10, 0, 2.0144373139272616, 0.072718408548990421, 0.023653480976367821},
    {"Hermes-base", 10, 0, 2.2044836743138787, 0.15401378100648025, 0.038155069324529868},
    {"Hermes", 10, 0, 3.7553763089601309, 1.1020493426271636, 0.0122464478877984},
    {"TensorRT-LLM", 10, 0, 2.0615243561155245, 0.081052789290734562, 0.023059553101717509},
    // clang-format on
};

std::vector<ServedRequest>
goldenTrace()
{
    ScenarioConfig scenario;
    scenario.process = ArrivalProcess::Poisson;
    scenario.requests = 10;
    scenario.ratePerSecond = 4.0;
    scenario.prompt = {96, 32, 0.0, 1.0};
    scenario.generate = {12, 4, 0.0, 1.0};
    scenario.seed = 11;
    return generateWorkload(scenario);
}

ServingReport
goldenRun(runtime::EngineKind kind)
{
    System system(fastConfig(4));
    ServingConfig config;
    config.engine = kind;
    config.maxBatch = 4;
    config.calibrationTokens = 4;
    return system.serve(model::opt13b(), goldenTrace(), config);
}

TEST(Golden, ServingMetricsPerEngineKind)
{
    const bool update =
        std::getenv("HERMES_UPDATE_GOLDEN") != nullptr;
    std::vector<ServingReport> reports;
    for (const runtime::EngineKind kind :
         runtime::allEngineKinds())
        reports.push_back(goldenRun(kind));

    if (update) {
        std::printf("constexpr GoldenRow kGolden[] = {\n"
                    "    // clang-format off\n"
                    "    // engine, completed, rejected, makespan, "
                    "p50Ttft, p99TokenLatency\n");
        for (const ServingReport &report : reports) {
            std::printf(
                "    {\"%s\", %llu, %llu, %.17g, %.17g, %.17g},\n",
                report.engine.c_str(),
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.rejected),
                report.makespan, report.p50Ttft,
                report.p99TokenLatency);
        }
        std::printf("    // clang-format on\n};\n");
        GTEST_SKIP() << "printed a fresh kGolden table; paste it "
                        "into tests/test_golden.cc";
    }

    ASSERT_EQ(reports.size(), std::size(kGolden))
        << "engine set changed; regenerate the golden table";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const ServingReport &report = reports[i];
        const GoldenRow &golden = kGolden[i];
        SCOPED_TRACE(report.engine);
        EXPECT_EQ(report.engine, golden.engine);
        EXPECT_EQ(report.completed, golden.completed);
        EXPECT_EQ(report.rejected, golden.rejected);
        auto near = [](double value, double pinned) {
            const double tolerance =
                std::max(std::abs(pinned) * 1.0e-6, 1.0e-12);
            EXPECT_NEAR(value, pinned, tolerance);
        };
        near(report.makespan, golden.makespan);
        near(report.p50Ttft, golden.p50Ttft);
        near(report.p99TokenLatency, golden.p99TokenLatency);
    }
}

TEST(Golden, TraceItselfIsPinned)
{
    // The scenario generator feeds every golden number: pin its own
    // output so a workload-layer change cannot silently masquerade
    // as serving-physics drift.
    const auto trace = goldenTrace();
    ASSERT_EQ(trace.size(), 10u);
    double arrival_sum = 0.0;
    std::uint64_t prompt_sum = 0;
    std::uint64_t generate_sum = 0;
    for (const ServedRequest &request : trace) {
        arrival_sum += request.arrival;
        prompt_sum += request.promptTokens;
        generate_sum += request.generateTokens;
    }
    const bool update =
        std::getenv("HERMES_UPDATE_GOLDEN") != nullptr;
    if (update) {
        std::printf("golden trace: arrival_sum=%.17g "
                    "prompt_sum=%llu generate_sum=%llu\n",
                    arrival_sum,
                    static_cast<unsigned long long>(prompt_sum),
                    static_cast<unsigned long long>(generate_sum));
        GTEST_SKIP() << "printed fresh trace pins";
    }
    EXPECT_NEAR(arrival_sum, 6.0283441326775229, 1.0e-6);
    EXPECT_EQ(prompt_sum, 1009u);
    EXPECT_EQ(generate_sum, 122u);
}

} // namespace
} // namespace hermes::serving
