/**
 * @file
 * Integration tests for the inference engines: the qualitative
 * results of Sec. V must hold (who wins, by roughly what factor,
 * where batching helps, which models are unsupported).
 */

#include <gtest/gtest.h>

#include "model/llm_config.hh"
#include "runtime/factory.hh"
#include "runtime/hermes_engine.hh"
#include "runtime/tensorrt_engine.hh"

namespace hermes::runtime {
namespace {

SystemConfig
fastPlatform()
{
    SystemConfig config;
    config.simulatedLayers = 6;
    return config;
}

InferenceRequest
requestFor(const std::string &model, std::uint32_t batch = 1)
{
    InferenceRequest request;
    request.llm = model::modelByName(model);
    request.batch = batch;
    request.profileTokens = 32;
    request.generateTokens = 48;
    return request;
}

double
tokensPerSecond(EngineKind kind, const InferenceRequest &request,
                const SystemConfig &config)
{
    auto engine = makeEngine(kind, config);
    const InferenceResult result = engine->run(request);
    EXPECT_TRUE(result.supported) << engineKindName(kind);
    return result.tokensPerSecond;
}

TEST(Engines, Fig9OrderingHoldsOnOpt66b)
{
    const SystemConfig config = fastPlatform();
    const InferenceRequest request = requestFor("OPT-66B");
    const double accelerate =
        tokensPerSecond(EngineKind::Accelerate, request, config);
    const double flexgen =
        tokensPerSecond(EngineKind::FlexGen, request, config);
    const double dejavu =
        tokensPerSecond(EngineKind::DejaVu, request, config);
    const double host =
        tokensPerSecond(EngineKind::HermesHost, request, config);
    const double hermes =
        tokensPerSecond(EngineKind::Hermes, request, config);

    EXPECT_LT(accelerate, flexgen);
    EXPECT_LT(flexgen, dejavu);
    EXPECT_LT(dejavu, host);
    EXPECT_LT(host, hermes);
    // Sec. I: ~149x over FlexGen and ~75x over Deja Vu on average;
    // require at least an order of magnitude here.
    EXPECT_GT(hermes / flexgen, 20.0);
    EXPECT_GT(hermes / dejavu, 10.0);
}

TEST(Engines, Fig10SparsityAndNdpBothMatter)
{
    const SystemConfig config = fastPlatform();
    const InferenceRequest request = requestFor("LLaMA2-70B");
    const double accelerate =
        tokensPerSecond(EngineKind::Accelerate, request, config);
    const double base =
        tokensPerSecond(EngineKind::HermesBase, request, config);
    const double hermes =
        tokensPerSecond(EngineKind::Hermes, request, config);

    // NDP alone ~54x over Accelerate; sparsity adds ~5x more.
    EXPECT_GT(base / accelerate, 10.0);
    EXPECT_GT(hermes / base, 1.5);
}

TEST(Engines, UnsupportedModelsMatchPaper)
{
    const SystemConfig config = fastPlatform();
    auto flexgen = makeEngine(EngineKind::FlexGen, config);
    auto dejavu = makeEngine(EngineKind::DejaVu, config);
    EXPECT_FALSE(
        flexgen->run(requestFor("LLaMA2-70B")).supported);
    EXPECT_FALSE(flexgen->run(requestFor("Falcon-40B")).supported);
    EXPECT_FALSE(dejavu->run(requestFor("LLaMA2-70B")).supported);
    EXPECT_TRUE(flexgen->run(requestFor("OPT-13B")).supported);
}

TEST(Engines, DimmCapacityGatesLargeModels)
{
    SystemConfig tiny = fastPlatform();
    tiny.numDimms = 2; // 64 GB: too small for LLaMA2-70B.
    auto hermes = makeEngine(EngineKind::Hermes, tiny);
    const auto result = hermes->run(requestFor("LLaMA2-70B"));
    EXPECT_FALSE(result.supported);
    auto base = makeEngine(EngineKind::HermesBase, tiny);
    EXPECT_FALSE(base->run(requestFor("LLaMA2-70B")).supported);
}

TEST(Engines, HermesThroughputGrowsWithBatch)
{
    const SystemConfig config = fastPlatform();
    double prev = 0.0;
    for (const std::uint32_t batch : {1u, 4u, 16u}) {
        const double rate = tokensPerSecond(
            EngineKind::Hermes, requestFor("OPT-66B", batch), config);
        EXPECT_GT(rate, prev);
        prev = rate;
    }
}

TEST(Engines, HermesBreakdownIsConsistent)
{
    const SystemConfig config = fastPlatform();
    auto engine = makeEngine(EngineKind::Hermes, config);
    const auto result = engine->run(requestFor("OPT-66B"));
    const auto &b = result.breakdown;
    EXPECT_NEAR(b.total(), result.prefillTime + result.generateTime,
                1e-9 + 0.01 * b.total());
    EXPECT_GT(b.fc, 0.0);
    EXPECT_GT(b.attention, 0.0);
    EXPECT_GT(b.prefill, 0.0);
    // Sec. V-D: the lightweight predictor is <0.1% of runtime... be
    // generous and require < 2%.
    EXPECT_LT(b.predictor, 0.02 * b.total());
}

TEST(Engines, HermesPredictorAccuracyHigh)
{
    const SystemConfig config = fastPlatform();
    auto engine = makeEngine(EngineKind::Hermes, config);
    const auto result = engine->run(requestFor("LLaMA2-70B"));
    EXPECT_GT(result.stats.counterValue("predictor.accuracy"), 0.93);
}

TEST(Engines, DejaVuCommunicationDominates)
{
    // Fig. 12a: communication ~89% of Deja Vu execution time.
    const SystemConfig config = fastPlatform();
    auto engine = makeEngine(EngineKind::DejaVu, config);
    const auto result = engine->run(requestFor("OPT-66B"));
    EXPECT_GT(result.breakdown.communication,
              0.6 * result.breakdown.total());
}

TEST(Engines, HermesCommunicationMinor)
{
    const SystemConfig config = fastPlatform();
    auto engine = makeEngine(EngineKind::Hermes, config);
    const auto result = engine->run(requestFor("OPT-66B"));
    EXPECT_LT(result.breakdown.communication,
              0.3 * result.breakdown.total());
}

TEST(Engines, Fig13AblationOrdering)
{
    // The budget-constrained regime (70B on a 24 GB GPU) is where the
    // Fig. 13 effects are visible; on 13B nearly all neurons fit on
    // the GPU and every variant converges.
    const InferenceRequest request = requestFor("LLaMA2-70B");

    SystemConfig random_config = fastPlatform();
    random_config.sched.offlinePartition = false;
    random_config.sched.onlineAdjustment = false;
    random_config.sched.windowRebalance = false;

    SystemConfig partition_config = fastPlatform();
    partition_config.sched.onlineAdjustment = false;
    partition_config.sched.windowRebalance = false;

    SystemConfig adjustment_config = fastPlatform();
    adjustment_config.sched.windowRebalance = false;

    const SystemConfig full_config = fastPlatform();

    const double random = tokensPerSecond(EngineKind::Hermes, request,
                                          random_config);
    const double partition = tokensPerSecond(
        EngineKind::Hermes, request, partition_config);
    const double adjustment = tokensPerSecond(
        EngineKind::Hermes, request, adjustment_config);
    const double full =
        tokensPerSecond(EngineKind::Hermes, request, full_config);

    // Fig. 13: each mechanism adds performance (the paper measures
    // 1.63x / 1.33x / 1.29x steps on its tighter GPU budget; we
    // require the ordering plus a material end-to-end gain).
    EXPECT_GT(partition, random);
    EXPECT_GE(adjustment, partition * 0.98);
    EXPECT_GE(full, adjustment * 0.98);
    EXPECT_GT(full, random * 1.05);
}

TEST(Engines, TensorRtAutoSizesGpus)
{
    const SystemConfig config = fastPlatform();
    TensorRtLlmEngine engine(config);
    EXPECT_GE(engine.gpusFor(requestFor("LLaMA2-70B", 16)), 4u);
    EXPECT_LE(engine.gpusFor(requestFor("OPT-13B", 1)), 2u);
}

TEST(Engines, Fig17HermesWithinTensorRt)
{
    // Hermes reaches a meaningful fraction of the 5xA100 system at
    // batch 1 and a smaller fraction at batch 16 (Sec. V-F).
    const SystemConfig config = fastPlatform();
    const double hermes_b1 = tokensPerSecond(
        EngineKind::Hermes, requestFor("LLaMA2-70B", 1), config);
    const double trt_b1 = tokensPerSecond(
        EngineKind::TensorRtLlm, requestFor("LLaMA2-70B", 1), config);
    const double hermes_b16 = tokensPerSecond(
        EngineKind::Hermes, requestFor("LLaMA2-70B", 16), config);
    const double trt_b16 = tokensPerSecond(
        EngineKind::TensorRtLlm, requestFor("LLaMA2-70B", 16),
        config);
    EXPECT_GT(hermes_b1 / trt_b1, 0.15);
    EXPECT_LT(hermes_b1, trt_b1);
    EXPECT_LT(hermes_b16 / trt_b16, hermes_b1 / trt_b1);
}

TEST(Engines, FactoryCoversAllKinds)
{
    const SystemConfig config = fastPlatform();
    for (const EngineKind kind : allEngineKinds()) {
        auto engine = makeEngine(kind, config);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->name(), engineKindName(kind));
    }
}

TEST(Engines, DeterministicAcrossRuns)
{
    const SystemConfig config = fastPlatform();
    const InferenceRequest request = requestFor("OPT-13B");
    auto a = makeEngine(EngineKind::Hermes, config)->run(request);
    auto b = makeEngine(EngineKind::Hermes, config)->run(request);
    EXPECT_DOUBLE_EQ(a.tokensPerSecond, b.tokensPerSecond);
}

/** GPU sensitivity (Fig. 15): faster GPUs give faster Hermes. */
TEST(Engines, Fig15GpuOrdering)
{
    const InferenceRequest request = requestFor("OPT-13B");
    SystemConfig t4 = fastPlatform();
    t4.gpu = gpu::teslaT4();
    SystemConfig rtx3090 = fastPlatform();
    rtx3090.gpu = gpu::rtx3090();
    SystemConfig rtx4090 = fastPlatform();

    const double slow =
        tokensPerSecond(EngineKind::Hermes, request, t4);
    const double mid =
        tokensPerSecond(EngineKind::Hermes, request, rtx3090);
    const double fast =
        tokensPerSecond(EngineKind::Hermes, request, rtx4090);
    EXPECT_LT(slow, mid);
    EXPECT_LE(mid, fast);
}

/** DIMM scaling (Fig. 14): more DIMMs help until the GPU dominates. */
TEST(Engines, Fig14DimmScaling)
{
    const InferenceRequest request = requestFor("OPT-30B");
    double prev = 0.0;
    for (const std::uint32_t dimms : {4u, 8u, 16u}) {
        SystemConfig config = fastPlatform();
        config.numDimms = dimms;
        const double rate =
            tokensPerSecond(EngineKind::Hermes, request, config);
        EXPECT_GE(rate, prev * 0.95);
        prev = rate;
    }
}

} // namespace
} // namespace hermes::runtime

#include "runtime/cost_model.hh"

namespace hermes::runtime {
namespace {

TEST(CostModel, HermesIsASmallFractionOfTensorRt)
{
    const SystemConfig config; // 4090 + 8 NDP-DIMMs.
    const double hermes = platformPriceUsd(EngineKind::Hermes, config);
    const double trt =
        platformPriceUsd(EngineKind::TensorRtLlm, config, 5);
    // Sec. V-F: ~$2.5k vs ~$50k, i.e. ~5% of the budget.
    EXPECT_GT(hermes, 2000.0);
    EXPECT_LT(hermes, 5000.0);
    EXPECT_GT(trt, 50000.0);
    EXPECT_LT(hermes / trt, 0.10);
}

TEST(CostModel, NdpPremiumSeparatesHermesFromHost)
{
    const SystemConfig config;
    const double hermes = platformPriceUsd(EngineKind::Hermes, config);
    const double host =
        platformPriceUsd(EngineKind::HermesHost, config);
    EXPECT_GT(hermes, host);
    // Premium = numDimms * ndpPremium.
    EXPECT_NEAR(hermes - host, 8 * 45.0, 1e-9);
}

TEST(CostModel, EnergyAccumulatesAllComponents)
{
    RunActivity activity;
    activity.gpuBusy = 1.0;
    EXPECT_NEAR(runEnergyJoules(activity), 450.0, 1e-9);
    activity.dimmLinkBytes = 1000;
    const double with_link = runEnergyJoules(activity);
    // Tolerance bounded by the ulp of the 450 J term.
    EXPECT_NEAR(with_link - 450.0, 8000.0 * 1.17e-12, 1e-12);
    activity.ndpMacs = 1e9;
    EXPECT_NEAR(runEnergyJoules(activity) - with_link, 1.2e-3, 1e-9);
}

TEST(CostModel, DimmCountScalesPrice)
{
    SystemConfig small;
    small.numDimms = 4;
    SystemConfig large;
    large.numDimms = 16;
    EXPECT_LT(platformPriceUsd(EngineKind::Hermes, small),
              platformPriceUsd(EngineKind::Hermes, large));
}

} // namespace
} // namespace hermes::runtime

namespace hermes::runtime {
namespace {

TEST(Engines, OracleRebalanceRunsAndStaysClose)
{
    // The oracle (full LPT each window) is the upper bound the greedy
    // Algorithm 1 approximates; end to end the two must land within a
    // few percent of each other on a balanced workload.
    SystemConfig greedy_config;
    greedy_config.simulatedLayers = 4;
    SystemConfig oracle_config = greedy_config;
    oracle_config.sched.oracleRebalance = true;

    InferenceRequest request;
    request.llm = model::modelByName("LLaMA2-70B");
    request.profileTokens = 24;
    request.generateTokens = 32;

    auto greedy = makeEngine(EngineKind::Hermes, greedy_config);
    auto oracle = makeEngine(EngineKind::Hermes, oracle_config);
    const double greedy_rate =
        greedy->run(request).tokensPerSecond;
    const double oracle_rate =
        oracle->run(request).tokensPerSecond;
    EXPECT_GT(greedy_rate, 0.85 * oracle_rate);
}

} // namespace
} // namespace hermes::runtime
