/**
 * @file
 * Event-kernel tests: deterministic total order of the shared
 * virtual clock (core/event_sim.hh).  Fleet reports are pinned
 * byte-identical by the regression tests, so the pop order here is
 * load-bearing, not cosmetic.
 */

#include <gtest/gtest.h>

#include "core/event_sim.hh"

namespace hermes::sim {
namespace {

TEST(EventSim, PopsInTimeOrderRegardlessOfPushOrder)
{
    EventQueue queue;
    queue.push(3.0, EventKind::StepComplete, 1, 7);
    queue.push(1.0, EventKind::Arrival, -1, 0);
    queue.push(2.0, EventKind::PrefillComplete, 0, 2);
    queue.push(1.5, EventKind::Arrival, -1, 1);

    std::vector<Seconds> times;
    while (!queue.empty())
        times.push_back(queue.pop().time);
    EXPECT_EQ(times, (std::vector<Seconds>{1.0, 1.5, 2.0, 3.0}));
}

TEST(EventSim, ArrivalsSortBeforeReplicaEventsAtTheSameInstant)
{
    // A boundary at time t must observe every arrival with
    // arrival <= t, like the closed serving loop: fleet-level
    // events (replica < 0) win ties against any replica event.
    EventQueue queue;
    queue.push(1.0, EventKind::StepComplete, 0, 0);
    queue.push(1.0, EventKind::Arrival, -1, 5);
    queue.push(1.0, EventKind::Wake, 2, 0);
    queue.push(1.0, EventKind::Arrival, -1, 4);

    EXPECT_EQ(queue.pop().kind, EventKind::Arrival);
    EXPECT_EQ(queue.pop().kind, EventKind::Arrival);
    EXPECT_EQ(queue.pop().kind, EventKind::StepComplete);
    EXPECT_EQ(queue.pop().kind, EventKind::Wake);
}

TEST(EventSim, TiesBreakByReplicaThenKindThenId)
{
    EventQueue queue;
    queue.push(2.0, EventKind::Wake, 1, 0);
    queue.push(2.0, EventKind::StepComplete, 1, 0);
    queue.push(2.0, EventKind::StepComplete, 0, 0);
    queue.push(2.0, EventKind::RequestDone, 0, 9);
    queue.push(2.0, EventKind::RequestDone, 0, 3);

    // Replica 0 first; within it, request-done (lower kind rank)
    // before step-complete, and lower id first.
    Event event = queue.pop();
    EXPECT_EQ(event.replica, 0);
    EXPECT_EQ(event.kind, EventKind::RequestDone);
    EXPECT_EQ(event.id, 3u);
    event = queue.pop();
    EXPECT_EQ(event.id, 9u);
    EXPECT_EQ(queue.pop().kind, EventKind::StepComplete);
    event = queue.pop();
    EXPECT_EQ(event.replica, 1);
    EXPECT_EQ(event.kind, EventKind::StepComplete);
    EXPECT_EQ(queue.pop().kind, EventKind::Wake);
}

TEST(EventSim, IdenticalEventsPopInInsertionOrder)
{
    EventQueue queue;
    for (int i = 0; i < 4; ++i)
        queue.push(1.0, EventKind::Arrival, -1, 7);
    std::uint64_t last = 0;
    for (int i = 0; i < 4; ++i) {
        const Event event = queue.pop();
        if (i > 0) {
            EXPECT_GT(event.seq, last);
        }
        last = event.seq;
    }
}

TEST(EventSim, ClockIsMonotonicAndStatsCountByKind)
{
    EventQueue queue;
    queue.push(0.5, EventKind::Arrival, -1, 0);
    queue.push(1.0, EventKind::PrefillComplete, 0, 0);
    queue.push(2.0, EventKind::StepComplete, 0, 0);
    queue.push(2.0, EventKind::RequestDone, 0, 0);
    queue.push(3.0, EventKind::Wake, 1, 0);

    Seconds last = 0.0;
    while (!queue.empty()) {
        const Event event = queue.pop();
        EXPECT_GE(event.time, last);
        last = event.time;
        EXPECT_DOUBLE_EQ(queue.now(), event.time);
        // Scheduling into the virtual present is fine...
        queue.push(event.time, EventKind::RequestDone, 3,
                   100 + queue.stats().popped());
        queue.pop();
    }
    const EventStats &stats = queue.stats();
    EXPECT_EQ(stats.arrivals, 1u);
    EXPECT_EQ(stats.prefills, 1u);
    EXPECT_EQ(stats.decodeSteps, 1u);
    EXPECT_EQ(stats.requestsDone, 1u + 5u);
    EXPECT_EQ(stats.wakes, 1u);
    EXPECT_EQ(stats.popped(), 10u);
}

TEST(EventSim, KindNamesAreStable)
{
    EXPECT_EQ(eventKindName(EventKind::Arrival), "arrival");
    EXPECT_EQ(eventKindName(EventKind::RequestDone),
              "request-done");
    EXPECT_EQ(eventKindName(EventKind::PrefillComplete),
              "prefill-complete");
    EXPECT_EQ(eventKindName(EventKind::StepComplete),
              "step-complete");
    EXPECT_EQ(eventKindName(EventKind::Wake), "wake");
    EXPECT_EQ(eventKindName(EventKind::Tick), "tick");
}

TEST(EventSim, TicksCountInStatsAndSortAsFleetEvents)
{
    // Control-plane heartbeats are fleet-level events: at a tied
    // instant they pop before any replica event (like arrivals)
    // and after arrivals of the same instant (higher kind rank).
    EventQueue queue;
    queue.push(1.0, EventKind::StepComplete, 0, 0);
    queue.push(1.0, EventKind::Tick, -1, 0);
    queue.push(1.0, EventKind::Arrival, -1, 3);

    EXPECT_EQ(queue.pop().kind, EventKind::Arrival);
    EXPECT_EQ(queue.pop().kind, EventKind::Tick);
    EXPECT_EQ(queue.pop().kind, EventKind::StepComplete);
    EXPECT_EQ(queue.stats().ticks, 1u);
    EXPECT_EQ(queue.stats().popped(), 3u);
}

} // namespace
} // namespace hermes::sim
