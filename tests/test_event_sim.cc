/**
 * @file
 * Event-kernel tests: deterministic total order of the shared
 * virtual clock (core/event_sim.hh).  Fleet reports are pinned
 * byte-identical by the regression tests, so the pop order here is
 * load-bearing, not cosmetic.
 */

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_sim.hh"

namespace hermes::sim {
namespace {

TEST(EventSim, PopsInTimeOrderRegardlessOfPushOrder)
{
    EventQueue queue;
    queue.push(3.0, EventKind::StepComplete, 1, 7);
    queue.push(1.0, EventKind::Arrival, -1, 0);
    queue.push(2.0, EventKind::PrefillComplete, 0, 2);
    queue.push(1.5, EventKind::Arrival, -1, 1);

    std::vector<Seconds> times;
    while (!queue.empty())
        times.push_back(queue.pop().time);
    EXPECT_EQ(times, (std::vector<Seconds>{1.0, 1.5, 2.0, 3.0}));
}

TEST(EventSim, ArrivalsSortBeforeReplicaEventsAtTheSameInstant)
{
    // A boundary at time t must observe every arrival with
    // arrival <= t, like the closed serving loop: fleet-level
    // events (replica < 0) win ties against any replica event.
    EventQueue queue;
    queue.push(1.0, EventKind::StepComplete, 0, 0);
    queue.push(1.0, EventKind::Arrival, -1, 5);
    queue.push(1.0, EventKind::Wake, 2, 0);
    queue.push(1.0, EventKind::Arrival, -1, 4);

    EXPECT_EQ(queue.pop().kind, EventKind::Arrival);
    EXPECT_EQ(queue.pop().kind, EventKind::Arrival);
    EXPECT_EQ(queue.pop().kind, EventKind::StepComplete);
    EXPECT_EQ(queue.pop().kind, EventKind::Wake);
}

TEST(EventSim, TiesBreakByReplicaThenKindThenId)
{
    EventQueue queue;
    queue.push(2.0, EventKind::Wake, 1, 0);
    queue.push(2.0, EventKind::StepComplete, 1, 0);
    queue.push(2.0, EventKind::StepComplete, 0, 0);
    queue.push(2.0, EventKind::RequestDone, 0, 9);
    queue.push(2.0, EventKind::RequestDone, 0, 3);

    // Replica 0 first; within it, request-done (lower kind rank)
    // before step-complete, and lower id first.
    Event event = queue.pop();
    EXPECT_EQ(event.replica, 0);
    EXPECT_EQ(event.kind, EventKind::RequestDone);
    EXPECT_EQ(event.id, 3u);
    event = queue.pop();
    EXPECT_EQ(event.id, 9u);
    EXPECT_EQ(queue.pop().kind, EventKind::StepComplete);
    event = queue.pop();
    EXPECT_EQ(event.replica, 1);
    EXPECT_EQ(event.kind, EventKind::StepComplete);
    EXPECT_EQ(queue.pop().kind, EventKind::Wake);
}

TEST(EventSim, IdenticalEventsPopInInsertionOrder)
{
    EventQueue queue;
    for (int i = 0; i < 4; ++i)
        queue.push(1.0, EventKind::Arrival, -1, 7);
    std::uint64_t last = 0;
    for (int i = 0; i < 4; ++i) {
        const Event event = queue.pop();
        if (i > 0) {
            EXPECT_GT(event.seq, last);
        }
        last = event.seq;
    }
}

TEST(EventSim, ClockIsMonotonicAndStatsCountByKind)
{
    EventQueue queue;
    queue.push(0.5, EventKind::Arrival, -1, 0);
    queue.push(1.0, EventKind::PrefillComplete, 0, 0);
    queue.push(2.0, EventKind::StepComplete, 0, 0);
    queue.push(2.0, EventKind::RequestDone, 0, 0);
    queue.push(3.0, EventKind::Wake, 1, 0);

    Seconds last = 0.0;
    while (!queue.empty()) {
        const Event event = queue.pop();
        EXPECT_GE(event.time, last);
        last = event.time;
        EXPECT_DOUBLE_EQ(queue.now(), event.time);
        // Scheduling into the virtual present is fine...
        queue.push(event.time, EventKind::RequestDone, 3,
                   100 + queue.stats().popped());
        queue.pop();
    }
    const EventStats &stats = queue.stats();
    EXPECT_EQ(stats.arrivals, 1u);
    EXPECT_EQ(stats.prefills, 1u);
    EXPECT_EQ(stats.decodeSteps, 1u);
    EXPECT_EQ(stats.requestsDone, 1u + 5u);
    EXPECT_EQ(stats.wakes, 1u);
    EXPECT_EQ(stats.popped(), 10u);
}

TEST(EventSim, KindNamesAreStable)
{
    EXPECT_EQ(eventKindName(EventKind::Arrival), "arrival");
    EXPECT_EQ(eventKindName(EventKind::RequestDone),
              "request-done");
    EXPECT_EQ(eventKindName(EventKind::PrefillComplete),
              "prefill-complete");
    EXPECT_EQ(eventKindName(EventKind::StepComplete),
              "step-complete");
    EXPECT_EQ(eventKindName(EventKind::Wake), "wake");
    EXPECT_EQ(eventKindName(EventKind::Tick), "tick");
    EXPECT_EQ(eventKindName(EventKind::ResumeReady),
              "resume-ready");
    EXPECT_EQ(eventKindName(EventKind::SessionContinue),
              "session-continue");
    EXPECT_EQ(eventKindName(EventKind::ReplicaReady),
              "replica-ready");
}

TEST(EventSim, TicksCountInStatsAndSortAsFleetEvents)
{
    // Control-plane heartbeats are fleet-level events: at a tied
    // instant they pop before any replica event (like arrivals)
    // and after arrivals of the same instant (higher kind rank).
    EventQueue queue;
    queue.push(1.0, EventKind::StepComplete, 0, 0);
    queue.push(1.0, EventKind::Tick, -1, 0);
    queue.push(1.0, EventKind::Arrival, -1, 3);

    EXPECT_EQ(queue.pop().kind, EventKind::Arrival);
    EXPECT_EQ(queue.pop().kind, EventKind::Tick);
    EXPECT_EQ(queue.pop().kind, EventKind::StepComplete);
    EXPECT_EQ(queue.stats().ticks, 1u);
    EXPECT_EQ(queue.stats().popped(), 3u);
}

TEST(EventSim, ShardedGoldenSequenceMatchesSingleHeapOrder)
{
    // The sharded queue (per-replica subqueues + lazy min-merge)
    // must pop the byte-identical sequence a single heap would:
    // the comparator (time, replica, kind, id, seq) is a strict
    // total order, so we pin the pop order against a stable sort
    // of the push stream — which is exactly what any correct
    // priority queue yields, sharded or not.
    constexpr int kShards = 8;
    EventQueue queue;
    queue.shard(kShards);
    queue.reserve(512);

    struct Pushed
    {
        Seconds time;
        EventKind kind;
        std::int32_t replica;
        std::uint64_t id;
        std::size_t order; // Push order: the seq tie-break.
    };
    const EventKind kinds[] = {
        EventKind::RequestDone, EventKind::PrefillComplete,
        EventKind::StepComplete, EventKind::Wake,
        EventKind::ResumeReady};

    // Deterministic LCG so the interleaving is reproducible and
    // heavy on ties: only 8 distinct timestamps over 400 events.
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    const auto next = [&state]() {
        state = state * 6364136223846793005ULL +
                1442695040888963407ULL;
        return state >> 33;
    };

    std::vector<Pushed> reference;
    for (std::size_t i = 0; i < 400; ++i) {
        const Seconds time =
            static_cast<Seconds>(next() % 8) * 0.25;
        // One in five events is fleet-level (replica -1).
        const std::int32_t replica =
            next() % 5 == 0
                ? -1
                : static_cast<std::int32_t>(next() % kShards);
        const EventKind kind =
            replica < 0 ? EventKind::Arrival : kinds[next() % 5];
        const std::uint64_t id = next() % 16;
        queue.push(time, kind, replica, id);
        reference.push_back({time, kind, replica, id, i});
    }

    // seq is assigned in push order, so a stable sort on the
    // (time, replica, kind, id) prefix is the full total order.
    std::stable_sort(
        reference.begin(), reference.end(),
        [](const Pushed &a, const Pushed &b) {
            return std::tie(a.time, a.replica, a.kind, a.id) <
                   std::tie(b.time, b.replica, b.kind, b.id);
        });

    for (std::size_t i = 0; i < reference.size(); ++i) {
        const Event event = queue.pop();
        ASSERT_DOUBLE_EQ(event.time, reference[i].time) << i;
        ASSERT_EQ(event.replica, reference[i].replica) << i;
        ASSERT_EQ(event.kind, reference[i].kind) << i;
        ASSERT_EQ(event.id, reference[i].id) << i;
    }
    EXPECT_TRUE(queue.empty());
}

TEST(EventSim, SortedStreamMergesWithHeapEvents)
{
    // pushSorted feeds the presorted arrival stream through a flat
    // cursor instead of the heap; the merge must still respect the
    // full total order against heap-side pushes.
    EventQueue queue;
    queue.shard(2);
    queue.reserveSorted(3);
    queue.pushSorted(1.0, EventKind::Arrival, 0);
    queue.pushSorted(2.0, EventKind::Arrival, 1);
    queue.pushSorted(2.0, EventKind::Arrival, 2);
    queue.push(1.5, EventKind::StepComplete, 0, 0);
    queue.push(2.0, EventKind::Wake, 1, 0);
    queue.push(0.5, EventKind::Tick, -1, 0);

    std::vector<EventKind> kinds;
    std::vector<std::uint64_t> ids;
    while (!queue.empty()) {
        const Event event = queue.pop();
        kinds.push_back(event.kind);
        ids.push_back(event.id);
    }
    EXPECT_EQ(kinds,
              (std::vector<EventKind>{
                  EventKind::Tick, EventKind::Arrival,
                  EventKind::StepComplete, EventKind::Arrival,
                  EventKind::Arrival, EventKind::Wake}));
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{0, 0, 0, 1, 2, 0}));
}

TEST(EventSim, PerKindCountersSumToPopped)
{
    // popped() is a single counter bumped in pop(); the nine
    // per-kind counters must partition it exactly.
    EventQueue queue;
    queue.shard(4);
    std::uint64_t state = 17;
    const auto next = [&state]() {
        state = state * 6364136223846793005ULL +
                1442695040888963407ULL;
        return state >> 33;
    };
    const EventKind kinds[] = {
        EventKind::Arrival,      EventKind::RequestDone,
        EventKind::PrefillComplete, EventKind::StepComplete,
        EventKind::Wake,         EventKind::Tick,
        EventKind::ResumeReady,  EventKind::SessionContinue,
        EventKind::ReplicaReady};
    for (int i = 0; i < 100; ++i) {
        const EventKind kind = kinds[next() % 9];
        const std::int32_t replica =
            kind == EventKind::Arrival ||
                    kind == EventKind::Tick ||
                    kind == EventKind::SessionContinue
                ? -1
                : static_cast<std::int32_t>(next() % 4);
        queue.push(static_cast<Seconds>(next() % 10), kind,
                   replica, i);
    }
    while (!queue.empty())
        queue.pop();

    const EventStats &stats = queue.stats();
    EXPECT_EQ(stats.arrivals + stats.requestsDone +
                  stats.prefills + stats.decodeSteps +
                  stats.wakes + stats.ticks + stats.resumes +
                  stats.sessionContinues + stats.replicaReadies,
              stats.popped());
    EXPECT_EQ(stats.popped(), 100u);
}

} // namespace
} // namespace hermes::sim
