/**
 * @file
 * Tests for the public facade (hermes::System).
 */

#include <gtest/gtest.h>

#include "core/hermes.hh"

namespace hermes {
namespace {

TEST(Facade, DefaultRequestMatchesPaperWorkload)
{
    const auto request = defaultRequest(model::opt13b(), 4);
    EXPECT_EQ(request.promptTokens, 128u);
    EXPECT_EQ(request.generateTokens, 128u);
    EXPECT_EQ(request.batch, 4u);
    EXPECT_EQ(request.llm.name, "OPT-13B");
}

TEST(Facade, DefaultPlatformMatchesSecVA1)
{
    const System system;
    EXPECT_EQ(system.config().gpu.name, "RTX4090");
    EXPECT_EQ(system.config().numDimms, 8u);
    EXPECT_EQ(system.config().dimm.dimm.capacity, 32ull * kGiB);
}

TEST(Facade, InferProducesThroughput)
{
    System system(fastConfig(4));
    auto request = defaultRequest(model::opt13b());
    request.generateTokens = 32;
    request.profileTokens = 24;
    const auto result = system.infer(request);
    EXPECT_TRUE(result.supported);
    EXPECT_GT(result.tokensPerSecond, 0.0);
    EXPECT_EQ(result.engine, "Hermes");
}

TEST(Facade, SupportsChecksDimmCapacity)
{
    SystemConfig config = fastConfig(4);
    config.numDimms = 1;
    System system(config);
    EXPECT_FALSE(
        system.supports(defaultRequest(model::llama2_70b())));
    EXPECT_TRUE(system.supports(defaultRequest(model::opt13b())));
}

TEST(Facade, CompareRunsRequestedEngines)
{
    System system(fastConfig(4));
    auto request = defaultRequest(model::opt13b());
    request.generateTokens = 24;
    request.profileTokens = 16;
    const auto results = system.compare(
        request, {EngineKind::Accelerate, EngineKind::Hermes});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].engine, "Accelerate");
    EXPECT_EQ(results[1].engine, "Hermes");
    EXPECT_GT(results[1].tokensPerSecond,
              results[0].tokensPerSecond);
}

TEST(Facade, FastConfigSetsSimulatedLayers)
{
    EXPECT_EQ(fastConfig(8).simulatedLayers, 8u);
    EXPECT_EQ(fastConfig().simulatedLayers, 8u);
}

} // namespace
} // namespace hermes
