/**
 * @file
 * Tests for the multi-request serving layer: continuous batching,
 * admission control, per-request metrics and fleet percentiles.
 */

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/hermes.hh"

namespace hermes::serving {
namespace {

ServingConfig
fastServing(std::uint32_t max_batch = 8)
{
    ServingConfig config;
    config.maxBatch = max_batch;
    config.calibrationTokens = 6;
    return config;
}

TEST(Workload, SyntheticTraceIsDeterministicAndSorted)
{
    const auto a = syntheticWorkload(16, 2.0, 128, 32, 7);
    const auto b = syntheticWorkload(16, 2.0, 128, 32, 7);
    ASSERT_EQ(a.size(), 16u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
        if (i > 0) {
            EXPECT_GE(a[i].arrival, a[i - 1].arrival);
        }
    }
}

TEST(Workload, PercentileInterpolates)
{
    std::vector<Seconds> values{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(values, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Serving, ConcurrentRequestsShareTheBatch)
{
    System system(fastConfig(4));
    // 12 requests in one burst: the 8 slots fill and 4 queue.
    const auto workload = syntheticWorkload(12, 50.0, 64, 16, 3);
    const auto report =
        system.serve(model::opt13b(), workload, fastServing(8));

    EXPECT_EQ(report.completed, 12u);
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_GE(report.peakBatch, 8u);
    EXPECT_GT(report.meanBatchOccupancy, 1.0);
    EXPECT_GT(report.throughputTps, 0.0);
    EXPECT_GT(report.p50TokenLatency, 0.0);
    EXPECT_GE(report.p99TokenLatency, report.p50TokenLatency);
    EXPECT_GE(report.p99Ttft, report.p50Ttft);
    for (const auto &request : report.requests) {
        if (request.rejected)
            continue;
        EXPECT_GE(request.admitted, request.arrival);
        EXPECT_GE(request.firstToken, request.admitted);
        EXPECT_GE(request.completed, request.firstToken);
        EXPECT_EQ(request.tokens, 16u);
    }
}

TEST(Serving, BatchingBeatsSequentialService)
{
    System system(fastConfig(4));
    const auto workload = syntheticWorkload(8, 50.0, 64, 16, 3);
    const auto batched =
        system.serve(model::opt13b(), workload, fastServing(8));
    const auto sequential =
        system.serve(model::opt13b(), workload, fastServing(1));
    EXPECT_LT(batched.makespan, sequential.makespan);
    EXPECT_GT(batched.throughputTps, sequential.throughputTps);
}

TEST(Serving, AdmissionControlRejectsOverflow)
{
    System system(fastConfig(4));
    const auto workload = syntheticWorkload(12, 1.0e6, 64, 16, 3);
    ServingConfig config = fastServing(2);
    config.maxQueue = 3;
    const auto report =
        system.serve(model::opt13b(), workload, config);
    // 2 slots + 3 queue spots absorb 5 of the burst of 12.
    EXPECT_GT(report.rejected, 0u);
    EXPECT_EQ(report.completed + report.rejected, 12u);
    EXPECT_EQ(report.requests.size(), 12u);
}

TEST(Serving, UnservableModelRejectsWholeTrace)
{
    SystemConfig config = fastConfig(4);
    config.numDimms = 0; // Hermes needs its NDP-DIMM pool.
    System system(config);
    const auto workload = syntheticWorkload(4, 10.0, 64, 8, 3);
    const auto report =
        system.serve(model::opt13b(), workload, fastServing(4));
    EXPECT_EQ(report.completed, 0u);
    EXPECT_EQ(report.rejected, 4u);
}

TEST(Serving, ZeroGenerateTokensCompletesAtPrefill)
{
    System system(fastConfig(4));
    auto workload = syntheticWorkload(3, 10.0, 64, 8, 3);
    workload[1].generateTokens = 0;
    const auto report =
        system.serve(model::opt13b(), workload, fastServing(4));
    EXPECT_EQ(report.completed, 3u);
    for (const auto &request : report.requests) {
        if (request.id == 1) {
            EXPECT_EQ(request.tokens, 0u);
            EXPECT_GE(request.completed, request.admitted);
        }
    }
}

TEST(Serving, CompareServingRanksHermesAboveBase)
{
    System system(fastConfig(4));
    const auto workload = syntheticWorkload(8, 20.0, 64, 12, 3);
    const auto reports = system.compareServing(
        model::opt66b(), workload,
        {runtime::EngineKind::HermesBase,
         runtime::EngineKind::Hermes},
        fastServing(8));
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].engine, "Hermes-base");
    EXPECT_EQ(reports[1].engine, "Hermes");
    EXPECT_GT(reports[1].throughputTps, reports[0].throughputTps);
    EXPECT_LT(reports[1].p50TokenLatency,
              reports[0].p50TokenLatency);
}

TEST(Serving, LifecycleTimestampsAreOrderedForEveryRequest)
{
    // Property check across engines: arrival <= admitted <=
    // firstToken <= completed for everything served; rejected
    // requests carry no timestamps at all.
    System system(fastConfig(4));
    const auto workload = syntheticWorkload(10, 30.0, 64, 12, 5);
    ServingConfig config = fastServing(2);
    config.maxQueue = 4; // Force some rejections.
    for (const auto kind : {runtime::EngineKind::Hermes,
                            runtime::EngineKind::HermesBase,
                            runtime::EngineKind::FlexGen}) {
        config.engine = kind;
        const auto report =
            system.serve(model::opt13b(), workload, config);
        EXPECT_EQ(report.completed + report.rejected, 10u);
        for (const auto &request : report.requests) {
            if (request.rejected) {
                EXPECT_DOUBLE_EQ(request.admitted, 0.0);
                EXPECT_DOUBLE_EQ(request.firstToken, 0.0);
                EXPECT_DOUBLE_EQ(request.completed, 0.0);
                EXPECT_EQ(request.tokens, 0u);
            } else {
                EXPECT_LE(request.arrival, request.admitted);
                EXPECT_LE(request.admitted, request.firstToken);
                EXPECT_LE(request.firstToken, request.completed);
            }
        }
    }
}

TEST(Serving, RerunningTheSimulatorReproducesTheReport)
{
    System system(fastConfig(4));
    const auto workload = syntheticWorkload(8, 20.0, 64, 12, 3);
    const auto a =
        system.serve(model::opt13b(), workload, fastServing(4));
    const auto b =
        system.serve(model::opt13b(), workload, fastServing(4));
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.throughputTps, b.throughputTps);
    EXPECT_DOUBLE_EQ(a.p99TokenLatency, b.p99TokenLatency);
    EXPECT_DOUBLE_EQ(a.p99Ttft, b.p99Ttft);
}

TEST(Serving, CostProbesAgreeWithServingPhysics)
{
    // The public probes (used by the fleet router) must answer from
    // the same cache the simulator itself fills.
    ServingConfig config = fastServing(4);
    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               config);
    EXPECT_FALSE(simulator.saturated());
    EXPECT_TRUE(simulator.servable(1, 64));
    EXPECT_GT(simulator.prefillSeconds(1, 64), 0.0);
    EXPECT_GT(simulator.tokenSeconds(4, 64), 0.0);
    // A 13B model at batch 4 fits comfortably: no fallback buckets.
    EXPECT_FALSE(simulator.saturated());
    // Larger context buckets never get cheaper per decode step.
    EXPECT_GE(simulator.tokenSeconds(4, 4096),
              simulator.tokenSeconds(4, 64));

    SystemConfig dead = fastConfig(4);
    dead.numDimms = 0;
    ServingSimulator unservable(dead, model::opt13b(), config);
    EXPECT_FALSE(unservable.servable(1, 64));
    EXPECT_DOUBLE_EQ(unservable.tokenSeconds(1, 64), 0.0);
}

TEST(Serving, AnchorStoreSharesExactSimulationsAcrossVariants)
{
    // Anchor cells are keyed by (batch bucket, raw context tokens),
    // and the sharing predicate checks only the physics inputs of
    // an engine simulation (system, model, engine kind,
    // calibrationTokens, seed).  Scheduling knobs — maxBatch,
    // seqBucket, queue depth — do not change what an exact
    // simulation of a cell costs, so variants differing only in
    // those answer from each other's anchors instead of re-running
    // the engine.
    const auto system = fastConfig(4);
    const auto llm = model::opt13b();
    ServingConfig wide = fastServing(8);
    wide.seqBucket = 64;
    wide.costModel = CostModel::Interp;
    ServingConfig narrow = wide;
    narrow.maxBatch = 4; // The only difference: a scheduling knob.

    // Warm the wide simulator over a probe grid reaching past
    // column 16, where the anchor schedule turns geometric and
    // interpolation actually happens.
    ServingSimulator reference(system, llm, wide);
    const std::uint32_t batches[] = {1, 2, 4};
    const std::uint64_t seqs[] = {100, 1000, 2000, 3000};
    for (const std::uint32_t batch : batches)
        for (const std::uint64_t seq : seqs) {
            ASSERT_TRUE(reference.servable(batch, seq));
            reference.prefillSeconds(batch, seq);
            reference.tokenSeconds(batch, seq);
        }
    const std::uint64_t paid = reference.calibrationRuns();
    ASSERT_GT(paid, 0u);

    // The narrow variant adopts the anchors; an independent twin
    // of the narrow config recomputes everything from scratch.
    ServingSimulator shared(system, llm, narrow);
    ASSERT_TRUE(shared.shareAnchorStoreWith(reference));
    ServingSimulator independent(system, llm, narrow);

    for (const std::uint32_t batch : batches)
        for (const std::uint64_t seq : seqs) {
            // Byte-identical costs: adopted anchors are the same
            // exact simulations the independent twin runs, and the
            // interpolation arithmetic is identical.
            EXPECT_EQ(shared.prefillSeconds(batch, seq),
                      independent.prefillSeconds(batch, seq))
                << "prefill(" << batch << ", " << seq << ")";
            EXPECT_EQ(shared.tokenSeconds(batch, seq),
                      independent.tokenSeconds(batch, seq))
                << "token(" << batch << ", " << seq << ")";
        }
    // The shared simulator answered entirely from adopted anchors —
    // zero engine runs billed to it — while the independent twin
    // paid for the full grid again.
    EXPECT_EQ(shared.calibrationRuns(), 0u);
    EXPECT_DOUBLE_EQ(shared.calibrationSeconds(), 0.0);
    EXPECT_GT(independent.calibrationRuns(), 0u);
    // Adoption bills nothing retroactively to the reference.
    EXPECT_EQ(reference.calibrationRuns(), paid);

    // Physics differences refuse to share: the anchors would not
    // be the simulations this configuration implies.
    ServingConfig reseeded = narrow;
    reseeded.seed = narrow.seed + 1;
    ServingSimulator other_seed(system, llm, reseeded);
    EXPECT_FALSE(other_seed.shareAnchorStoreWith(reference));

    ServingConfig recalibrated = narrow;
    recalibrated.calibrationTokens = narrow.calibrationTokens + 2;
    ServingSimulator other_tokens(system, llm, recalibrated);
    EXPECT_FALSE(other_tokens.shareAnchorStoreWith(reference));

    ServingSimulator other_system(fastConfig(2), llm, narrow);
    EXPECT_FALSE(other_system.shareAnchorStoreWith(reference));
}

TEST(Serving, StepwiseSessionMatchesClosedRun)
{
    // The closed run() is one driver of the stepwise session
    // protocol; an event-style driver — deliveries interleaved
    // with step completions on a virtual clock, exactly how the
    // fleet kernel drives a replica — must produce the identical
    // report.
    auto trace = syntheticWorkload(12, 25.0, 64, 12, 5);
    sortByArrival(trace);

    ServingSimulator stepwise(fastConfig(4), model::opt13b(),
                              fastServing(4));
    stepwise.beginSession();
    std::size_t next = 0;
    const std::size_t n = trace.size();
    StepAction action{StepKind::Idle, 0.0};
    for (;;) {
        if (stepwise.busy()) {
            // Deliver every arrival due before the in-flight work
            // completes, then take the boundary.
            while (next < n &&
                   trace[next].arrival <= action.until) {
                stepwise.deliver(trace[next]);
                ++next;
            }
            stepwise.completeWork();
            action = stepwise.startNextWork(stepwise.clock());
        } else if (next < n) {
            const Seconds now = trace[next].arrival;
            while (next < n && trace[next].arrival <= now) {
                stepwise.deliver(trace[next]);
                ++next;
            }
            action = stepwise.startNextWork(now);
        } else {
            break;
        }
    }
    const ServingReport a = stepwise.finishSession();

    ServingSimulator closed(fastConfig(4), model::opt13b(),
                            fastServing(4));
    const ServingReport b = closed.run(trace);

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.peakBatch, b.peakBatch);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.throughputTps, b.throughputTps);
    EXPECT_DOUBLE_EQ(a.meanBatchOccupancy, b.meanBatchOccupancy);
    EXPECT_DOUBLE_EQ(a.p99TokenLatency, b.p99TokenLatency);
    EXPECT_DOUBLE_EQ(a.p50Ttft, b.p50Ttft);
    EXPECT_DOUBLE_EQ(a.p99Ttft, b.p99Ttft);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].id, b.requests[i].id);
        EXPECT_EQ(a.requests[i].tokens, b.requests[i].tokens);
        EXPECT_DOUBLE_EQ(a.requests[i].admitted,
                         b.requests[i].admitted);
        EXPECT_DOUBLE_EQ(a.requests[i].firstToken,
                         b.requests[i].firstToken);
        EXPECT_DOUBLE_EQ(a.requests[i].completed,
                         b.requests[i].completed);
    }
}

TEST(Serving, SessionObservedStateAndStealing)
{
    // The ground truth the feedback router and the stealing hook
    // consume: outstanding/queued counts track the session, and a
    // stolen request vanishes from this replica's report.
    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               fastServing(2));
    simulator.beginSession();
    EXPECT_EQ(simulator.observedOutstanding(), 0u);
    EXPECT_FALSE(simulator.knownServable());

    auto trace = syntheticWorkload(5, 0.0, 64, 8, 3); // One burst.
    for (const auto &request : trace)
        simulator.deliver(request);
    EXPECT_EQ(simulator.observedOutstanding(), 5u);
    EXPECT_EQ(simulator.queuedCount(), 5u);
    EXPECT_DOUBLE_EQ(simulator.observedBacklogTokens(), 5.0 * 8);

    // First boundary: probe passes, 2 slots admitted, 3 queued.
    const StepAction action = simulator.startNextWork(0.0);
    EXPECT_EQ(action.kind, StepKind::Prefill);
    EXPECT_TRUE(simulator.knownServable());
    EXPECT_EQ(simulator.observedOutstanding(), 5u);
    EXPECT_EQ(simulator.queuedCount(), 3u);

    // Steal two of the queued: newest arrivals (ids 3, 4) go.
    const auto stolen = simulator.stealQueued(2);
    ASSERT_EQ(stolen.size(), 2u);
    EXPECT_EQ(stolen[0].id, 3u);
    EXPECT_EQ(stolen[1].id, 4u);
    EXPECT_EQ(simulator.queuedCount(), 1u);

    // Drain; the report covers only the five minus two stolen.
    for (;;) {
        if (simulator.busy())
            simulator.completeWork();
        if (simulator.startNextWork(simulator.clock()).kind ==
            StepKind::Idle)
            break;
    }
    const ServingReport report = simulator.finishSession();
    EXPECT_EQ(report.requests.size(), 3u);
    EXPECT_EQ(report.completed, 3u);
    EXPECT_EQ(report.rejected, 0u);
    for (const auto &request : report.requests)
        EXPECT_NE(request.id, 3u);
}

TEST(Serving, PriorityJumpsTheAdmissionQueue)
{
    // Five simultaneous arrivals on one slot; id 3 is high
    // priority.  FIFO would serve 0,1,2,3,4; priority-aware
    // admission serves 0 (already admitted when 3 is observed at
    // the same boundary... all are observed together, so the first
    // pick is the high-priority one), then FIFO among the rest.
    auto trace = syntheticWorkload(5, 0.0, 64, 4, 3);
    trace[3].priority = 2;
    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               fastServing(1));
    const ServingReport report = simulator.run(trace);
    EXPECT_EQ(report.completed, 5u);
    Seconds admitted3 = 0.0;
    for (const auto &request : report.requests) {
        if (request.id == 3) {
            admitted3 = request.admitted;
            EXPECT_EQ(request.priority, 2u);
        }
    }
    for (const auto &request : report.requests) {
        if (request.id != 3) {
            EXPECT_GT(request.admitted, admitted3);
        }
    }
}

TEST(Serving, AllDefaultPrioritiesReproduceFifoAdmission)
{
    // The priority-aware admission must be invisible on a
    // default-priority trace: FIFO order, bit-identical times.
    auto trace = syntheticWorkload(8, 30.0, 64, 8, 5);
    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               fastServing(2));
    const ServingReport report = simulator.run(trace);
    EXPECT_EQ(report.completed, 8u);
    for (std::size_t i = 1; i < report.requests.size(); ++i)
        EXPECT_LE(report.requests[i - 1].admitted,
                  report.requests[i].admitted);
}

TEST(Serving, PreemptReturnsStateAndResumesLocallyForFree)
{
    // One slot, two requests: preempt the running one mid-flight,
    // requeue it locally with its KV cached — it must complete with
    // its original TTFT and all tokens accounted exactly once.
    std::vector<ServedRequest> trace(2);
    trace[0] = ServedRequest{0, 0.0, 64, 12, 0};
    trace[1] = ServedRequest{1, 0.0, 64, 4, 0};

    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               fastServing(1));
    simulator.beginSession();
    for (const auto &request : trace)
        simulator.deliver(request);

    // Admit request 0 (FIFO) and decode a few steps.
    StepAction action = simulator.startNextWork(0.0);
    ASSERT_EQ(action.kind, StepKind::Prefill);
    simulator.completeWork();
    EXPECT_EQ(simulator.stateOf(0), RequestState::Running);
    EXPECT_EQ(simulator.stateOf(1), RequestState::Queued);
    for (int step = 0; step < 3; ++step) {
        action = simulator.startNextWork(simulator.clock());
        ASSERT_EQ(action.kind, StepKind::Decode);
        simulator.completeWork();
    }
    const std::uint32_t tokens_so_far =
        simulator.snapshot().runningRequests.front().tokensGenerated;
    EXPECT_EQ(tokens_so_far, 4u); // Prefill token + 3 decode steps.

    // Queued / unknown ids cannot be preempted.
    EXPECT_THROW(simulator.preempt(1), std::logic_error);
    EXPECT_THROW(simulator.preempt(99), std::logic_error);

    const ResumableRequest resumed = simulator.preempt(0);
    EXPECT_EQ(resumed.request.id, 0u);
    EXPECT_EQ(resumed.tokensGenerated, 4u);
    EXPECT_EQ(resumed.contextLength(), 64u + 4u);
    EXPECT_EQ(resumed.preemptions, 1u);
    EXPECT_GT(resumed.firstToken, 0.0);
    EXPECT_EQ(simulator.stateOf(0), RequestState::Preempted);

    // Resume locally with the KV retained: free re-admission.
    simulator.deliverResumed(resumed, simulator.clock(),
                             resumed.contextLength());
    EXPECT_EQ(simulator.stateOf(0), RequestState::Queued);
    for (;;) {
        if (simulator.busy())
            simulator.completeWork();
        if (simulator.startNextWork(simulator.clock()).kind ==
            StepKind::Idle)
            break;
    }
    const ServingReport report = simulator.finishSession();
    EXPECT_EQ(simulator.stateOf(0), RequestState::Done);
    EXPECT_EQ(report.completed, 2u);
    ASSERT_EQ(report.requests.size(), 2u); // Old entry excluded.
    for (const auto &request : report.requests) {
        if (request.id != 0)
            continue;
        EXPECT_EQ(request.tokens, 12u);
        EXPECT_EQ(request.preemptions, 1u);
        EXPECT_DOUBLE_EQ(request.firstToken, resumed.firstToken);
        EXPECT_DOUBLE_EQ(request.admitted, resumed.admitted);
        EXPECT_GT(request.completed, resumed.firstToken);
    }
}

TEST(Serving, RequeuedPreemptionBypassesTheAdmissionCap)
{
    // maxQueue 0: fresh overflow is rejected, but a preempted
    // request held queue capacity once already — its requeue must
    // never be dropped.
    ServingConfig config = fastServing(1);
    config.maxQueue = 0;
    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               config);
    simulator.beginSession();
    simulator.deliver(ServedRequest{0, 0.0, 64, 8, 0});
    simulator.startNextWork(0.0);
    simulator.completeWork(); // Request 0 running.
    // A fresh arrival lands, then request 0 is preempted and
    // requeued behind it: at the next boundary the fresh arrival
    // takes the one slot's worth of capacity, and without the
    // bypass the requeued request would be dropped.
    simulator.deliver(
        ServedRequest{1, simulator.clock(), 64, 8, 0});
    const ResumableRequest resumed = simulator.preempt(0);
    simulator.deliverResumed(resumed, simulator.clock(),
                             resumed.contextLength());
    for (;;) {
        if (simulator.busy())
            simulator.completeWork();
        if (simulator.startNextWork(simulator.clock()).kind ==
            StepKind::Idle)
            break;
    }
    const ServingReport report = simulator.finishSession();
    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.rejected, 0u);
    for (const auto &request : report.requests)
        EXPECT_EQ(request.tokens, 8u);
}

TEST(Serving, ColdResumePaysTheUncachedSuffixPrefill)
{
    // The same preempted request resumed on a fresh replica: with
    // the KV transferred (cached == context) rejoining is free;
    // cold (cached == 0) it must re-prefill the whole context and
    // finish strictly later.
    std::vector<ServedRequest> trace(1);
    trace[0] = ServedRequest{0, 0.0, 512, 16, 0};

    const auto preempt_after = [&](int steps) {
        auto simulator = std::make_unique<ServingSimulator>(
            fastConfig(4), model::opt13b(), fastServing(1));
        simulator->beginSession();
        simulator->deliver(trace[0]);
        simulator->startNextWork(0.0);
        simulator->completeWork();
        for (int s = 0; s < steps; ++s) {
            simulator->startNextWork(simulator->clock());
            simulator->completeWork();
        }
        return simulator->preempt(0);
    };

    const auto drain_from = [&](const ResumableRequest &resumed,
                                std::uint64_t cached) {
        ServingSimulator simulator(fastConfig(4), model::opt13b(),
                                   fastServing(1));
        simulator.beginSession();
        simulator.deliverResumed(resumed, 1.0, cached);
        for (;;) {
            if (simulator.busy())
                simulator.completeWork();
            StepAction action =
                simulator.startNextWork(simulator.clock());
            if (action.kind == StepKind::WaitArrival)
                action = simulator.startNextWork(action.until);
            if (action.kind == StepKind::Idle)
                break;
        }
        return simulator.finishSession();
    };

    const ResumableRequest resumed = preempt_after(7);
    const ServingReport warm =
        drain_from(resumed, resumed.contextLength());
    const ServingReport cold = drain_from(resumed, 0);
    ASSERT_EQ(warm.completed, 1u);
    ASSERT_EQ(cold.completed, 1u);
    EXPECT_EQ(warm.requests[0].tokens, 16u);
    EXPECT_EQ(cold.requests[0].tokens, 16u);
    // Identical decode work, but cold pays a ~512-token re-prefill.
    EXPECT_LT(warm.requests[0].completed,
              cold.requests[0].completed);
    // TTFT is history on both: the first token was emitted before
    // the preemption and the timestamp travels with the request.
    EXPECT_DOUBLE_EQ(warm.requests[0].firstToken,
                     resumed.firstToken);
    EXPECT_DOUBLE_EQ(cold.requests[0].firstToken,
                     resumed.firstToken);
}

TEST(Serving, SnapshotAgreesWithIndividualProbesAfterPreemption)
{
    // The one-call ReplicaSnapshot must agree field by field with
    // the individual observed-state probes at every boundary of a
    // session — including right after a preemption reshuffled the
    // batch and the queue.
    const auto check = [](const ServingSimulator &simulator) {
        const ReplicaSnapshot snap = simulator.snapshot();
        EXPECT_EQ(snap.outstanding,
                  simulator.observedOutstanding());
        EXPECT_EQ(snap.queued, simulator.queuedCount());
        EXPECT_DOUBLE_EQ(snap.backlogTokens,
                         simulator.observedBacklogTokens());
        EXPECT_EQ(snap.busy, simulator.busy());
        EXPECT_EQ(snap.knownServable, simulator.knownServable());
        EXPECT_EQ(snap.knownDead, simulator.knownDead());
        const auto running = simulator.runningInfos();
        const auto queued = simulator.queuedInfos();
        ASSERT_EQ(snap.runningRequests.size(), running.size());
        ASSERT_EQ(snap.queuedRequests.size(), queued.size());
        for (std::size_t i = 0; i < running.size(); ++i) {
            EXPECT_EQ(snap.runningRequests[i].id, running[i].id);
            EXPECT_EQ(snap.runningRequests[i].priority,
                      running[i].priority);
            EXPECT_DOUBLE_EQ(snap.runningRequests[i].arrival,
                             running[i].arrival);
            EXPECT_EQ(snap.runningRequests[i].tokensGenerated,
                      running[i].tokensGenerated);
            EXPECT_EQ(snap.runningRequests[i].remainingTokens,
                      running[i].remainingTokens);
        }
        for (std::size_t i = 0; i < queued.size(); ++i) {
            EXPECT_EQ(snap.queuedRequests[i].id, queued[i].id);
            EXPECT_EQ(snap.queuedRequests[i].priority,
                      queued[i].priority);
            EXPECT_DOUBLE_EQ(snap.queuedRequests[i].arrival,
                             queued[i].arrival);
            EXPECT_EQ(snap.queuedRequests[i].tokensGenerated,
                      queued[i].tokensGenerated);
            EXPECT_EQ(snap.queuedRequests[i].remainingTokens,
                      queued[i].remainingTokens);
        }
        for (const SessionKv &entry : snap.cachedSessions) {
            EXPECT_GT(entry.session, 0u);
            EXPECT_EQ(simulator.cachedSessionTokens(entry.session),
                      entry.tokens);
        }
    };

    auto trace = syntheticWorkload(6, 0.0, 64, 8, 3);
    trace[4].priority = 3;
    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               fastServing(2));
    simulator.beginSession();
    check(simulator);
    for (const auto &request : trace)
        simulator.deliver(request);
    check(simulator);
    simulator.startNextWork(0.0);
    check(simulator); // Mid-prefill (busy).
    simulator.completeWork();
    check(simulator);
    simulator.startNextWork(simulator.clock());
    simulator.completeWork();

    // Preempt one running request and requeue it locally.
    const auto running = simulator.runningInfos();
    ASSERT_FALSE(running.empty());
    const ResumableRequest resumed =
        simulator.preempt(running.front().id);
    check(simulator);
    simulator.deliverResumed(resumed, simulator.clock(),
                             resumed.contextLength());
    check(simulator);

    for (;;) {
        if (simulator.busy()) {
            simulator.completeWork();
            check(simulator);
        }
        if (simulator.startNextWork(simulator.clock()).kind ==
            StepKind::Idle)
            break;
    }
    check(simulator);
    const ServingReport report = simulator.finishSession();
    EXPECT_EQ(report.completed, 6u);
}

namespace {

/** Serve everything a replica holds, back to idle. */
void
drainReplica(ServingSimulator &simulator)
{
    for (;;) {
        if (simulator.busy())
            simulator.completeWork();
        if (simulator.startNextWork(simulator.clock()).kind ==
            StepKind::Idle)
            break;
    }
}

/** A one-turn session request (sessionId 0 marks no session). */
ServedRequest
sessionRequest(std::uint64_t id, std::uint64_t session,
               std::uint32_t prompt, std::uint32_t generate)
{
    ServedRequest request{id, 0.0, prompt, generate, 0};
    request.sessionId = session;
    return request;
}

} // namespace

TEST(Serving, SessionKvResidencyTracksRetirementAndLru)
{
    ServingSimulator simulator(fastConfig(4), model::opt13b(),
                               fastServing(1));
    simulator.beginSession();
    EXPECT_EQ(simulator.cachedSessionTokens(1), 0u);

    simulator.deliver(sessionRequest(0, 1, 256, 8));
    drainReplica(simulator);
    // The retired turn's whole context stays resident for its
    // session (prompt plus everything generated).
    const std::uint64_t resident = simulator.cachedSessionTokens(1);
    EXPECT_GE(resident, 256u);

    simulator.deliver(sessionRequest(1, 2, 256, 8));
    drainReplica(simulator);
    // LRU order in the snapshot: session 1 (older) first.
    const ReplicaSnapshot snap = simulator.snapshot();
    ASSERT_EQ(snap.cachedSessions.size(), 2u);
    EXPECT_EQ(snap.cachedSessions[0].session, 1u);
    EXPECT_EQ(snap.cachedSessions[1].session, 2u);

    // A follow-up turn consumes its session's residency at
    // admission (the entry is pinned in use), then re-caches the
    // grown context at retirement.
    simulator.deliver(sessionRequest(2, 1, 300, 8));
    simulator.startNextWork(simulator.clock());
    EXPECT_EQ(simulator.cachedSessionTokens(1), 0u);
    drainReplica(simulator);
    EXPECT_GT(simulator.cachedSessionTokens(1), resident);

    const ServingReport report = simulator.finishSession();
    EXPECT_EQ(report.completed, 3u);
}

TEST(Serving, KvEvictionUnderMemoryPressureForcesRePrefill)
{
    // Two sessions against a KV budget that holds only one
    // context: serving session 2 evicts session 1's residency
    // (LRU), so session 1's follow-up re-prefills its whole prompt
    // and finishes strictly later than with an unlimited budget.
    const auto follow_up_completed =
        [](std::uint64_t capacity_tokens) {
            ServingConfig config = fastServing(1);
            config.kvCapacityTokens = capacity_tokens;
            // Fine-grained cost buckets: the default 512-token
            // bucket would price a 64-token and a 328-token prefill
            // identically, hiding the re-prefill cost this test
            // pins.
            config.seqBucket = 64;
            ServingSimulator simulator(fastConfig(4),
                                       model::opt13b(), config);
            simulator.beginSession();
            simulator.deliver(sessionRequest(0, 1, 256, 8));
            drainReplica(simulator);
            simulator.deliver(sessionRequest(1, 2, 256, 8));
            drainReplica(simulator);
            if (capacity_tokens != 0) {
                // Session 2's retirement pushed session 1 out.
                EXPECT_EQ(simulator.cachedSessionTokens(1), 0u);
                EXPECT_GT(simulator.cachedSessionTokens(2), 0u);
            } else {
                EXPECT_GT(simulator.cachedSessionTokens(1), 0u);
            }
            // Session 1's follow-up: history (256 + 8) + fresh
            // message.
            simulator.deliver(sessionRequest(2, 1, 328, 8));
            drainReplica(simulator);
            const ServingReport report = simulator.finishSession();
            EXPECT_EQ(report.completed, 3u);
            for (const auto &request : report.requests) {
                if (request.id == 2)
                    return request.completed;
            }
            ADD_FAILURE() << "follow-up turn missing from report";
            return 0.0;
        };

    const Seconds warm = follow_up_completed(0);   // Unlimited.
    const Seconds cold = follow_up_completed(300); // One context.
    // Identical arrivals and decode work; the evicted run re-pays
    // the ~328-token prompt prefill the resident run skipped.
    EXPECT_LT(warm, cold);
}

namespace {

/**
 * A resumed request with tokensGenerated == 0: queued work taken
 * off a replica (takeQueued — the migrate verb's source for queued
 * requests) before it ever prefilled.  deliverResumed explicitly
 * allows this shape; the regression tests below pin that it is
 * treated as *resumed* (never shed at requeue, never stolen as a
 * plain request), not misclassified as fresh.
 */
ResumableRequest
zeroTokenResumable()
{
    ServingSimulator source(fastConfig(4), model::opt13b(),
                            fastServing(1));
    source.beginSession();
    source.deliver(ServedRequest{0, 0.0, 64, 8, 0});
    source.deliver(ServedRequest{1, 0.0, 64, 8, 0});
    source.startNextWork(0.0); // Admits 0; 1 stays queued.
    ResumableRequest moved = source.takeQueued(1);
    ++moved.migrations; // What the fleet's migrate verb records.
    return moved;
}

} // namespace

TEST(Serving, ZeroTokenResumedEntrySurvivesRequeueOverflow)
{
    const ResumableRequest moved = zeroTokenResumable();
    ASSERT_EQ(moved.tokensGenerated, 0u);

    // Destination under admission pressure: one slot, zero queue.
    // A fresh arrival past capacity is rejected; the resumed entry
    // held queue capacity once already and must never be.
    ServingConfig tight = fastServing(1);
    tight.maxQueue = 0;
    ServingSimulator replica(fastConfig(4), model::opt13b(),
                             tight);
    replica.beginSession();
    replica.deliver(ServedRequest{2, 0.0, 64, 8, 0});
    replica.startNextWork(0.0);
    replica.completeWork(); // Request 2 running.

    replica.deliver(ServedRequest{3, replica.clock(), 64, 8, 0});
    replica.deliverResumed(moved, replica.clock(), 0);
    for (;;) {
        if (replica.busy())
            replica.completeWork();
        if (replica.startNextWork(replica.clock()).kind ==
            StepKind::Idle)
            break;
    }
    const ServingReport report = replica.finishSession();
    // The fresh overflow (id 3) is shed; the zero-token resumed
    // entry (id 1) is not, and completes with all its tokens.
    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.rejected, 1u);
    for (const auto &request : report.requests) {
        if (request.id == 1) {
            EXPECT_FALSE(request.rejected);
            EXPECT_EQ(request.tokens, 8u);
            EXPECT_EQ(request.migrations, 1u);
        }
        if (request.id == 3) {
            EXPECT_TRUE(request.rejected);
        }
    }
}

TEST(Serving, ZeroTokenResumedEntryIsNeverStolenWithoutItsKv)
{
    const ResumableRequest moved = zeroTokenResumable();

    ServingSimulator replica(fastConfig(4), model::opt13b(),
                             fastServing(1));
    replica.beginSession();
    replica.deliverResumed(moved, 0.0, 0);

    // stealQueued moves plain ServedRequests and drops resume
    // state; a resumed entry — zero-token included — must be
    // skipped.  (Use the migrate verb to move it with its KV.)
    const auto stolen = replica.stealQueued(4);
    EXPECT_TRUE(stolen.empty());

    // The migrate path round-trips it with counters intact and the
    // backlog counter returning exactly to zero (no wrap).
    const ResumableRequest again =
        replica.takeQueued(moved.request.id);
    EXPECT_EQ(again.tokensGenerated, 0u);
    EXPECT_EQ(again.migrations, 1u);
    EXPECT_DOUBLE_EQ(replica.observedBacklogTokens(), 0.0);

    ServingSimulator destination(fastConfig(4), model::opt13b(),
                                 fastServing(1));
    destination.beginSession();
    destination.deliverResumed(again, 0.0, 0);
    for (;;) {
        if (destination.busy())
            destination.completeWork();
        if (destination.startNextWork(destination.clock()).kind ==
            StepKind::Idle)
            break;
    }
    const ServingReport report = destination.finishSession();
    ASSERT_EQ(report.completed, 1u);
    EXPECT_EQ(report.requests.size(), 1u);
    EXPECT_EQ(report.requests[0].tokens, 8u);
    EXPECT_EQ(report.requests[0].migrations, 1u);
}

TEST(Serving, DegeneratePolicyValuesAreGuarded)
{
    System system(fastConfig(4));
    const auto workload = syntheticWorkload(3, 10.0, 64, 8, 3);
    ServingConfig config;
    config.maxBatch = 0;          // Clamped to 1.
    config.calibrationTokens = 0; // Clamped to 1.
    config.seqBucket = 0;         // Clamped to 1.
    const auto report =
        system.serve(model::opt13b(), workload, config);
    EXPECT_EQ(report.completed, 3u);
    EXPECT_EQ(report.peakBatch, 1u);
}

} // namespace
} // namespace hermes::serving
