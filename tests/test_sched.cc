/**
 * @file
 * Tests for the scheduling stack: offline ILP partitioner (validated
 * against exhaustive optima), the lightweight predictor, the online
 * mapper, and the window-based rebalancer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "model/llm_config.hh"
#include "sched/ilp_partition.hh"
#include "sched/mapper.hh"
#include "sched/placement.hh"
#include "sched/predictor.hh"
#include "sched/window_scheduler.hh"

namespace hermes::sched {
namespace {

// ---------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------

TEST(Placement, RoundRobinSpreadsNeurons)
{
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = 2;
    const ModelPlacement placement =
        makeRoundRobinPlacement(llm, 4);
    const auto counts = placement.mlp[0].dimmCounts();
    const std::uint64_t expected = llm.mlpNeuronsPerLayer() / 4;
    for (const auto count : counts)
        EXPECT_NEAR(static_cast<double>(count),
                    static_cast<double>(expected), 1.0);
    EXPECT_EQ(placement.mlp[0].gpuResidentCount(), 0u);
}

TEST(Placement, GpuBytesTrackResidents)
{
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = 1;
    ModelPlacement placement = makeRoundRobinPlacement(llm, 2);
    placement.mlp[0].setOnGpu(0, true);
    placement.mlp[0].setOnGpu(5, true);
    placement.attn[0].setOnGpu(1, true);
    EXPECT_EQ(placement.gpuBytesUsed(llm),
              2 * llm.mlpNeuronBytes() + llm.attnNeuronBytes());
}

// ---------------------------------------------------------------
// ILP partitioner.
// ---------------------------------------------------------------

PartitionProblem
tinyProblem(std::vector<double> freq, Bytes gpu_budget,
            std::uint32_t dimms = 2)
{
    PartitionProblem problem;
    BlockProblem block;
    block.frequency = std::move(freq);
    block.neuronBytes = 100;
    block.gpuTimePerNeuron = 1.0e-6;
    block.dimmTimePerNeuron = 8.0e-6;
    problem.blocks.push_back(std::move(block));
    problem.syncTime = 1.0e-6;
    problem.gpuBudget = gpu_budget;
    problem.dimmBudgets.assign(dimms, 1 * kMiB);
    return problem;
}

TEST(IlpPartition, ObjectiveMatchesHandComputation)
{
    const PartitionProblem problem =
        tinyProblem({1.0, 0.5, 0.25}, 1000);
    PartitionAssignment assignment;
    assignment.location = {{-1, 0, 1}};
    // GPU: 1.0*1us + 2*1us = 3us; DIMM0: 0.5*8us = 4us; DIMM1: 2us.
    EXPECT_NEAR(IlpPartitioner::objective(problem, assignment), 4.0e-6,
                1e-12);
}

TEST(IlpPartition, FeasibilityChecksBudgets)
{
    const PartitionProblem problem = tinyProblem({1.0, 0.5}, 100);
    PartitionAssignment too_hot;
    too_hot.location = {{-1, -1}}; // 200 B > 100 B GPU budget.
    EXPECT_FALSE(IlpPartitioner::feasible(problem, too_hot));
    PartitionAssignment fits;
    fits.location = {{-1, 0}};
    EXPECT_TRUE(IlpPartitioner::feasible(problem, fits));
}

TEST(IlpPartition, SolverMatchesExhaustiveOnTinyInstances)
{
    const IlpPartitioner solver;
    // Several shapes: skewed, uniform, tight and loose budgets.
    const std::vector<std::vector<double>> shapes = {
        {0.9, 0.7, 0.5, 0.3, 0.1, 0.05},
        {0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
        {1.0, 0.02, 0.02, 0.02, 0.02, 0.02},
    };
    for (const auto &shape : shapes) {
        for (const Bytes budget : {0ull, 200ull, 600ull}) {
            const PartitionProblem problem =
                tinyProblem(shape, budget);
            const PartitionResult greedy = solver.solve(problem);
            const PartitionResult exact =
                solver.solveExhaustive(problem);
            EXPECT_TRUE(IlpPartitioner::feasible(
                problem, greedy.assignment));
            // LPT + waterline is near-optimal; allow 15% slack.
            EXPECT_LE(greedy.objective, 1.15 * exact.objective + 1e-12)
                << "budget=" << budget;
        }
    }
}

TEST(IlpPartition, HotNeuronsGoToGpuFirst)
{
    // Budget for exactly two neurons: the two most frequent must be
    // the ones promoted.
    const PartitionProblem problem =
        tinyProblem({0.9, 0.1, 0.8, 0.2}, 200);
    const PartitionResult result = IlpPartitioner().solve(problem);
    const auto &loc = result.assignment.location[0];
    EXPECT_EQ(loc[0], -1);
    EXPECT_EQ(loc[2], -1);
    EXPECT_GE(loc[1], 0);
    EXPECT_GE(loc[3], 0);
}

TEST(IlpPartition, ZeroBudgetKeepsEverythingCold)
{
    const PartitionProblem problem =
        tinyProblem({0.9, 0.8, 0.7}, 0);
    const PartitionResult result = IlpPartitioner().solve(problem);
    for (const auto loc : result.assignment.location[0])
        EXPECT_GE(loc, 0);
}

TEST(IlpPartition, ColdNeuronsBalancedAcrossDimms)
{
    std::vector<double> freq(64, 0.0);
    for (std::size_t i = 0; i < freq.size(); ++i)
        freq[i] = 1.0 / static_cast<double>(i + 1);
    const PartitionProblem problem = tinyProblem(freq, 0, 4);
    const PartitionResult result = IlpPartitioner().solve(problem);
    std::vector<double> mass(4, 0.0);
    for (std::size_t i = 0; i < freq.size(); ++i)
        mass[static_cast<std::size_t>(
            result.assignment.location[0][i])] += freq[i];
    const double max_mass = *std::max_element(mass.begin(), mass.end());
    const double min_mass = *std::min_element(mass.begin(), mass.end());
    EXPECT_LT(max_mass / min_mass, 1.25);
}

TEST(IlpPartition, RespectsDimmCapacity)
{
    PartitionProblem problem = tinyProblem({0.5, 0.5, 0.5, 0.5}, 0);
    problem.dimmBudgets = {200, 200}; // Two neurons per DIMM max.
    const PartitionResult result = IlpPartitioner().solve(problem);
    EXPECT_TRUE(IlpPartitioner::feasible(problem, result.assignment));
}

TEST(IlpPartition, MoreGpuBudgetNeverHurts)
{
    std::vector<double> freq(32);
    for (std::size_t i = 0; i < freq.size(); ++i)
        freq[i] = std::pow(0.8, static_cast<double>(i));
    Seconds prev = 1e30;
    for (const Bytes budget : {0ull, 400ull, 800ull, 1600ull}) {
        const PartitionResult result =
            IlpPartitioner().solve(tinyProblem(freq, budget));
        EXPECT_LE(result.objective, prev + 1e-15);
        prev = result.objective;
    }
}

// ---------------------------------------------------------------
// Predictor.
// ---------------------------------------------------------------

TEST(Predictor, FrequencyInitBucketsInto16Stages)
{
    BlockPredictor predictor(4, PredictorConfig{});
    predictor.initFromFrequency({0.95, 0.5, 0.1, 0.0});
    EXPECT_EQ(predictor.state(0), 15);
    EXPECT_EQ(predictor.state(1), 8);
    EXPECT_EQ(predictor.state(2), 1);
    EXPECT_EQ(predictor.state(3), 0);
}

TEST(Predictor, FsmUpdatePlusFourMinusOne)
{
    BlockPredictor predictor(2, PredictorConfig{});
    predictor.initFromFrequency({0.5, 0.7}); // States 8 and 11.
    predictor.update({1, 0});
    EXPECT_EQ(predictor.state(0), 12); // 8 + 4 (Fig. 7a example).
    EXPECT_EQ(predictor.state(1), 10); // 11 - 1.
}

TEST(Predictor, FsmSaturatesAtBounds)
{
    BlockPredictor predictor(2, PredictorConfig{});
    predictor.initFromFrequency({0.99, 0.0});
    for (int t = 0; t < 10; ++t)
        predictor.update({1, 0});
    EXPECT_EQ(predictor.state(0), 15);
    EXPECT_EQ(predictor.state(1), 0);
}

TEST(Predictor, DecisionRuleCombinesTokenAndLayer)
{
    PredictorConfig config; // lambda=6, T=15.
    BlockPredictor predictor(3, config);
    predictor.initFromFrequency({0.25, 0.65, 0.99}); // s1 = 4, 10, 15.
    predictor.setCorrelation({0, 1, 2}, {1, 2, 0});

    // Parents 0 and 1 active, parent 2 idle.
    std::vector<std::uint8_t> parent_mask = {1, 1, 0};
    std::vector<std::uint8_t> out;
    predictor.predict(&parent_mask, out);
    // Neuron 0: 4 + 6*2 = 16 >= 15 -> active.
    EXPECT_TRUE(out[0]);
    // Neuron 1: 10 + 6*1 = 16 >= 15 -> active.
    EXPECT_TRUE(out[1]);
    // Neuron 2: 15 + 6*1 (parent2=0 active) -> active.
    EXPECT_TRUE(out[2]);

    std::vector<std::uint8_t> idle_parents = {0, 0, 0};
    predictor.predict(&idle_parents, out);
    EXPECT_FALSE(out[0]); // 4 < 15.
    EXPECT_FALSE(out[1]); // 10 < 15.
    EXPECT_TRUE(out[2]);  // Saturated state alone suffices (>=).
}

TEST(Predictor, HotClassificationUsesTh)
{
    PredictorConfig config; // Th = 10.
    BlockPredictor predictor(2, config);
    predictor.initFromFrequency({0.65, 0.6}); // States 10, 9.
    EXPECT_TRUE(predictor.isHot(0));
    EXPECT_FALSE(predictor.isHot(1));
}

TEST(Predictor, StorageMatchesPaperClaims)
{
    // LLaMA-7B: 32 layers x (4K attn + 10.5K MLP) at 4 bits ~ 232 KB.
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = 32;
    llm.hidden = 4096;
    llm.ffnHidden = 11008;
    llm.heads = 32;
    llm.kvHeads = 32;
    const ModelPredictor predictor(llm, PredictorConfig{});
    EXPECT_NEAR(static_cast<double>(predictor.stateTableBytes()),
                232.0 * 1024, 0.05 * 232 * 1024);
    EXPECT_LT(predictor.totalBytes(), 1 * kMiB);
}

TEST(Predictor, HighAccuracyOnSyntheticTrace)
{
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = 6;
    sparsity::ActivationTrace trace(llm, sparsity::SparsityConfig{}, 1);
    ModelPredictor predictor(llm, PredictorConfig{});
    predictor.calibrate(trace, 64);
    trace.reset(1);
    std::vector<std::vector<std::uint8_t>> attn_masks, mlp_masks;
    for (int t = 0; t < 64; ++t) {
        trace.nextToken();
        predictor.stepToken(trace, attn_masks, mlp_masks);
    }
    // Sec. IV-C1 claims ~98%; require >= 94% on the synthetic trace.
    EXPECT_GT(predictor.metrics().accuracy(), 0.94);
    EXPECT_GT(predictor.metrics().recall(), 0.85);
}

TEST(Predictor, SampledCorrelationIsPredictive)
{
    // Neighboring ranks share latent slots, so several parents are
    // statistically interchangeable; the estimator must find parents
    // whose conditional predictive power matches the true wiring
    // (identity recovery is ill-posed by design).
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = 3;
    llm.hidden = 512;
    llm.ffnHidden = 1024;
    llm.heads = 8;
    llm.kvHeads = 8;
    // Correlation sampling happens offline within one context.
    sparsity::SparsityConfig sparsity_config;
    sparsity_config.phaseTokens = 0;
    sparsity::ActivationTrace trace(llm, sparsity_config, 1);
    const auto [parent1, parent2] =
        sampleCorrelation(trace, 1, /*child_is_mlp=*/true, 256);

    // Fresh evaluation segment: compare P(child | sampled parent)
    // against P(child | true parent).
    trace.reset(7);
    const auto &mlp = trace.mlp(1);
    const auto &attn = trace.attn(1);
    std::uint64_t sampled_joint = 0, sampled_parent = 0;
    std::uint64_t true_joint = 0, true_parent = 0;
    for (int t = 0; t < 128; ++t) {
        trace.nextToken();
        for (std::uint32_t i = 0; i < mlp.neurons(); ++i) {
            const bool child = mlp.mask[i] != 0;
            if (attn.mask[parent1[i]]) {
                ++sampled_parent;
                sampled_joint += child;
            }
            if (attn.mask[mlp.parent1[i]]) {
                ++true_parent;
                true_joint += child;
            }
        }
    }
    const double sampled_cond =
        static_cast<double>(sampled_joint) / sampled_parent;
    const double true_cond =
        static_cast<double>(true_joint) / true_parent;
    EXPECT_GT(sampled_cond, 0.9 * true_cond);
    EXPECT_GT(sampled_cond, 0.5); // Far above the ~0.2 marginal.
}

TEST(PredictionMetricsTest, CountsAndRates)
{
    PredictionMetrics metrics;
    metrics.tally(true, true);
    metrics.tally(true, false);
    metrics.tally(false, true);
    metrics.tally(false, false);
    EXPECT_EQ(metrics.total(), 4u);
    EXPECT_DOUBLE_EQ(metrics.accuracy(), 0.5);
    EXPECT_DOUBLE_EQ(metrics.recall(), 0.5);
    EXPECT_DOUBLE_EQ(metrics.precision(), 0.5);
}

// ---------------------------------------------------------------
// Mapper.
// ---------------------------------------------------------------

TEST(Mapper, PromotesHotAndEvictsColdest)
{
    // Scores: 12 (hot, off-GPU), 3 (cold resident), 11 (hot
    // resident), 2 (cold, off-GPU).
    const std::vector<std::uint32_t> scores = {12, 3, 11, 2};
    BlockPlacement placement(4, 2);
    placement.setOnGpu(1, true);
    placement.setOnGpu(2, true);

    const AdjustmentResult result =
        NeuronMapper::adjustBlock(placement, scores, 100);
    EXPECT_EQ(result.promotions, 1u);
    EXPECT_EQ(result.evictions, 1u);
    EXPECT_EQ(result.pcieBytes, 100u);
    EXPECT_TRUE(placement.onGpu(0));  // Promoted.
    EXPECT_FALSE(placement.onGpu(1)); // Evicted (lowest score).
    EXPECT_TRUE(placement.onGpu(2));  // Untouched.
}

TEST(Mapper, NoChurnWhenResidentsAreHotter)
{
    const std::vector<std::uint32_t> scores = {10, 15};
    BlockPlacement placement(2, 1);
    placement.setOnGpu(1, true);
    const AdjustmentResult result =
        NeuronMapper::adjustBlock(placement, scores, 100);
    EXPECT_EQ(result.promotions, 0u);
    EXPECT_TRUE(placement.onGpu(1));
}

TEST(Mapper, HysteresisSuppressesMarginalSwaps)
{
    // Score difference of 1 is inside the default hysteresis of 2.
    const std::vector<std::uint32_t> scores = {12, 11};
    BlockPlacement placement(2, 1);
    placement.setOnGpu(1, true);
    const AdjustmentResult result =
        NeuronMapper::adjustBlock(placement, scores, 100);
    EXPECT_EQ(result.promotions, 0u);

    AdjustmentPolicy eager;
    eager.hysteresis = 0;
    const AdjustmentResult eager_result =
        NeuronMapper::adjustBlock(placement, scores, 100, eager);
    EXPECT_EQ(eager_result.promotions, 1u);
}

TEST(Mapper, SwapCapBoundsChurn)
{
    std::vector<std::uint32_t> scores(64, 15);
    for (std::uint32_t i = 32; i < 64; ++i)
        scores[i] = 0;
    BlockPlacement placement(64, 2);
    for (std::uint32_t i = 32; i < 64; ++i)
        placement.setOnGpu(i, true);
    AdjustmentPolicy policy;
    policy.maxSwaps = 4;
    const AdjustmentResult result =
        NeuronMapper::adjustBlock(placement, scores, 10, policy);
    EXPECT_EQ(result.promotions, 4u);
    EXPECT_EQ(placement.gpuResidentCount(), 32u);
}

TEST(Mapper, QuotaStaysConstant)
{
    std::vector<std::uint32_t> scores = {14, 14, 14, 14, 1, 1, 1, 1};
    BlockPlacement placement(8, 2);
    for (std::uint32_t i = 4; i < 8; ++i)
        placement.setOnGpu(i, true);
    NeuronMapper::adjustBlock(placement, scores, 10);
    EXPECT_EQ(placement.gpuResidentCount(), 4u);
}

TEST(Predictor, HotScoresCombineSignals)
{
    PredictorConfig config; // lambda = 6.
    BlockPredictor predictor(3, config);
    predictor.initFromFrequency({0.5, 0.9, 0.1}); // 8, 14, 1.
    predictor.setCorrelation({0, 1, 2}, {1, 2, 0});
    predictor.update({1, 0, 0}); // Live: 12, 13, 0.

    std::vector<std::uint8_t> parents = {1, 0, 0};
    std::vector<std::uint32_t> scores;
    // Token only: live states.
    predictor.hotScores(nullptr, true, false, scores);
    EXPECT_EQ(scores[0], 12u);
    EXPECT_EQ(scores[1], 13u);
    // Layer only: frozen initial + parent bonus.
    predictor.hotScores(&parents, false, true, scores);
    EXPECT_EQ(scores[0], 8u + 6u); // parent1 = 0 active.
    EXPECT_EQ(scores[1], 14u);     // parents 1 and 2 idle.
    EXPECT_EQ(scores[2], 1u + 6u); // parent2 = 0 active.
    // Both: live + bonus.
    predictor.hotScores(&parents, true, true, scores);
    EXPECT_EQ(scores[0], 12u + 6u);
}

TEST(Mapper, ApplyPartitionSetsHomesAndResidents)
{
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = 1;
    llm.hidden = 4;
    llm.ffnHidden = 8;
    llm.heads = 2;
    llm.kvHeads = 2;
    ModelPlacement placement = makeRoundRobinPlacement(llm, 2);
    PartitionAssignment assignment;
    assignment.location = {
        {-1, 0, 1, 0},                 // attn
        {-1, -1, 0, 0, 1, 1, 0, 1},    // mlp
    };
    NeuronMapper::applyPartition(placement, assignment);
    EXPECT_TRUE(placement.attn[0].onGpu(0));
    EXPECT_FALSE(placement.attn[0].onGpu(1));
    EXPECT_EQ(placement.attn[0].homeDimm(2), 1u);
    EXPECT_EQ(placement.mlp[0].gpuResidentCount(), 2u);
}

// ---------------------------------------------------------------
// Window scheduler (Algorithm 1).
// ---------------------------------------------------------------

TEST(WindowSchedulerTest, WindowCompletesAfterFiveTokens)
{
    WindowScheduler scheduler(16, 2, 5);
    for (int t = 0; t < 4; ++t) {
        scheduler.observe({0, 1});
        EXPECT_FALSE(scheduler.windowComplete());
    }
    scheduler.observe({0});
    EXPECT_TRUE(scheduler.windowComplete());
}

TEST(WindowSchedulerTest, RebalanceMovesFromOverloadedToUnderloaded)
{
    // All activity on DIMM 0; rebalance must move some to DIMM 1.
    WindowScheduler scheduler(8, 2, 1);
    BlockPlacement placement(8, 2);
    for (std::uint32_t i = 0; i < 8; ++i)
        placement.setHomeDimm(i, 0);
    scheduler.observe({0, 1, 2, 3, 4, 5});

    const auto transfers = scheduler.rebalance(placement, 100);
    ASSERT_EQ(transfers.size(), 1u);
    EXPECT_EQ(transfers[0].fromDimm, 0u);
    EXPECT_EQ(transfers[0].toDimm, 1u);
    std::uint32_t moved = 0;
    for (std::uint32_t i = 0; i < 8; ++i)
        moved += placement.homeDimm(i) == 1;
    EXPECT_GT(moved, 0u);
}

TEST(WindowSchedulerTest, BalancedLoadNeedsNoMigration)
{
    WindowScheduler scheduler(8, 2, 1);
    BlockPlacement placement(8, 2);
    for (std::uint32_t i = 0; i < 8; ++i)
        placement.setHomeDimm(i, static_cast<std::uint16_t>(i % 2));
    scheduler.observe({0, 1, 2, 3});
    const auto transfers = scheduler.rebalance(placement, 100);
    EXPECT_TRUE(transfers.empty());
}

TEST(WindowSchedulerTest, GpuResidentNeuronsDoNotCount)
{
    WindowScheduler scheduler(4, 2, 1);
    BlockPlacement placement(4, 2);
    for (std::uint32_t i = 0; i < 4; ++i)
        placement.setHomeDimm(i, 0);
    placement.setOnGpu(0, true);
    placement.setOnGpu(1, true);
    scheduler.observe({0, 1, 2});
    const auto loads = scheduler.dimmLoads(placement);
    EXPECT_EQ(loads[0], 1u); // Only neuron 2 counts.
}

TEST(WindowSchedulerTest, RebalanceImprovesMakespan)
{
    WindowScheduler scheduler(64, 4, 1);
    BlockPlacement placement(64, 4);
    // Skewed placement: most neurons on DIMMs 0 and 1.
    for (std::uint32_t i = 0; i < 64; ++i)
        placement.setHomeDimm(i, static_cast<std::uint16_t>(
                                     i < 48 ? i % 2 : 2 + i % 2));
    std::vector<std::uint32_t> all(64);
    std::iota(all.begin(), all.end(), 0);
    scheduler.observe(all);

    const auto before = scheduler.dimmLoads(placement);
    const std::uint64_t before_max =
        *std::max_element(before.begin(), before.end());

    WindowScheduler fresh(64, 4, 1);
    fresh.observe(all);
    fresh.rebalance(placement, 10);

    WindowScheduler check(64, 4, 1);
    check.observe(all);
    const auto after = check.dimmLoads(placement);
    const std::uint64_t after_max =
        *std::max_element(after.begin(), after.end());
    EXPECT_LT(after_max, before_max);
}

TEST(WindowSchedulerTest, OracleAtLeastAsBalancedAsGreedy)
{
    auto skewed_placement = [] {
        BlockPlacement placement(64, 4);
        for (std::uint32_t i = 0; i < 64; ++i)
            placement.setHomeDimm(
                i, static_cast<std::uint16_t>(i % 4 == 0 ? 0 : 1));
        return placement;
    };
    std::vector<std::uint32_t> all(64);
    std::iota(all.begin(), all.end(), 0);

    BlockPlacement greedy_placement = skewed_placement();
    WindowScheduler greedy(64, 4, 1);
    greedy.observe(all);
    greedy.rebalance(greedy_placement, 10);

    BlockPlacement oracle_placement = skewed_placement();
    WindowScheduler oracle(64, 4, 1);
    oracle.observe(all);
    oracle.rebalanceOracle(oracle_placement, 10);

    WindowScheduler probe(64, 4, 1);
    probe.observe(all);
    const auto greedy_loads = probe.dimmLoads(greedy_placement);
    WindowScheduler probe2(64, 4, 1);
    probe2.observe(all);
    const auto oracle_loads = probe2.dimmLoads(oracle_placement);
    EXPECT_LE(*std::max_element(oracle_loads.begin(),
                                oracle_loads.end()),
              *std::max_element(greedy_loads.begin(),
                                greedy_loads.end()));
}

TEST(WindowSchedulerTest, SingleDimmIsNoop)
{
    WindowScheduler scheduler(8, 1, 1);
    BlockPlacement placement(8, 1);
    scheduler.observe({0, 1, 2});
    EXPECT_TRUE(scheduler.rebalance(placement, 10).empty());
}

} // namespace
} // namespace hermes::sched

namespace hermes::sched {
namespace {

TEST(WindowSchedulerTest, LargerWindowSmoothsNoise)
{
    // A window of 1 token reacts to noise; a window of 5 (the paper's
    // choice) accumulates activity before moving anything.  With the
    // same observations, the 5-token scheduler must not have
    // completed its window after 3 tokens.
    WindowScheduler fast(16, 2, 1);
    WindowScheduler slow(16, 2, 5);
    for (int t = 0; t < 3; ++t) {
        fast.observe({0, 1, 2});
        slow.observe({0, 1, 2});
    }
    EXPECT_TRUE(fast.windowComplete());
    EXPECT_FALSE(slow.windowComplete());
    // Activity accumulates across the window.
    EXPECT_EQ(slow.activity(0), 3u);
}

TEST(WindowSchedulerTest, RebalanceClearsTheWindow)
{
    WindowScheduler scheduler(8, 2, 1);
    BlockPlacement placement(8, 2);
    scheduler.observe({0, 1});
    scheduler.rebalance(placement, 10);
    EXPECT_FALSE(scheduler.windowComplete());
    EXPECT_EQ(scheduler.activity(0), 0u);
}

} // namespace
} // namespace hermes::sched
