/**
 * @file
 * Unit tests for the common substrate: units, RNG, stats, tables,
 * and worker-pool sizing clamps.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/threads.hh"
#include "common/units.hh"

namespace hermes {
namespace {

TEST(Units, GbpsConvertsDecimalGigabytes)
{
    EXPECT_DOUBLE_EQ(gbps(64.0), 64.0e9);
    EXPECT_DOUBLE_EQ(gbps(0.0), 0.0);
}

TEST(Units, TflopsConverts)
{
    EXPECT_DOUBLE_EQ(tflops(82.6), 82.6e12);
}

TEST(Units, CycleConversionRoundTrips)
{
    const double hz = 1.6e9;
    EXPECT_DOUBLE_EQ(cyclesToSeconds(1600, hz), 1e-6);
    EXPECT_EQ(secondsToCycles(1e-6, hz), 1600u);
}

TEST(Units, SecondsToCyclesRoundsUp)
{
    EXPECT_EQ(secondsToCycles(1.0001e-6, 1.0e9), 1001u);
    EXPECT_EQ(secondsToCycles(0.0, 1.0e9), 0u);
}

TEST(Units, BinarySizesAreExact)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024u);
    EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInBound)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.below(17);
        ASSERT_LT(v, 17u);
        seen.insert(v);
    }
    // All residues should appear over 2000 draws.
    EXPECT_EQ(seen.size(), 17u);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Stats, CounterAccumulates)
{
    Counter c;
    c.add(1.5);
    c.add(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 4.0);
    EXPECT_EQ(c.samples(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Stats, DistributionMoments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 5.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyDistributionIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, StatSetLazyCreation)
{
    StatSet set;
    set.counter("x").add(3.0);
    EXPECT_TRUE(set.hasCounter("x"));
    EXPECT_FALSE(set.hasCounter("y"));
    EXPECT_DOUBLE_EQ(set.counterValue("x"), 3.0);
}

TEST(Stats, StatSetResetClearsAll)
{
    StatSet set;
    set.counter("a").add(1.0);
    set.distribution("d").sample(2.0);
    set.reset();
    EXPECT_DOUBLE_EQ(set.counterValue("a"), 0.0);
    EXPECT_EQ(set.distribution("d").count(), 0u);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

// The standard allows hardware_concurrency() to return 0 ("not
// computable").  Every pool in the simulator sizes itself through
// these helpers, so a zero probe must never produce a zero-thread
// pool or a zero divisor.  The probe value is a parameter exactly so
// this case is pinnable without mocking the standard library.
TEST(Threads, ZeroHardwareProbeNeverYieldsZeroThreads)
{
    EXPECT_EQ(effectiveThreads(0, 0), 1u);
    EXPECT_EQ(effectiveThreads(0, 8), 8u);
    // An explicit request wins over any probe value, including 0.
    EXPECT_EQ(effectiveThreads(4, 0), 4u);
    EXPECT_EQ(effectiveThreads(4, 64), 4u);
    EXPECT_GE(hardwareThreads(), 1u);
}

TEST(Threads, WorkerCountCappedByJobsAndNeverZeroWithWork)
{
    // Zero probe, no request: one worker as long as there is work.
    EXPECT_EQ(resolveWorkerCount(0, 0, 100), 1u);
    // No work at all is the only way to get zero workers (callers
    // treat <= 1 as "run serially").
    EXPECT_EQ(resolveWorkerCount(0, 0, 0), 0u);
    EXPECT_EQ(resolveWorkerCount(8, 4, 0), 0u);
    // Idle workers are never spawned: capped at the job count.
    EXPECT_EQ(resolveWorkerCount(8, 4, 5), 5u);
    EXPECT_EQ(resolveWorkerCount(2, 64, 100), 2u);
    // Fallback path follows the probe when no request is given.
    EXPECT_EQ(resolveWorkerCount(0, 6, 100), 6u);
}

} // namespace
} // namespace hermes
