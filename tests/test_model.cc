/**
 * @file
 * Unit tests for the LLM architecture zoo: parameter-count sanity
 * against the published model cards and the neuron-bundle accounting
 * of Sec. II-B.
 */

#include <gtest/gtest.h>

#include "model/llm_config.hh"

namespace hermes::model {
namespace {

TEST(LlmZoo, TotalBytesMatchParameterCounts)
{
    // FP16: bytes ~= 2 * params.  Model cards give the param counts;
    // allow 5% for embedding/bias accounting differences.
    EXPECT_NEAR(static_cast<double>(opt13b().totalBytes()),
                2.0 * 13.0e9, 0.08 * 2.0 * 13.0e9);
    EXPECT_NEAR(static_cast<double>(opt30b().totalBytes()),
                2.0 * 30.0e9, 0.08 * 2.0 * 30.0e9);
    EXPECT_NEAR(static_cast<double>(opt66b().totalBytes()),
                2.0 * 66.0e9, 0.08 * 2.0 * 66.0e9);
    EXPECT_NEAR(static_cast<double>(llama2_13b().totalBytes()),
                2.0 * 13.0e9, 0.08 * 2.0 * 13.0e9);
    EXPECT_NEAR(static_cast<double>(llama2_70b().totalBytes()),
                2.0 * 70.0e9, 0.08 * 2.0 * 70.0e9);
    EXPECT_NEAR(static_cast<double>(falcon40b().totalBytes()),
                2.0 * 41.0e9, 0.10 * 2.0 * 41.0e9);
}

TEST(LlmZoo, Llama7bNeuronCountsMatchSec4C1)
{
    // Sec. IV-C1 quotes LLaMA-7B: 4K attention neurons and 10.5K MLP
    // neurons per layer.  Verify the abstraction reproduces this for
    // the LLaMA geometry (H=4096, F=11008).
    LlmConfig c = llama2_13b();
    c.hidden = 4096;
    c.ffnHidden = 11008;
    c.heads = 32;
    c.kvHeads = 32;
    EXPECT_EQ(c.attnNeuronsPerLayer(), 4096u);
    EXPECT_EQ(c.mlpNeuronsPerLayer(), 11008u);
}

TEST(LlmZoo, GqaShrinksAttnNeuronBytes)
{
    const LlmConfig gqa = llama2_70b();   // 8 KV heads.
    LlmConfig mha = gqa;
    mha.kvHeads = mha.heads;
    EXPECT_LT(gqa.attnNeuronBytes(), mha.attnNeuronBytes());
    // GQA: H + 2*kvDim = 8192 + 2*1024.
    EXPECT_EQ(gqa.attnNeuronBytes(), (8192u + 2048u) * 2u);
}

TEST(LlmZoo, GatedMlpUsesThreeMatrices)
{
    EXPECT_EQ(llama2_70b().mlpMatrices, 3u);
    EXPECT_EQ(opt66b().mlpMatrices, 2u);
    EXPECT_EQ(falcon40b().mlpMatrices, 2u);
    EXPECT_EQ(llama2_70b().mlpNeuronBytes(), 3ull * 8192 * 2);
}

TEST(LlmZoo, LayerBytesDecompose)
{
    for (const auto &llm : allModels()) {
        EXPECT_EQ(llm.layerBytes(),
                  llm.sparseBytesPerLayer() +
                      llm.projectionBytesPerLayer())
            << llm.name;
        EXPECT_EQ(llm.totalBytes(),
                  llm.layers * llm.layerBytes() + llm.embeddingBytes())
            << llm.name;
    }
}

TEST(LlmZoo, KvBytesPerToken)
{
    const LlmConfig c = llama2_70b();
    // 2 (K,V) * layers * kvDim * 2 B = 2*80*1024*2.
    EXPECT_EQ(c.kvBytesPerToken(), 2ull * 80 * 1024 * 2);
}

TEST(LlmZoo, DenseFlopsScaleWithParams)
{
    // ~2 FLOPs per weight per token.
    for (const auto &llm : allModels()) {
        const double flops = llm.denseFlopsPerToken(128);
        const double weights = static_cast<double>(llm.totalBytes()) /
                               kFp16Bytes;
        EXPECT_GT(flops, 1.5 * weights) << llm.name;
        EXPECT_LT(flops, 2.5 * weights) << llm.name;
    }
}

TEST(LlmZoo, LookupByName)
{
    EXPECT_EQ(modelByName("OPT-66B").layers, 64u);
    EXPECT_EQ(modelByName("LLaMA2-70B").kvHeads, 8u);
    EXPECT_DEATH(modelByName("GPT-5"), "unknown model");
}

TEST(LlmZoo, ActivationFamilies)
{
    EXPECT_EQ(opt13b().activation, Activation::NativeRelu);
    EXPECT_EQ(llama2_13b().activation, Activation::RelufiedSilu);
    EXPECT_EQ(falcon40b().activation, Activation::RelufiedGelu);
}

TEST(LlmZoo, HeadDimensionsConsistent)
{
    for (const auto &llm : allModels()) {
        EXPECT_EQ(llm.headDim() * llm.heads, llm.hidden) << llm.name;
        EXPECT_LE(llm.kvHeads, llm.heads) << llm.name;
        EXPECT_EQ(llm.heads % llm.kvHeads, 0u) << llm.name;
    }
}

} // namespace
} // namespace hermes::model
