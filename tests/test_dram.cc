/**
 * @file
 * Unit and property tests for the DDR4 command-level timing model.
 */

#include <gtest/gtest.h>

#include "dram/bandwidth_probe.hh"
#include "dram/config.hh"
#include "dram/controller.hh"
#include "dram/timing.hh"

namespace hermes::dram {
namespace {

DimmConfig
tableIiConfig()
{
    return DimmConfig{};
}

std::vector<RowRead>
sequentialRows(const DimmConfig &cfg, std::uint64_t rows)
{
    AddressMapper mapper(cfg);
    const auto bursts =
        static_cast<std::uint32_t>(cfg.rowBytes / cfg.burstBytes);
    std::vector<RowRead> reads;
    for (std::uint64_t i = 0; i < rows; ++i)
        reads.push_back(mapper.mapRowChunk(i, bursts));
    return reads;
}

TEST(Timing, TableIiDefaults)
{
    const TimingParams t = ddr4_3200();
    EXPECT_EQ(t.tRC, 76u);
    EXPECT_EQ(t.tRCD, 24u);
    EXPECT_EQ(t.tCL, 24u);
    EXPECT_EQ(t.tRP, 24u);
    EXPECT_EQ(t.tBL, 4u);
    EXPECT_EQ(t.tCCD_S, 4u);
    EXPECT_EQ(t.tCCD_L, 8u);
    EXPECT_EQ(t.tRRD_S, 4u);
    EXPECT_EQ(t.tRRD_L, 6u);
    EXPECT_EQ(t.tFAW, 26u);
    EXPECT_DOUBLE_EQ(t.clockHz, 1600.0e6);
}

TEST(Config, TableIiGeometry)
{
    const DimmConfig cfg = tableIiConfig();
    EXPECT_EQ(cfg.capacity, 32ull * kGiB);
    EXPECT_EQ(cfg.ranks, 4u);
    EXPECT_EQ(cfg.banksPerRank(), 8u);
    // 32 GiB / (4 ranks * 8 banks * 8 KiB rows).
    EXPECT_EQ(cfg.rowsPerBank(), 32ull * kGiB / (32 * 8 * kKiB));
}

TEST(Config, PeakBandwidthMatchesDdr4_3200)
{
    const DimmConfig cfg = tableIiConfig();
    // 64 B per 4 cycles at 1600 MHz = 25.6 GB/s.
    EXPECT_NEAR(cfg.rankPeakBandwidth(), 25.6e9, 1e6);
    EXPECT_NEAR(cfg.internalPeakBandwidth(), 4 * 25.6e9, 1e7);
}

TEST(Config, BurstsForRoundsUp)
{
    const DimmConfig cfg = tableIiConfig();
    EXPECT_EQ(cfg.burstsFor(0), 0u);
    EXPECT_EQ(cfg.burstsFor(1), 1u);
    EXPECT_EQ(cfg.burstsFor(64), 1u);
    EXPECT_EQ(cfg.burstsFor(65), 2u);
    EXPECT_EQ(cfg.burstsFor(8192), 128u);
}

TEST(AddressMapperTest, InterleavesBankGroupsFirst)
{
    const DimmConfig cfg = tableIiConfig();
    AddressMapper mapper(cfg);
    const RowRead r0 = mapper.mapRowChunk(0, 1);
    const RowRead r1 = mapper.mapRowChunk(1, 1);
    const RowRead r2 = mapper.mapRowChunk(2, 1);
    EXPECT_EQ(r0.bankGroup, 0u);
    EXPECT_EQ(r1.bankGroup, 1u);
    EXPECT_EQ(r2.bankGroup, 0u);
    EXPECT_EQ(r0.bank, 0u);
    EXPECT_EQ(r2.bank, 1u);
}

TEST(AddressMapperTest, RowAdvancesAfterAllBanks)
{
    const DimmConfig cfg = tableIiConfig();
    AddressMapper mapper(cfg);
    const auto banks = cfg.banksPerRank();
    EXPECT_EQ(mapper.mapRowChunk(banks - 1, 1).row, 0u);
    EXPECT_EQ(mapper.mapRowChunk(banks, 1).row, 1u);
}

TEST(Controller, SingleBurstLatency)
{
    const DimmConfig cfg = tableIiConfig();
    RankController controller(cfg);
    const ControllerStats stats =
        controller.simulate({RowRead{0, 0, 0, 1}});
    // ACT at 0, RD at tRCD, data complete at tRCD + tCL + tBL.
    const TimingParams &t = cfg.timing;
    EXPECT_EQ(stats.finishCycle, t.tRCD + t.tCL + t.tBL);
    EXPECT_EQ(stats.activates, 1u);
    EXPECT_EQ(stats.reads, 1u);
    EXPECT_EQ(stats.rowHits, 0u);
}

TEST(Controller, RowHitsWithinOneRow)
{
    const DimmConfig cfg = tableIiConfig();
    RankController controller(cfg);
    const ControllerStats stats =
        controller.simulate({RowRead{0, 0, 0, 16}});
    EXPECT_EQ(stats.activates, 1u);
    EXPECT_EQ(stats.reads, 16u);
    EXPECT_EQ(stats.rowHits, 15u);
}

TEST(Controller, SameBankRowConflictPaysPrecharge)
{
    const DimmConfig cfg = tableIiConfig();
    RankController controller(cfg);
    const ControllerStats stats = controller.simulate(
        {RowRead{0, 0, 0, 1}, RowRead{0, 0, 1, 1}});
    EXPECT_EQ(stats.activates, 2u);
    EXPECT_EQ(stats.precharges, 1u);
    // Second access cannot complete before tRC-level spacing.
    const TimingParams &t = cfg.timing;
    EXPECT_GE(stats.finishCycle,
              t.tRAS + t.tRP + t.tRCD + t.tCL + t.tBL);
}

TEST(Controller, BankGroupInterleavingBeatsSingleGroup)
{
    const DimmConfig cfg = tableIiConfig();

    // 64 bursts alternating across groups vs. all in one bank.
    std::vector<RowRead> interleaved;
    for (int i = 0; i < 8; ++i)
        interleaved.push_back(
            RowRead{static_cast<std::uint32_t>(i % 2),
                    static_cast<std::uint32_t>((i / 2) % 4), 0, 8});
    std::vector<RowRead> single = {RowRead{0, 0, 0, 64}};

    RankController controller(cfg);
    const Cycles inter = controller.simulate(interleaved).finishCycle;
    const Cycles mono = controller.simulate(single).finishCycle;
    EXPECT_LT(inter, mono);
}

TEST(Controller, SequentialStreamApproachesPeak)
{
    const DimmConfig cfg = tableIiConfig();
    RankController controller(cfg);
    const BytesPerSecond bw =
        controller.measuredBandwidth(sequentialRows(cfg, 256));
    EXPECT_GT(bw, 0.90 * cfg.rankPeakBandwidth());
    EXPECT_LE(bw, cfg.rankPeakBandwidth());
}

TEST(Controller, FcfsNoSlowerThanZeroWindowButBelowFrFcfs)
{
    const DimmConfig cfg = tableIiConfig();
    const auto reads = sequentialRows(cfg, 64);

    RankController frfcfs(cfg);
    RankController fcfs(cfg);
    fcfs.setFcfs(true);
    const Cycles fast = frfcfs.simulate(reads).finishCycle;
    const Cycles slow = fcfs.simulate(reads).finishCycle;
    // FCFS services one request at a time and cannot overlap ACTs as
    // aggressively; it must not be faster.
    EXPECT_LE(fast, slow);
}

TEST(Controller, RefreshOverheadVisibleOnLongStreams)
{
    DimmConfig cfg = tableIiConfig();
    RankController controller(cfg);
    const auto reads = sequentialRows(cfg, 2048);
    const ControllerStats stats = controller.simulate(reads);
    // 2048 rows * 128 bursts * 4 cycles > several tREFI windows.
    EXPECT_GT(stats.refreshes, 0u);
}

TEST(Controller, EmptyRequestStream)
{
    const DimmConfig cfg = tableIiConfig();
    RankController controller(cfg);
    const ControllerStats stats = controller.simulate({});
    EXPECT_EQ(stats.finishCycle, 0u);
    EXPECT_EQ(stats.reads, 0u);
    EXPECT_DOUBLE_EQ(controller.measuredBandwidth({}), 0.0);
}

TEST(Controller, ThroughputMonotonicInBurstCount)
{
    // Reading more bursts from the same row amortizes the ACT: the
    // per-byte cost must go down.
    const DimmConfig cfg = tableIiConfig();
    RankController controller(cfg);
    double prev_cost = 1e30;
    for (std::uint32_t bursts : {1u, 2u, 8u, 32u, 128u}) {
        const ControllerStats stats =
            controller.simulate({RowRead{0, 0, 0, bursts}});
        const double cost =
            static_cast<double>(stats.finishCycle) / bursts;
        EXPECT_LT(cost, prev_cost + 1e-9);
        prev_cost = cost;
    }
}

TEST(Probe, ScatteredRowsNearSequential)
{
    // With 8 banks hiding tRC, scattered full-row reads should land
    // within a few percent of the sequential stream.
    DimmConfig cfg = tableIiConfig();
    BandwidthProbe probe(cfg);
    const double seq = probe.rankBandwidth(AccessPattern::SequentialRows);
    const double scat =
        probe.rankBandwidth(AccessPattern::ScatteredRows);
    EXPECT_GT(scat, 0.9 * seq);
}

TEST(Probe, ScatteredBurstsAreRowMissBound)
{
    DimmConfig cfg = tableIiConfig();
    BandwidthProbe probe(cfg);
    const double bursts =
        probe.rankBandwidth(AccessPattern::ScatteredBursts);
    const double rows = probe.rankBandwidth(AccessPattern::ScatteredRows);
    EXPECT_LT(bursts, 0.5 * rows);
    EXPECT_GT(bursts, 0.0);
}

TEST(Probe, InternalBandwidthScalesWithRankParallelism)
{
    DimmConfig one = tableIiConfig();
    one.rankParallelism = 1;
    DimmConfig four = tableIiConfig();
    four.rankParallelism = 4;
    BandwidthProbe probe_one(one);
    BandwidthProbe probe_four(four);
    const double bw1 =
        probe_one.internalBandwidth(AccessPattern::ScatteredRows);
    const double bw4 =
        probe_four.internalBandwidth(AccessPattern::ScatteredRows);
    EXPECT_NEAR(bw4 / bw1, 4.0, 1e-9);
}

TEST(Probe, StreamTimeLinearInBytes)
{
    DimmConfig cfg = tableIiConfig();
    BandwidthProbe probe(cfg);
    const Seconds t1 =
        probe.streamTime(1 * kMiB, AccessPattern::ScatteredRows);
    const Seconds t2 =
        probe.streamTime(2 * kMiB, AccessPattern::ScatteredRows);
    EXPECT_NEAR(t2, 2.0 * t1, 1e-12);
    EXPECT_DOUBLE_EQ(
        probe.streamTime(0, AccessPattern::ScatteredRows), 0.0);
}

TEST(Probe, CachingReturnsIdenticalValues)
{
    DimmConfig cfg = tableIiConfig();
    BandwidthProbe probe(cfg);
    const double a = probe.rankBandwidth(AccessPattern::ScatteredRows);
    const double b = probe.rankBandwidth(AccessPattern::ScatteredRows);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Probe, SlowerBinYieldsLowerBandwidth)
{
    DimmConfig fast = tableIiConfig();
    DimmConfig slow = tableIiConfig();
    slow.timing = ddr4_2400();
    BandwidthProbe fast_probe(fast);
    BandwidthProbe slow_probe(slow);
    EXPECT_LT(slow_probe.rankBandwidth(AccessPattern::SequentialRows),
              fast_probe.rankBandwidth(AccessPattern::SequentialRows));
}

/** No pattern may exceed the physical pin bandwidth. */
class ProbePatternTest
    : public ::testing::TestWithParam<AccessPattern>
{
};

TEST_P(ProbePatternTest, BandwidthWithinPhysicalBounds)
{
    DimmConfig cfg = tableIiConfig();
    BandwidthProbe probe(cfg);
    const double bw = probe.rankBandwidth(GetParam());
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, cfg.rankPeakBandwidth() * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, ProbePatternTest,
                         ::testing::Values(
                             AccessPattern::SequentialRows,
                             AccessPattern::ScatteredRows,
                             AccessPattern::ScatteredBursts));

} // namespace
} // namespace hermes::dram
