/**
 * @file
 * Autoscaling subsystem tests: replica lifecycle physics (spawn →
 * provision → warm → active, drain → retire), capability gating,
 * replica-seconds cost accounting, scaler-policy unit behavior over
 * a fake fleet, and the headline diurnal comparison — the
 * target-backlog scaler beats every fixed fleet size on
 * replica-seconds at equal-or-better SLO attainment.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet.hh"
#include "core/hermes.hh"
#include "core/workload.hh"

namespace hermes::fleet {
namespace {

serving::ServingConfig
fastServing(std::uint32_t max_batch = 4)
{
    serving::ServingConfig config;
    config.maxBatch = max_batch;
    config.calibrationTokens = 4;
    return config;
}

std::vector<serving::ServedRequest>
smallTrace(std::uint32_t requests = 12, double rate = 8.0,
           std::uint64_t seed = 9)
{
    serving::ScenarioConfig scenario;
    scenario.process = serving::ArrivalProcess::Poisson;
    scenario.requests = requests;
    scenario.ratePerSecond = rate;
    scenario.prompt = {64, 16, 0.0, 1.0};
    scenario.generate = {8, 4, 0.0, 1.0};
    scenario.seed = seed;
    return serving::generateWorkload(scenario);
}

/** The per-request / aggregate invariants every run must satisfy. */
void
checkReportInvariants(const FleetReport &report,
                      std::size_t trace_size)
{
    EXPECT_EQ(report.requests.size(), trace_size);
    EXPECT_EQ(report.assignment.size(), trace_size);

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    for (std::size_t i = 0; i < report.requests.size(); ++i) {
        const serving::RequestMetrics &request =
            report.requests[i];
        if (request.rejected) {
            ++rejected;
        } else {
            ++completed;
            EXPECT_LE(request.arrival, request.admitted);
            EXPECT_LE(request.admitted, request.firstToken);
            EXPECT_LE(request.firstToken, request.completed);
            EXPECT_GE(report.assignment[i], 0);
        }
    }
    EXPECT_EQ(report.completed, completed);
    EXPECT_EQ(report.rejected, rejected);
    EXPECT_EQ(report.completed + report.rejected, trace_size);

    // The cost accounting must cohere: one active-seconds entry per
    // replica report, the fleet total is exactly their sum, and
    // cost-per-request is that total over the completions.
    ASSERT_EQ(report.replicaActiveSeconds.size(),
              report.replicaReports.size());
    double replica_seconds = 0.0;
    for (const Seconds active : report.replicaActiveSeconds) {
        EXPECT_GE(active, 0.0);
        replica_seconds += active;
    }
    EXPECT_DOUBLE_EQ(report.replicaSeconds, replica_seconds);
    if (report.completed > 0) {
        EXPECT_DOUBLE_EQ(report.costPerRequest,
                         report.replicaSeconds /
                             static_cast<double>(report.completed));
    }
}

/**
 * Spawns one clone of replica 0 on the first arrival, routes to the
 * configured replica until the spawn goes Active, then prefers the
 * spawned replica.  Records what it saw of the lifecycle walk.
 */
class SpawnOncePolicy : public sched::ControlPolicy
{
  public:
    explicit SpawnOncePolicy(Seconds provision = 0.3)
        : provision_(provision)
    {
    }

    std::string name() const override { return "spawn-once"; }

    std::uint32_t wants() const override { return kSpawn; }

    void begin(const sched::ControlContext &) override
    {
        spawned_ = -1;
        spawnTime_ = -1.0;
        activeAt_ = -1.0;
        sawProvisioning_ = false;
    }

    void onArrival(const sched::ArrivalContext &context,
                   const sched::FleetView &view,
                   sched::FleetActions &actions) override
    {
        // The first trace arrival lands at t = 0; spawning there
        // would start the new replica's clock with the configured
        // fleet's.  Spawn on the first strictly-positive arrival so
        // the cost accounting has a real spawn instant to bill from.
        if (spawned_ < 0 && context.arrival > 0.0) {
            sched::ReplicaSpec spec = view.replicaSpec(0);
            spec.provisionSeconds = provision_;
            spawned_ = static_cast<int>(actions.spawnReplica(spec));
            spawnTime_ = context.arrival;
            // The new replica is visible immediately, still
            // provisioning.
            sawProvisioning_ =
                view.lifecycle(static_cast<std::uint32_t>(
                    spawned_)) ==
                sched::ReplicaLifecycle::Provisioning;
        }
        if (spawned_ < 0) {
            actions.routeTo(0);
            return;
        }
        const auto index = static_cast<std::uint32_t>(spawned_);
        if (view.lifecycle(index) ==
            sched::ReplicaLifecycle::Active) {
            if (activeAt_ < 0.0)
                activeAt_ = context.arrival;
            actions.routeTo(index);
        } else {
            actions.routeTo(0);
        }
    }

    Seconds provision_ = 0.3;
    int spawned_ = -1;
    Seconds spawnTime_ = -1.0;
    Seconds activeAt_ = -1.0; ///< First arrival that saw Active.
    bool sawProvisioning_ = false;
};

TEST(Autoscale, SpawnedReplicaAdmitsOnlyAfterWarmup)
{
    FleetConfig config = uniformFleet(
        1, fastConfig(4), fastServing(),
        sched::RouterPolicy::RoundRobin, 30.0);
    auto policy = std::make_shared<SpawnOncePolicy>(0.3);
    config.control = policy;
    const auto trace = smallTrace(24, 4.0, 9);
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());

    // One replica spawned, appended after the configured fleet with
    // the default spawn-order name.
    EXPECT_EQ(report.kernelStats.spawnedReplicas, 1u);
    ASSERT_EQ(report.replicaReports.size(), 2u);
    ASSERT_EQ(report.replicaNames.size(), 2u);
    EXPECT_EQ(report.replicaNames[1], "s0");
    EXPECT_TRUE(policy->sawProvisioning_);

    // The spawn went Active only after provisioning AND the warm-up
    // replay: strictly later than spawn + provisionSeconds.
    ASSERT_GE(policy->activeAt_, 0.0);
    EXPECT_GT(policy->activeAt_,
              policy->spawnTime_ + policy->provision_);

    // It actually served traffic, and admitted nothing before its
    // warm-up could possibly have completed.
    EXPECT_GT(report.replicaReports[1].completed, 0u);
    for (const auto &request : report.replicaReports[1].requests)
        EXPECT_GE(request.admitted,
                  policy->spawnTime_ + policy->provision_);

    // Cost accounting: the spawned replica's clock started at the
    // spawn instant, so it is billable for strictly less than the
    // configured replica (alive since t = 0).
    EXPECT_GT(report.replicaActiveSeconds[1], 0.0);
    EXPECT_LT(report.replicaActiveSeconds[1],
              report.replicaActiveSeconds[0]);
    EXPECT_GT(report.costPerRequest, 0.0);
}

TEST(Autoscale, SpawnIsCapabilityGatedAndWarmupBlocksRouting)
{
    const auto trace = smallTrace(4);
    const auto run_with =
        [&](std::shared_ptr<sched::ControlPolicy> control) {
            FleetConfig config = uniformFleet(
                1, fastConfig(4), fastServing(),
                sched::RouterPolicy::RoundRobin, 30.0);
            config.control = std::move(control);
            return FleetSimulator(config, model::opt13b())
                .run(trace);
        };

    // spawnReplica without declaring kSpawn throws.
    class UndeclaredSpawnPolicy final : public sched::ControlPolicy
    {
        std::string name() const override { return "undeclared"; }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &view,
                       sched::FleetActions &actions) override
        {
            actions.spawnReplica(view.replicaSpec(0));
            actions.routeTo(0);
        }
    };
    EXPECT_THROW(run_with(std::make_shared<UndeclaredSpawnPolicy>()),
                 std::logic_error);

    // Routing to a replica that is still provisioning throws — only
    // Active replicas are routable.
    class RouteUnwarmPolicy final : public sched::ControlPolicy
    {
        std::string name() const override { return "route-unwarm"; }
        std::uint32_t wants() const override { return kSpawn; }
        void onArrival(const sched::ArrivalContext &,
                       const sched::FleetView &view,
                       sched::FleetActions &actions) override
        {
            actions.routeTo(
                actions.spawnReplica(view.replicaSpec(0)));
        }
    };
    EXPECT_THROW(run_with(std::make_shared<RouteUnwarmPolicy>()),
                 std::logic_error);
}

/**
 * SpawnOncePolicy that additionally drains its spawn after it has
 * routed `serveBeforeDrain_` requests onto it.
 */
class SpawnThenDrainPolicy final : public SpawnOncePolicy
{
  public:
    explicit SpawnThenDrainPolicy(std::uint32_t serve_before_drain)
        : SpawnOncePolicy(0.2),
          serveBeforeDrain_(serve_before_drain)
    {
    }

    std::string name() const override { return "spawn-drain"; }

    void begin(const sched::ControlContext &context) override
    {
        SpawnOncePolicy::begin(context);
        served_ = 0;
        drained_ = false;
    }

    void onArrival(const sched::ArrivalContext &context,
                   const sched::FleetView &view,
                   sched::FleetActions &actions) override
    {
        if (spawned_ >= 0 && served_ >= serveBeforeDrain_ &&
            !drained_) {
            actions.requestDrain(
                static_cast<std::uint32_t>(spawned_));
            drained_ = true;
        }
        if (drained_) {
            actions.routeTo(0);
            return;
        }
        SpawnOncePolicy::onArrival(context, view, actions);
        if (spawned_ >= 0 &&
            view.lifecycle(static_cast<std::uint32_t>(spawned_)) ==
                sched::ReplicaLifecycle::Active)
            ++served_;
    }

    std::uint32_t serveBeforeDrain_ = 2;
    std::uint32_t served_ = 0;
    bool drained_ = false;
};

TEST(Autoscale, SpawnThenDrainRoundTripIsDeterministic)
{
    const auto trace = smallTrace(24, 4.0, 9);
    const auto run_once = [&] {
        FleetConfig config = uniformFleet(
            1, fastConfig(4), fastServing(),
            sched::RouterPolicy::RoundRobin, 30.0);
        config.control =
            std::make_shared<SpawnThenDrainPolicy>(3);
        return FleetSimulator(config, model::opt13b()).run(trace);
    };
    const auto report = run_once();
    checkReportInvariants(report, trace.size());

    // Round trip: spawned, served, drained, retired — and nothing
    // was dropped along the way (the draining replica finishes its
    // own queue before retiring).
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.kernelStats.spawnedReplicas, 1u);
    EXPECT_EQ(report.kernelStats.drainRequests, 1u);
    EXPECT_EQ(report.kernelStats.retiredReplicas, 1u);
    ASSERT_EQ(report.replicaReports.size(), 2u);
    EXPECT_GE(report.replicaReports[1].completed, 3u);

    // Retiring froze the spawned replica's clock before the end of
    // the run: it is billable for less than the configured replica.
    EXPECT_GT(report.replicaActiveSeconds[1], 0.0);
    EXPECT_LT(report.replicaActiveSeconds[1],
              report.replicaActiveSeconds[0]);

    // The whole walk is deterministic: a fresh simulator reproduces
    // the report byte for byte, cost accounting included.
    const auto again = run_once();
    EXPECT_EQ(report.assignment, again.assignment);
    EXPECT_EQ(report.completed, again.completed);
    EXPECT_DOUBLE_EQ(report.makespan, again.makespan);
    EXPECT_DOUBLE_EQ(report.replicaSeconds, again.replicaSeconds);
    EXPECT_DOUBLE_EQ(report.costPerRequest, again.costPerRequest);
    ASSERT_EQ(report.replicaActiveSeconds.size(),
              again.replicaActiveSeconds.size());
    for (std::size_t i = 0;
         i < report.replicaActiveSeconds.size(); ++i)
        EXPECT_DOUBLE_EQ(report.replicaActiveSeconds[i],
                         again.replicaActiveSeconds[i]);
    ASSERT_EQ(report.requests.size(), again.requests.size());
    for (std::size_t i = 0; i < report.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(report.requests[i].admitted,
                         again.requests[i].admitted);
        EXPECT_DOUBLE_EQ(report.requests[i].completed,
                         again.requests[i].completed);
    }
}

TEST(Autoscale, DrainingSpawnedReplicaEvacuatesWorkWithItsKv)
{
    // Drain the spawned replica while it still holds running and
    // queued work; composed drain-migrate must hand everything (KV
    // included, at a DIMM-link cost) to the configured replica —
    // no request is silently dropped.
    class DrainLoadedSpawnPolicy final : public SpawnOncePolicy
    {
      public:
        DrainLoadedSpawnPolicy() : SpawnOncePolicy(0.2) {}

        std::string name() const override { return "drain-loaded"; }

        void onArrival(const sched::ArrivalContext &context,
                       const sched::FleetView &view,
                       sched::FleetActions &actions) override
        {
            const bool loaded =
                spawned_ >= 0 &&
                view.observedOutstanding(static_cast<std::uint32_t>(
                    spawned_)) >= 3;
            if (loaded &&
                !view.draining(
                    static_cast<std::uint32_t>(spawned_))) {
                actions.requestDrain(
                    static_cast<std::uint32_t>(spawned_));
            }
            if (spawned_ >= 0 &&
                view.draining(
                    static_cast<std::uint32_t>(spawned_))) {
                actions.routeTo(0);
                return;
            }
            SpawnOncePolicy::onArrival(context, view, actions);
        }
    };

    FleetConfig config = uniformFleet(
        1, fastConfig(4), fastServing(2),
        sched::RouterPolicy::RoundRobin, 60.0);
    config.control = sched::composeControlPolicies(
        {std::make_shared<DrainLoadedSpawnPolicy>(),
         sched::controlPolicyByName("drain-migrate")});
    auto trace = smallTrace(20, 6.0, 9);
    for (auto &request : trace)
        request.generateTokens = 16;
    const auto report =
        FleetSimulator(config, model::opt13b()).run(trace);
    checkReportInvariants(report, trace.size());
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.kernelStats.spawnedReplicas, 1u);
    EXPECT_EQ(report.kernelStats.retiredReplicas, 1u);
    EXPECT_GT(report.kernelStats.migrations, 0u);
    // At least one evacuated request had started running, so its KV
    // transfer took real virtual time.
    EXPECT_GT(report.kernelStats.kvTransferSeconds, 0.0);
}

// ---- Scaler-policy unit behavior over a fake fleet ----------------

/** A scriptable FleetView: per-replica state set by the test. */
class FakeFleetView final : public sched::FleetView
{
  public:
    struct Replica
    {
        sched::ReplicaModel model;
        sched::ReplicaLifecycle lifecycle =
            sched::ReplicaLifecycle::Active;
        bool dead = false;
        std::uint32_t outstanding = 0;
        double backlogTokens = 0.0;
        std::uint64_t cachedTokens = 0; ///< For session 1.
    };

    std::vector<Replica> replicas;

    std::uint32_t replicaCount() const override
    {
        return static_cast<std::uint32_t>(replicas.size());
    }
    const sched::ReplicaModel &
    model(std::uint32_t replica) const override
    {
        return replicas[replica].model;
    }
    std::uint32_t maxBatch(std::uint32_t replica) const override
    {
        return replicas[replica].model.maxBatch;
    }
    bool busy(std::uint32_t) const override { return false; }
    bool knownServable(std::uint32_t replica) const override
    {
        return !replicas[replica].dead;
    }
    bool knownDead(std::uint32_t replica) const override
    {
        return replicas[replica].dead;
    }
    bool draining(std::uint32_t replica) const override
    {
        return replicas[replica].lifecycle ==
               sched::ReplicaLifecycle::Draining;
    }
    sched::ReplicaLifecycle
    lifecycle(std::uint32_t replica) const override
    {
        return replicas[replica].lifecycle;
    }
    sched::ReplicaSpec
    replicaSpec(std::uint32_t) const override
    {
        return sched::ReplicaSpec{};
    }
    std::uint32_t queuedCount(std::uint32_t replica) const override
    {
        return replicas[replica].outstanding;
    }
    std::uint32_t
    observedOutstanding(std::uint32_t replica) const override
    {
        return replicas[replica].outstanding;
    }
    double
    observedBacklogTokens(std::uint32_t replica) const override
    {
        return replicas[replica].backlogTokens;
    }
    std::vector<serving::RequestInfo>
    runningRequests(std::uint32_t) const override
    {
        return {};
    }
    std::vector<serving::RequestInfo>
    queuedRequests(std::uint32_t) const override
    {
        return {};
    }
    serving::RequestState
    requestState(std::uint32_t, std::uint64_t) const override
    {
        return serving::RequestState::Unknown;
    }
    std::uint64_t
    cachedSessionTokens(std::uint32_t replica,
                        std::uint64_t session) const override
    {
        return session == 1 ? replicas[replica].cachedTokens : 0;
    }
    Seconds ttftDeadline() const override { return 2.0; }
};

/** Records every action; spawn/drain/route are assertion targets. */
class RecordingActions final : public sched::FleetActions
{
  public:
    std::vector<std::uint32_t> routes;
    std::vector<sched::ReplicaSpec> spawns;
    std::vector<std::uint32_t> drains;
    std::uint32_t sheds = 0;

    void routeTo(std::uint32_t replica) override
    {
        routes.push_back(replica);
    }
    void shed() override { ++sheds; }
    std::uint32_t steal(std::uint32_t, std::uint32_t,
                        std::uint32_t) override
    {
        return 0;
    }
    void preempt(std::uint32_t, std::uint64_t) override {}
    void migrate(std::uint64_t, std::uint32_t) override {}
    std::uint32_t
    spawnReplica(const sched::ReplicaSpec &spec) override
    {
        spawns.push_back(spec);
        return 0;
    }
    void requestSpawn() override {}
    void requestDrain(std::uint32_t replica) override
    {
        drains.push_back(replica);
    }
};

sched::ReplicaModel
unitModel()
{
    sched::ReplicaModel model;
    model.maxBatch = 4;
    model.slotTokensPerSecond = 10.0; // Drain rate 40 tokens/s.
    model.prefillTokensPerSecond = 2560.0;
    return model;
}

TEST(Autoscale, ScalerSpawnsWithHysteresisAndCooldown)
{
    auto scaler = sched::makeTargetBacklogPolicy();
    EXPECT_EQ(scaler->name(), "target-backlog");
    EXPECT_TRUE(scaler->wants() & sched::ControlPolicy::kSpawn);
    EXPECT_TRUE(scaler->wants() & sched::ControlPolicy::kTick);
    EXPECT_GT(scaler->tickPeriod(), 0.0);

    sched::ControlContext context;
    context.models = {unitModel()};
    context.ttftDeadline = 2.0;
    scaler->begin(context);

    FakeFleetView view;
    view.replicas.push_back({unitModel(),
                             sched::ReplicaLifecycle::Active,
                             false, 4, 400.0, 0});

    // Backlog 400 over drain rate 40 * deadline 2 wants 5 replicas,
    // but hysteresis requires two agreeing ticks before acting.
    RecordingActions actions;
    scaler->onTick(1.0, view, actions);
    EXPECT_TRUE(actions.spawns.empty());
    scaler->onTick(2.0, view, actions);
    ASSERT_EQ(actions.spawns.size(), 1u);

    // The post-action cooldown damps the next spawn even though the
    // backlog still argues for it.
    scaler->onTick(3.0, view, actions);
    scaler->onTick(4.0, view, actions);
    EXPECT_EQ(actions.spawns.size(), 1u);
}

TEST(Autoscale, ScalerDrainsLeastLoadedButNeverTheLastActive)
{
    auto scaler = sched::makeTargetBacklogPolicy();
    sched::ControlContext context;
    context.models = {unitModel(), unitModel()};
    context.ttftDeadline = 2.0;
    scaler->begin(context);

    // Two Active replicas, no backlog: scale down after hysteresis,
    // draining the least-outstanding replica (ties break to the
    // highest index, so spawned replicas retire before the seed).
    FakeFleetView view;
    view.replicas.push_back({unitModel(),
                             sched::ReplicaLifecycle::Active,
                             false, 2, 0.0, 0});
    view.replicas.push_back({unitModel(),
                             sched::ReplicaLifecycle::Active,
                             false, 2, 0.0, 0});
    RecordingActions actions;
    scaler->onTick(1.0, view, actions);
    EXPECT_TRUE(actions.drains.empty());
    scaler->onTick(2.0, view, actions);
    ASSERT_EQ(actions.drains.size(), 1u);
    EXPECT_EQ(actions.drains[0], 1u);

    // One Active + one Warming over-provisioned fleet: warming
    // capacity cannot take traffic yet, so the scaler must not
    // drain the last routable replica.
    scaler->begin(context);
    view.replicas[0].lifecycle = sched::ReplicaLifecycle::Warming;
    RecordingActions guarded;
    scaler->onTick(1.0, view, guarded);
    scaler->onTick(2.0, view, guarded);
    scaler->onTick(3.0, view, guarded);
    EXPECT_TRUE(guarded.drains.empty());
}

TEST(Autoscale, AffinityConvertsCachedTokensThroughThePrefillRate)
{
    // The stick rule compares seconds, not tokens: 512 cached
    // tokens at 2560 prefill-tokens/s save 0.2 s, and the holder's
    // full-batch drain rate is 40 tokens/s, so sticking is worth at
    // most an 8-token backlog gap.  A raw 1:1 token comparison
    // (cached >= gap) would stick far more eagerly.
    auto affinity = sched::makeAffinityPolicy();
    sched::ControlContext context;
    context.models = {unitModel(), unitModel()};
    context.ttftDeadline = 2.0;
    affinity->begin(context);

    FakeFleetView view;
    view.replicas.push_back({unitModel(),
                             sched::ReplicaLifecycle::Active,
                             false, 3, 100.0, 512});
    view.replicas.push_back({unitModel(),
                             sched::ReplicaLifecycle::Active,
                             false, 0, 0.0, 0});
    std::vector<sched::ReplicaObservation> observed{
        {3, 100.0}, {0, 0.0}};

    sched::ArrivalContext arrival;
    arrival.requestId = 7;
    arrival.sessionId = 1;
    arrival.observed = &observed;

    // Gap 100 tokens = 2.5 s of extra queueing against 0.2 s of
    // saved prefill: leave the holder (the old 1:1 rule, 512 >= 100,
    // would have stuck).
    RecordingActions balance;
    affinity->onArrival(arrival, view, balance);
    ASSERT_EQ(balance.routes.size(), 1u);
    EXPECT_EQ(balance.routes[0], 1u);

    // Gap 6 tokens = 0.15 s: the resident prefix now pays for the
    // deeper queue — stick.
    view.replicas[0].backlogTokens = 6.0;
    observed[0].backlogTokens = 6.0;
    RecordingActions stick;
    affinity->onArrival(arrival, view, stick);
    ASSERT_EQ(stick.routes.size(), 1u);
    EXPECT_EQ(stick.routes[0], 0u);
}

// ---- The headline: scaler vs every fixed fleet size ---------------

TEST(Autoscale, ScalerBeatsEveryFixedFleetOnDiurnal)
{
    // A diurnal day: load swings between a deep valley and a peak
    // no small fixed fleet can absorb.  A fixed size must choose
    // between paying for peak capacity all day or missing the SLO
    // at rush hour; the target-backlog scaler provisions the peak
    // only while it lasts and drains back down in the valley —
    // lower total replica-seconds than every fixed size in the
    // bracketing sweep that matches its SLO attainment, and no
    // fixed size Pareto-dominates it.
    serving::ScenarioConfig scenario = serving::scenarioByName(
        "diurnal", 384, 3.2, 11);
    scenario.prompt = {64, 16, 0.0, 1.0};
    scenario.generate = {24, 8, 0.0, 1.0};
    scenario.diurnalPeriodSeconds = 120.0;
    scenario.diurnalDepth = 0.9;
    const auto trace = serving::generateWorkload(scenario);
    const Seconds deadline = 10.0;

    const auto run_fixed = [&](std::uint32_t replicas) {
        FleetConfig config = uniformFleet(
            replicas, fastConfig(4), fastServing(),
            sched::RouterPolicy::TrueJsq, deadline);
        config.control = sched::controlPolicyByName("true-jsq");
        return FleetSimulator(config, model::opt13b()).run(trace);
    };
    const auto run_scaled = [&] {
        FleetConfig config = uniformFleet(
            1, fastConfig(4), fastServing(),
            sched::RouterPolicy::TrueJsq, deadline);
        config.control = sched::composeControlPolicies(
            {sched::controlPolicyByName("true-jsq"),
             sched::makeTargetBacklogPolicy()});
        return FleetSimulator(config, model::opt13b()).run(trace);
    };

    const auto scaled = run_scaled();
    checkReportInvariants(scaled, trace.size());
    EXPECT_EQ(scaled.completed, trace.size());
    // The scaler actually scaled: replicas were spawned at the peak
    // and drained in the valley, repeatedly (two diurnal peaks).
    EXPECT_GT(scaled.kernelStats.spawnedReplicas, 1u);
    EXPECT_GT(scaled.kernelStats.retiredReplicas, 1u);
    // High absolute attainment — the scaler is not winning on cost
    // by shedding latency.
    EXPECT_GE(scaled.sloAttainment, 0.97);

    // A fixed-size fleet that never idles is a replica-seconds
    // floor (work conservation): nothing can serve the same token
    // volume in fewer busy seconds.  The scaler's claim is the
    // frontier one — no fixed size matches its SLO attainment
    // without paying more replica-seconds, and no fixed size
    // Pareto-dominates it.
    for (const std::uint32_t fixed_size : {1u, 2u, 3u, 4u, 5u}) {
        const auto fixed = run_fixed(fixed_size);
        EXPECT_EQ(fixed.completed, trace.size());
        if (fixed.sloAttainment >= scaled.sloAttainment) {
            // Equal-or-better SLO must cost strictly more.
            EXPECT_LT(scaled.replicaSeconds, fixed.replicaSeconds)
                << "fixed fleet of " << fixed_size << " ("
                << fixed.sloAttainment << " SLO, "
                << fixed.replicaSeconds
                << " rs) matches the scaler ("
                << scaled.sloAttainment << " SLO) for less than "
                << scaled.replicaSeconds << " rs";
        } else {
            // Cheaper fixed sizes must pay for it in attainment:
            // nobody dominates the scaler on both axes.
            EXPECT_TRUE(scaled.replicaSeconds <
                            fixed.replicaSeconds ||
                        scaled.sloAttainment > fixed.sloAttainment)
                << "fixed fleet of " << fixed_size << " ("
                << fixed.sloAttainment << " SLO, "
                << fixed.replicaSeconds
                << " rs) Pareto-dominates the scaler ("
                << scaled.sloAttainment << " SLO, "
                << scaled.replicaSeconds << " rs)";
        }
    }
}

} // namespace
} // namespace hermes::fleet
