/**
 * @file
 * Edge-case tests for the benches' Args CLI parser
 * (bench/bench_util.hh).  The parser exits the process on misuse
 * (that is its contract — a bench should die loudly on a typoed
 * sweep), so the failure paths are pinned with gtest death tests;
 * until now they were only exercised implicitly by CI smoke runs.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hh"

namespace hermes::bench {
namespace {

/** Build an Args over a token list (argv[0] supplied). */
class ArgvFixture
{
  public:
    explicit ArgvFixture(std::vector<std::string> tokens)
        : tokens_(std::move(tokens))
    {
        pointers_.push_back(const_cast<char *>("bench_test"));
        for (std::string &token : tokens_)
            pointers_.push_back(token.data());
    }

    Args
    args()
    {
        return Args(static_cast<int>(pointers_.size()),
                    pointers_.data());
    }

  private:
    std::vector<std::string> tokens_;
    std::vector<char *> pointers_;
};

TEST(BenchArgs, FlagsAndOptionsParse)
{
    ArgvFixture fixture({"--smoke", "--policy", "jsq",
                         "--requests", "48", "--rate", "2.5"});
    Args args = fixture.args();
    EXPECT_TRUE(args.flag("smoke", "smoke"));
    EXPECT_FALSE(args.flag("verbose", "verbose"));
    EXPECT_EQ(args.str("policy", "all", "policy"), "jsq");
    EXPECT_EQ(args.str("scenario", "all", "scenario"), "all");
    EXPECT_EQ(args.u32("requests", 10, "requests"), 48u);
    EXPECT_DOUBLE_EQ(args.f64("rate", 1.0, "rate"), 2.5);
    args.finish(); // Everything consumed: must not exit.
}

TEST(BenchArgsDeathTest, UnknownFlagExitsWithUsage)
{
    ArgvFixture fixture({"--smoke", "--bogus"});
    Args args = fixture.args();
    args.flag("smoke", "smoke");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --bogus");
}

TEST(BenchArgsDeathTest, FlagMissingItsValueExits)
{
    // "--policy" with nothing after it cannot bind a value: the
    // query falls back to the default and finish() rejects the
    // dangling token instead of silently accepting the typo.
    ArgvFixture fixture({"--policy"});
    Args args = fixture.args();
    EXPECT_EQ(args.str("policy", "all", "policy"), "all");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --policy");
}

TEST(BenchArgsDeathTest, DuplicateFlagExits)
{
    // The first occurrence wins; the duplicate is left unconsumed
    // and finish() treats it as an unknown argument, so a sweep
    // cannot silently drop half of a contradictory command line.
    ArgvFixture fixture(
        {"--policy", "jsq", "--policy", "round-robin"});
    Args args = fixture.args();
    EXPECT_EQ(args.str("policy", "all", "policy"), "jsq");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --policy");
}

TEST(BenchArgsDeathTest, SmokeFlagTakesNoValue)
{
    // "--smoke 5": the flag itself parses, the stray value is an
    // error — presence flags never consume a trailing token.
    ArgvFixture fixture({"--smoke", "5"});
    Args args = fixture.args();
    EXPECT_TRUE(args.flag("smoke", "smoke"));
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: 5");
}

TEST(BenchArgsDeathTest, DuplicateSmokeFlagExits)
{
    ArgvFixture fixture({"--smoke", "--smoke"});
    Args args = fixture.args();
    EXPECT_TRUE(args.flag("smoke", "smoke"));
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --smoke");
}

TEST(BenchArgsDeathTest, NonNumericU32Exits)
{
    ArgvFixture fixture({"--requests", "many"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u32("requests", 10, "requests"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NegativeU32Exits)
{
    // strtoul would silently wrap a negative; the parser rejects
    // anything but digits instead.
    ArgvFixture fixture({"--requests", "-3"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u32("requests", 10, "requests"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgs, U64ParsesTheFullSeedRange)
{
    // --seed takes the workload generator's whole 64-bit range —
    // the u32 parser would reject anything past 4294967295.
    ArgvFixture fixture({"--seed", "18446744073709551615"});
    Args args = fixture.args();
    EXPECT_EQ(args.u64("seed", 1, "seed"), UINT64_MAX);
    args.finish();
}

TEST(BenchArgs, U64FallsBackWhenAbsent)
{
    ArgvFixture fixture({});
    Args args = fixture.args();
    EXPECT_EQ(args.u64("seed", 17, "seed"), 17u);
    args.finish();
}

TEST(BenchArgsDeathTest, U64OverflowExits)
{
    // One past UINT64_MAX: strtoull would clamp with ERANGE; the
    // parser must reject instead of silently saturating the seed.
    ArgvFixture fixture({"--seed", "18446744073709551616"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u64("seed", 1, "seed"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NegativeU64Exits)
{
    ArgvFixture fixture({"--seed", "-7"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u64("seed", 1, "seed"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NonNumericU64Exits)
{
    ArgvFixture fixture({"--seed", "lucky"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u64("seed", 1, "seed"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NonNumericF64Exits)
{
    ArgvFixture fixture({"--rate", "fast"});
    Args args = fixture.args();
    EXPECT_EXIT(args.f64("rate", 1.0, "rate"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, HelpExitsZeroWithUsage)
{
    ArgvFixture fixture({"--help"});
    Args args = fixture.args();
    args.flag("smoke", "run the smoke subset");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(0),
                "--smoke *run the smoke subset");
}

TEST(BenchArgsDeathTest, HelpWithUnknownArgumentStillFails)
{
    // A typo next to --help must not masquerade as success: the
    // usage prints, but the exit code reports the error.
    ArgvFixture fixture({"--help", "--bogus"});
    Args args = fixture.args();
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --bogus");
}

} // namespace
} // namespace hermes::bench
