/**
 * @file
 * Edge-case tests for the benches' Args CLI parser
 * (bench/bench_util.hh).  The parser exits the process on misuse
 * (that is its contract — a bench should die loudly on a typoed
 * sweep), so the failure paths are pinned with gtest death tests;
 * until now they were only exercised implicitly by CI smoke runs.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hh"

namespace hermes::bench {
namespace {

/** Build an Args over a token list (argv[0] supplied). */
class ArgvFixture
{
  public:
    explicit ArgvFixture(std::vector<std::string> tokens)
        : tokens_(std::move(tokens))
    {
        pointers_.push_back(const_cast<char *>("bench_test"));
        for (std::string &token : tokens_)
            pointers_.push_back(token.data());
    }

    Args
    args()
    {
        return Args(static_cast<int>(pointers_.size()),
                    pointers_.data());
    }

  private:
    std::vector<std::string> tokens_;
    std::vector<char *> pointers_;
};

TEST(BenchArgs, FlagsAndOptionsParse)
{
    ArgvFixture fixture({"--smoke", "--policy", "jsq",
                         "--requests", "48", "--rate", "2.5"});
    Args args = fixture.args();
    EXPECT_TRUE(args.flag("smoke", "smoke"));
    EXPECT_FALSE(args.flag("verbose", "verbose"));
    EXPECT_EQ(args.str("policy", "all", "policy"), "jsq");
    EXPECT_EQ(args.str("scenario", "all", "scenario"), "all");
    EXPECT_EQ(args.u32("requests", 10, "requests"), 48u);
    EXPECT_DOUBLE_EQ(args.f64("rate", 1.0, "rate"), 2.5);
    args.finish(); // Everything consumed: must not exit.
}

TEST(BenchArgsDeathTest, UnknownFlagExitsWithUsage)
{
    ArgvFixture fixture({"--smoke", "--bogus"});
    Args args = fixture.args();
    args.flag("smoke", "smoke");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --bogus");
}

TEST(BenchArgsDeathTest, FlagMissingItsValueExits)
{
    // "--policy" with nothing after it cannot bind a value: the
    // query falls back to the default and finish() rejects the
    // dangling token instead of silently accepting the typo.
    ArgvFixture fixture({"--policy"});
    Args args = fixture.args();
    EXPECT_EQ(args.str("policy", "all", "policy"), "all");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --policy");
}

TEST(BenchArgsDeathTest, DuplicateFlagExits)
{
    // The first occurrence wins; the duplicate is left unconsumed
    // and finish() treats it as an unknown argument, so a sweep
    // cannot silently drop half of a contradictory command line.
    ArgvFixture fixture(
        {"--policy", "jsq", "--policy", "round-robin"});
    Args args = fixture.args();
    EXPECT_EQ(args.str("policy", "all", "policy"), "jsq");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --policy");
}

TEST(BenchArgsDeathTest, SmokeFlagTakesNoValue)
{
    // "--smoke 5": the flag itself parses, the stray value is an
    // error — presence flags never consume a trailing token.
    ArgvFixture fixture({"--smoke", "5"});
    Args args = fixture.args();
    EXPECT_TRUE(args.flag("smoke", "smoke"));
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: 5");
}

TEST(BenchArgsDeathTest, DuplicateSmokeFlagExits)
{
    ArgvFixture fixture({"--smoke", "--smoke"});
    Args args = fixture.args();
    EXPECT_TRUE(args.flag("smoke", "smoke"));
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --smoke");
}

TEST(BenchArgsDeathTest, NonNumericU32Exits)
{
    ArgvFixture fixture({"--requests", "many"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u32("requests", 10, "requests"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NegativeU32Exits)
{
    // strtoul would silently wrap a negative; the parser rejects
    // anything but digits instead.
    ArgvFixture fixture({"--requests", "-3"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u32("requests", 10, "requests"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgs, U64ParsesTheFullSeedRange)
{
    // --seed takes the workload generator's whole 64-bit range —
    // the u32 parser would reject anything past 4294967295.
    ArgvFixture fixture({"--seed", "18446744073709551615"});
    Args args = fixture.args();
    EXPECT_EQ(args.u64("seed", 1, "seed"), UINT64_MAX);
    args.finish();
}

TEST(BenchArgs, U64FallsBackWhenAbsent)
{
    ArgvFixture fixture({});
    Args args = fixture.args();
    EXPECT_EQ(args.u64("seed", 17, "seed"), 17u);
    args.finish();
}

TEST(BenchArgsDeathTest, U64OverflowExits)
{
    // One past UINT64_MAX: strtoull would clamp with ERANGE; the
    // parser must reject instead of silently saturating the seed.
    ArgvFixture fixture({"--seed", "18446744073709551616"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u64("seed", 1, "seed"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NegativeU64Exits)
{
    ArgvFixture fixture({"--seed", "-7"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u64("seed", 1, "seed"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NonNumericU64Exits)
{
    ArgvFixture fixture({"--seed", "lucky"});
    Args args = fixture.args();
    EXPECT_EXIT(args.u64("seed", 1, "seed"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, NonNumericF64Exits)
{
    ArgvFixture fixture({"--rate", "fast"});
    Args args = fixture.args();
    EXPECT_EXIT(args.f64("rate", 1.0, "rate"),
                testing::ExitedWithCode(2), "not a number");
}

TEST(BenchArgsDeathTest, HelpExitsZeroWithUsage)
{
    ArgvFixture fixture({"--help"});
    Args args = fixture.args();
    args.flag("smoke", "run the smoke subset");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(0),
                "--smoke *run the smoke subset");
}

TEST(BenchArgsDeathTest, HelpWithUnknownArgumentStillFails)
{
    // A typo next to --help must not masquerade as success: the
    // usage prints, but the exit code reports the error.
    ArgvFixture fixture({"--help", "--bogus"});
    Args args = fixture.args();
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --bogus");
}

TEST(BenchArgs, OutFlagBindsAPathAndDefaultsEmpty)
{
    ArgvFixture fixture({"--json", "BENCH_fleet.json"});
    Args args = fixture.args();
    EXPECT_EQ(args.out("json", "summary path"),
              "BENCH_fleet.json");
    EXPECT_EQ(args.out("csv", "table path"), "");
    args.finish();
}

TEST(BenchArgsDeathTest, OutFlagMissingItsPathExits)
{
    ArgvFixture fixture({"--json"});
    Args args = fixture.args();
    EXPECT_EQ(args.out("json", "summary path"), "");
    EXPECT_EXIT(args.finish(), testing::ExitedWithCode(2),
                "unknown argument: --json");
}

TEST(BenchJson, EscapeCoversQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"),
              "line\\nbreak\\ttab");
    // Control characters below 0x20 without a shorthand escape
    // become \u00XX.
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string("\x1f", 1)), "\\u001f");
}

TEST(BenchJson, UnescapeInvertsEscapeAndRejectsMalformed)
{
    const std::string original =
        "q\"uote\\slash\nnew\ttab\x01ctl";
    std::string decoded;
    ASSERT_TRUE(jsonUnescape(jsonEscape(original), decoded));
    EXPECT_EQ(decoded, original);

    EXPECT_FALSE(jsonUnescape("dangling\\", decoded));
    EXPECT_FALSE(jsonUnescape("\\q", decoded));
    EXPECT_FALSE(jsonUnescape("\\u12", decoded));
    EXPECT_FALSE(jsonUnescape("\\uzzzz", decoded));
}

TEST(BenchJson, ObjectDumpAndParseRoundTrip)
{
    JsonObject object;
    object.set("bench", "bench_fleet");
    object.set("tier", "scale-smoke");
    object.set("note", "quotes \" and \\ and\nnewlines");
    object.setU64("events", 324001);
    object.setF64("events_per_sec", 287697.25);
    object.setBool("smoke", true);

    JsonObject parsed;
    ASSERT_TRUE(JsonObject::parse(object.dump(), parsed));
    EXPECT_EQ(parsed.size(), 6u);
    EXPECT_EQ(parsed.str("bench"), "bench_fleet");
    EXPECT_EQ(parsed.str("note"),
              "quotes \" and \\ and\nnewlines");
    EXPECT_DOUBLE_EQ(parsed.number("events"), 324001.0);
    EXPECT_DOUBLE_EQ(parsed.number("events_per_sec"), 287697.25);
    EXPECT_TRUE(parsed.has("smoke"));
    EXPECT_FALSE(parsed.has("missing"));
    EXPECT_EQ(parsed.str("missing"), "");
    EXPECT_DOUBLE_EQ(parsed.number("missing"), 0.0);
    // A second dump of the parse is byte-identical: the emitter
    // and parser agree on escaping and ordering.
    EXPECT_EQ(parsed.dump(), object.dump());
}

TEST(BenchJson, F64SurvivesADecimalRoundTrip)
{
    // %.17g must reproduce any double bit-exactly — the committed
    // baseline's events_per_sec is compared against live runs.
    const double value = 29011.123456789012345;
    JsonObject object;
    object.setF64("events_per_sec", value);
    JsonObject parsed;
    ASSERT_TRUE(JsonObject::parse(object.dump(), parsed));
    EXPECT_EQ(parsed.number("events_per_sec"), value);
}

TEST(BenchJson, ParseRejectsNestingAndTrailingGarbage)
{
    JsonObject parsed;
    EXPECT_TRUE(JsonObject::parse("{}", parsed));
    EXPECT_TRUE(JsonObject::parse("  { \"k\": 1 }\n", parsed));
    EXPECT_FALSE(JsonObject::parse("", parsed));
    EXPECT_FALSE(JsonObject::parse("[1, 2]", parsed));
    EXPECT_FALSE(
        JsonObject::parse("{\"k\": {\"nested\": 1}}", parsed));
    EXPECT_FALSE(JsonObject::parse("{\"k\": [1]}", parsed));
    EXPECT_FALSE(JsonObject::parse("{\"k\": 1} extra", parsed));
    EXPECT_FALSE(JsonObject::parse("{\"k\": }", parsed));
    EXPECT_FALSE(JsonObject::parse("{\"k\" 1}", parsed));
    EXPECT_FALSE(JsonObject::parse("{\"k\": 1", parsed));
}

} // namespace
} // namespace hermes::bench
