/**
 * @file
 * Unit tests for the GPU spec zoo and the roofline kernel model.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_spec.hh"
#include "gpu/kernels.hh"

namespace hermes::gpu {
namespace {

TEST(GpuSpecs, Rtx4090MatchesPaper)
{
    const GpuSpec spec = rtx4090();
    EXPECT_DOUBLE_EQ(spec.tensorFp16, 330.0e12);
    EXPECT_DOUBLE_EQ(spec.memBandwidth, 936.0e9);
    EXPECT_EQ(spec.memCapacity, 24ull * kGiB);
}

TEST(GpuSpecs, Rtx3090MatchesPaper)
{
    const GpuSpec spec = rtx3090();
    EXPECT_DOUBLE_EQ(spec.tensorFp16, 142.0e12);
    EXPECT_DOUBLE_EQ(spec.memBandwidth, 936.0e9);
    EXPECT_EQ(spec.memCapacity, 24ull * kGiB);
}

TEST(GpuSpecs, TeslaT4MatchesPaper)
{
    const GpuSpec spec = teslaT4();
    EXPECT_DOUBLE_EQ(spec.tensorFp16, 65.0e12);
    EXPECT_DOUBLE_EQ(spec.memBandwidth, 320.0e9);
    EXPECT_EQ(spec.memCapacity, 16ull * kGiB);
}

TEST(GpuSpecs, A100MatchesDatasheet)
{
    const GpuSpec spec = a100_40gb();
    EXPECT_DOUBLE_EQ(spec.tensorFp16, 312.0e12);
    EXPECT_DOUBLE_EQ(spec.memBandwidth, 1555.0e9);
    EXPECT_EQ(spec.memCapacity, 40ull * kGiB);
}

TEST(Roofline, ZeroWorkloadIsFree)
{
    const GpuModel gpu(rtx4090());
    EXPECT_DOUBLE_EQ(gpu.roofline(0.0, 0), 0.0);
    EXPECT_DOUBLE_EQ(gpu.gemm(0, 10, 10), 0.0);
    EXPECT_DOUBLE_EQ(gpu.sparseGemv(0, 100, 1), 0.0);
    EXPECT_DOUBLE_EQ(gpu.attention(0, 8, 8, 64, 128), 0.0);
}

TEST(Roofline, IncludesLaunchOverhead)
{
    const GpuModel gpu(rtx4090());
    // Tiny kernel: launch dominates.
    const Seconds t = gpu.roofline(1.0, 1);
    EXPECT_GT(t, rtx4090().kernelLaunchOverhead * 0.99);
    EXPECT_LT(t, rtx4090().kernelLaunchOverhead * 1.01);
}

TEST(Roofline, GemvIsBandwidthBoundAtBatchOne)
{
    const GpuModel gpu(rtx4090());
    const std::uint64_t rows = 8192;
    const std::uint64_t cols = 8192;
    const Seconds t = gpu.sparseGemv(rows, cols, 1);
    const Seconds memory_time =
        static_cast<double>(rows * cols * kFp16Bytes) /
        rtx4090().effectiveBandwidth();
    // Latency tracks the weight-streaming time plus launch.
    EXPECT_NEAR(t, memory_time + rtx4090().kernelLaunchOverhead,
                0.2 * memory_time);
}

TEST(Roofline, GemvLatencyFlatAcrossSmallBatches)
{
    // Weight streaming dominates: latency at batch 8 is within a few
    // percent of batch 1 (this is the core reason GPUs love batching).
    const GpuModel gpu(rtx4090());
    const Seconds b1 = gpu.sparseGemv(8192, 8192, 1);
    const Seconds b8 = gpu.sparseGemv(8192, 8192, 8);
    EXPECT_LT(b8, 1.1 * b1);
}

TEST(Roofline, GemmBecomesComputeBoundForLargeM)
{
    const GpuModel gpu(rtx4090());
    // m=n=k large: arithmetic intensity ~ k/3 >> machine balance.
    const std::uint64_t n = 4096;
    const Seconds t = gpu.gemm(n, n, n);
    const Seconds compute_time = 2.0 * n * n * n /
                                 rtx4090().effectiveCompute();
    EXPECT_NEAR(t, compute_time + rtx4090().kernelLaunchOverhead,
                0.05 * compute_time);
}

TEST(Roofline, AttentionScalesWithSequence)
{
    // Compare the data-dependent part (net of launch overhead).
    const GpuModel gpu(rtx4090());
    const Seconds launch = rtx4090().kernelLaunchOverhead;
    const Seconds short_seq =
        gpu.attention(1, 64, 8, 128, 128) - launch;
    const Seconds long_seq =
        gpu.attention(1, 64, 8, 128, 1024) - launch;
    EXPECT_GT(long_seq, 4.0 * short_seq);
}

TEST(Roofline, GqaShrinksAttentionTraffic)
{
    const GpuModel gpu(rtx4090());
    const Seconds mha = gpu.attention(1, 64, 64, 128, 2048);
    const Seconds gqa = gpu.attention(1, 64, 8, 128, 2048);
    EXPECT_LT(gqa, mha);
}

TEST(Roofline, FasterGpuIsFaster)
{
    const GpuModel fast(rtx4090());
    const GpuModel slow(teslaT4());
    EXPECT_LT(fast.sparseGemv(8192, 8192, 1),
              slow.sparseGemv(8192, 8192, 1));
    EXPECT_LT(fast.gemm(4096, 4096, 4096),
              slow.gemm(4096, 4096, 4096));
}

/** Latency must be monotone in every size parameter. */
class GemvMonotoneTest
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(GemvMonotoneTest, MonotoneInRows)
{
    const GpuModel gpu(rtx4090());
    const std::uint32_t batch = GetParam();
    Seconds prev = 0.0;
    for (std::uint64_t rows : {1u, 64u, 1024u, 16384u}) {
        const Seconds t = gpu.sparseGemv(rows, 4096, batch);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, GemvMonotoneTest,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace hermes::gpu
