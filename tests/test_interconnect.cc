/**
 * @file
 * Unit tests for the PCIe and DIMM-link models, including the
 * Sec. IV-A1 claim that DIMM-links beat host-mediated migration by
 * tens of times.
 */

#include <gtest/gtest.h>

#include "interconnect/dimm_link.hh"
#include "interconnect/pcie.hh"

namespace hermes::interconnect {
namespace {

TEST(Pcie, ZeroBytesIsFree)
{
    const PcieBus pcie;
    EXPECT_DOUBLE_EQ(pcie.transferTime(0), 0.0);
    EXPECT_DOUBLE_EQ(pcie.chunkedTransferTime(0, 64 * kKiB), 0.0);
}

TEST(Pcie, PinnedBeatsPageable)
{
    const PcieBus pcie;
    const Bytes gb = 1 * kGiB;
    EXPECT_LT(pcie.transferTime(gb, true),
              pcie.transferTime(gb, false));
    // Pageable lands near the configured 6 GB/s.
    EXPECT_NEAR(pcie.transferTime(gb, false),
                static_cast<double>(gb) / 6.0e9, 0.01);
}

TEST(Pcie, PinnedApproaches64GBs)
{
    const PcieBus pcie;
    const Bytes size = 8 * kGiB;
    const double rate =
        static_cast<double>(size) / pcie.transferTime(size, true);
    EXPECT_GT(rate, 0.8 * 64.0e9);
    EXPECT_LT(rate, 64.0e9);
}

TEST(Pcie, ChunkingAddsOverhead)
{
    const PcieBus pcie;
    const Bytes size = 1 * kGiB;
    const Seconds contiguous = pcie.transferTime(size, true);
    const Seconds chunked =
        pcie.chunkedTransferTime(size, 32 * kKiB, true);
    EXPECT_GT(chunked, contiguous);
    // 32768 chunks at 2.5 us each.
    EXPECT_NEAR(chunked - contiguous, 32768 * 2.5e-6, 1e-3);
}

TEST(Pcie, ChunkCountRoundsUp)
{
    PcieConfig config;
    config.perChunkOverhead = 1.0e-3; // Make chunk cost visible.
    const PcieBus pcie(config);
    const Seconds one = pcie.chunkedTransferTime(10, 64, true);
    const Seconds two = pcie.chunkedTransferTime(65, 64, true);
    EXPECT_NEAR(two - one, 1.0e-3, 1e-6);
}

TEST(DimmLink, SingleTransferTime)
{
    const DimmLinkNetwork net(8);
    const Bytes mb = 1 * kMiB;
    const Seconds t =
        net.migrationTime({Transfer{0, 1, mb}});
    EXPECT_NEAR(t, static_cast<double>(mb) / 25.0e9 + 200e-9, 1e-9);
}

TEST(DimmLink, DisjointPairsOverlap)
{
    const DimmLinkNetwork net(8);
    const Bytes mb = 1 * kMiB;
    const Seconds one = net.migrationTime({Transfer{0, 1, mb}});
    const Seconds four =
        net.migrationTime({Transfer{0, 1, mb}, Transfer{2, 3, mb},
                           Transfer{4, 5, mb}, Transfer{6, 7, mb}});
    EXPECT_NEAR(one, four, 1e-12);
}

TEST(DimmLink, SharedEndpointSerializes)
{
    const DimmLinkNetwork net(8);
    const Bytes mb = 1 * kMiB;
    const Seconds one = net.migrationTime({Transfer{0, 1, mb}});
    const Seconds shared = net.migrationTime(
        {Transfer{0, 1, mb}, Transfer{0, 2, mb}});
    EXPECT_GT(shared, 1.9 * (one - 200e-9));
}

TEST(DimmLink, SelfAndEmptyTransfersAreFree)
{
    const DimmLinkNetwork net(4);
    EXPECT_DOUBLE_EQ(net.migrationTime({}), 0.0);
    EXPECT_DOUBLE_EQ(net.migrationTime({Transfer{2, 2, 1 * kMiB}}),
                     0.0);
    EXPECT_DOUBLE_EQ(net.migrationTime({Transfer{0, 1, 0}}), 0.0);
}

TEST(DimmLink, HostMediatedPathIsMuchSlower)
{
    // Sec. IV-A1: "using DIMM links provides over a 62x speedup for
    // data transfer" against the host-mediated path.  Check the
    // order of magnitude for a window-sized migration batch.
    const DimmLinkNetwork net(8);
    std::vector<Transfer> batch;
    for (std::uint32_t pair = 0; pair < 4; ++pair)
        batch.push_back(
            Transfer{pair, static_cast<std::uint32_t>(7 - pair),
                     2 * kMiB});
    const Seconds link = net.migrationTime(batch);
    const Seconds host = net.hostMediatedTime(batch);
    EXPECT_GT(host / link, 30.0);
}

TEST(DimmLink, EnergyMatchesTableIi)
{
    const DimmLinkNetwork net(2);
    const Bytes bytes = 1000;
    const double joules =
        net.migrationEnergyJoules({Transfer{0, 1, bytes}});
    EXPECT_NEAR(joules, 8000.0 * 1.17e-12, 1e-15);
}

TEST(DimmLink, RejectsOutOfRangeEndpoints)
{
    const DimmLinkNetwork net(2);
    EXPECT_DEATH(net.migrationTime({Transfer{0, 5, 1}}), "endpoint");
}

} // namespace
} // namespace hermes::interconnect
