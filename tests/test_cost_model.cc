/**
 * @file
 * Tests for the calibrated step-cost surface: the interpolated cost
 * model (anchor agreement, error bound, monotonicity, saturation
 * handling), engine pooling, parallel cache warming, and the
 * overflow tail of the cost cache.
 */

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/hermes.hh"

namespace hermes::serving {
namespace {

ServingConfig
costServing(CostModel model, std::uint32_t seq_bucket = 256,
            std::uint32_t max_batch = 4)
{
    ServingConfig config;
    config.maxBatch = max_batch;
    config.calibrationTokens = 4;
    config.seqBucket = seq_bucket;
    config.costModel = model;
    return config;
}

TEST(CostModel, NamesRoundTrip)
{
    EXPECT_EQ(costModelName(CostModel::Exact), "exact");
    EXPECT_EQ(costModelName(CostModel::Interp), "interp");
    EXPECT_EQ(costModelByName("exact"), CostModel::Exact);
    EXPECT_EQ(costModelByName("interp"), CostModel::Interp);
    EXPECT_THROW(costModelByName("quadratic"),
                 std::invalid_argument);
}

TEST(CostModel, DefaultIsExact)
{
    // Goldens and equivalence pins rely on the default staying
    // exact; interp is an explicit opt-in.
    EXPECT_EQ(ServingConfig{}.costModel, CostModel::Exact);
}

TEST(CostModel, InterpWithinTwoPercentOfExactOnEveryEngine)
{
    // The headline accuracy pin: for every engine, interpolated
    // costs stay within 2% of the exact engine simulation at
    // non-anchor buckets.  Probes walk contexts upward (columns
    // 17, 19, 25, 28, 31 — all strictly between anchors) and stop
    // comparing once the exact surface saturates (past capacity
    // the interp path falls back to exact simulations, covered
    // separately).
    const std::vector<std::uint64_t> seqs{
        4452, 4914, 6410, 7200, 8013};
    for (const runtime::EngineKind kind :
         runtime::allEngineKinds()) {
        ServingConfig exact_config =
            costServing(CostModel::Exact);
        exact_config.engine = kind;
        ServingConfig interp_config = exact_config;
        interp_config.costModel = CostModel::Interp;
        ServingSimulator exact(fastConfig(4), model::opt13b(),
                               exact_config);
        ServingSimulator interp(fastConfig(4), model::opt13b(),
                                interp_config);
        std::uint32_t compared = 0;
        for (const std::uint32_t batch : {1u, 4u}) {
            for (const std::uint64_t seq : seqs) {
                if (!exact.servable(batch, seq) ||
                    exact.saturated())
                    break;
                const double exact_token =
                    exact.tokenSeconds(batch, seq);
                const double exact_prefill =
                    exact.prefillSeconds(batch, seq);
                ASSERT_GT(exact_token, 0.0);
                ASSERT_GT(exact_prefill, 0.0);
                EXPECT_NEAR(interp.tokenSeconds(batch, seq),
                            exact_token, exact_token * 0.02)
                    << runtime::engineKindName(kind)
                    << " token cost at batch " << batch
                    << ", seq " << seq;
                EXPECT_NEAR(interp.prefillSeconds(batch, seq),
                            exact_prefill, exact_prefill * 0.02)
                    << runtime::engineKindName(kind)
                    << " prefill cost at batch " << batch
                    << ", seq " << seq;
                ++compared;
            }
        }
        EXPECT_GT(compared, 0u) << runtime::engineKindName(kind);
    }
}

TEST(CostModel, AnchorBucketsAgreeExactlyWithExact)
{
    // Anchor columns are simulated, never interpolated, so the two
    // surfaces agree bit for bit there.  Columns 0..16 are all
    // anchors; past that the schedule grows by ~1.125x
    // (18, 20, 22, 24, 27, 30, 33, 37, ...).
    const std::uint32_t bucket = 256;
    ServingSimulator exact(fastConfig(4), model::opt13b(),
                           costServing(CostModel::Exact, bucket));
    ServingSimulator interp(fastConfig(4), model::opt13b(),
                            costServing(CostModel::Interp, bucket));
    for (const std::uint64_t column : {0, 2, 4, 8, 12, 18, 27}) {
        const std::uint64_t seq = column * bucket + 7;
        for (const std::uint32_t batch : {1u, 4u}) {
            EXPECT_DOUBLE_EQ(interp.tokenSeconds(batch, seq),
                             exact.tokenSeconds(batch, seq))
                << "column " << column << " batch " << batch;
            EXPECT_DOUBLE_EQ(interp.prefillSeconds(batch, seq),
                             exact.prefillSeconds(batch, seq))
                << "column " << column << " batch " << batch;
        }
    }
}

TEST(CostModel, InterpIsMonotoneInContext)
{
    // Larger contexts never get cheaper: exact anchors are
    // monotone and chords between them preserve that, including
    // across anchor/interpolated cell boundaries.
    ServingSimulator interp(fastConfig(4), model::opt13b(),
                            costServing(CostModel::Interp, 256));
    double last_token = 0.0;
    double last_prefill = 0.0;
    for (std::uint64_t column = 0; column <= 33; ++column) {
        const std::uint64_t seq = column * 256 + 1;
        if (!interp.servable(2, seq) || interp.saturated())
            break;
        const double token = interp.tokenSeconds(2, seq);
        const double prefill = interp.prefillSeconds(2, seq);
        EXPECT_GE(token, last_token) << "column " << column;
        EXPECT_GE(prefill, last_prefill) << "column " << column;
        last_token = token;
        last_prefill = prefill;
    }
    EXPECT_GT(last_token, 0.0);
}

TEST(CostModel, SaturationBoundaryNeverInterpolatedAcross)
{
    // Drive a big model toward its capacity cliff: wherever the
    // exact surface saturates (batch fallback) or goes unservable,
    // the interp surface must report the very same costs — those
    // buckets are computed exactly, never interpolated across.
    const auto llm = model::modelByName("OPT-30B");
    ServingConfig exact_config =
        costServing(CostModel::Exact, 512, 16);
    ServingConfig interp_config = exact_config;
    interp_config.costModel = CostModel::Interp;
    ServingSimulator exact(fastConfig(4), llm, exact_config);
    ServingSimulator interp(fastConfig(4), llm, interp_config);
    bool saw_saturation = false;
    for (std::uint64_t seq = 512; seq <= 512 * 40; seq += 512) {
        const bool exact_servable = exact.servable(16, seq);
        EXPECT_EQ(interp.servable(16, seq), exact_servable)
            << "seq " << seq;
        if (exact.saturated()) {
            saw_saturation = true;
            // Past the cliff the interp path computes exactly.
            if (exact_servable) {
                EXPECT_DOUBLE_EQ(interp.tokenSeconds(16, seq),
                                 exact.tokenSeconds(16, seq))
                    << "seq " << seq;
            }
        }
    }
    // The scenario must actually cross the cliff for this test to
    // mean anything; if the platform grows, raise the pressure.
    EXPECT_TRUE(saw_saturation);
    EXPECT_TRUE(interp.saturated());
}

TEST(CostModel, EnginePoolingCountsOneRunPerColdBucket)
{
    // One engine simulation per cold bucket, zero per hit: the
    // pooled engine is constructed once and reused, and repeated
    // probes never re-simulate.
    ServingSimulator simulator(
        fastConfig(4), model::opt13b(),
        costServing(CostModel::Exact, 256));
    EXPECT_EQ(simulator.calibrationRuns(), 0u);
    simulator.tokenSeconds(1, 100);
    EXPECT_EQ(simulator.calibrationRuns(), 1u);
    EXPECT_GT(simulator.calibrationSeconds(), 0.0);
    // Same bucket (same column, same batch row): pure hit.
    simulator.tokenSeconds(1, 120);
    simulator.prefillSeconds(1, 101);
    EXPECT_EQ(simulator.calibrationRuns(), 1u);
    // New column: one more.
    simulator.tokenSeconds(1, 300);
    EXPECT_EQ(simulator.calibrationRuns(), 2u);
}

TEST(CostModel, SharedCacheOverflowIsOrderIndependent)
{
    // seqBucket 1 pushes columns past the dense cap into the
    // sorted per-row overflow tail.  Two simulators sharing one
    // cache and two independent simulators probing in opposite
    // orders must all agree — sorted insert + lookup, hit after
    // insert, no order sensitivity.
    const ServingConfig config =
        costServing(CostModel::Exact, 1, 2);
    const std::vector<std::uint64_t> seqs{
        6000, 4200, 5000, 4095, 4096, 6000, 4200};
    ServingSimulator forward(fastConfig(2), model::opt13b(),
                             config);
    ServingSimulator backward(fastConfig(2), model::opt13b(),
                              config);
    ServingSimulator sharer(fastConfig(2), model::opt13b(),
                            config);
    sharer.shareCostCacheWith(forward);
    std::vector<double> first;
    for (const std::uint64_t seq : seqs)
        first.push_back(forward.tokenSeconds(1, seq));
    const std::uint64_t cold_runs = forward.calibrationRuns();
    for (std::size_t i = seqs.size(); i-- > 0;) {
        EXPECT_DOUBLE_EQ(backward.tokenSeconds(1, seqs[i]),
                         first[i])
            << "seq " << seqs[i];
        // The sharer hits the cache its sibling filled.
        EXPECT_DOUBLE_EQ(sharer.tokenSeconds(1, seqs[i]),
                         first[i])
            << "seq " << seqs[i];
    }
    // Hits after insert: re-probing filled buckets runs nothing,
    // on either member of the sharing group.
    EXPECT_EQ(forward.calibrationRuns(), cold_runs);
    EXPECT_EQ(sharer.calibrationRuns(), cold_runs);
    // 5 distinct buckets out of 7 probes (two repeats).
    EXPECT_EQ(cold_runs, 5u);
}

TEST(CostModel, WarmCostsIsInvisibleExceptForWallClock)
{
    // Warming fills the same cells lazy misses would, never
    // latches saturation, and leaves every subsequent probe a pure
    // hit — so a warmed simulator and a cold one agree bit for
    // bit, in both cost models and regardless of thread count.
    for (const CostModel model :
         {CostModel::Exact, CostModel::Interp}) {
        // Exact mode warms every probed cell, so keep its grid
        // small; interp mode reaches past column 24 where anchor
        // brackets span 3+ columns and warming a trajectory costs
        // fewer simulations (anchors plus one validation midpoint
        // per bracket) than there are cells.
        const std::uint64_t max_column =
            model == CostModel::Exact ? 9 : 40;
        std::vector<CostProbe> probes;
        for (const std::uint32_t batch : {1u, 4u}) {
            for (std::uint64_t column = 0; column <= max_column;
                 ++column)
                probes.push_back(
                    CostProbe{batch, column * 256});
        }
        ServingSimulator warmed(fastConfig(4), model::opt13b(),
                                costServing(model, 256));
        ServingSimulator parallel_warmed(
            fastConfig(4), model::opt13b(), costServing(model, 256));
        ServingSimulator cold(fastConfig(4), model::opt13b(),
                              costServing(model, 256));
        warmed.warmCosts(probes, 1);
        parallel_warmed.warmCosts(probes, 4);
        EXPECT_FALSE(warmed.saturated());
        EXPECT_EQ(warmed.calibrationRuns(),
                  parallel_warmed.calibrationRuns());
        const std::uint64_t warm_runs = warmed.calibrationRuns();
        for (const CostProbe &probe : probes) {
            const double expected =
                cold.tokenSeconds(probe.batch, probe.seq);
            EXPECT_DOUBLE_EQ(
                warmed.tokenSeconds(probe.batch, probe.seq),
                expected);
            EXPECT_DOUBLE_EQ(parallel_warmed.tokenSeconds(
                                 probe.batch, probe.seq),
                             expected);
        }
        // Every probe after warming was a pure hit.
        EXPECT_EQ(warmed.calibrationRuns(), warm_runs);
        EXPECT_EQ(parallel_warmed.calibrationRuns(), warm_runs);
        if (model == CostModel::Interp) {
            // Warming a whole trajectory costs only the anchors,
            // strictly fewer simulations than there are cells.
            EXPECT_LT(warm_runs, probes.size());
        }
    }
}

} // namespace
} // namespace hermes::serving
