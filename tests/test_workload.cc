/**
 * @file
 * Workload scenario generator tests: determinism, every arrival
 * process, CSV replay, and the edge cases that bite in production
 * (zero-rate bursts, single requests, bursts past the admission
 * queue, bucket-boundary context lengths).
 */

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/hermes.hh"
#include "core/workload.hh"

namespace hermes::serving {
namespace {

ScenarioConfig
smallScenario(ArrivalProcess process, std::uint32_t requests,
              double rate)
{
    ScenarioConfig scenario;
    scenario.process = process;
    scenario.requests = requests;
    scenario.ratePerSecond = rate;
    scenario.prompt = {64, 16, 0.0, 1.0};
    scenario.generate = {8, 4, 0.0, 1.0};
    scenario.seed = 21;
    return scenario;
}

TEST(Workload, EveryProcessIsDeterministicAndSorted)
{
    for (const ArrivalProcess process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty,
          ArrivalProcess::Diurnal}) {
        const auto scenario = smallScenario(process, 32, 4.0);
        const auto a = generateWorkload(scenario);
        const auto b = generateWorkload(scenario);
        ASSERT_EQ(a.size(), 32u)
            << arrivalProcessName(process);
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
            EXPECT_EQ(a[i].promptTokens, b[i].promptTokens);
            EXPECT_EQ(a[i].generateTokens, b[i].generateTokens);
            EXPECT_EQ(a[i].id, i);
            EXPECT_GE(a[i].promptTokens, 1u);
            if (i > 0) {
                EXPECT_GE(a[i].arrival, a[i - 1].arrival);
            }
        }
    }
}

TEST(Workload, DifferentSeedsDifferentTraces)
{
    auto scenario = smallScenario(ArrivalProcess::Poisson, 16, 4.0);
    const auto a = generateWorkload(scenario);
    scenario.seed = 22;
    const auto b = generateWorkload(scenario);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs |= a[i].arrival != b[i].arrival;
    EXPECT_TRUE(differs);
}

TEST(Workload, BurstyHasHigherInterArrivalVariance)
{
    const auto poisson = generateWorkload(
        smallScenario(ArrivalProcess::Poisson, 512, 4.0));
    const auto bursty = generateWorkload(
        smallScenario(ArrivalProcess::Bursty, 512, 4.0));
    auto cv2 = [](const std::vector<ServedRequest> &trace) {
        double sum = 0.0;
        double sq = 0.0;
        const auto n = static_cast<double>(trace.size() - 1);
        for (std::size_t i = 1; i < trace.size(); ++i) {
            const double gap =
                trace[i].arrival - trace[i - 1].arrival;
            sum += gap;
            sq += gap * gap;
        }
        const double mean = sum / n;
        return (sq / n - mean * mean) / (mean * mean);
    };
    EXPECT_GT(cv2(bursty), 2.0 * cv2(poisson));
}

TEST(Workload, ZeroRateCollapsesToOneBurst)
{
    const auto trace = generateWorkload(
        smallScenario(ArrivalProcess::Poisson, 8, 0.0));
    ASSERT_EQ(trace.size(), 8u);
    for (const ServedRequest &request : trace)
        EXPECT_DOUBLE_EQ(request.arrival, 0.0);
}

TEST(Workload, SingleAndZeroRequestTraces)
{
    const auto one = generateWorkload(
        smallScenario(ArrivalProcess::Bursty, 1, 4.0));
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0].arrival, 0.0);
    const auto none = generateWorkload(
        smallScenario(ArrivalProcess::Diurnal, 0, 4.0));
    EXPECT_TRUE(none.empty());
}

TEST(Workload, LengthDistributionRespectsBoundsAndTail)
{
    Rng rng(5);
    const LengthDistribution plain{100, 20, 0.0, 1.0};
    for (int i = 0; i < 256; ++i) {
        const std::uint32_t tokens = plain.sample(rng);
        EXPECT_GE(tokens, 80u);
        EXPECT_LE(tokens, 120u);
    }
    const LengthDistribution tailed{100, 0, 1.0, 3.0};
    EXPECT_EQ(tailed.sample(rng), 300u);
    const LengthDistribution tiny{1, 16, 0.0, 1.0};
    for (int i = 0; i < 256; ++i)
        EXPECT_GE(tiny.sample(rng), 1u);
}

TEST(Workload, CsvRoundTripPreservesTrace)
{
    const auto trace = generateWorkload(
        smallScenario(ArrivalProcess::Bursty, 12, 4.0));
    const auto replayed = parseCsvTrace(toCsvTrace(trace));
    ASSERT_EQ(replayed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_DOUBLE_EQ(replayed[i].arrival, trace[i].arrival);
        EXPECT_EQ(replayed[i].promptTokens,
                  trace[i].promptTokens);
        EXPECT_EQ(replayed[i].generateTokens,
                  trace[i].generateTokens);
    }
}

TEST(Workload, CsvParserSortsSkipsAndRejects)
{
    const auto trace = parseCsvTrace("# comment\n"
                                     "\n"
                                     "2.5, 64, 8\n"
                                     "0.5, 32, 4\n");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace[0].arrival, 0.5);
    EXPECT_EQ(trace[0].id, 0u);
    EXPECT_EQ(trace[1].promptTokens, 64u);

    EXPECT_THROW(parseCsvTrace("1.0 64 8\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("-1.0,64,8\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("1.0,0,8\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("bogus,64,8\n"),
                 std::invalid_argument);
    // Trailing garbage and out-of-range token counts must be loud,
    // not silently dropped or wrapped.
    EXPECT_THROW(parseCsvTrace("1.0,64,8junk\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("1.0,5000000000,8\n"),
                 std::invalid_argument);
}

TEST(Workload, CsvPriorityColumnRoundTripsWithLegacyDefault)
{
    // Old three-column rows parse with the default priority 0; the
    // optional fourth column carries it explicitly.
    const auto trace = parseCsvTrace("0.5, 32, 4\n"
                                     "1.5, 64, 8, 2\n");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].priority, 0u);
    EXPECT_EQ(trace[1].priority, 2u);

    // A prioritized trace serializes with the column and survives
    // the round trip; an all-default trace keeps the legacy
    // three-column form old parsers accept.
    const std::string csv = toCsvTrace(trace);
    EXPECT_NE(csv.find("priority"), std::string::npos);
    const auto replayed = parseCsvTrace(csv);
    ASSERT_EQ(replayed.size(), 2u);
    EXPECT_EQ(replayed[0].priority, 0u);
    EXPECT_EQ(replayed[1].priority, 2u);

    auto plain = trace;
    plain[1].priority = 0;
    const std::string legacy = toCsvTrace(plain);
    EXPECT_EQ(legacy.find("priority"), std::string::npos);
    EXPECT_EQ(parseCsvTrace(legacy).size(), 2u);

    // A malformed fourth column is loud, like every other field.
    EXPECT_THROW(parseCsvTrace("1.0,64,8,\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("1.0,64,8,low\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("1.0,64,8,-1\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("1.0,64,8,1,junk\n"),
                 std::invalid_argument);
    EXPECT_THROW(parseCsvTrace("1.0,64,8,5000000000\n"),
                 std::invalid_argument);
}

TEST(Workload, PriorityStreamIsIndependentAndDeterministic)
{
    // Turning priorities on must not shift arrivals or lengths
    // (dedicated RNG stream), and the high-priority fraction is
    // reproducible for a seed.
    ScenarioConfig plain =
        smallScenario(ArrivalProcess::Bursty, 32, 4.0);
    ScenarioConfig prioritized = plain;
    prioritized.highPriorityFraction = 0.3;
    prioritized.highPriority = 7;

    const auto a = generateWorkload(plain);
    const auto b = generateWorkload(prioritized);
    const auto c = generateWorkload(prioritized);
    ASSERT_EQ(a.size(), b.size());
    std::size_t high = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].promptTokens, b[i].promptTokens);
        EXPECT_EQ(a[i].generateTokens, b[i].generateTokens);
        EXPECT_EQ(a[i].priority, 0u);
        EXPECT_TRUE(b[i].priority == 0 || b[i].priority == 7);
        EXPECT_EQ(b[i].priority, c[i].priority);
        high += b[i].priority != 0 ? 1 : 0;
    }
    EXPECT_GT(high, 0u);
    EXPECT_LT(high, a.size());
}

TEST(Workload, ScenarioByNameCoversStandardSetOnly)
{
    const auto set = standardScenarios(16, 2.0, 3);
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0].name, "steady");
    EXPECT_EQ(set[1].name, "bursty");
    EXPECT_EQ(set[2].name, "diurnal");
    EXPECT_THROW(scenarioByName("lunar", 16, 2.0, 3),
                 std::invalid_argument);
    // The conversational scenario lives beside the standard sweep
    // (consumed through generateSessionWorkload, so it is not part
    // of the open-loop set).
    EXPECT_EQ(scenarioByName("multiturn", 16, 2.0, 3).name,
              "multiturn");
}

TEST(Workload, SessionGeneratorIsDeterministicAndWellFormed)
{
    ScenarioConfig scenario =
        smallScenario(ArrivalProcess::Poisson, 12, 2.0);
    scenario.turns = {3, 2, 0.0, 1.0}; // 1..5 turns per session.
    scenario.thinkMeanSeconds = 1.5;
    scenario.thinkSpreadSeconds = 0.5;

    const SessionTrace a = generateSessionWorkload(scenario);
    const SessionTrace b = generateSessionWorkload(scenario);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    ASSERT_EQ(a.turnOf.size(), a.requests.size());
    ASSERT_EQ(a.successor.size(), a.requests.size());
    ASSERT_EQ(a.thinkAfter.size(), a.requests.size());

    std::size_t sessions = 0;
    std::size_t multi_turn = 0;
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        // Bit-identical across runs of the same config + seed.
        EXPECT_DOUBLE_EQ(a.requests[i].arrival,
                         b.requests[i].arrival);
        EXPECT_EQ(a.requests[i].promptTokens,
                  b.requests[i].promptTokens);
        EXPECT_EQ(a.requests[i].generateTokens,
                  b.requests[i].generateTokens);
        EXPECT_EQ(a.requests[i].sessionId, b.requests[i].sessionId);
        EXPECT_EQ(a.turnOf[i], b.turnOf[i]);
        EXPECT_EQ(a.successor[i], b.successor[i]);
        EXPECT_DOUBLE_EQ(a.thinkAfter[i], b.thinkAfter[i]);

        // Structure: dense ids, session ids from 1, chained
        // successors, nonnegative think gaps (0 on last turns).
        EXPECT_EQ(a.requests[i].id, i);
        EXPECT_GE(a.requests[i].sessionId, 1u);
        if (a.turnOf[i] == 0)
            ++sessions;
        else
            ++multi_turn;
        if (a.successor[i] >= 0) {
            const auto next =
                static_cast<std::size_t>(a.successor[i]);
            ASSERT_EQ(next, i + 1);
            EXPECT_EQ(a.turnOf[next], a.turnOf[i] + 1);
            EXPECT_EQ(a.requests[next].sessionId,
                      a.requests[i].sessionId);
            EXPECT_GE(a.thinkAfter[i], 0.0);
            // Context grows with the conversation: the follow-up
            // prompt replays the whole history plus a fresh
            // message.
            EXPECT_GT(a.requests[next].promptTokens,
                      a.requests[i].promptTokens +
                          a.requests[i].generateTokens);
        } else {
            EXPECT_DOUBLE_EQ(a.thinkAfter[i], 0.0);
        }
    }
    EXPECT_EQ(sessions, 12u);
    EXPECT_GT(multi_turn, 0u); // Mean 3 turns: follow-ups exist.

    // First turns arrive in nondecreasing order (the fleet kernel
    // preloads them as a presorted stream).
    Seconds last_start = 0.0;
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        if (a.turnOf[i] != 0)
            continue;
        EXPECT_GE(a.requests[i].arrival, last_start);
        last_start = a.requests[i].arrival;
    }

    // A different seed moves the trace.
    scenario.seed = 22;
    const SessionTrace c = generateSessionWorkload(scenario);
    bool differs = c.requests.size() != a.requests.size();
    for (std::size_t i = 0;
         !differs && i < a.requests.size(); ++i)
        differs |= a.requests[i].arrival != c.requests[i].arrival ||
                   a.requests[i].promptTokens !=
                       c.requests[i].promptTokens;
    EXPECT_TRUE(differs);
}

TEST(Workload, MultiturnScenarioCountsSessionsNotTurns)
{
    const auto scenario = scenarioByName("multiturn", 8, 2.0, 7);
    const SessionTrace trace = generateSessionWorkload(scenario);

    std::size_t sessions = 0;
    std::uint32_t turns_in_session = 0;
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        if (trace.turnOf[i] == 0)
            ++sessions;
        if (trace.successor[i] < 0) {
            // 2-6 turns per conversation, per the scenario doc.
            turns_in_session = trace.turnOf[i] + 1;
            EXPECT_GE(turns_in_session, 2u);
            EXPECT_LE(turns_in_session, 6u);
        }
    }
    EXPECT_EQ(sessions, 8u); // `requests` counts sessions here.
    EXPECT_GT(trace.requests.size(), 8u);
}

TEST(Workload, BurstPastQueueLimitAccountsEveryRequest)
{
    // Zero-rate scenario: 20 simultaneous arrivals against 2 batch
    // slots + 3 queue spots.  Every request must end up either
    // completed or rejected — nothing lost, nothing double-counted.
    auto scenario = smallScenario(ArrivalProcess::Poisson, 20, 0.0);
    scenario.generate = {4, 0, 0.0, 1.0};
    const auto trace = generateWorkload(scenario);

    System system(fastConfig(4));
    ServingConfig config;
    config.maxBatch = 2;
    config.maxQueue = 3;
    config.calibrationTokens = 4;
    const auto report =
        system.serve(model::opt13b(), trace, config);
    EXPECT_EQ(report.completed + report.rejected, 20u);
    EXPECT_EQ(report.completed, 5u); // 2 slots + 3 queued.
    EXPECT_EQ(report.rejected, 15u);
    for (const auto &request : report.requests) {
        if (request.rejected) {
            EXPECT_DOUBLE_EQ(request.admitted, 0.0);
            EXPECT_DOUBLE_EQ(request.firstToken, 0.0);
            EXPECT_DOUBLE_EQ(request.completed, 0.0);
            EXPECT_EQ(request.tokens, 0u);
        }
    }
}

TEST(Workload, BucketBoundaryContextLengthsServeCleanly)
{
    // Prompts straddling a cost-cache bucket edge must all serve,
    // and a longer prompt must never land in a shorter bucket.
    System system(fastConfig(4));
    ServingConfig config;
    config.maxBatch = 2;
    config.calibrationTokens = 4;
    config.seqBucket = 128;

    std::vector<ServedRequest> trace;
    std::uint64_t id = 0;
    for (const std::uint32_t prompt :
         {127u, 128u, 129u, 256u, 257u}) {
        ServedRequest request;
        request.id = id++;
        request.arrival = static_cast<double>(id) * 10.0;
        request.promptTokens = prompt;
        request.generateTokens = 4;
        trace.push_back(request);
    }
    const auto report =
        system.serve(model::opt13b(), trace, config);
    EXPECT_EQ(report.completed, trace.size());
    for (const auto &request : report.requests) {
        EXPECT_FALSE(request.rejected);
        EXPECT_GT(request.firstToken, request.arrival);
        EXPECT_GE(request.completed, request.firstToken);
    }
}

} // namespace
} // namespace hermes::serving
