# Empty dependencies file for bench_fig11_batching.
# This may be replaced when dependencies are built.
