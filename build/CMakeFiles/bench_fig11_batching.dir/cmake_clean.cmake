file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_batching.dir/bench/bench_fig11_batching.cc.o"
  "CMakeFiles/bench_fig11_batching.dir/bench/bench_fig11_batching.cc.o.d"
  "bench_fig11_batching"
  "bench_fig11_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
