# Empty dependencies file for bench_fig09_offloading_comparison.
# This may be replaced when dependencies are built.
