file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_offloading_comparison.dir/bench/bench_fig09_offloading_comparison.cc.o"
  "CMakeFiles/bench_fig09_offloading_comparison.dir/bench/bench_fig09_offloading_comparison.cc.o.d"
  "bench_fig09_offloading_comparison"
  "bench_fig09_offloading_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_offloading_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
