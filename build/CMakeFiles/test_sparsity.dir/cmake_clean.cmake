file(REMOVE_RECURSE
  "CMakeFiles/test_sparsity.dir/tests/test_sparsity.cc.o"
  "CMakeFiles/test_sparsity.dir/tests/test_sparsity.cc.o.d"
  "test_sparsity"
  "test_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
