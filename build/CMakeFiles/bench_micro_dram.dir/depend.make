# Empty dependencies file for bench_micro_dram.
# This may be replaced when dependencies are built.
