file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dram.dir/bench/bench_micro_dram.cc.o"
  "CMakeFiles/bench_micro_dram.dir/bench/bench_micro_dram.cc.o.d"
  "bench_micro_dram"
  "bench_micro_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
