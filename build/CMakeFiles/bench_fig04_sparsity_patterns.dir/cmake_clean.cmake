file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_sparsity_patterns.dir/bench/bench_fig04_sparsity_patterns.cc.o"
  "CMakeFiles/bench_fig04_sparsity_patterns.dir/bench/bench_fig04_sparsity_patterns.cc.o.d"
  "bench_fig04_sparsity_patterns"
  "bench_fig04_sparsity_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_sparsity_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
