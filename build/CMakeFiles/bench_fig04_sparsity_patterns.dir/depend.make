# Empty dependencies file for bench_fig04_sparsity_patterns.
# This may be replaced when dependencies are built.
