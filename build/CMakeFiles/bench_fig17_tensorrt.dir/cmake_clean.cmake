file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tensorrt.dir/bench/bench_fig17_tensorrt.cc.o"
  "CMakeFiles/bench_fig17_tensorrt.dir/bench/bench_fig17_tensorrt.cc.o.d"
  "bench_fig17_tensorrt"
  "bench_fig17_tensorrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tensorrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
