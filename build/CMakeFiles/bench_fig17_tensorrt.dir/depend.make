# Empty dependencies file for bench_fig17_tensorrt.
# This may be replaced when dependencies are built.
