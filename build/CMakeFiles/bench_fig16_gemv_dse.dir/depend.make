# Empty dependencies file for bench_fig16_gemv_dse.
# This may be replaced when dependencies are built.
