file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_gemv_dse.dir/bench/bench_fig16_gemv_dse.cc.o"
  "CMakeFiles/bench_fig16_gemv_dse.dir/bench/bench_fig16_gemv_dse.cc.o.d"
  "bench_fig16_gemv_dse"
  "bench_fig16_gemv_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_gemv_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
