file(REMOVE_RECURSE
  "CMakeFiles/local_chatbot.dir/examples/local_chatbot.cc.o"
  "CMakeFiles/local_chatbot.dir/examples/local_chatbot.cc.o.d"
  "local_chatbot"
  "local_chatbot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_chatbot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
