# Empty dependencies file for local_chatbot.
# This may be replaced when dependencies are built.
