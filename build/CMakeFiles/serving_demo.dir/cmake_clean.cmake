file(REMOVE_RECURSE
  "CMakeFiles/serving_demo.dir/examples/serving_demo.cc.o"
  "CMakeFiles/serving_demo.dir/examples/serving_demo.cc.o.d"
  "serving_demo"
  "serving_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
