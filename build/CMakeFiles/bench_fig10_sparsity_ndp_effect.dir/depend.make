# Empty dependencies file for bench_fig10_sparsity_ndp_effect.
# This may be replaced when dependencies are built.
