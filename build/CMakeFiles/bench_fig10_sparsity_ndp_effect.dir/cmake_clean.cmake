file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sparsity_ndp_effect.dir/bench/bench_fig10_sparsity_ndp_effect.cc.o"
  "CMakeFiles/bench_fig10_sparsity_ndp_effect.dir/bench/bench_fig10_sparsity_ndp_effect.cc.o.d"
  "bench_fig10_sparsity_ndp_effect"
  "bench_fig10_sparsity_ndp_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sparsity_ndp_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
