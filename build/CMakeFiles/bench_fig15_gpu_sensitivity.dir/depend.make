# Empty dependencies file for bench_fig15_gpu_sensitivity.
# This may be replaced when dependencies are built.
