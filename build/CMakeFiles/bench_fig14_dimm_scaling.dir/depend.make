# Empty dependencies file for bench_fig14_dimm_scaling.
# This may be replaced when dependencies are built.
