file(REMOVE_RECURSE
  "CMakeFiles/hermes_sim.dir/examples/hermes_sim.cc.o"
  "CMakeFiles/hermes_sim.dir/examples/hermes_sim.cc.o.d"
  "hermes_sim"
  "hermes_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
