# Empty dependencies file for hermes_sim.
# This may be replaced when dependencies are built.
