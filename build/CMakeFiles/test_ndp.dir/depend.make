# Empty dependencies file for test_ndp.
# This may be replaced when dependencies are built.
