file(REMOVE_RECURSE
  "CMakeFiles/test_ndp.dir/tests/test_ndp.cc.o"
  "CMakeFiles/test_ndp.dir/tests/test_ndp.cc.o.d"
  "test_ndp"
  "test_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
