file(REMOVE_RECURSE
  "CMakeFiles/bench_dimmlink_migration.dir/bench/bench_dimmlink_migration.cc.o"
  "CMakeFiles/bench_dimmlink_migration.dir/bench/bench_dimmlink_migration.cc.o.d"
  "bench_dimmlink_migration"
  "bench_dimmlink_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dimmlink_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
