# Empty dependencies file for bench_dimmlink_migration.
# This may be replaced when dependencies are built.
