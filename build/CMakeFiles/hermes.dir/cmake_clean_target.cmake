file(REMOVE_RECURSE
  "libhermes.a"
)
