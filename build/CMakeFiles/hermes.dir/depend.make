# Empty dependencies file for hermes.
# This may be replaced when dependencies are built.
