
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "CMakeFiles/hermes.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/hermes.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/hermes.dir/src/common/table.cc.o" "gcc" "CMakeFiles/hermes.dir/src/common/table.cc.o.d"
  "/root/repo/src/core/hermes.cc" "CMakeFiles/hermes.dir/src/core/hermes.cc.o" "gcc" "CMakeFiles/hermes.dir/src/core/hermes.cc.o.d"
  "/root/repo/src/core/serving.cc" "CMakeFiles/hermes.dir/src/core/serving.cc.o" "gcc" "CMakeFiles/hermes.dir/src/core/serving.cc.o.d"
  "/root/repo/src/dram/bandwidth_probe.cc" "CMakeFiles/hermes.dir/src/dram/bandwidth_probe.cc.o" "gcc" "CMakeFiles/hermes.dir/src/dram/bandwidth_probe.cc.o.d"
  "/root/repo/src/dram/controller.cc" "CMakeFiles/hermes.dir/src/dram/controller.cc.o" "gcc" "CMakeFiles/hermes.dir/src/dram/controller.cc.o.d"
  "/root/repo/src/dram/timing.cc" "CMakeFiles/hermes.dir/src/dram/timing.cc.o" "gcc" "CMakeFiles/hermes.dir/src/dram/timing.cc.o.d"
  "/root/repo/src/gpu/gpu_spec.cc" "CMakeFiles/hermes.dir/src/gpu/gpu_spec.cc.o" "gcc" "CMakeFiles/hermes.dir/src/gpu/gpu_spec.cc.o.d"
  "/root/repo/src/gpu/kernels.cc" "CMakeFiles/hermes.dir/src/gpu/kernels.cc.o" "gcc" "CMakeFiles/hermes.dir/src/gpu/kernels.cc.o.d"
  "/root/repo/src/interconnect/dimm_link.cc" "CMakeFiles/hermes.dir/src/interconnect/dimm_link.cc.o" "gcc" "CMakeFiles/hermes.dir/src/interconnect/dimm_link.cc.o.d"
  "/root/repo/src/interconnect/pcie.cc" "CMakeFiles/hermes.dir/src/interconnect/pcie.cc.o" "gcc" "CMakeFiles/hermes.dir/src/interconnect/pcie.cc.o.d"
  "/root/repo/src/model/llm_config.cc" "CMakeFiles/hermes.dir/src/model/llm_config.cc.o" "gcc" "CMakeFiles/hermes.dir/src/model/llm_config.cc.o.d"
  "/root/repo/src/ndp/activation_unit.cc" "CMakeFiles/hermes.dir/src/ndp/activation_unit.cc.o" "gcc" "CMakeFiles/hermes.dir/src/ndp/activation_unit.cc.o.d"
  "/root/repo/src/ndp/gemv_unit.cc" "CMakeFiles/hermes.dir/src/ndp/gemv_unit.cc.o" "gcc" "CMakeFiles/hermes.dir/src/ndp/gemv_unit.cc.o.d"
  "/root/repo/src/ndp/ndp_dimm.cc" "CMakeFiles/hermes.dir/src/ndp/ndp_dimm.cc.o" "gcc" "CMakeFiles/hermes.dir/src/ndp/ndp_dimm.cc.o.d"
  "/root/repo/src/runtime/accelerate_engine.cc" "CMakeFiles/hermes.dir/src/runtime/accelerate_engine.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/accelerate_engine.cc.o.d"
  "/root/repo/src/runtime/common_costs.cc" "CMakeFiles/hermes.dir/src/runtime/common_costs.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/common_costs.cc.o.d"
  "/root/repo/src/runtime/cost_model.cc" "CMakeFiles/hermes.dir/src/runtime/cost_model.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/cost_model.cc.o.d"
  "/root/repo/src/runtime/decode_pipeline.cc" "CMakeFiles/hermes.dir/src/runtime/decode_pipeline.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/decode_pipeline.cc.o.d"
  "/root/repo/src/runtime/dejavu_engine.cc" "CMakeFiles/hermes.dir/src/runtime/dejavu_engine.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/dejavu_engine.cc.o.d"
  "/root/repo/src/runtime/factory.cc" "CMakeFiles/hermes.dir/src/runtime/factory.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/factory.cc.o.d"
  "/root/repo/src/runtime/flexgen_engine.cc" "CMakeFiles/hermes.dir/src/runtime/flexgen_engine.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/flexgen_engine.cc.o.d"
  "/root/repo/src/runtime/hermes_base_engine.cc" "CMakeFiles/hermes.dir/src/runtime/hermes_base_engine.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/hermes_base_engine.cc.o.d"
  "/root/repo/src/runtime/hermes_engine.cc" "CMakeFiles/hermes.dir/src/runtime/hermes_engine.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/hermes_engine.cc.o.d"
  "/root/repo/src/runtime/hermes_host_engine.cc" "CMakeFiles/hermes.dir/src/runtime/hermes_host_engine.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/hermes_host_engine.cc.o.d"
  "/root/repo/src/runtime/tensorrt_engine.cc" "CMakeFiles/hermes.dir/src/runtime/tensorrt_engine.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/tensorrt_engine.cc.o.d"
  "/root/repo/src/runtime/timeline.cc" "CMakeFiles/hermes.dir/src/runtime/timeline.cc.o" "gcc" "CMakeFiles/hermes.dir/src/runtime/timeline.cc.o.d"
  "/root/repo/src/sched/ilp_partition.cc" "CMakeFiles/hermes.dir/src/sched/ilp_partition.cc.o" "gcc" "CMakeFiles/hermes.dir/src/sched/ilp_partition.cc.o.d"
  "/root/repo/src/sched/mapper.cc" "CMakeFiles/hermes.dir/src/sched/mapper.cc.o" "gcc" "CMakeFiles/hermes.dir/src/sched/mapper.cc.o.d"
  "/root/repo/src/sched/placement.cc" "CMakeFiles/hermes.dir/src/sched/placement.cc.o" "gcc" "CMakeFiles/hermes.dir/src/sched/placement.cc.o.d"
  "/root/repo/src/sched/predictor.cc" "CMakeFiles/hermes.dir/src/sched/predictor.cc.o" "gcc" "CMakeFiles/hermes.dir/src/sched/predictor.cc.o.d"
  "/root/repo/src/sched/window_scheduler.cc" "CMakeFiles/hermes.dir/src/sched/window_scheduler.cc.o" "gcc" "CMakeFiles/hermes.dir/src/sched/window_scheduler.cc.o.d"
  "/root/repo/src/sparsity/stats.cc" "CMakeFiles/hermes.dir/src/sparsity/stats.cc.o" "gcc" "CMakeFiles/hermes.dir/src/sparsity/stats.cc.o.d"
  "/root/repo/src/sparsity/trace.cc" "CMakeFiles/hermes.dir/src/sparsity/trace.cc.o" "gcc" "CMakeFiles/hermes.dir/src/sparsity/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
