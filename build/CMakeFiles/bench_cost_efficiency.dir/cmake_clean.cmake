file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_efficiency.dir/bench/bench_cost_efficiency.cc.o"
  "CMakeFiles/bench_cost_efficiency.dir/bench/bench_cost_efficiency.cc.o.d"
  "bench_cost_efficiency"
  "bench_cost_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
