# Empty dependencies file for bench_cost_efficiency.
# This may be replaced when dependencies are built.
