# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_dram "/root/repo/build/test_dram")
set_tests_properties(test_dram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_gpu "/root/repo/build/test_gpu")
set_tests_properties(test_gpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_interconnect "/root/repo/build/test_interconnect")
set_tests_properties(test_interconnect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_ndp "/root/repo/build/test_ndp")
set_tests_properties(test_ndp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sched "/root/repo/build/test_sched")
set_tests_properties(test_sched PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_serving "/root/repo/build/test_serving")
set_tests_properties(test_serving PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sparsity "/root/repo/build/test_sparsity")
set_tests_properties(test_sparsity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_timeline "/root/repo/build/test_timeline")
set_tests_properties(test_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;28;add_test;/root/repo/CMakeLists.txt;0;")
