/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench prints the rows/series of one paper figure.  Absolute
 * tokens/s will not match the authors' testbed (see DESIGN.md), but
 * orderings and ratios should.  Benches run on a reduced layer
 * sample (statistics are per-layer i.i.d.) so the whole suite
 * finishes in minutes.
 */

#ifndef HERMES_BENCH_BENCH_UTIL_HH
#define HERMES_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/hermes.hh"

namespace hermes::bench {

/**
 * Tiny `--key value` / `--flag` command-line parser shared by the
 * benches, so sweeps are configurable instead of hardcoded.
 *
 * Usage: query every option first (each query registers the option
 * for the usage text), then call finish(); it prints the usage and
 * exits on `--help` or any unrecognized argument.
 */
class Args
{
  public:
    Args(int argc, char **argv) : program_(argv[0])
    {
        for (int i = 1; i < argc; ++i)
            tokens_.push_back(argv[i]);
        consumed_.assign(tokens_.size(), false);
    }

    /** Presence flag, e.g. `--smoke`. */
    bool
    flag(const std::string &name, const std::string &help)
    {
        registerOption("--" + name, help);
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (tokens_[i] == "--" + name) {
                consumed_[i] = true;
                return true;
            }
        }
        return false;
    }

    /** String option, e.g. `--scenario bursty`. */
    std::string
    str(const std::string &name, const std::string &fallback,
        const std::string &help)
    {
        registerOption("--" + name + " <value>",
                       help + " (default: " + fallback + ")");
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (tokens_[i] == "--" + name &&
                i + 1 < tokens_.size()) {
                consumed_[i] = true;
                consumed_[i + 1] = true;
                return tokens_[i + 1];
            }
        }
        return fallback;
    }

    /** Unsigned integer option; rejects unparseable values. */
    std::uint32_t
    u32(const std::string &name, std::uint32_t fallback,
        const std::string &help)
    {
        const std::string value =
            str(name, std::to_string(fallback), help);
        // Digits only: strtoul would silently wrap a negative.
        if (value.empty() ||
            value.find_first_not_of("0123456789") !=
                std::string::npos)
            badValue(name, value);
        char *end = nullptr;
        const unsigned long parsed =
            std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' ||
            parsed > UINT32_MAX)
            badValue(name, value);
        return static_cast<std::uint32_t>(parsed);
    }

    /**
     * Unsigned 64-bit option (e.g. `--seed`, whose full range the
     * workload generator accepts); rejects unparseable values and
     * values beyond UINT64_MAX.
     */
    std::uint64_t
    u64(const std::string &name, std::uint64_t fallback,
        const std::string &help)
    {
        const std::string value =
            str(name, std::to_string(fallback), help);
        // Digits only: strtoull would silently wrap a negative.
        if (value.empty() ||
            value.find_first_not_of("0123456789") !=
                std::string::npos)
            badValue(name, value);
        errno = 0;
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(value.c_str(), &end, 10);
        // ERANGE: the value overflowed UINT64_MAX and strtoull
        // clamped it — reject rather than silently saturate.
        if (end == value.c_str() || *end != '\0' ||
            errno == ERANGE)
            badValue(name, value);
        return static_cast<std::uint64_t>(parsed);
    }

    /** Floating-point option; rejects unparseable values. */
    double
    f64(const std::string &name, double fallback,
        const std::string &help)
    {
        char fallback_text[32];
        std::snprintf(fallback_text, sizeof(fallback_text), "%g",
                      fallback);
        const std::string value = str(name, fallback_text, help);
        char *end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            badValue(name, value);
        return parsed;
    }

    /** Validate: usage + exit on --help or leftover arguments. */
    void
    finish() const
    {
        bool unknown = false;
        bool help = false;
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (consumed_[i])
                continue;
            if (tokens_[i] == "--help" || tokens_[i] == "-h") {
                help = true;
                continue;
            }
            std::fprintf(stderr, "unknown argument: %s\n",
                         tokens_[i].c_str());
            unknown = true;
        }
        if (!unknown && !help)
            return;
        std::fprintf(stderr, "usage: %s [options]\n",
                     program_.c_str());
        for (const std::string &line : usage_)
            std::fprintf(stderr, "  %s\n", line.c_str());
        std::exit(help && !unknown ? 0 : 2);
    }

  private:
    [[noreturn]] void
    badValue(const std::string &name,
             const std::string &value) const
    {
        std::fprintf(stderr, "--%s: not a number: '%s'\n",
                     name.c_str(), value.c_str());
        std::exit(2);
    }

    void
    registerOption(const std::string &form,
                   const std::string &help)
    {
        char line[192];
        std::snprintf(line, sizeof(line), "%-24s %s", form.c_str(),
                      help.c_str());
        usage_.push_back(line);
    }

    std::string program_;
    std::vector<std::string> tokens_;
    std::vector<bool> consumed_;
    std::vector<std::string> usage_;
};

/** Platform for bench runs: Sec. V-A1 defaults, 6-layer sample. */
inline SystemConfig
benchPlatform()
{
    SystemConfig config;
    config.simulatedLayers = 6;
    return config;
}

/** Workload for bench runs: 128/128 tokens, trimmed generation. */
inline InferenceRequest
benchRequest(const std::string &model, std::uint32_t batch = 1)
{
    InferenceRequest request =
        defaultRequest(model::modelByName(model), batch);
    request.generateTokens = 48; // Steady state reached by ~10 tokens.
    request.profileTokens = 32;
    return request;
}

/** Print a figure banner. */
inline void
banner(const char *figure, const char *title)
{
    std::printf("\n=== %s: %s ===\n", figure, title);
}

/** tokens/s or "N.P." for an unsupported (model, system) pair. */
inline std::string
rate(const InferenceResult &result)
{
    if (!result.supported)
        return "N.P.";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f",
                  result.tokensPerSecond);
    return buffer;
}

} // namespace hermes::bench

#endif // HERMES_BENCH_BENCH_UTIL_HH
