/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench prints the rows/series of one paper figure.  Absolute
 * tokens/s will not match the authors' testbed (see DESIGN.md), but
 * orderings and ratios should.  Benches run on a reduced layer
 * sample (statistics are per-layer i.i.d.) so the whole suite
 * finishes in minutes.
 */

#ifndef HERMES_BENCH_BENCH_UTIL_HH
#define HERMES_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/hermes.hh"

namespace hermes::bench {

/**
 * Tiny `--key value` / `--flag` command-line parser shared by the
 * benches, so sweeps are configurable instead of hardcoded.
 *
 * Usage: query every option first (each query registers the option
 * for the usage text), then call finish(); it prints the usage and
 * exits on `--help` or any unrecognized argument.
 */
class Args
{
  public:
    Args(int argc, char **argv) : program_(argv[0])
    {
        for (int i = 1; i < argc; ++i)
            tokens_.push_back(argv[i]);
        consumed_.assign(tokens_.size(), false);
    }

    /** Presence flag, e.g. `--smoke`. */
    bool
    flag(const std::string &name, const std::string &help)
    {
        registerOption("--" + name, help);
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (tokens_[i] == "--" + name) {
                consumed_[i] = true;
                return true;
            }
        }
        return false;
    }

    /** String option, e.g. `--scenario bursty`. */
    std::string
    str(const std::string &name, const std::string &fallback,
        const std::string &help)
    {
        registerOption("--" + name + " <value>",
                       help + " (default: " + fallback + ")");
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (tokens_[i] == "--" + name &&
                i + 1 < tokens_.size()) {
                consumed_[i] = true;
                consumed_[i + 1] = true;
                return tokens_[i + 1];
            }
        }
        return fallback;
    }

    /** Unsigned integer option; rejects unparseable values. */
    std::uint32_t
    u32(const std::string &name, std::uint32_t fallback,
        const std::string &help)
    {
        const std::string value =
            str(name, std::to_string(fallback), help);
        // Digits only: strtoul would silently wrap a negative.
        if (value.empty() ||
            value.find_first_not_of("0123456789") !=
                std::string::npos)
            badValue(name, value);
        char *end = nullptr;
        const unsigned long parsed =
            std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' ||
            parsed > UINT32_MAX)
            badValue(name, value);
        return static_cast<std::uint32_t>(parsed);
    }

    /**
     * Unsigned 64-bit option (e.g. `--seed`, whose full range the
     * workload generator accepts); rejects unparseable values and
     * values beyond UINT64_MAX.
     */
    std::uint64_t
    u64(const std::string &name, std::uint64_t fallback,
        const std::string &help)
    {
        const std::string value =
            str(name, std::to_string(fallback), help);
        // Digits only: strtoull would silently wrap a negative.
        if (value.empty() ||
            value.find_first_not_of("0123456789") !=
                std::string::npos)
            badValue(name, value);
        errno = 0;
        char *end = nullptr;
        const unsigned long long parsed =
            std::strtoull(value.c_str(), &end, 10);
        // ERANGE: the value overflowed UINT64_MAX and strtoull
        // clamped it — reject rather than silently saturate.
        if (end == value.c_str() || *end != '\0' ||
            errno == ERANGE)
            badValue(name, value);
        return static_cast<std::uint64_t>(parsed);
    }

    /**
     * Output-path option, e.g. `--json BENCH_fleet.json`.  Empty
     * (the default) means "don't write the file" — benches print
     * their human tables either way and only emit the
     * machine-readable mirror when asked.
     */
    std::string
    out(const std::string &name, const std::string &help)
    {
        registerOption("--" + name + " <path>", help);
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (tokens_[i] == "--" + name &&
                i + 1 < tokens_.size()) {
                consumed_[i] = true;
                consumed_[i + 1] = true;
                return tokens_[i + 1];
            }
        }
        return std::string();
    }

    /** Floating-point option; rejects unparseable values. */
    double
    f64(const std::string &name, double fallback,
        const std::string &help)
    {
        char fallback_text[32];
        std::snprintf(fallback_text, sizeof(fallback_text), "%g",
                      fallback);
        const std::string value = str(name, fallback_text, help);
        char *end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            badValue(name, value);
        return parsed;
    }

    /** Validate: usage + exit on --help or leftover arguments. */
    void
    finish() const
    {
        bool unknown = false;
        bool help = false;
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
            if (consumed_[i])
                continue;
            if (tokens_[i] == "--help" || tokens_[i] == "-h") {
                help = true;
                continue;
            }
            std::fprintf(stderr, "unknown argument: %s\n",
                         tokens_[i].c_str());
            unknown = true;
        }
        if (!unknown && !help)
            return;
        std::fprintf(stderr, "usage: %s [options]\n",
                     program_.c_str());
        for (const std::string &line : usage_)
            std::fprintf(stderr, "  %s\n", line.c_str());
        std::exit(help && !unknown ? 0 : 2);
    }

  private:
    [[noreturn]] void
    badValue(const std::string &name,
             const std::string &value) const
    {
        std::fprintf(stderr, "--%s: not a number: '%s'\n",
                     name.c_str(), value.c_str());
        std::exit(2);
    }

    void
    registerOption(const std::string &form,
                   const std::string &help)
    {
        char line[192];
        std::snprintf(line, sizeof(line), "%-24s %s", form.c_str(),
                      help.c_str());
        usage_.push_back(line);
    }

    std::string program_;
    std::vector<std::string> tokens_;
    std::vector<bool> consumed_;
    std::vector<std::string> usage_;
};

/** Escape `text` for a JSON string literal (quotes not added). */
inline std::string
jsonEscape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\b': escaped += "\\b"; break;
        case '\f': escaped += "\\f"; break;
        case '\n': escaped += "\\n"; break;
        case '\r': escaped += "\\r"; break;
        case '\t': escaped += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                escaped += buffer;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

/**
 * Inverse of jsonEscape: decode the escapes inside a JSON string
 * literal (without its surrounding quotes).  Returns false on a
 * malformed escape; `\uXXXX` is supported for the Basic Latin
 * range only — everything jsonEscape itself can produce.
 */
inline bool
jsonUnescape(const std::string &text, std::string &decoded)
{
    decoded.clear();
    decoded.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\') {
            decoded += text[i];
            continue;
        }
        if (++i >= text.size())
            return false;
        switch (text[i]) {
        case '"': decoded += '"'; break;
        case '\\': decoded += '\\'; break;
        case '/': decoded += '/'; break;
        case 'b': decoded += '\b'; break;
        case 'f': decoded += '\f'; break;
        case 'n': decoded += '\n'; break;
        case 'r': decoded += '\r'; break;
        case 't': decoded += '\t'; break;
        case 'u': {
            if (i + 4 >= text.size())
                return false;
            unsigned code = 0;
            for (int d = 0; d < 4; ++d) {
                const char h = text[++i];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    code |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            if (code > 0x7f)
                return false;
            decoded += static_cast<char>(code);
            break;
        }
        default:
            return false;
        }
    }
    return true;
}

/**
 * Minimal flat JSON object — the machine-readable mirror of a
 * bench run (BENCH_*.json): string / integer / float / bool
 * values, insertion order preserved, no nesting.  The CI
 * regression checker (tools/check_bench_regression.py) reads these
 * files with a real JSON parser; parse() exists so the C++ tests
 * can pin the emitter's escaping and round-trip without one.
 */
class JsonObject
{
  public:
    void
    set(const std::string &key, const std::string &value)
    {
        entries_.push_back(
            {key, "\"" + jsonEscape(value) + "\""});
    }

    void
    set(const std::string &key, const char *value)
    {
        set(key, std::string(value));
    }

    void
    setU64(const std::string &key, std::uint64_t value)
    {
        entries_.push_back({key, std::to_string(value)});
    }

    void
    setF64(const std::string &key, double value)
    {
        // %.17g survives a decimal round-trip for any double.
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "%.17g", value);
        entries_.push_back({key, buffer});
    }

    void
    setBool(const std::string &key, bool value)
    {
        entries_.push_back({key, value ? "true" : "false"});
    }

    /** Render as one pretty-printed JSON object. */
    std::string
    dump() const
    {
        std::string text = "{\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            text += "  \"" + jsonEscape(entries_[i].key) +
                    "\": " + entries_[i].raw;
            if (i + 1 < entries_.size())
                text += ",";
            text += "\n";
        }
        text += "}\n";
        return text;
    }

    /** Write dump() to `path`; false (with perror) on failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (file == nullptr) {
            std::perror(path.c_str());
            return false;
        }
        const std::string text = dump();
        const bool ok =
            std::fwrite(text.data(), 1, text.size(), file) ==
            text.size();
        return std::fclose(file) == 0 && ok;
    }

    /**
     * Parse a flat JSON object of scalars (what dump() emits).
     * Returns false on nesting or malformed input.
     */
    static bool
    parse(const std::string &text, JsonObject &object)
    {
        object.entries_.clear();
        std::size_t i = 0;
        const auto skipSpace = [&] {
            while (i < text.size() &&
                   (text[i] == ' ' || text[i] == '\t' ||
                    text[i] == '\n' || text[i] == '\r'))
                ++i;
        };
        // A JSON string literal starting at text[i] == '"';
        // leaves `i` one past the closing quote.
        const auto readString = [&](std::string &raw) {
            raw.clear();
            if (i >= text.size() || text[i] != '"')
                return false;
            for (++i; i < text.size(); ++i) {
                if (text[i] == '\\') {
                    if (i + 1 >= text.size())
                        return false;
                    raw += text[i];
                    raw += text[++i];
                } else if (text[i] == '"') {
                    ++i;
                    return true;
                } else {
                    raw += text[i];
                }
            }
            return false;
        };
        skipSpace();
        if (i >= text.size() || text[i] != '{')
            return false;
        ++i;
        skipSpace();
        if (i < text.size() && text[i] == '}')
            return tail(text, i + 1);
        while (true) {
            skipSpace();
            Entry entry;
            std::string raw_key;
            if (!readString(raw_key) ||
                !jsonUnescape(raw_key, entry.key))
                return false;
            skipSpace();
            if (i >= text.size() || text[i] != ':')
                return false;
            ++i;
            skipSpace();
            if (i >= text.size())
                return false;
            if (text[i] == '"') {
                std::string raw;
                if (!readString(raw))
                    return false;
                entry.raw = "\"" + raw + "\"";
            } else if (text[i] == '{' || text[i] == '[') {
                return false; // Flat objects only.
            } else {
                while (i < text.size() && text[i] != ',' &&
                       text[i] != '}' && text[i] != ' ' &&
                       text[i] != '\n' && text[i] != '\r' &&
                       text[i] != '\t')
                    entry.raw += text[i++];
                if (entry.raw.empty())
                    return false;
            }
            object.entries_.push_back(entry);
            skipSpace();
            if (i >= text.size())
                return false;
            if (text[i] == ',') {
                ++i;
                continue;
            }
            if (text[i] == '}')
                return tail(text, i + 1);
            return false;
        }
    }

    std::size_t size() const { return entries_.size(); }

    bool
    has(const std::string &key) const
    {
        return findRaw(key) != nullptr;
    }

    /** Decoded string value; empty when absent or not a string. */
    std::string
    str(const std::string &key) const
    {
        const std::string *raw = findRaw(key);
        std::string decoded;
        if (raw == nullptr || raw->size() < 2 ||
            raw->front() != '"' || raw->back() != '"' ||
            !jsonUnescape(raw->substr(1, raw->size() - 2),
                          decoded))
            return std::string();
        return decoded;
    }

    /** Numeric value (integers included); 0.0 when absent. */
    double
    number(const std::string &key) const
    {
        const std::string *raw = findRaw(key);
        if (raw == nullptr || raw->empty() ||
            raw->front() == '"')
            return 0.0;
        return std::strtod(raw->c_str(), nullptr);
    }

  private:
    struct Entry
    {
        std::string key;
        std::string raw; ///< Rendered token, quotes included.
    };

    /** Only whitespace may follow the closing brace. */
    static bool
    tail(const std::string &text, std::size_t i)
    {
        for (; i < text.size(); ++i) {
            if (text[i] != ' ' && text[i] != '\t' &&
                text[i] != '\n' && text[i] != '\r')
                return false;
        }
        return true;
    }

    const std::string *
    findRaw(const std::string &key) const
    {
        for (const Entry &entry : entries_) {
            if (entry.key == key)
                return &entry.raw;
        }
        return nullptr;
    }

    std::vector<Entry> entries_;
};

/** Peak resident set size of this process in KiB (0 = unknown). */
inline std::uint64_t
peakRssKib()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes, Linux in KiB.
    return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
#else
    return 0;
#endif
}

/** Platform for bench runs: Sec. V-A1 defaults, 6-layer sample. */
inline SystemConfig
benchPlatform()
{
    SystemConfig config;
    config.simulatedLayers = 6;
    return config;
}

/** Workload for bench runs: 128/128 tokens, trimmed generation. */
inline InferenceRequest
benchRequest(const std::string &model, std::uint32_t batch = 1)
{
    InferenceRequest request =
        defaultRequest(model::modelByName(model), batch);
    request.generateTokens = 48; // Steady state reached by ~10 tokens.
    request.profileTokens = 32;
    return request;
}

/** Print a figure banner. */
inline void
banner(const char *figure, const char *title)
{
    std::printf("\n=== %s: %s ===\n", figure, title);
}

/** tokens/s or "N.P." for an unsupported (model, system) pair. */
inline std::string
rate(const InferenceResult &result)
{
    if (!result.supported)
        return "N.P.";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f",
                  result.tokensPerSecond);
    return buffer;
}

} // namespace hermes::bench

#endif // HERMES_BENCH_BENCH_UTIL_HH
