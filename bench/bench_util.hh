/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench prints the rows/series of one paper figure.  Absolute
 * tokens/s will not match the authors' testbed (see DESIGN.md), but
 * orderings and ratios should.  Benches run on a reduced layer
 * sample (statistics are per-layer i.i.d.) so the whole suite
 * finishes in minutes.
 */

#ifndef HERMES_BENCH_BENCH_UTIL_HH
#define HERMES_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "core/hermes.hh"

namespace hermes::bench {

/** Platform for bench runs: Sec. V-A1 defaults, 6-layer sample. */
inline SystemConfig
benchPlatform()
{
    SystemConfig config;
    config.simulatedLayers = 6;
    return config;
}

/** Workload for bench runs: 128/128 tokens, trimmed generation. */
inline InferenceRequest
benchRequest(const std::string &model, std::uint32_t batch = 1)
{
    InferenceRequest request =
        defaultRequest(model::modelByName(model), batch);
    request.generateTokens = 48; // Steady state reached by ~10 tokens.
    request.profileTokens = 32;
    return request;
}

/** Print a figure banner. */
inline void
banner(const char *figure, const char *title)
{
    std::printf("\n=== %s: %s ===\n", figure, title);
}

/** tokens/s or "N.P." for an unsupported (model, system) pair. */
inline std::string
rate(const InferenceResult &result)
{
    if (!result.supported)
        return "N.P.";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f",
                  result.tokensPerSecond);
    return buffer;
}

} // namespace hermes::bench

#endif // HERMES_BENCH_BENCH_UTIL_HH
