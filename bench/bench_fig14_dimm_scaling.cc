/**
 * @file
 * Fig. 14 reproduction: Hermes throughput vs the number of
 * NDP-DIMMs (1-16) for four models at batch 1.  Models print N.P.
 * when the DIMM pool cannot hold their weights (e.g. Falcon-40B
 * needs at least four 32 GB DIMMs), and throughput saturates once
 * the aggregate NDP bandwidth overtakes the GPU side.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "runtime/hermes_engine.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;

    banner("Fig. 14", "throughput vs number of NDP-DIMMs, batch 1");
    TextTable table(
        {"model", "D=1", "D=2", "D=4", "D=8", "D=16"});
    for (const char *name :
         {"OPT-13B", "OPT-30B", "Falcon-40B", "LLaMA2-70B"}) {
        std::vector<std::string> row = {name};
        for (const std::uint32_t dimms : {1u, 2u, 4u, 8u, 16u}) {
            SystemConfig config = benchPlatform();
            config.numDimms = dimms;
            runtime::HermesEngine engine(config);
            row.push_back(rate(engine.run(benchRequest(name))));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("paper shape: small models unsupported only at D=1; "
                "Falcon-40B needs D>=4; LLaMA2-70B needs D>=8 for\n"
                "weights+KV; throughput flattens once NDP bandwidth "
                "catches the GPU (e.g. 70B: D=8 ~ D=16)\n");
    return 0;
}
