/**
 * @file
 * Fig. 13 reproduction: ablation of the scheduling stack on
 * LLaMA2-13B and LLaMA2-70B (batches 1, 4, 16), normalized to
 * Hermes-random.
 *
 * Variants: random mapping / offline partition only / + token-wise
 * adjustment / + layer-wise adjustment / + both (adjustment) / full
 * Hermes (adds window-based rebalancing).
 *
 * Paper factors: partition 1.63x over random; adjustment 1.33x over
 * partition; full 1.29x over adjustment; token- or layer-only
 * adjustment gives 1.08x / 1.11x over partition.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "runtime/hermes_engine.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

SystemConfig
variantConfig(bool partition, bool token, bool layer, bool rebalance)
{
    SystemConfig config = benchPlatform();
    config.sched.offlinePartition = partition;
    config.sched.onlineAdjustment = token || layer;
    config.sched.tokenWisePrediction = token;
    config.sched.layerWisePrediction = layer;
    config.sched.windowRebalance = rebalance;
    return config;
}

} // namespace

int
main()
{
    banner("Fig. 13", "scheduling ablation (speedup over random)");

    struct Variant
    {
        const char *name;
        SystemConfig config;
    };
    const std::vector<Variant> variants = {
        {"Hermes-random", variantConfig(false, false, false, false)},
        {"Hermes-partition", variantConfig(true, false, false, false)},
        {"Hermes-token-adj", variantConfig(true, true, false, false)},
        {"Hermes-layer-adj", variantConfig(true, false, true, false)},
        {"Hermes-adjustment", variantConfig(true, true, true, false)},
        {"Hermes (full)", variantConfig(true, true, true, true)},
    };

    for (const char *model : {"LLaMA2-13B", "LLaMA2-70B"}) {
        std::printf("\n-- %s --\n", model);
        TextTable table({"variant", "b=1", "b=4", "b=16"});
        std::vector<double> baseline;
        for (const auto &variant : variants) {
            std::vector<std::string> row = {variant.name};
            std::size_t column = 0;
            for (const std::uint32_t batch : {1u, 4u, 16u}) {
                runtime::HermesEngine engine(variant.config,
                                             variant.name);
                const auto result =
                    engine.run(benchRequest(model, batch));
                const double rate = result.tokensPerSecond;
                if (baseline.size() <= column)
                    baseline.push_back(rate);
                row.push_back(
                    TextTable::num(rate / baseline[column], 2) + "x");
                ++column;
            }
            table.addRow(row);
        }
        table.print();
    }
    std::printf("\npaper shape: partition > random; adjustment > "
                "partition; full > adjustment; single-signal\n"
                "adjustment (token/layer only) sits between partition "
                "and full adjustment\n");
    return 0;
}
