/**
 * @file
 * Fig. 16 reproduction: design-space exploration of the GEMV-unit
 * width (32-512 multipliers per DIMM) across batch sizes 1-16 on
 * OPT-13B, normalized to the 32-multiplier design.
 *
 * Paper shape: batch 1 stabilizes by ~64 multipliers (memory
 * bound); batch 16 keeps improving to 512 (up to ~3.86x), which is
 * why 256 is the chosen balance point.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "runtime/hermes_engine.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;

    banner("Fig. 16", "GEMV multipliers per DIMM (speedup over 32)");
    TextTable table({"batch", "M=32", "M=64", "M=128", "M=256",
                     "M=512"});
    for (const std::uint32_t batch : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<std::string> row = {std::to_string(batch)};
        double baseline = 0.0;
        for (const std::uint32_t multipliers :
             {32u, 64u, 128u, 256u, 512u}) {
            SystemConfig config = benchPlatform();
            config.dimm.gemv.multipliers = multipliers;
            runtime::HermesEngine engine(config);
            const double rate =
                engine.run(benchRequest("OPT-13B", batch))
                    .tokensPerSecond;
            if (baseline == 0.0)
                baseline = rate;
            row.push_back(TextTable::num(rate / baseline, 2) + "x");
        }
        table.addRow(row);
    }
    table.print();
    std::printf("paper shape: batch 1 flat after 64; batch 16 scales "
                "to 512 (~3.9x)\n");
    return 0;
}
