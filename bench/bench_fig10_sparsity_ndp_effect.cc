/**
 * @file
 * Fig. 10 reproduction: Accelerate vs Hermes-host vs Hermes-base vs
 * Hermes on LLaMA2-13B, LLaMA2-70B and Falcon-40B (batch 1),
 * isolating the value of the NDP-DIMMs and of activation sparsity.
 *
 * Paper reference values (tokens/s):
 *   LLaMA2-13B: 0.91 / 30.90 / 11.86 / 91.95
 *   LLaMA2-70B: 0.04 /  2.45 /  1.97 / 13.75
 *   Falcon-40B: 0.07 /  4.34 /  5.58 / 30.02
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;

    banner("Fig. 10", "activation sparsity & NDP effect, batch 1");
    System system(benchPlatform());
    const std::vector<EngineKind> engines = {
        EngineKind::Accelerate, EngineKind::HermesHost,
        EngineKind::HermesBase, EngineKind::Hermes};

    TextTable table({"model", "Accelerate", "Hermes-host",
                     "Hermes-base", "Hermes", "Hermes/base"});
    for (const char *name :
         {"LLaMA2-13B", "LLaMA2-70B", "Falcon-40B"}) {
        const auto results =
            system.compare(benchRequest(name), engines);
        std::vector<std::string> row = {name};
        for (const auto &result : results)
            row.push_back(rate(result));
        const double base = results[2].tokensPerSecond;
        const double hermes = results[3].tokensPerSecond;
        row.push_back(base > 0
                          ? TextTable::num(hermes / base, 1) + "x"
                          : "-");
        table.addRow(row);
    }
    table.print();
    std::printf("paper shape: base >> Accelerate (NDP removes PCIe); "
                "Hermes > base (sparsity, ~5x on large models)\n");
    return 0;
}
