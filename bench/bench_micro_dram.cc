/**
 * @file
 * Microbenchmarks of the DDR4 command-level model (google-benchmark):
 * sustained bandwidth per access pattern, plus the FR-FCFS vs FCFS
 * scheduling ablation called out in DESIGN.md.
 */

#include <benchmark/benchmark.h>

#include "dram/bandwidth_probe.hh"
#include "dram/controller.hh"

namespace {

using namespace hermes;
using namespace hermes::dram;

std::vector<RowRead>
pattern(const DimmConfig &config, AccessPattern kind,
        std::uint64_t rows)
{
    AddressMapper mapper(config);
    Rng rng(7);
    const auto bursts = static_cast<std::uint32_t>(
        config.rowBytes / config.burstBytes);
    std::vector<RowRead> reads;
    const std::uint64_t space =
        config.rowsPerBank() * config.banksPerRank();
    for (std::uint64_t i = 0; i < rows; ++i) {
        const std::uint64_t idx =
            kind == AccessPattern::SequentialRows ? i
                                                  : rng.below(space);
        reads.push_back(mapper.mapRowChunk(
            idx, kind == AccessPattern::ScatteredBursts ? 1 : bursts));
    }
    return reads;
}

void
BM_RankSequentialStream(benchmark::State &state)
{
    const DimmConfig config;
    RankController controller(config);
    const auto reads =
        pattern(config, AccessPattern::SequentialRows, 256);
    double bandwidth = 0.0;
    for (auto _ : state)
        bandwidth = controller.measuredBandwidth(reads);
    state.counters["GB/s"] = bandwidth / 1e9;
    state.counters["peak%"] =
        100.0 * bandwidth / config.rankPeakBandwidth();
}
BENCHMARK(BM_RankSequentialStream);

void
BM_RankScatteredRows(benchmark::State &state)
{
    const DimmConfig config;
    RankController controller(config);
    const auto reads =
        pattern(config, AccessPattern::ScatteredRows, 256);
    double bandwidth = 0.0;
    for (auto _ : state)
        bandwidth = controller.measuredBandwidth(reads);
    state.counters["GB/s"] = bandwidth / 1e9;
}
BENCHMARK(BM_RankScatteredRows);

void
BM_RankScatteredBursts(benchmark::State &state)
{
    const DimmConfig config;
    RankController controller(config);
    const auto reads =
        pattern(config, AccessPattern::ScatteredBursts, 2048);
    double bandwidth = 0.0;
    for (auto _ : state)
        bandwidth = controller.measuredBandwidth(reads);
    state.counters["GB/s"] = bandwidth / 1e9;
}
BENCHMARK(BM_RankScatteredBursts);

/** DESIGN.md ablation: FR-FCFS vs plain FCFS scheduling. */
void
BM_FrFcfsVsFcfs(benchmark::State &state)
{
    const DimmConfig config;
    const auto reads =
        pattern(config, AccessPattern::ScatteredRows, 256);
    RankController frfcfs(config);
    RankController fcfs(config);
    fcfs.setFcfs(true);
    double ratio = 0.0;
    for (auto _ : state) {
        const double fast = frfcfs.measuredBandwidth(reads);
        const double slow = fcfs.measuredBandwidth(reads);
        ratio = fast / slow;
    }
    state.counters["frfcfs_speedup"] = ratio;
}
BENCHMARK(BM_FrFcfsVsFcfs);

} // namespace

BENCHMARK_MAIN();
