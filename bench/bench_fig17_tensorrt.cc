/**
 * @file
 * Fig. 17 reproduction: Hermes (1x RTX 4090 + 8 NDP-DIMMs, ~$2.5k)
 * vs TensorRT-LLM (5x A100-40GB-SXM4, ~$50k) on LLaMA2-70B,
 * batches 1-16.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "runtime/hermes_engine.hh"
#include "runtime/tensorrt_engine.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;

    banner("Fig. 17", "Hermes vs TensorRT-LLM on LLaMA2-70B");
    TextTable table({"batch", "TensorRT-LLM(5xA100)", "Hermes",
                     "Hermes share"});
    for (const std::uint32_t batch : {1u, 2u, 4u, 8u, 16u}) {
        const auto request = benchRequest("LLaMA2-70B", batch);
        runtime::TensorRtLlmEngine trt(benchPlatform(), 5);
        runtime::HermesEngine hermes_engine(benchPlatform());
        const double trt_rate = trt.run(request).tokensPerSecond;
        const double hermes_rate =
            hermes_engine.run(request).tokensPerSecond;
        table.addRow({std::to_string(batch),
                      TextTable::num(trt_rate, 2),
                      TextTable::num(hermes_rate, 2),
                      TextTable::num(100.0 * hermes_rate / trt_rate,
                                     1) +
                          "%"});
    }
    table.print();
    std::printf("paper shape: Hermes reaches a large share of the "
                "$50k system at batch 1 and ~24%% at batch 16,\n"
                "at ~5%% of the cost\n");
    return 0;
}
