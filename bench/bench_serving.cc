/**
 * @file
 * Multi-request serving bench: continuous batching over the decode
 * pipeline (core/serving.hh) driven by the workload scenario
 * generator (core/workload.hh).
 *
 * Beyond the paper's single-request figures, this drives generated
 * arrival scenarios through Hermes and the strongest baselines and
 * reports fleet metrics: throughput, batch occupancy, and
 * per-request p50/p99 token latency and TTFT.
 *
 * Configurable from the command line (see --help); `--smoke` runs a
 * seconds-long subset for CI.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/serving.hh"
#include "core/workload.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

std::string
ms(Seconds seconds)
{
    return TextTable::num(seconds * 1e3, 1);
}

/** Requests around 128-token prompts / 64-token generations. */
serving::ScenarioConfig
benchScenario(const std::string &name, std::uint32_t requests,
              double rate, std::uint64_t seed)
{
    serving::ScenarioConfig scenario =
        serving::scenarioByName(name, requests, rate, seed);
    scenario.prompt = {128, 32, 0.0, 1.0};
    scenario.generate = {64, 16, 0.0, 1.0};
    return scenario;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke =
        args.flag("smoke", "seconds-long CI subset");
    const std::string model_name = args.str(
        "model", smoke ? "OPT-13B" : "OPT-66B", "model name");
    const std::string scenario_name = args.str(
        "scenario", "steady", "arrival scenario for the tables");
    const std::uint32_t requests = args.u32(
        "requests", smoke ? 8 : 24, "trace length");
    const double rate =
        args.f64("rate", 1.5, "mean arrival rate (req/s)");
    const std::uint32_t batch =
        args.u32("batch", 16, "continuous-batching slots");
    const std::uint64_t seed =
        args.u64("seed", 7, "trace seed (full 64-bit range)");
    std::string engine_help = "single engine to bench (";
    for (const std::string &name : runtime::engineKindNames())
        engine_help += name + "|";
    engine_help += "...), or 'compare'";
    const std::string engine_name =
        args.str("engine", "compare", engine_help);
    const std::string json_path = args.out(
        "json", "write a machine-readable summary of the engine "
                "comparison to this path");
    args.finish();

    const auto llm = model::modelByName(model_name);
    System system(benchPlatform());

    banner("Serving", "engine comparison");
    std::printf("%s, %u requests at %.1f req/s (%s)\n",
                model_name.c_str(), requests, rate,
                scenario_name.c_str());

    const auto workload = serving::generateWorkload(
        benchScenario(scenario_name, requests, rate, seed));

    serving::ServingConfig config;
    config.maxBatch = batch;
    config.calibrationTokens = smoke ? 6 : 8;

    std::vector<EngineKind> engines;
    if (engine_name != "compare")
        engines = {runtime::engineKindByName(engine_name)};
    else if (smoke)
        engines = {EngineKind::Hermes, EngineKind::HermesBase};
    else
        engines = {EngineKind::Hermes, EngineKind::HermesBase,
                   EngineKind::DejaVu};

    TextTable table({"engine", "done", "rej", "tok/s", "mean batch",
                     "peak", "p50 tok (ms)", "p99 tok (ms)",
                     "p50 TTFT (ms)", "p99 TTFT (ms)"});
    const auto reports =
        system.compareServing(llm, workload, engines, config);
    for (const auto &report : reports) {
        table.addRow({report.engine,
                      std::to_string(report.completed),
                      std::to_string(report.rejected),
                      TextTable::num(report.throughputTps, 2),
                      TextTable::num(report.meanBatchOccupancy, 1),
                      std::to_string(report.peakBatch),
                      ms(report.p50TokenLatency),
                      ms(report.p99TokenLatency),
                      ms(report.p50Ttft), ms(report.p99Ttft)});
    }
    table.print();
    std::printf("\nnote: token latencies are decode-step times under "
                "contention; TTFT includes queueing + prefill\n");

    if (!json_path.empty()) {
        // One flat object per engine would need nesting; the
        // comparison's headline (the Hermes row) is what sweeps
        // track, so emit that plus the shared run config.
        JsonObject json;
        json.set("bench", "bench_serving");
        json.set("model", model_name);
        json.set("scenario", scenario_name);
        json.setU64("requests", requests);
        json.setF64("rate_per_sec", rate);
        json.setU64("max_batch", batch);
        json.setU64("seed", seed);
        json.setBool("smoke", smoke);
        json.set("engine", reports.front().engine);
        json.setU64("completed", reports.front().completed);
        json.setF64("throughput_tps",
                    reports.front().throughputTps);
        json.setF64("p99_ttft_ms", reports.front().p99Ttft * 1e3);
        json.setU64("peak_rss_kib", peakRssKib());
        if (!json.writeFile(json_path))
            return 1;
    }
    if (smoke)
        return 0;

    banner("Serving", "arrival-scenario sweep, Hermes");
    TextTable scenarios({"scenario", "tok/s", "mean batch",
                         "p99 tok (ms)", "p50 TTFT (ms)",
                         "p99 TTFT (ms)"});
    for (const char *name : {"steady", "bursty", "diurnal"}) {
        const auto report = system.serve(
            llm,
            serving::generateWorkload(
                benchScenario(name, requests, rate, seed)),
            config);
        scenarios.addRow(
            {name, TextTable::num(report.throughputTps, 2),
             TextTable::num(report.meanBatchOccupancy, 1),
             ms(report.p99TokenLatency), ms(report.p50Ttft),
             ms(report.p99Ttft)});
    }
    scenarios.print();
    std::printf("same mean rate, different shapes: bursts deepen "
                "queues (TTFT tail) while filling batch slots\n");

    banner("Serving", "batch-slot sweep, Hermes");
    TextTable sweep({"max batch", "tok/s", "p50 tok (ms)",
                     "p99 tok (ms)", "p99 TTFT (ms)"});
    for (const std::uint32_t slots : {4u, 8u, 16u, 32u}) {
        serving::ServingConfig swept = config;
        swept.maxBatch = slots;
        const auto report = system.serve(llm, workload, swept);
        sweep.addRow({std::to_string(slots),
                      TextTable::num(report.throughputTps, 2),
                      ms(report.p50TokenLatency),
                      ms(report.p99TokenLatency),
                      ms(report.p99Ttft)});
    }
    sweep.print();
    std::printf("paper context: Fig. 11 shows Hermes throughput "
                "scaling with batch; serving adds the latency side "
                "of that trade\n");
    return 0;
}
