/**
 * @file
 * Multi-request serving bench: continuous batching over the decode
 * pipeline (core/serving.hh).
 *
 * Beyond the paper's single-request figures, this drives a bursty
 * arrival trace of concurrent requests through Hermes and the
 * strongest baselines and reports fleet metrics: throughput, batch
 * occupancy, and per-request p50/p99 token latency and TTFT.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/serving.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

std::string
ms(Seconds seconds)
{
    return TextTable::num(seconds * 1e3, 1);
}

} // namespace

int
main()
{
    banner("Serving", "continuous batching, 24 requests, OPT-66B");

    System system(benchPlatform());

    // 24 requests arriving at 1.5 req/s: enough pressure to fill the
    // 16 batch slots and queue behind them.
    const auto workload =
        serving::syntheticWorkload(24, 1.5, 128, 64, 7);

    serving::ServingConfig config;
    config.maxBatch = 16;
    config.calibrationTokens = 8;

    TextTable table({"engine", "done", "rej", "tok/s", "mean batch",
                     "peak", "p50 tok (ms)", "p99 tok (ms)",
                     "p50 TTFT (ms)", "p99 TTFT (ms)"});
    const auto reports = system.compareServing(
        model::modelByName("OPT-66B"), workload,
        {EngineKind::Hermes, EngineKind::HermesBase,
         EngineKind::DejaVu},
        config);
    for (const auto &report : reports) {
        table.addRow({report.engine,
                      std::to_string(report.completed),
                      std::to_string(report.rejected),
                      TextTable::num(report.throughputTps, 2),
                      TextTable::num(report.meanBatchOccupancy, 1),
                      std::to_string(report.peakBatch),
                      ms(report.p50TokenLatency),
                      ms(report.p99TokenLatency),
                      ms(report.p50Ttft), ms(report.p99Ttft)});
    }
    table.print();
    std::printf("\nnote: token latencies are decode-step times under "
                "contention; TTFT includes queueing + prefill\n");

    banner("Serving", "batch-slot sweep, Hermes, OPT-66B");
    TextTable sweep({"max batch", "tok/s", "p50 tok (ms)",
                     "p99 tok (ms)", "p99 TTFT (ms)"});
    for (const std::uint32_t slots : {4u, 8u, 16u, 32u}) {
        serving::ServingConfig swept = config;
        swept.maxBatch = slots;
        const auto report = system.serve(
            model::modelByName("OPT-66B"), workload, swept);
        sweep.addRow({std::to_string(slots),
                      TextTable::num(report.throughputTps, 2),
                      ms(report.p50TokenLatency),
                      ms(report.p99TokenLatency),
                      ms(report.p99Ttft)});
    }
    sweep.print();
    std::printf("paper context: Fig. 11 shows Hermes throughput "
                "scaling with batch; serving adds the latency side "
                "of that trade\n");
    return 0;
}
