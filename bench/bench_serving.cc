/**
 * @file
 * Multi-request serving bench: continuous batching over the decode
 * pipeline (core/serving.hh) driven by the workload scenario
 * generator (core/workload.hh).
 *
 * Beyond the paper's single-request figures, this drives generated
 * arrival scenarios through Hermes and the strongest baselines and
 * reports fleet metrics: throughput, batch occupancy, and
 * per-request p50/p99 token latency and TTFT.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/serving.hh"
#include "core/workload.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

std::string
ms(Seconds seconds)
{
    return TextTable::num(seconds * 1e3, 1);
}

/** 24 requests around 128-token prompts / 64-token generations. */
serving::ScenarioConfig
benchScenario(const std::string &name)
{
    serving::ScenarioConfig scenario =
        serving::scenarioByName(name, /*requests=*/24,
                                /*rate_per_second=*/1.5,
                                /*seed=*/7);
    scenario.prompt = {128, 32, 0.0, 1.0};
    scenario.generate = {64, 16, 0.0, 1.0};
    return scenario;
}

} // namespace

int
main()
{
    banner("Serving", "steady scenario, 24 requests, OPT-66B");

    System system(benchPlatform());

    // A steady 1.5 req/s stream: enough pressure to fill the 16
    // batch slots and queue behind them.
    const auto workload =
        serving::generateWorkload(benchScenario("steady"));

    serving::ServingConfig config;
    config.maxBatch = 16;
    config.calibrationTokens = 8;

    TextTable table({"engine", "done", "rej", "tok/s", "mean batch",
                     "peak", "p50 tok (ms)", "p99 tok (ms)",
                     "p50 TTFT (ms)", "p99 TTFT (ms)"});
    const auto reports = system.compareServing(
        model::modelByName("OPT-66B"), workload,
        {EngineKind::Hermes, EngineKind::HermesBase,
         EngineKind::DejaVu},
        config);
    for (const auto &report : reports) {
        table.addRow({report.engine,
                      std::to_string(report.completed),
                      std::to_string(report.rejected),
                      TextTable::num(report.throughputTps, 2),
                      TextTable::num(report.meanBatchOccupancy, 1),
                      std::to_string(report.peakBatch),
                      ms(report.p50TokenLatency),
                      ms(report.p99TokenLatency),
                      ms(report.p50Ttft), ms(report.p99Ttft)});
    }
    table.print();
    std::printf("\nnote: token latencies are decode-step times under "
                "contention; TTFT includes queueing + prefill\n");

    banner("Serving", "arrival-scenario sweep, Hermes, OPT-66B");
    TextTable scenarios({"scenario", "tok/s", "mean batch",
                         "p99 tok (ms)", "p50 TTFT (ms)",
                         "p99 TTFT (ms)"});
    for (const char *name : {"steady", "bursty", "diurnal"}) {
        const auto report = system.serve(
            model::modelByName("OPT-66B"),
            serving::generateWorkload(benchScenario(name)),
            config);
        scenarios.addRow(
            {name, TextTable::num(report.throughputTps, 2),
             TextTable::num(report.meanBatchOccupancy, 1),
             ms(report.p99TokenLatency), ms(report.p50Ttft),
             ms(report.p99Ttft)});
    }
    scenarios.print();
    std::printf("same mean rate, different shapes: bursts deepen "
                "queues (TTFT tail) while filling batch slots\n");

    banner("Serving", "batch-slot sweep, Hermes, OPT-66B");
    TextTable sweep({"max batch", "tok/s", "p50 tok (ms)",
                     "p99 tok (ms)", "p99 TTFT (ms)"});
    for (const std::uint32_t slots : {4u, 8u, 16u, 32u}) {
        serving::ServingConfig swept = config;
        swept.maxBatch = slots;
        const auto report = system.serve(
            model::modelByName("OPT-66B"), workload, swept);
        sweep.addRow({std::to_string(slots),
                      TextTable::num(report.throughputTps, 2),
                      ms(report.p50TokenLatency),
                      ms(report.p99TokenLatency),
                      ms(report.p99Ttft)});
    }
    sweep.print();
    std::printf("paper context: Fig. 11 shows Hermes throughput "
                "scaling with batch; serving adds the latency side "
                "of that trade\n");
    return 0;
}
