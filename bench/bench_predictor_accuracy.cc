/**
 * @file
 * Sec. IV-C1 claims: the lightweight predictor reaches ~98% accuracy
 * in under 1 MB, and its host-side scan is negligible next to the
 * MLP-based predictors of prior work.  Also sweeps the FSM step s
 * and threshold T (DESIGN.md ablation).
 */

#include <cstdio>

#include "common/table.hh"
#include "model/llm_config.hh"
#include "sched/predictor.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::sched;

    std::printf("=== Predictor accuracy & footprint (Sec. IV-C1) "
                "===\n");
    TextTable table({"model", "accuracy", "recall", "precision",
                     "state-KB", "total-KB"});
    for (const char *name : {"OPT-13B", "LLaMA2-13B", "Falcon-40B"}) {
        model::LlmConfig llm = model::modelByName(name);
        llm.layers = 8;
        sparsity::ActivationTrace trace(llm,
                                        sparsity::SparsityConfig{}, 1);
        ModelPredictor predictor(llm, PredictorConfig{});
        predictor.calibrate(trace, 96);
        trace.reset(1);
        std::vector<std::vector<std::uint8_t>> attn_masks, mlp_masks;
        for (int t = 0; t < 96; ++t) {
            trace.nextToken();
            predictor.stepToken(trace, attn_masks, mlp_masks);
        }
        // Scale footprint back to the full model depth.
        const double depth_scale =
            static_cast<double>(model::modelByName(name).layers) /
            llm.layers;
        table.addRow(
            {name, TextTable::num(predictor.metrics().accuracy(), 4),
             TextTable::num(predictor.metrics().recall(), 4),
             TextTable::num(predictor.metrics().precision(), 4),
             TextTable::num(predictor.stateTableBytes() *
                                depth_scale / 1024.0,
                            0),
             TextTable::num(predictor.totalBytes() * depth_scale /
                                1024.0,
                            0)});
    }
    table.print();
    std::printf("paper: ~98%% accuracy, <1 MB of predictor state\n");

    std::printf("\n=== FSM parameter sweep (ablation) ===\n");
    TextTable sweep({"step s", "threshold T", "accuracy", "recall"});
    model::LlmConfig llm = model::modelByName("LLaMA2-13B");
    llm.layers = 6;
    for (const std::uint32_t step : {2u, 4u, 8u}) {
        for (const std::uint32_t threshold : {12u, 15u}) {
            PredictorConfig config;
            config.activateStep = step;
            config.threshold = threshold;
            sparsity::ActivationTrace trace(
                llm, sparsity::SparsityConfig{}, 1);
            ModelPredictor predictor(llm, config);
            predictor.calibrate(trace, 64);
            trace.reset(1);
            std::vector<std::vector<std::uint8_t>> attn_masks,
                mlp_masks;
            for (int t = 0; t < 64; ++t) {
                trace.nextToken();
                predictor.stepToken(trace, attn_masks, mlp_masks);
            }
            sweep.addRow(
                {std::to_string(step), std::to_string(threshold),
                 TextTable::num(predictor.metrics().accuracy(), 4),
                 TextTable::num(predictor.metrics().recall(), 4)});
        }
    }
    sweep.print();
    std::printf("paper default: s=4, T=15\n");
    return 0;
}
