/**
 * @file
 * Fig. 15 reproduction: Hermes throughput on OPT-13B and OPT-30B
 * with Tesla T4, RTX 3090 and RTX 4090 (batches 1, 4, 16).
 *
 * Paper: RTX 4090 averages 2.02x over T4 and 1.34x over RTX 3090.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "runtime/hermes_engine.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;

    banner("Fig. 15", "GPU sensitivity (Hermes throughput)");
    TextTable table({"model", "batch", "TeslaT4", "RTX3090",
                     "RTX4090", "4090/T4"});
    for (const char *name : {"OPT-13B", "OPT-30B"}) {
        for (const std::uint32_t batch : {1u, 4u, 16u}) {
            std::vector<double> rates;
            for (const auto &spec :
                 {gpu::teslaT4(), gpu::rtx3090(), gpu::rtx4090()}) {
                SystemConfig config = benchPlatform();
                config.gpu = spec;
                runtime::HermesEngine engine(config);
                rates.push_back(
                    engine.run(benchRequest(name, batch))
                        .tokensPerSecond);
            }
            table.addRow({name, std::to_string(batch),
                          TextTable::num(rates[0], 2),
                          TextTable::num(rates[1], 2),
                          TextTable::num(rates[2], 2),
                          TextTable::num(rates[2] / rates[0], 2) +
                              "x"});
        }
    }
    table.print();
    std::printf("paper shape: 4090 > 3090 > T4; average 4090/T4 "
                "~2x\n");
    return 0;
}
