/**
 * @file
 * Fig. 9 reproduction: end-to-end tokens/s of Accelerate, FlexGen,
 * Deja Vu, Hermes-host and Hermes on the OPT family at batch 1.
 *
 * Paper reference values (tokens/s):
 *   OPT-13B: 0.16 / 0.46 / 1.37 / 20.39 / 135.64
 *   OPT-30B: 0.11 / 0.20 / 0.34 /  9.07 /  46.16
 *   OPT-66B: 0.04 / 0.09 / 0.16 /  4.24 /  20.37
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;

    banner("Fig. 9", "offloading-system comparison, OPT, batch 1");
    const SystemConfig config = benchPlatform();
    System system(config);

    const std::vector<EngineKind> engines = {
        EngineKind::Accelerate, EngineKind::FlexGen,
        EngineKind::DejaVu, EngineKind::HermesHost,
        EngineKind::Hermes};

    TextTable table({"model", "Accelerate", "FlexGen", "DejaVu",
                     "Hermes-host", "Hermes", "Hermes/DejaVu"});
    for (const char *name : {"OPT-13B", "OPT-30B", "OPT-66B"}) {
        const auto results =
            system.compare(benchRequest(name), engines);
        std::vector<std::string> row = {name};
        for (const auto &result : results)
            row.push_back(rate(result));
        const double hermes = results[4].tokensPerSecond;
        const double dejavu = results[2].tokensPerSecond;
        row.push_back(dejavu > 0
                          ? TextTable::num(hermes / dejavu, 1) + "x"
                          : "-");
        table.addRow(row);
    }
    table.print();
    std::printf("paper shape: Accelerate < FlexGen < DejaVu << "
                "Hermes-host < Hermes\n");
    return 0;
}
