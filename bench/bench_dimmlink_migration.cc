/**
 * @file
 * Sec. IV-A1 claim: DIMM-link migration beats host-mediated
 * neuron movement by over 62x, and keeps migration below ~0.2% of
 * inference time (vs 5.3% without links, OPT-66B).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "interconnect/dimm_link.hh"
#include "runtime/hermes_engine.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;
    using namespace hermes::interconnect;

    std::printf("=== DIMM-link vs host-mediated migration "
                "(Sec. IV-A1) ===\n");
    const DimmLinkNetwork net(8);
    TextTable table({"batch bytes/pair", "DIMM-link", "host-mediated",
                     "speedup"});
    for (const Bytes per_pair :
         {256 * kKiB, 1 * kMiB, 4 * kMiB}) {
        std::vector<Transfer> transfers;
        for (std::uint32_t pair = 0; pair < 4; ++pair)
            transfers.push_back(
                Transfer{pair, static_cast<std::uint32_t>(7 - pair),
                         per_pair});
        const Seconds link = net.migrationTime(transfers);
        const Seconds host = net.hostMediatedTime(transfers);
        table.addRow({TextTable::num(per_pair / 1024.0, 0) + " KiB",
                      TextTable::num(link * 1e6, 1) + " us",
                      TextTable::num(host * 1e6, 1) + " us",
                      TextTable::num(host / link, 0) + "x"});
    }
    table.print();
    std::printf("paper: >62x speedup from DIMM-links\n");

    std::printf("\n=== Migration share of OPT-66B inference ===\n");
    runtime::HermesEngine engine(benchPlatform());
    const auto result = engine.run(benchRequest("OPT-66B"));
    const double migration_bytes =
        result.stats.counterValue("migration.bytes");
    const Seconds link_time =
        migration_bytes / net.config().linkBandwidth;
    const double share =
        link_time / (result.prefillTime + result.generateTime);
    std::printf("cold-neuron migration: %.1f MiB moved, %.3f%% of "
                "total runtime (paper: <0.2%% with DIMM-link)\n",
                migration_bytes / (1024.0 * 1024.0), 100.0 * share);
    return 0;
}
