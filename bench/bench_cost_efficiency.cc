/**
 * @file
 * Extension bench: the Sec. V-F economics behind Fig. 17, made
 * quantitative — platform price and throughput-per-dollar for Hermes
 * vs the 5x A100 TensorRT-LLM node on LLaMA2-70B.
 *
 * Paper: "Hermes only costs approximately $2,500, whereas
 * TensorRT-LLM requires $50,000"; competitive inference at ~5 % of
 * the budget.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "runtime/cost_model.hh"
#include "runtime/hermes_engine.hh"
#include "runtime/tensorrt_engine.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;
    using namespace hermes::runtime;

    banner("Cost efficiency", "Hermes vs TensorRT-LLM, LLaMA2-70B");

    const SystemConfig config = benchPlatform();
    const double hermes_price =
        platformPriceUsd(EngineKind::Hermes, config);
    const double trt_price =
        platformPriceUsd(EngineKind::TensorRtLlm, config, 5);

    std::printf("platform price: Hermes $%.0f, TensorRT-LLM(5xA100) "
                "$%.0f -> %.1f%% of the budget (paper: ~5%%)\n\n",
                hermes_price, trt_price,
                100.0 * hermes_price / trt_price);

    TextTable table({"batch", "Hermes tok/s", "TRT tok/s",
                     "Hermes tok/s/k$", "TRT tok/s/k$",
                     "value ratio"});
    for (const std::uint32_t batch : {1u, 4u, 16u}) {
        const auto request = benchRequest("LLaMA2-70B", batch);
        runtime::HermesEngine hermes_engine(config);
        runtime::TensorRtLlmEngine trt(config, 5);
        const double hermes_rate =
            hermes_engine.run(request).tokensPerSecond;
        const double trt_rate = trt.run(request).tokensPerSecond;
        const double hermes_value =
            hermes_rate / (hermes_price / 1000.0);
        const double trt_value = trt_rate / (trt_price / 1000.0);
        table.addRow({std::to_string(batch),
                      TextTable::num(hermes_rate, 2),
                      TextTable::num(trt_rate, 2),
                      TextTable::num(hermes_value, 1),
                      TextTable::num(trt_value, 1),
                      TextTable::num(hermes_value / trt_value, 1) +
                          "x"});
    }
    table.print();
    std::printf("paper shape: Hermes wins throughput-per-dollar by "
                "an order of magnitude at local-deployment batch "
                "sizes\n");
    return 0;
}
