/**
 * @file
 * Fleet serving bench: router policies x arrival scenarios x replica
 * counts (core/fleet.hh + core/workload.hh).
 *
 * Sweeps every router policy over the standard scenario set (steady
 * Poisson, bursty Gamma, diurnal sinusoid) at two fleet sizes and
 * reports aggregate throughput, fleet p99 TTFT, and SLO attainment
 * against a TTFT deadline.  A final section re-runs one cell from
 * scratch and checks the rendered report is byte-identical — the
 * reproducibility contract the regression tests rely on.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/fleet.hh"
#include "core/workload.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

constexpr std::uint32_t kRequests = 48;
constexpr double kRatePerSecond = 12.0;
constexpr Seconds kTtftDeadline = 1.5;
constexpr std::uint64_t kSeed = 17;

serving::ServingConfig
replicaServing()
{
    serving::ServingConfig config;
    config.maxBatch = 8;
    config.calibrationTokens = 6;
    return config;
}

std::vector<serving::ScenarioConfig>
scenarios()
{
    auto set = serving::standardScenarios(kRequests, kRatePerSecond,
                                          kSeed);
    for (auto &scenario : set) {
        scenario.prompt = {192, 64, 0.05, 3.0};
        scenario.generate = {24, 8, 0.0, 1.0};
    }
    return set;
}

std::string
fleetRow(const fleet::FleetReport &report)
{
    // Fixed-precision rendering: equal physics => equal bytes.
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "done=%llu rej=%llu shed=%llu tok/s=%.4f "
                  "p99TTFT=%.4fms slo=%.4f",
                  static_cast<unsigned long long>(report.completed),
                  static_cast<unsigned long long>(report.rejected),
                  static_cast<unsigned long long>(report.shed),
                  report.throughputTps, report.p99Ttft * 1e3,
                  report.sloAttainment);
    return buffer;
}

} // namespace

int
main()
{
    const auto llm = model::modelByName("OPT-13B");
    const SystemConfig platform = benchPlatform();

    banner("Fleet", "policy x scenario x replicas, OPT-13B");
    std::printf("deadline: TTFT <= %.2fs; %u requests at %.1f req/s\n",
                kTtftDeadline, kRequests, kRatePerSecond);

    TextTable table({"policy", "replicas", "scenario", "done", "rej",
                     "shed", "tok/s", "p99 TTFT (ms)", "SLO att."});
    for (const sched::RouterPolicy policy :
         sched::allRouterPolicies()) {
        for (const std::uint32_t replicas : {2u, 4u}) {
            // One fleet per (policy, size): replica cost caches are
            // shared across the scenario sweep.
            fleet::FleetSimulator simulator(
                fleet::uniformFleet(replicas, platform,
                                    replicaServing(), policy,
                                    kTtftDeadline),
                llm);
            for (const auto &scenario : scenarios()) {
                const auto report = simulator.run(
                    serving::generateWorkload(scenario));
                table.addRow(
                    {report.policy, std::to_string(replicas),
                     scenario.name,
                     std::to_string(report.completed),
                     std::to_string(report.rejected),
                     std::to_string(report.shed),
                     TextTable::num(report.throughputTps, 2),
                     TextTable::num(report.p99Ttft * 1e3, 1),
                     TextTable::num(report.sloAttainment, 3)});
            }
        }
    }
    table.print();
    std::printf(
        "\nnote: slo-aware sheds requests whose estimated TTFT "
        "misses the deadline,\nimproving served p99 at the cost of "
        "attainment counted over all arrivals\n");

    banner("Fleet", "determinism: same seed, fresh fleet");
    const auto scenario = scenarios()[1]; // bursty
    std::string first;
    bool identical = true;
    for (int trial = 0; trial < 2; ++trial) {
        fleet::FleetSimulator simulator(
            fleet::uniformFleet(
                2, platform, replicaServing(),
                sched::RouterPolicy::JoinShortestQueue,
                kTtftDeadline),
            llm);
        const std::string row =
            fleetRow(simulator.run(
                serving::generateWorkload(scenario)));
        std::printf("trial %d: %s\n", trial, row.c_str());
        if (trial == 0)
            first = row;
        else
            identical = row == first;
    }
    std::printf("byte-identical: %s\n", identical ? "yes" : "NO");
    return identical ? 0 : 1;
}
