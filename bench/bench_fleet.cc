/**
 * @file
 * Fleet co-simulation bench: router policies x arrival scenarios x
 * replica counts (core/fleet.hh + core/workload.hh), on the
 * event-driven kernel by default.
 *
 * Sweeps control policies (estimate-based and feedback routing,
 * optionally composed with a stealing policy via --stealer) over
 * the standard scenario set (steady Poisson, bursty Gamma, diurnal
 * sinusoid) and reports aggregate throughput, fleet p99 TTFT, and
 * SLO attainment against a TTFT deadline, plus the events/sec of
 * the kernel loop itself so control-plane overhead stays visible.
 * A second section compares SLO-aware stealing ("slo-steal")
 * against the occupancy-greedy heuristic on a heterogeneous fleet.
 * Lifecycle sections compare priority preemption against stealing
 * on an overloaded bursty fleet with high-priority traffic, and
 * drain-migrate against abandonment on a fleet with a dead replica.
 * `--scenario multiturn` is a closed-loop conversational tier of
 * its own: multi-turn sessions (core/workload.hh) scored on
 * end-to-end turn latency, comparing KV-affinity routing against
 * jsq and true-jsq.
 * A final section re-runs one cell from scratch and checks the
 * rendered report is byte-identical — the reproducibility contract
 * the regression tests rely on; the process exits non-zero when it
 * fails.
 *
 * Everything is configurable from the command line (see --help);
 * `--smoke` runs a seconds-long subset for CI and `--scale` is the
 * 32-replica / 2000-request configuration ROADMAP asks for.
 */

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/fleet.hh"
#include "core/workload.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

struct Sweep
{
    std::vector<sched::RouterPolicy> policies;
    std::vector<std::uint32_t> fleetSizes;
    std::vector<serving::ScenarioConfig> scenarios;
    fleet::FleetKernel kernel = fleet::FleetKernel::EventDriven;
    std::string stealer; ///< "" = none; else a registry name.
    Seconds ttftDeadline = 1.5;
    std::uint32_t maxBatch = 8;
    serving::CostModel cost = serving::CostModel::Exact;
};

serving::ServingConfig
replicaServing(const Sweep &sweep)
{
    serving::ServingConfig config;
    config.maxBatch = sweep.maxBatch;
    config.calibrationTokens = 6;
    config.costModel = sweep.cost;
    return config;
}

std::vector<serving::ScenarioConfig>
scenarios(const std::string &which, std::uint32_t requests,
          double rate, std::uint64_t seed)
{
    std::vector<serving::ScenarioConfig> set;
    if (which == "all")
        set = serving::standardScenarios(requests, rate, seed);
    else
        set = {serving::scenarioByName(which, requests, rate,
                                       seed)};
    for (auto &scenario : set) {
        scenario.prompt = {192, 64, 0.05, 3.0};
        scenario.generate = {24, 8, 0.0, 1.0};
    }
    return set;
}

fleet::FleetConfig
fleetConfig(const Sweep &sweep, const SystemConfig &platform,
            std::uint32_t replicas, sched::RouterPolicy policy)
{
    fleet::FleetConfig config = fleet::uniformFleet(
        replicas, platform, replicaServing(sweep), policy,
        sweep.ttftDeadline);
    config.kernel = sweep.kernel;
    if (!sweep.stealer.empty())
        config.control = sched::controlPolicyByName(
            sched::routerPolicyName(policy) + "+" + sweep.stealer);
    return config;
}

std::string
fleetRow(const fleet::FleetReport &report)
{
    // Fixed-precision rendering: equal physics => equal bytes.
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "done=%llu rej=%llu shed=%llu steals=%llu "
                  "tok/s=%.4f p99TTFT=%.4fms slo=%.4f",
                  static_cast<unsigned long long>(report.completed),
                  static_cast<unsigned long long>(report.rejected),
                  static_cast<unsigned long long>(report.shed),
                  static_cast<unsigned long long>(
                      report.kernelStats.stolenRequests),
                  report.throughputTps, report.p99Ttft * 1e3,
                  report.sloAttainment);
    return buffer;
}

/** Kernel-loop throughput accumulated over a sweep. */
struct LoopMeter
{
    std::uint64_t events = 0;
    double seconds = 0.0;
    double calibrationSeconds = 0.0;

    void
    add(const fleet::FleetReport &report)
    {
        events += report.kernelStats.events.popped();
        seconds += report.kernelStats.loopSeconds;
        calibrationSeconds +=
            report.kernelStats.calibrationSeconds;
    }

    void
    print(const char *label) const
    {
        std::printf("%s: %llu kernel events in %.1f ms (%.0f "
                    "events/s) + %.1f ms calibration\n",
                    label, static_cast<unsigned long long>(events),
                    seconds * 1e3,
                    seconds > 0.0
                        ? static_cast<double>(events) / seconds
                        : 0.0,
                    calibrationSeconds * 1e3);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke =
        args.flag("smoke", "seconds-long CI subset");
    const bool scale = args.flag(
        "scale", "32-replica scale config (replicas=32, "
                 "requests=2000; 200 under --smoke)");
    const bool huge = args.flag(
        "huge", "million-request tier (replicas=1024, "
                "requests=1000000, jsq + steady only; 64 "
                "replicas / 20000 requests under --smoke)");
    const std::string policy_name = args.str(
        "policy", huge ? "jsq" : "all",
        "router policy name, or 'all'");
    const std::string scenario_name = args.str(
        "scenario", huge ? "steady" : "all",
        "arrival scenario name, or 'all'");
    const bool multiturn = scenario_name == "multiturn";
    const bool autoscale = scenario_name == "autoscale";
    const std::uint32_t replicas = args.u32(
        "replicas",
        huge    ? (smoke ? 64 : 1024)
        : scale ? (multiturn ? 64u : 32u)
                : 0,
        "fleet size; 0 sweeps {2, 4}");
    const std::uint32_t default_requests =
        huge      ? (smoke ? 20000 : 1000000)
        : scale   ? (multiturn ? (smoke ? 256u : 10000u)
                               : (smoke ? 200u : 2000u))
        : autoscale ? (smoke ? 128u : 512u)
        : (smoke ? 10 : 48);
    const std::uint32_t requests =
        args.u32("requests", default_requests, "trace length");
    // Same per-replica offered load as --scale (12 req/s over 32
    // replicas), so the huge tier exercises queueing, not idling.
    // Multiturn interprets the rate as session starts (a closed
    // loop: each session re-arrives by itself until it ends), so
    // its default is conversational, not open-loop — 0.3
    // sessions/s per replica, scaled with the fleet at --scale.
    const double rate = args.f64(
        "rate",
        multiturn   ? (scale ? 19.2 : 0.6)
        : huge      ? 384.0
        : autoscale ? 3.0
                    : 12.0,
        "mean arrival rate (req/s; sessions/s for multiturn)");
    const std::uint64_t seed =
        args.u64("seed", 17, "trace seed (full 64-bit range)");
    const std::string kernel_name = args.str(
        "kernel", "event", "co-simulation core: event|two-phase");
    const bool steal = args.flag(
        "steal", "[deprecated] same as --stealer greedy-steal");
    std::string stealer = args.str(
        "stealer", "none",
        "auxiliary policy composed with the router: "
        "none|greedy-steal|slo-steal|priority-preempt|"
        "drain-migrate");
    const std::string cost_name = args.str(
        "cost", "auto",
        "cost-surface fill: exact|interp|auto (auto picks interp "
        "for multiturn — growing contexts would otherwise pay one "
        "engine simulation per context bucket — and exact "
        "elsewhere)");
    const std::string json_path = args.out(
        "json", "write a machine-readable run summary "
                "(events/sec, loop wall time, peak RSS, config) "
                "to this path");
    args.finish();

    serving::CostModel cost_model = serving::CostModel::Exact;
    if (cost_name == "auto") {
        cost_model = multiturn ? serving::CostModel::Interp
                               : serving::CostModel::Exact;
    } else {
        try {
            cost_model = serving::costModelByName(cost_name);
        } catch (const std::invalid_argument &error) {
            std::fprintf(stderr, "--cost: %s\n", error.what());
            return 2;
        }
    }

    if (stealer == "none")
        stealer.clear();
    if (steal && stealer.empty())
        stealer = "greedy-steal";
    if (!stealer.empty()) {
        // Validate against the registry itself so new stealing
        // policies work here the day they land; reject routing
        // atoms, which would double-route when composed.
        bool known = true;
        try {
            sched::controlPolicyByName(stealer);
        } catch (const std::invalid_argument &) {
            known = false;
        }
        bool routing = true;
        try {
            sched::routerPolicyByName(stealer);
        } catch (const std::invalid_argument &) {
            routing = false;
        }
        // "affinity" routes but is not a RouterPolicy enum value,
        // so the registry probe above cannot catch it.
        routing = routing || stealer == "affinity";
        if (!known || routing) {
            std::fprintf(stderr,
                         "--stealer: '%s' is not an auxiliary "
                         "policy (try greedy-steal|slo-steal|"
                         "priority-preempt|drain-migrate)\n",
                         stealer.c_str());
            return 2;
        }
    }

    if (scenario_name == "multiturn") {
        // Multi-turn conversations are a closed loop — a follow-up
        // turn arrives think-time after its predecessor completes —
        // so this scenario gets its own section instead of riding
        // the open-loop sweep: KV-affinity routing against jsq and
        // true-jsq on a uniform fleet, scored on the end-to-end
        // turn latency a conversation actually blocks on.
        if (fleet::fleetKernelByName(kernel_name) !=
            fleet::FleetKernel::EventDriven) {
            std::fprintf(stderr, "multiturn sessions need "
                                 "--kernel event\n");
            return 2;
        }
        const auto llm = model::modelByName("OPT-13B");
        const SystemConfig platform = benchPlatform();
        const auto trace = serving::generateSessionWorkload(
            serving::scenarioByName("multiturn", requests, rate,
                                    seed));
        std::uint64_t continues = 0;
        for (const std::int64_t next : trace.successor)
            continues += next >= 0 ? 1 : 0;

        banner("Fleet", "multiturn: KV-affinity vs jsq on "
                        "conversational sessions, OPT-13B");
        std::printf("kernel: event; cost model: %s; %u sessions "
                    "(%zu turns, %llu follow-ups) at %.2f "
                    "sessions/s\n",
                    serving::costModelName(cost_model).c_str(),
                    requests, trace.requests.size(),
                    static_cast<unsigned long long>(continues),
                    rate);

        std::vector<std::uint32_t> sizes =
            replicas > 0 ? std::vector<std::uint32_t>{replicas}
            : smoke      ? std::vector<std::uint32_t>{2}
                         : std::vector<std::uint32_t>{2, 4};
        serving::ServingConfig serving_config;
        serving_config.maxBatch = 8;
        serving_config.calibrationTokens = 6;
        serving_config.costModel = cost_model;
        // The scale tier measures the kernel against fleet-sized
        // conversational traffic; true-jsq adds a third full run
        // without changing the story, so it stays with the base
        // tier.
        const std::vector<const char *> controls =
            scale ? std::vector<const char *>{"jsq", "affinity"}
                  : std::vector<const char *>{"jsq", "true-jsq",
                                              "affinity"};

        const auto run_control =
            [&](std::uint32_t fleet_size, const char *control) {
                fleet::FleetConfig config = fleet::uniformFleet(
                    fleet_size, platform, serving_config,
                    sched::RouterPolicy::JoinShortestQueue, 1.5);
                config.control =
                    sched::controlPolicyByName(control);
                return fleet::FleetSimulator(config, llm)
                    .run(trace);
            };

        LoopMeter meter;
        TextTable table({"control", "replicas", "done",
                         "continues", "tok/s", "p99 TTFT (ms)",
                         "e2e p50 (s)", "e2e p99 (s)"});
        for (const std::uint32_t fleet_size : sizes) {
            for (const char *control : controls) {
                const auto report =
                    run_control(fleet_size, control);
                meter.add(report);
                table.addRow(
                    {report.policy, std::to_string(fleet_size),
                     std::to_string(report.completed),
                     std::to_string(
                         report.kernelStats.events
                             .sessionContinues),
                     TextTable::num(report.throughputTps, 2),
                     TextTable::num(report.p99Ttft * 1e3, 1),
                     TextTable::num(
                         fleet::latencyPercentile(report, 50.0),
                         3),
                     TextTable::num(
                         fleet::latencyPercentile(report, 99.0),
                         3)});
            }
        }
        table.print();
        meter.print("\nkernel loop");
        std::printf("note: affinity sticks a follow-up to the "
                    "replica still holding its session KV when "
                    "the cached history outweighs the backlog "
                    "gap\n");

        bool json_ok = true;
        if (!json_path.empty()) {
            std::string tier =
                scale ? "multiturn-scale" : "multiturn";
            if (smoke)
                tier += "-smoke";
            JsonObject json;
            json.set("bench", "bench_fleet");
            json.set("tier", tier);
            json.set("kernel", "event");
            json.set("model", "OPT-13B");
            json.set("cost_model",
                     serving::costModelName(cost_model));
            json.setU64("replicas", sizes.front());
            json.setU64("requests", requests);
            json.setF64("rate_per_sec", rate);
            json.setU64("seed", seed);
            json.set("scenario", scenario_name);
            json.set("policy", policy_name);
            json.setU64("events", meter.events);
            json.setF64("loop_ms", meter.seconds * 1e3);
            json.setF64("calibration_ms",
                        meter.calibrationSeconds * 1e3);
            json.setF64("events_per_sec",
                        meter.seconds > 0.0
                            ? static_cast<double>(meter.events) /
                                  meter.seconds
                            : 0.0);
            json.setU64("peak_rss_kib", peakRssKib());
            json_ok = json.writeFile(json_path);
        }

        banner("Fleet", "determinism: same seed, fresh fleet");
        std::string first;
        bool identical = true;
        for (int trial = 0; trial < 2; ++trial) {
            const auto report =
                run_control(sizes.front(), "affinity");
            const std::string row =
                fleetRow(report) + " e2eP99=" +
                TextTable::num(
                    fleet::latencyPercentile(report, 99.0), 4);
            std::printf("trial %d: %s\n", trial, row.c_str());
            if (trial == 0)
                first = row;
            else
                identical = row == first;
        }
        std::printf("byte-identical: %s\n",
                    identical ? "yes" : "NO");
        return identical && json_ok ? 0 : 1;
    }

    if (autoscale) {
        // The SLO-vs-cost frontier: a diurnal day served by fixed
        // fleet sizes bracketing the peak, against the
        // target-backlog scaler starting from one replica.  Fixed
        // sizes pay for their capacity all day; the scaler pays
        // for the peak only while it lasts.  Scored on total
        // replica-seconds and cost per completed request, the
        // autoscaling cost accounting the kernel now tracks.
        if (fleet::fleetKernelByName(kernel_name) !=
            fleet::FleetKernel::EventDriven) {
            std::fprintf(stderr, "the autoscale tier needs "
                                 "--kernel event\n");
            return 2;
        }
        const auto llm = model::modelByName("OPT-13B");
        const SystemConfig platform = benchPlatform();
        serving::ScenarioConfig scenario =
            serving::scenarioByName("diurnal", requests, rate,
                                    seed);
        scenario.prompt = {192, 64, 0.05, 3.0};
        scenario.generate = {24, 8, 0.0, 1.0};
        scenario.diurnalPeriodSeconds = 120.0;
        scenario.diurnalDepth = 0.9;
        const auto trace = serving::generateWorkload(scenario);
        const Seconds deadline = 10.0;

        banner("Fleet", "autoscale: target-backlog scaler vs "
                        "fixed fleet sizes, diurnal day, OPT-13B");
        std::printf("kernel: event; cost model: %s; %u requests "
                    "at %.1f req/s mean (period %.0fs, depth "
                    "%.1f); deadline: TTFT <= %.1fs\n",
                    serving::costModelName(cost_model).c_str(),
                    requests, rate,
                    scenario.diurnalPeriodSeconds,
                    scenario.diurnalDepth, deadline);

        serving::ServingConfig serving_config;
        serving_config.maxBatch = 8;
        serving_config.calibrationTokens = 6;
        serving_config.costModel = cost_model;
        const auto run_fixed = [&](std::uint32_t fleet_size) {
            fleet::FleetConfig config = fleet::uniformFleet(
                fleet_size, platform, serving_config,
                sched::RouterPolicy::TrueJsq, deadline);
            config.control =
                sched::controlPolicyByName("true-jsq");
            return fleet::FleetSimulator(config, llm).run(trace);
        };
        const auto run_scaled = [&] {
            fleet::FleetConfig config = fleet::uniformFleet(
                1, platform, serving_config,
                sched::RouterPolicy::TrueJsq, deadline);
            config.control = sched::composeControlPolicies(
                {sched::controlPolicyByName("true-jsq"),
                 sched::makeTargetBacklogPolicy()});
            return fleet::FleetSimulator(config, llm).run(trace);
        };

        LoopMeter meter;
        TextTable table({"config", "done", "spawned", "retired",
                         "replica-s", "cost/req (s)",
                         "p99 TTFT (ms)", "SLO att."});
        const auto add_row = [&](const std::string &label,
                                 const fleet::FleetReport &report) {
            meter.add(report);
            table.addRow(
                {label, std::to_string(report.completed),
                 std::to_string(
                     report.kernelStats.spawnedReplicas),
                 std::to_string(
                     report.kernelStats.retiredReplicas),
                 TextTable::num(report.replicaSeconds, 1),
                 TextTable::num(report.costPerRequest, 3),
                 TextTable::num(report.p99Ttft * 1e3, 1),
                 TextTable::num(report.sloAttainment, 3)});
        };
        const std::vector<std::uint32_t> sizes =
            smoke ? std::vector<std::uint32_t>{1, 2}
                  : std::vector<std::uint32_t>{1, 2, 3, 4};
        for (const std::uint32_t fleet_size : sizes)
            add_row("fixed-" + std::to_string(fleet_size),
                    run_fixed(fleet_size));
        const auto scaled = run_scaled();
        add_row("scaler", scaled);
        table.print();
        meter.print("\nkernel loop");
        std::printf("note: the scaler provisions replicas against "
                    "backlog/(sustained rate x deadline) with "
                    "hysteresis and a spawn cooldown; replica-s "
                    "bills each replica from activation to "
                    "retirement\n");

        bool json_ok = true;
        if (!json_path.empty()) {
            JsonObject json;
            json.set("bench", "bench_fleet");
            json.set("tier",
                     smoke ? "autoscale-smoke" : "autoscale");
            json.set("kernel", "event");
            json.set("model", "OPT-13B");
            json.set("cost_model",
                     serving::costModelName(cost_model));
            json.setU64("replicas", 1);
            json.setU64("requests", requests);
            json.setF64("rate_per_sec", rate);
            json.setU64("seed", seed);
            json.set("scenario", scenario_name);
            json.set("policy", "true-jsq+target-backlog");
            json.setU64("events", meter.events);
            json.setF64("loop_ms", meter.seconds * 1e3);
            json.setF64("calibration_ms",
                        meter.calibrationSeconds * 1e3);
            json.setF64("events_per_sec",
                        meter.seconds > 0.0
                            ? static_cast<double>(meter.events) /
                                  meter.seconds
                            : 0.0);
            // The autoscaling cost accounting: what the scaler
            // run actually paid, so the frontier point is
            // machine-readable alongside the kernel throughput.
            json.setF64("replica_seconds", scaled.replicaSeconds);
            json.setF64("cost_per_request",
                        scaled.costPerRequest);
            json.setU64("spawned_replicas",
                        scaled.kernelStats.spawnedReplicas);
            json.setU64("retired_replicas",
                        scaled.kernelStats.retiredReplicas);
            json.setU64("peak_rss_kib", peakRssKib());
            json_ok = json.writeFile(json_path);
        }

        banner("Fleet", "determinism: same seed, fresh fleet");
        std::string first;
        bool identical = true;
        for (int trial = 0; trial < 2; ++trial) {
            const auto report = run_scaled();
            const std::string row =
                fleetRow(report) + " rs=" +
                TextTable::num(report.replicaSeconds, 4) +
                " cost=" +
                TextTable::num(report.costPerRequest, 6);
            std::printf("trial %d: %s\n", trial, row.c_str());
            if (trial == 0)
                first = row;
            else
                identical = row == first;
        }
        std::printf("byte-identical: %s\n",
                    identical ? "yes" : "NO");
        return identical && json_ok ? 0 : 1;
    }

    Sweep sweep;
    sweep.kernel = fleet::fleetKernelByName(kernel_name);
    sweep.stealer = stealer;
    sweep.cost = cost_model;
    if (policy_name == "all") {
        sweep.policies = sched::allRouterPolicies();
        if (smoke)
            sweep.policies = {sched::RouterPolicy::RoundRobin,
                              sched::RouterPolicy::JoinShortestQueue,
                              sched::RouterPolicy::TrueJsq};
        if (sweep.kernel == fleet::FleetKernel::TwoPhase) {
            // Feedback policies need the event kernel.
            std::erase_if(sweep.policies,
                          sched::routerPolicyNeedsObservations);
        }
    } else {
        sweep.policies = {sched::routerPolicyByName(policy_name)};
    }
    if (sweep.kernel == fleet::FleetKernel::TwoPhase &&
        (!sweep.stealer.empty() ||
         std::any_of(sweep.policies.begin(), sweep.policies.end(),
                     sched::routerPolicyNeedsObservations))) {
        std::fprintf(stderr,
                     "feedback policies and stealing need "
                     "--kernel event\n");
        return 2;
    }
    sweep.fleetSizes = replicas > 0
                           ? std::vector<std::uint32_t>{replicas}
                           : std::vector<std::uint32_t>{2, 4};
    if (smoke && replicas == 0)
        sweep.fleetSizes = {2};
    if (scale && policy_name == "all" && !smoke) {
        // The scale config measures the kernel loop, not the whole
        // policy matrix: one estimate and one feedback policy.
        sweep.policies = {sched::RouterPolicy::JoinShortestQueue,
                          sched::RouterPolicy::TrueJsq};
    }
    sweep.scenarios = scenarios(
        smoke && scenario_name == "all" ? "bursty" : scenario_name,
        requests, rate, seed);

    const auto llm = model::modelByName("OPT-13B");
    const SystemConfig platform = benchPlatform();

    banner("Fleet", "policy x scenario x replicas, OPT-13B");
    std::printf("kernel: %s%s%s; deadline: TTFT <= %.2fs; "
                "%u requests at %.1f req/s\n",
                fleet::fleetKernelName(sweep.kernel).c_str(),
                sweep.stealer.empty() ? "" : " + ",
                sweep.stealer.c_str(), sweep.ttftDeadline,
                requests, rate);

    LoopMeter meter;
    TextTable table({"policy", "replicas", "scenario", "done", "rej",
                     "shed", "steals", "tok/s", "p99 TTFT (ms)",
                     "SLO att."});
    for (const sched::RouterPolicy policy : sweep.policies) {
        for (const std::uint32_t fleet_size : sweep.fleetSizes) {
            // One fleet per (policy, size): replica cost caches are
            // shared across the scenario sweep.
            fleet::FleetSimulator simulator(
                fleetConfig(sweep, platform, fleet_size, policy),
                llm);
            for (const auto &scenario : sweep.scenarios) {
                const auto report = simulator.run(
                    serving::generateWorkload(scenario));
                meter.add(report);
                table.addRow(
                    {report.policy, std::to_string(fleet_size),
                     scenario.name,
                     std::to_string(report.completed),
                     std::to_string(report.rejected),
                     std::to_string(report.shed),
                     std::to_string(
                         report.kernelStats.stolenRequests),
                     TextTable::num(report.throughputTps, 2),
                     TextTable::num(report.p99Ttft * 1e3, 1),
                     TextTable::num(report.sloAttainment, 3)});
            }
        }
    }
    table.print();
    // Loop wall time includes any cold cost-cache misses hit at
    // replica boundaries; re-runs over a warmed fleet approach the
    // pure control-plane + bookkeeping cost.
    meter.print("\nkernel loop");
    std::printf(
        "note: slo-aware sheds requests whose estimated TTFT "
        "misses the deadline;\ntrue-jsq/least-backlog route on "
        "observed replica state at the arrival event\n");

    bool json_ok = true;
    if (!json_path.empty()) {
        // Machine-readable mirror of the kernel-loop measurement;
        // tools/check_bench_regression.py compares events_per_sec
        // against the committed BENCH_fleet.json in CI.
        std::string tier =
            huge ? "huge" : (scale ? "scale" : "default");
        if (smoke)
            tier += "-smoke";
        JsonObject json;
        json.set("bench", "bench_fleet");
        json.set("tier", tier);
        json.set("kernel",
                 fleet::fleetKernelName(sweep.kernel));
        json.set("model", "OPT-13B");
        json.set("cost_model",
                 serving::costModelName(cost_model));
        json.setU64("replicas", sweep.fleetSizes.front());
        json.setU64("requests", requests);
        json.setF64("rate_per_sec", rate);
        json.setU64("seed", seed);
        json.set("scenario", scenario_name);
        json.set("policy", policy_name);
        json.setU64("events", meter.events);
        json.setF64("loop_ms", meter.seconds * 1e3);
        json.setF64("calibration_ms",
                    meter.calibrationSeconds * 1e3);
        json.setF64("events_per_sec",
                    meter.seconds > 0.0
                        ? static_cast<double>(meter.events) /
                              meter.seconds
                        : 0.0);
        json.setU64("peak_rss_kib", peakRssKib());
        json_ok = json.writeFile(json_path);
    }
    if (huge) {
        // The huge tier exists to prove the kernel completes a
        // million-request fleet; the policy-comparison sections
        // and the double-run determinism check stay with --scale.
        return json_ok ? 0 : 1;
    }

    if (sweep.kernel == fleet::FleetKernel::EventDriven) {
        // SLO-aware stealing vs the occupancy-greedy heuristic on
        // a heterogeneous fleet: a fast Hermes replica beside an
        // Accelerate tier whose prefill alone misses the deadline.
        // slo-steal declines steals whose estimated TTFT on the
        // thief is worse than waiting out the victim's backlog.
        banner("Fleet",
               "stealing: none vs greedy-steal vs slo-steal "
               "(fast Hermes + slow Accelerate, jsq)");
        serving::ScenarioConfig scenario;
        scenario.process = serving::ArrivalProcess::Bursty;
        scenario.requests = requests;
        scenario.ratePerSecond = 4.0;
        scenario.burstiness = 8.0;
        scenario.prompt = {96, 32, 0.0, 1.0};
        scenario.generate = {2, 1, 0.0, 1.0};
        scenario.seed = 5;
        const auto trace = serving::generateWorkload(scenario);

        fleet::FleetConfig config;
        config.ttftDeadline = 2.0;
        fleet::ReplicaConfig fast;
        fast.name = "fast";
        fast.system = platform;
        fast.serving.maxBatch = 2;
        fast.serving.calibrationTokens = 6;
        fleet::ReplicaConfig slow = fast;
        slow.name = "slow";
        slow.serving.engine = runtime::EngineKind::Accelerate;
        config.replicas = {fast, slow};

        TextTable steal_table({"control", "done", "steals",
                               "p99 TTFT (ms)", "SLO att."});
        for (const char *name :
             {"jsq", "jsq+greedy-steal", "jsq+slo-steal"}) {
            config.control = sched::controlPolicyByName(name);
            fleet::FleetSimulator simulator(config, llm);
            const auto report = simulator.run(trace);
            steal_table.addRow(
                {report.policy, std::to_string(report.completed),
                 std::to_string(report.kernelStats.stolenRequests),
                 TextTable::num(report.p99Ttft * 1e3, 1),
                 TextTable::num(report.sloAttainment, 3)});
        }
        steal_table.print();

        // Request lifecycle: priority preemption on an overloaded
        // bursty fleet (a quarter of the traffic is high priority;
        // priority-preempt evicts low-priority running work when a
        // high-priority request would miss its TTFT deadline), and
        // drain-migrate rescuing a dead replica's queue by moving
        // requests — KV included — instead of abandoning them.
        banner("Fleet", "lifecycle: priority preemption (25% "
                        "high-priority, bursty overload, jsq)");
        serving::ScenarioConfig prio;
        prio.process = serving::ArrivalProcess::Bursty;
        prio.requests = requests;
        prio.ratePerSecond = 16.0;
        prio.burstiness = 8.0;
        prio.prompt = {96, 32, 0.0, 1.0};
        prio.generate = {48, 16, 0.0, 1.0};
        prio.highPriorityFraction = 0.25;
        prio.seed = 11;
        const auto prio_trace = serving::generateWorkload(prio);

        serving::ServingConfig tight = replicaServing(sweep);
        tight.maxBatch = 2;
        fleet::FleetConfig prio_config = fleet::uniformFleet(
            2, platform, tight,
            sched::RouterPolicy::JoinShortestQueue, 1.0);
        TextTable prio_table({"control", "done", "preempts",
                              "hi-pri p99 TTFT (ms)",
                              "p99 TTFT (ms)", "SLO att."});
        for (const char *name :
             {"jsq", "jsq+slo-steal", "jsq+priority-preempt"}) {
            prio_config.control = sched::controlPolicyByName(name);
            fleet::FleetSimulator simulator(prio_config, llm);
            const auto report = simulator.run(prio_trace);
            prio_table.addRow(
                {report.policy, std::to_string(report.completed),
                 std::to_string(report.kernelStats.preemptions),
                 TextTable::num(
                     fleet::ttftPercentile(report, 99.0, 1) * 1e3,
                     1),
                 TextTable::num(report.p99Ttft * 1e3, 1),
                 TextTable::num(report.sloAttainment, 3)});
        }
        prio_table.print();

        banner("Fleet", "lifecycle: drain-migrate off a dead "
                        "replica (round-robin keeps feeding it)");
        fleet::FleetConfig drain_config;
        drain_config.ttftDeadline = 30.0;
        fleet::ReplicaConfig healthy;
        healthy.name = "healthy";
        healthy.system = platform;
        healthy.serving = replicaServing(sweep);
        fleet::ReplicaConfig broken = healthy;
        broken.name = "broken";
        broken.system.numDimms = 0; // Cannot serve the model.
        drain_config.replicas = {healthy, broken};
        TextTable drain_table({"control", "done", "abandoned",
                               "migrations", "KV transfer (ms)"});
        for (const char *name :
             {"round-robin", "round-robin+drain-migrate"}) {
            drain_config.control =
                sched::controlPolicyByName(name);
            fleet::FleetSimulator simulator(drain_config, llm);
            const auto report = simulator.run(
                serving::generateWorkload(prio));
            drain_table.addRow(
                {report.policy, std::to_string(report.completed),
                 std::to_string(report.rejected),
                 std::to_string(report.kernelStats.migrations),
                 TextTable::num(
                     report.kernelStats.kvTransferSeconds * 1e3,
                     3)});
        }
        drain_table.print();
    }

    banner("Fleet", "determinism: same seed, fresh fleet");
    const auto scenario = sweep.scenarios.back();
    const sched::RouterPolicy check_policy =
        sweep.policies.front();
    std::string first;
    bool identical = true;
    for (int trial = 0; trial < 2; ++trial) {
        fleet::FleetSimulator simulator(
            fleetConfig(sweep, platform, sweep.fleetSizes.front(),
                        check_policy),
            llm);
        const std::string row =
            fleetRow(simulator.run(
                serving::generateWorkload(scenario)));
        std::printf("trial %d: %s\n", trial, row.c_str());
        if (trial == 0)
            first = row;
        else
            identical = row == first;
    }
    std::printf("byte-identical: %s\n", identical ? "yes" : "NO");
    return identical && json_ok ? 0 : 1;
}
