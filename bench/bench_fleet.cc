/**
 * @file
 * Fleet co-simulation bench: router policies x arrival scenarios x
 * replica counts (core/fleet.hh + core/workload.hh), on the
 * event-driven kernel by default.
 *
 * Sweeps router policies (estimate-based and feedback) over the
 * standard scenario set (steady Poisson, bursty Gamma, diurnal
 * sinusoid) and reports aggregate throughput, fleet p99 TTFT, and
 * SLO attainment against a TTFT deadline.  A final section re-runs
 * one cell from scratch and checks the rendered report is
 * byte-identical — the reproducibility contract the regression
 * tests rely on; the process exits non-zero when it fails.
 *
 * Everything is configurable from the command line (see --help);
 * `--smoke` runs a seconds-long subset for CI.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/fleet.hh"
#include "core/workload.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

struct Sweep
{
    std::vector<sched::RouterPolicy> policies;
    std::vector<std::uint32_t> fleetSizes;
    std::vector<serving::ScenarioConfig> scenarios;
    fleet::FleetKernel kernel = fleet::FleetKernel::EventDriven;
    bool workStealing = false;
    Seconds ttftDeadline = 1.5;
    std::uint32_t maxBatch = 8;
};

serving::ServingConfig
replicaServing(const Sweep &sweep)
{
    serving::ServingConfig config;
    config.maxBatch = sweep.maxBatch;
    config.calibrationTokens = 6;
    return config;
}

std::vector<serving::ScenarioConfig>
scenarios(const std::string &which, std::uint32_t requests,
          double rate, std::uint64_t seed)
{
    std::vector<serving::ScenarioConfig> set;
    if (which == "all")
        set = serving::standardScenarios(requests, rate, seed);
    else
        set = {serving::scenarioByName(which, requests, rate,
                                       seed)};
    for (auto &scenario : set) {
        scenario.prompt = {192, 64, 0.05, 3.0};
        scenario.generate = {24, 8, 0.0, 1.0};
    }
    return set;
}

fleet::FleetConfig
fleetConfig(const Sweep &sweep, const SystemConfig &platform,
            std::uint32_t replicas, sched::RouterPolicy policy)
{
    fleet::FleetConfig config = fleet::uniformFleet(
        replicas, platform, replicaServing(sweep), policy,
        sweep.ttftDeadline);
    config.kernel = sweep.kernel;
    config.workStealing = sweep.workStealing;
    return config;
}

std::string
fleetRow(const fleet::FleetReport &report)
{
    // Fixed-precision rendering: equal physics => equal bytes.
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "done=%llu rej=%llu shed=%llu steals=%llu "
                  "tok/s=%.4f p99TTFT=%.4fms slo=%.4f",
                  static_cast<unsigned long long>(report.completed),
                  static_cast<unsigned long long>(report.rejected),
                  static_cast<unsigned long long>(report.shed),
                  static_cast<unsigned long long>(
                      report.kernelStats.stolenRequests),
                  report.throughputTps, report.p99Ttft * 1e3,
                  report.sloAttainment);
    return buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    const bool smoke =
        args.flag("smoke", "seconds-long CI subset");
    const std::string policy_name = args.str(
        "policy", "all", "router policy name, or 'all'");
    const std::string scenario_name = args.str(
        "scenario", "all", "arrival scenario name, or 'all'");
    const std::uint32_t replicas = args.u32(
        "replicas", 0, "fleet size; 0 sweeps {2, 4}");
    const std::uint32_t requests =
        args.u32("requests", smoke ? 10 : 48, "trace length");
    const double rate =
        args.f64("rate", 12.0, "mean arrival rate (req/s)");
    const std::uint64_t seed = args.u32("seed", 17, "trace seed");
    const std::string kernel_name = args.str(
        "kernel", "event", "co-simulation core: event|two-phase");
    const bool steal = args.flag(
        "steal", "enable the work-stealing hook (event kernel)");
    args.finish();

    Sweep sweep;
    sweep.kernel = fleet::fleetKernelByName(kernel_name);
    sweep.workStealing = steal;
    if (policy_name == "all") {
        sweep.policies = sched::allRouterPolicies();
        if (smoke)
            sweep.policies = {sched::RouterPolicy::RoundRobin,
                              sched::RouterPolicy::JoinShortestQueue,
                              sched::RouterPolicy::TrueJsq};
        if (sweep.kernel == fleet::FleetKernel::TwoPhase) {
            // Feedback policies need the event kernel.
            std::erase_if(sweep.policies,
                          sched::routerPolicyNeedsObservations);
        }
    } else {
        sweep.policies = {sched::routerPolicyByName(policy_name)};
    }
    if (sweep.kernel == fleet::FleetKernel::TwoPhase &&
        (sweep.workStealing ||
         std::any_of(sweep.policies.begin(), sweep.policies.end(),
                     sched::routerPolicyNeedsObservations))) {
        std::fprintf(stderr,
                     "feedback policies and --steal need "
                     "--kernel event\n");
        return 2;
    }
    sweep.fleetSizes = replicas > 0
                           ? std::vector<std::uint32_t>{replicas}
                           : std::vector<std::uint32_t>{2, 4};
    if (smoke && replicas == 0)
        sweep.fleetSizes = {2};
    sweep.scenarios = scenarios(
        smoke && scenario_name == "all" ? "bursty" : scenario_name,
        requests, rate, seed);

    const auto llm = model::modelByName("OPT-13B");
    const SystemConfig platform = benchPlatform();

    banner("Fleet", "policy x scenario x replicas, OPT-13B");
    std::printf("kernel: %s%s; deadline: TTFT <= %.2fs; "
                "%u requests at %.1f req/s\n",
                fleet::fleetKernelName(sweep.kernel).c_str(),
                sweep.workStealing ? " + work stealing" : "",
                sweep.ttftDeadline, requests, rate);

    TextTable table({"policy", "replicas", "scenario", "done", "rej",
                     "shed", "steals", "tok/s", "p99 TTFT (ms)",
                     "SLO att."});
    for (const sched::RouterPolicy policy : sweep.policies) {
        for (const std::uint32_t fleet_size : sweep.fleetSizes) {
            // One fleet per (policy, size): replica cost caches are
            // shared across the scenario sweep.
            fleet::FleetSimulator simulator(
                fleetConfig(sweep, platform, fleet_size, policy),
                llm);
            for (const auto &scenario : sweep.scenarios) {
                const auto report = simulator.run(
                    serving::generateWorkload(scenario));
                table.addRow(
                    {report.policy, std::to_string(fleet_size),
                     scenario.name,
                     std::to_string(report.completed),
                     std::to_string(report.rejected),
                     std::to_string(report.shed),
                     std::to_string(
                         report.kernelStats.stolenRequests),
                     TextTable::num(report.throughputTps, 2),
                     TextTable::num(report.p99Ttft * 1e3, 1),
                     TextTable::num(report.sloAttainment, 3)});
            }
        }
    }
    table.print();
    std::printf(
        "\nnote: slo-aware sheds requests whose estimated TTFT "
        "misses the deadline;\ntrue-jsq/least-backlog route on "
        "observed replica state at the arrival event\n");

    banner("Fleet", "determinism: same seed, fresh fleet");
    const auto scenario = sweep.scenarios.back();
    const sched::RouterPolicy check_policy =
        sweep.policies.front();
    std::string first;
    bool identical = true;
    for (int trial = 0; trial < 2; ++trial) {
        fleet::FleetSimulator simulator(
            fleetConfig(sweep, platform, sweep.fleetSizes.front(),
                        check_policy),
            llm);
        const std::string row =
            fleetRow(simulator.run(
                serving::generateWorkload(scenario)));
        std::printf("trial %d: %s\n", trial, row.c_str());
        if (trial == 0)
            first = row;
        else
            identical = row == first;
    }
    std::printf("byte-identical: %s\n", identical ? "yes" : "NO");
    return identical ? 0 : 1;
}
