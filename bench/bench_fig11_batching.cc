/**
 * @file
 * Fig. 11 reproduction: end-to-end throughput for batch sizes 1-16
 * on Falcon-40B, OPT-66B and LLaMA2-70B across all six systems
 * (N.P. where a system does not support the model).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::bench;

    banner("Fig. 11", "batching 1-16, three large models");
    System system(benchPlatform());
    const std::vector<EngineKind> engines = {
        EngineKind::Accelerate, EngineKind::FlexGen,
        EngineKind::DejaVu,     EngineKind::HermesHost,
        EngineKind::HermesBase, EngineKind::Hermes};

    for (const char *name :
         {"Falcon-40B", "OPT-66B", "LLaMA2-70B"}) {
        std::printf("\n-- %s --\n", name);
        TextTable table({"batch", "Accelerate", "FlexGen", "DejaVu",
                         "Hermes-host", "Hermes-base", "Hermes"});
        for (const std::uint32_t batch : {1u, 2u, 4u, 8u, 16u}) {
            const auto results =
                system.compare(benchRequest(name, batch), engines);
            std::vector<std::string> row = {std::to_string(batch)};
            for (const auto &result : results)
                row.push_back(rate(result));
            table.addRow(row);
        }
        table.print();
    }
    std::printf("\npaper shape: Hermes throughput grows with batch; "
                "the Hermes/Hermes-host gap widens with batch; the\n"
                "Hermes/Hermes-base gap is smallest at batch ~2\n");
    return 0;
}
