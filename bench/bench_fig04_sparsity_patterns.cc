/**
 * @file
 * Fig. 4 reproduction: (a) token-wise similarity vs. token distance
 * for LLaMA-13B-class and Falcon-40B-class traces; (b) layer-wise
 * correlation (conditional activation probability given the sampled
 * parent vs. the unconditional marginal).
 */

#include <cstdio>

#include "common/table.hh"
#include "model/llm_config.hh"
#include "sparsity/stats.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::sparsity;

    std::printf("=== Fig. 4a: token-wise similarity vs distance ===\n");
    TextTable table({"model", "d=1", "d=5", "d=10", "d=25", "d=50"});
    for (const char *name : {"LLaMA2-13B", "Falcon-40B"}) {
        model::LlmConfig llm = model::modelByName(name);
        llm.layers = 6;
        ActivationTrace trace(llm, SparsityConfig{}, 1);
        const TraceProfile profile = profileTrace(trace, 160, 50, 2);
        const auto &sim = profile.similarity.byDistance;
        table.addRow({name, TextTable::num(sim[0], 3),
                      TextTable::num(sim[4], 3),
                      TextTable::num(sim[9], 3),
                      TextTable::num(sim[24], 3),
                      TextTable::num(sim[49], 3)});
    }
    table.print();
    std::printf("paper: >0.90 adjacent, ~0.70 at distance 10+, flat "
                "beyond ~25\n");

    std::printf("\n=== Fig. 4b: layer-wise correlation ===\n");
    TextTable corr({"model", "P(child|parent)", "P(child)", "lift"});
    for (const char *name : {"LLaMA2-13B", "Falcon-40B"}) {
        model::LlmConfig llm = model::modelByName(name);
        llm.layers = 6;
        ActivationTrace trace(llm, SparsityConfig{}, 1);
        const TraceProfile profile = profileTrace(trace, 160, 10, 2);
        corr.addRow({name,
                     TextTable::num(profile.parentConditional, 3),
                     TextTable::num(profile.childMarginal, 3),
                     TextTable::num(profile.parentConditional /
                                        profile.childMarginal,
                                    1)});
    }
    corr.print();
    std::printf("paper: correlated-parent conditional exceeds 0.9 for "
                "top pairs\n");

    std::printf("\n=== Sec. I: hot/cold 80-20 split ===\n");
    {
        model::LlmConfig llm = model::modelByName("OPT-13B");
        llm.layers = 6;
        ActivationTrace trace(llm, SparsityConfig{}, 1);
        const TraceProfile profile = profileTrace(trace, 160, 10, 2);
        std::printf("top 20%% of neurons carry %.1f%% of activation "
                    "mass (paper: ~80%%)\n",
                    100.0 * profile.hotMassCoverage);
        std::printf("mean active fraction %.3f (paper: 70-90%% "
                    "sparsity)\n",
                    profile.meanActiveFraction);
    }
    return 0;
}
