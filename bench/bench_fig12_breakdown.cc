/**
 * @file
 * Fig. 12 reproduction: per-token latency breakdown.
 *  (a) Deja Vu vs Hermes on OPT-13B / OPT-66B, batches 1-16:
 *      communication dominates Deja Vu (~89%), the MLP-based
 *      predictor costs ~18% of its compute; Hermes' predictor is
 *      negligible.
 *  (b) Hermes-base vs Hermes on Falcon-40B / LLaMA2-70B: without
 *      sparsity the FC share balloons.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "runtime/factory.hh"

namespace {

using namespace hermes;
using namespace hermes::bench;

void
breakdownRows(TextTable &table, const InferenceResult &result,
              const std::string &label)
{
    const auto &b = result.breakdown;
    const double total = b.total();
    if (!result.supported || total <= 0.0) {
        table.addRow({label, "N.P.", "-", "-", "-", "-", "-"});
        return;
    }
    auto pct = [&](double v) {
        return TextTable::num(100.0 * v / total, 1) + "%";
    };
    table.addRow({label, pct(b.fc), pct(b.attention),
                  pct(b.predictor), pct(b.prefill),
                  pct(b.communication), pct(b.others)});
}

} // namespace

int
main()
{
    banner("Fig. 12a", "Deja Vu vs Hermes breakdown (share of total)");
    System system(benchPlatform());

    TextTable table_a({"system", "FC", "attention", "predictor",
                       "prefill", "communication", "others"});
    for (const char *name : {"OPT-13B", "OPT-66B"}) {
        for (const std::uint32_t batch : {1u, 16u}) {
            const auto results = system.compare(
                benchRequest(name, batch),
                {EngineKind::DejaVu, EngineKind::Hermes});
            const std::string suffix =
                std::string(name) + " b" + std::to_string(batch);
            breakdownRows(table_a, results[0], "DejaVu " + suffix);
            breakdownRows(table_a, results[1], "Hermes " + suffix);
        }
    }
    table_a.print();
    std::printf("paper: communication ~89%% of Deja Vu; Hermes "
                "predictor <0.1%% vs Deja Vu ~18%% of compute\n");

    banner("Fig. 12b", "Hermes-base vs Hermes breakdown");
    TextTable table_b({"system", "FC", "attention", "predictor",
                       "prefill", "communication", "others"});
    for (const char *name : {"Falcon-40B", "LLaMA2-70B"}) {
        for (const std::uint32_t batch : {1u, 16u}) {
            const auto results = system.compare(
                benchRequest(name, batch),
                {EngineKind::HermesBase, EngineKind::Hermes});
            const std::string suffix =
                std::string(name) + " b" + std::to_string(batch);
            breakdownRows(table_b, results[0], "H-base " + suffix);
            breakdownRows(table_b, results[1], "Hermes " + suffix);
        }
    }
    table_b.print();
    std::printf("paper: FC dominates Hermes-base at large batch; "
                "prompting ~33%% of optimized Hermes at batch 1\n");
    return 0;
}
