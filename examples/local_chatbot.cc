/**
 * @file
 * Local chatbot deployment study: the paper's motivating scenario.
 *
 * A user wants an interactive assistant (batch 1, 128-token turns)
 * on a $2.5k box.  This example compares every deployable system on
 * the model sizes a chatbot might use and reports whether each one
 * clears an interactivity bar (5 tokens/s), reproducing the paper's
 * argument that only NDP-DIMM augmentation makes the 70B class
 * usable locally.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/hermes.hh"

int
main()
{
    using namespace hermes;

    constexpr double kInteractiveTokensPerSecond = 5.0;

    System system(fastConfig(6));
    const std::vector<EngineKind> engines = {
        EngineKind::Accelerate, EngineKind::FlexGen,
        EngineKind::DejaVu, EngineKind::HermesHost,
        EngineKind::Hermes};

    std::printf("interactivity bar: %.0f tokens/s, batch 1, "
                "128-token turns\n\n",
                kInteractiveTokensPerSecond);

    TextTable table({"model", "system", "tokens/s", "interactive?"});
    for (const char *name :
         {"OPT-13B", "OPT-66B", "LLaMA2-70B"}) {
        InferenceRequest request =
            defaultRequest(model::modelByName(name), 1);
        request.generateTokens = 48;
        request.profileTokens = 32;
        const auto results = system.compare(request, engines);
        for (const auto &result : results) {
            if (!result.supported) {
                table.addRow({name, result.engine, "N.P.", "-"});
                continue;
            }
            table.addRow(
                {name, result.engine,
                 TextTable::num(result.tokensPerSecond, 2),
                 result.tokensPerSecond >=
                         kInteractiveTokensPerSecond
                     ? "yes"
                     : "no"});
        }
    }
    table.print();

    std::printf("\nConclusion: PCIe-bound offloading cannot serve "
                "billion-scale chat locally; Hermes clears the bar\n"
                "on every model, including LLaMA2-70B.\n");
    return 0;
}
