/**
 * @file
 * Command-line driver for the simulator — the entry point a user of
 * the released system would script against.
 *
 * Usage:
 *   hermes_sim [--model NAME] [--engine NAME|all] [--batch N]
 *              [--dimms N] [--gpu 4090|3090|t4] [--prompt N]
 *              [--gen N] [--layers N] [--seed N]
 *
 * Examples:
 *   hermes_sim --model LLaMA2-70B --engine all --batch 4
 *   hermes_sim --model OPT-66B --engine Hermes --dimms 16
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hh"
#include "core/hermes.hh"

namespace {

using namespace hermes;

struct Options
{
    std::string model = "LLaMA2-70B";
    std::string engine = "Hermes";
    std::uint32_t batch = 1;
    std::uint32_t dimms = 8;
    std::string gpu = "4090";
    std::uint32_t prompt = 128;
    std::uint32_t gen = 128;
    std::uint32_t layers = 8; ///< Simulated-layer sample (0 = all).
    std::uint64_t seed = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--model NAME] [--engine NAME|all] [--batch N]\n"
        "          [--dimms N] [--gpu 4090|3090|t4] [--prompt N]\n"
        "          [--gen N] [--layers N] [--seed N]\n\n"
        "models : OPT-13B OPT-30B OPT-66B LLaMA2-13B LLaMA2-70B "
        "Falcon-40B\n"
        "engines: Accelerate FlexGen DejaVu Hermes-host Hermes-base "
        "Hermes TensorRT-LLM all\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--model"))
            options.model = next();
        else if (!std::strcmp(argv[i], "--engine"))
            options.engine = next();
        else if (!std::strcmp(argv[i], "--batch"))
            options.batch =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (!std::strcmp(argv[i], "--dimms"))
            options.dimms =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (!std::strcmp(argv[i], "--gpu"))
            options.gpu = next();
        else if (!std::strcmp(argv[i], "--prompt"))
            options.prompt =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (!std::strcmp(argv[i], "--gen"))
            options.gen =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (!std::strcmp(argv[i], "--layers"))
            options.layers =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (!std::strcmp(argv[i], "--seed"))
            options.seed =
                static_cast<std::uint64_t>(std::atoll(next()));
        else
            usage(argv[0]);
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parse(argc, argv);

    SystemConfig config;
    config.simulatedLayers = options.layers;
    config.numDimms = options.dimms;
    if (options.gpu == "4090")
        config.gpu = gpu::rtx4090();
    else if (options.gpu == "3090")
        config.gpu = gpu::rtx3090();
    else if (options.gpu == "t4" || options.gpu == "T4")
        config.gpu = gpu::teslaT4();
    else
        usage(argv[0]);

    InferenceRequest request;
    request.llm = model::modelByName(options.model);
    request.batch = options.batch;
    request.promptTokens = options.prompt;
    request.generateTokens = options.gen;
    request.seed = options.seed;

    std::vector<EngineKind> kinds;
    if (options.engine == "all") {
        kinds = runtime::allEngineKinds();
    } else {
        bool found = false;
        for (const auto kind : runtime::allEngineKinds()) {
            if (runtime::engineKindName(kind) == options.engine) {
                kinds.push_back(kind);
                found = true;
            }
        }
        if (!found)
            usage(argv[0]);
    }

    std::printf("platform: %s + %u NDP-DIMMs (%s, batch %u, "
                "%u+%u tokens)\n\n",
                config.gpu.name.c_str(), config.numDimms,
                options.model.c_str(), options.batch, options.prompt,
                options.gen);

    TextTable table({"engine", "tokens/s", "prefill s", "generate s",
                     "comm %", "predictor %"});
    System system(config);
    for (const auto &result : system.compare(request, kinds)) {
        if (!result.supported) {
            table.addRow({result.engine, "N.P.",
                          result.unsupportedReason, "-", "-", "-"});
            continue;
        }
        const double total = result.breakdown.total();
        table.addRow(
            {result.engine, TextTable::num(result.tokensPerSecond, 2),
             TextTable::num(result.prefillTime, 2),
             TextTable::num(result.generateTime, 2),
             TextTable::num(
                 100.0 * result.breakdown.communication / total, 1),
             TextTable::num(
                 100.0 * result.breakdown.predictor / total, 2)});
    }
    table.print();
    return 0;
}
