/**
 * @file
 * Minimal serving-layer walkthrough: build a bursty arrival trace,
 * serve it on the default Hermes platform with continuous batching,
 * and inspect per-request metrics.
 *
 * Build and run:
 *   cmake --build build --target serving_demo && ./build/serving_demo
 */

#include <cstdio>

#include "core/hermes.hh"

int
main()
{
    using namespace hermes;

    // Fast platform: 6-layer sample, costs extrapolated to full depth.
    System system(fastConfig(6));

    // A dozen chat-sized requests arriving in a burst.
    auto workload = serving::syntheticWorkload(
        /*count=*/12, /*arrivals_per_second=*/2.0,
        /*prompt_tokens=*/128, /*generate_tokens=*/32, /*seed=*/42);

    serving::ServingConfig config;
    config.maxBatch = 8;
    config.calibrationTokens = 8;

    const serving::ServingReport report =
        system.serve(model::opt13b(), workload, config);

    std::printf("engine         : %s\n", report.engine.c_str());
    std::printf("completed      : %llu (rejected %llu)\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.rejected));
    std::printf("throughput     : %.2f tok/s\n", report.throughputTps);
    std::printf("mean batch     : %.1f (peak %u)\n",
                report.meanBatchOccupancy, report.peakBatch);
    std::printf("token latency  : p50 %.1f ms, p99 %.1f ms\n",
                report.p50TokenLatency * 1e3,
                report.p99TokenLatency * 1e3);
    std::printf("TTFT           : p50 %.1f ms, p99 %.1f ms\n\n",
                report.p50Ttft * 1e3, report.p99Ttft * 1e3);

    std::printf("%6s %10s %10s %10s %8s\n", "req", "queue(ms)",
                "TTFT(ms)", "e2e(ms)", "tokens");
    for (const auto &request : report.requests) {
        if (request.rejected) {
            std::printf("%6llu %10s %10s %10s %8s\n",
                        static_cast<unsigned long long>(request.id),
                        "-", "-", "-", "rejected");
            continue;
        }
        std::printf("%6llu %10.1f %10.1f %10.1f %8u\n",
                    static_cast<unsigned long long>(request.id),
                    request.queueDelay() * 1e3, request.ttft() * 1e3,
                    request.latency() * 1e3, request.tokens);
    }
    return 0;
}
