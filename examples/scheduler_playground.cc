/**
 * @file
 * Scheduler playground: drive the scheduling stack directly through
 * the library's lower-level APIs — the predictor, the offline ILP
 * partitioner and the window rebalancer — on a small synthetic
 * model, printing what each mechanism does.  A tour for developers
 * extending Hermes' scheduling.
 */

#include <cstdio>

#include "common/table.hh"
#include "model/llm_config.hh"
#include "sched/ilp_partition.hh"
#include "sched/mapper.hh"
#include "sched/predictor.hh"
#include "sched/window_scheduler.hh"
#include "sparsity/trace.hh"

int
main()
{
    using namespace hermes;
    using namespace hermes::sched;

    // A toy 4-layer model keeps the tables readable.
    model::LlmConfig llm = model::llama2_13b();
    llm.layers = 4;
    llm.hidden = 1024;
    llm.ffnHidden = 2048;
    llm.heads = 16;
    llm.kvHeads = 16;

    sparsity::ActivationTrace trace(llm, sparsity::SparsityConfig{},
                                    1);

    // --- 1. Offline partition (Sec. IV-B). ---
    std::printf("== offline ILP partition ==\n");
    std::vector<double> freq(trace.mlp(0).neurons(), 0.0);
    for (int t = 0; t < 64; ++t) {
        trace.nextToken();
        for (const auto id : trace.mlp(0).activeList)
            freq[id] += 1.0 / 64.0;
    }
    PartitionProblem problem;
    BlockProblem block;
    block.frequency = freq;
    block.neuronBytes = llm.mlpNeuronBytes();
    block.gpuTimePerNeuron = 10e-9;
    block.dimmTimePerNeuron = 400e-9;
    problem.blocks.push_back(block);
    problem.gpuBudget = 512 * llm.mlpNeuronBytes();
    problem.dimmBudgets.assign(4, 1ULL * kGiB);
    const PartitionResult partition = IlpPartitioner().solve(problem);
    std::uint32_t hot = 0;
    for (const auto loc : partition.assignment.location[0])
        hot += loc < 0;
    std::printf("hot neurons on GPU: %u of %zu; objective %.1f us\n",
                hot, freq.size(), partition.objective * 1e6);

    // --- 2. Online prediction (Sec. IV-C). ---
    std::printf("\n== lightweight predictor ==\n");
    ModelPredictor predictor(llm, PredictorConfig{});
    predictor.calibrate(trace, 64);
    trace.reset(1);
    std::vector<std::vector<std::uint8_t>> attn_masks, mlp_masks;
    for (int t = 0; t < 32; ++t) {
        trace.nextToken();
        predictor.stepToken(trace, attn_masks, mlp_masks);
    }
    std::printf("accuracy %.1f%%, recall %.1f%%, state table %.1f "
                "KB\n",
                100.0 * predictor.metrics().accuracy(),
                100.0 * predictor.metrics().recall(),
                predictor.stateTableBytes() / 1024.0);

    // --- 3. Online adjustment (Sec. IV-C2). ---
    std::printf("\n== online hot/cold adjustment ==\n");
    BlockPlacement block_placement(trace.mlp(0).neurons(), 4);
    for (std::uint32_t i = 0; i < block_placement.neurons(); ++i)
        block_placement.setHomeDimm(
            i, static_cast<std::uint16_t>(i % 4));
    std::vector<std::uint32_t> hot_scores;
    predictor.mlp(0).hotScores(&trace.attn(0).mask, true, true,
                               hot_scores);
    const AdjustmentResult adjust = NeuronMapper::adjustBlock(
        block_placement, hot_scores, llm.mlpNeuronBytes());
    std::printf("promotions %llu, evictions %llu, %.1f KiB over "
                "PCIe\n",
                static_cast<unsigned long long>(adjust.promotions),
                static_cast<unsigned long long>(adjust.evictions),
                adjust.pcieBytes / 1024.0);

    // --- 4. Window rebalancing (Sec. IV-D, Algorithm 1). ---
    std::printf("\n== window-based rebalancing ==\n");
    WindowScheduler window(trace.mlp(0).neurons(), 4, 5);
    for (int t = 0; t < 5; ++t) {
        trace.nextToken();
        window.observe(trace.mlp(0).activeList);
    }
    const auto before = window.dimmLoads(block_placement);
    TextTable loads({"", "DIMM0", "DIMM1", "DIMM2", "DIMM3"});
    auto row = [&](const char *label,
                   const std::vector<std::uint64_t> &values) {
        std::vector<std::string> cells = {label};
        for (const auto value : values)
            cells.push_back(std::to_string(value));
        loads.addRow(cells);
    };
    row("before", before);
    WindowScheduler replay(trace.mlp(0).neurons(), 4, 5);
    trace.reset(2);
    for (int t = 0; t < 5; ++t) {
        trace.nextToken();
        replay.observe(trace.mlp(0).activeList);
    }
    const auto transfers =
        replay.rebalance(block_placement, llm.mlpNeuronBytes());
    WindowScheduler probe(trace.mlp(0).neurons(), 4, 5);
    trace.reset(2);
    for (int t = 0; t < 5; ++t) {
        trace.nextToken();
        probe.observe(trace.mlp(0).activeList);
    }
    row("after", probe.dimmLoads(block_placement));
    loads.print();
    std::printf("%zu migration batches issued over DIMM-links\n",
                transfers.size());
    return 0;
}
