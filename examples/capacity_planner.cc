/**
 * @file
 * Capacity planner: size an NDP-DIMM pool and pick a GPU for a
 * target model, the way a systems integrator would use this library.
 *
 * For each model it finds the smallest DIMM count that fits weights
 * plus KV cache, then reports the throughput of sensible upgrade
 * steps (more DIMMs, better GPU) so the knee of the scaling curve
 * (Figs. 14-15) is visible as a purchasing decision.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/hermes.hh"
#include "runtime/hermes_engine.hh"

namespace {

using namespace hermes;

double
throughput(SystemConfig config, const InferenceRequest &request)
{
    runtime::HermesEngine engine(std::move(config));
    const auto result = engine.run(request);
    return result.supported ? result.tokensPerSecond : 0.0;
}

} // namespace

int
main()
{
    using namespace hermes;

    TextTable table({"model", "min DIMMs", "tok/s @min",
                     "tok/s @2x DIMMs", "tok/s @4090->T4"});
    for (const char *name :
         {"OPT-13B", "OPT-30B", "Falcon-40B", "LLaMA2-70B"}) {
        InferenceRequest request =
            defaultRequest(model::modelByName(name), 1);
        request.generateTokens = 48;
        request.profileTokens = 32;

        // Smallest pool that holds weights + KV.
        std::uint32_t min_dimms = 0;
        for (std::uint32_t dimms = 1; dimms <= 16; dimms *= 2) {
            SystemConfig config = fastConfig(6);
            config.numDimms = dimms;
            runtime::HermesEngine engine(config);
            if (engine.supports(request)) {
                min_dimms = dimms;
                break;
            }
        }
        if (min_dimms == 0) {
            table.addRow({name, ">16", "-", "-", "-"});
            continue;
        }

        SystemConfig at_min = fastConfig(6);
        at_min.numDimms = min_dimms;
        SystemConfig doubled = at_min;
        doubled.numDimms = min_dimms * 2;
        SystemConfig downgraded = at_min;
        downgraded.gpu = gpu::teslaT4();

        table.addRow(
            {name, std::to_string(min_dimms),
             TextTable::num(throughput(at_min, request), 2),
             TextTable::num(throughput(doubled, request), 2),
             TextTable::num(throughput(downgraded, request), 2)});
    }
    table.print();

    std::printf("\nReading the table: doubling DIMMs helps until "
                "the NDP side catches the GPU (Fig. 14); the GPU\n"
                "tier matters even though cold neurons never touch "
                "it (Fig. 15) because prompting and hot neurons\n"
                "run there.\n");
    return 0;
}
