/**
 * @file
 * Quickstart: simulate LLaMA2-70B on the default Hermes platform
 * (one RTX 4090 + eight 32 GB NDP-DIMMs) and print the end-to-end
 * throughput and latency breakdown.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/hermes.hh"

int
main()
{
    using namespace hermes;

    // The default platform matches Sec. V-A1 of the paper.  The
    // fastConfig() helper simulates a representative sample of
    // layers; drop it for a full-depth run.
    System system(fastConfig(8));

    InferenceRequest request =
        defaultRequest(model::llama2_70b(), /*batch=*/1);

    if (!system.supports(request)) {
        std::printf("model does not fit this platform\n");
        return 1;
    }

    const InferenceResult result = system.infer(request);

    std::printf("model:        %s\n", request.llm.name.c_str());
    std::printf("weights:      %.1f GB across %u NDP-DIMMs\n",
                request.llm.totalBytes() / 1e9,
                system.config().numDimms);
    std::printf("throughput:   %.2f tokens/s (paper: 13.75)\n",
                result.tokensPerSecond);
    std::printf("prefill:      %.2f s for %u prompt tokens\n",
                result.prefillTime, request.promptTokens);
    std::printf("generation:   %.2f s for %u tokens\n",
                result.generateTime, request.generateTokens);

    const auto &b = result.breakdown;
    const double total = b.total();
    std::printf("\nlatency breakdown:\n");
    std::printf("  FC operators   %5.1f%%\n", 100.0 * b.fc / total);
    std::printf("  attention      %5.1f%%\n",
                100.0 * b.attention / total);
    std::printf("  predictor      %5.1f%%\n",
                100.0 * b.predictor / total);
    std::printf("  prefill        %5.1f%%\n",
                100.0 * b.prefill / total);
    std::printf("  communication  %5.1f%%\n",
                100.0 * b.communication / total);
    std::printf("  others         %5.1f%%\n",
                100.0 * b.others / total);

    std::printf("\npredictor accuracy: %.1f%% (paper: ~98%%)\n",
                100.0 * result.stats.counterValue(
                            "predictor.accuracy"));
    return 0;
}
