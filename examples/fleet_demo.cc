/**
 * @file
 * Walkthrough of the fleet + workload + control-plane APIs (README
 * "Fleet serving" and "Writing a control policy").
 *
 * Builds a heterogeneous fleet — two default replicas running Hermes
 * plus one budget replica (half the DIMM pool) running Hermes-base —
 * generates a bursty scenario, and serves it on the event-driven
 * co-simulation kernel under several control policies: built-ins
 * from the registry (routing, composed with work stealing) and a
 * custom policy written right here, which is the point of the API.
 */

#include <cstdio>
#include <memory>

#include "common/table.hh"
#include "core/fleet.hh"
#include "core/hermes.hh"
#include "core/workload.hh"

using namespace hermes;

namespace {

/**
 * A custom control policy no enum ever offered: long generations go
 * to the replica with the fastest calibrated decode, short ones
 * round-robin across the rest.  Subscribes to nothing beyond
 * arrivals, so the kernel skips every optional hook and the
 * observation gather.
 */
class LongToFastestPolicy final : public sched::ControlPolicy
{
  public:
    std::string name() const override { return "long-to-fastest"; }

    void begin(const sched::ControlContext &context) override
    {
        fastest_ = 0;
        for (std::uint32_t r = 1; r < context.models.size(); ++r) {
            if (context.models[r].slotTokensPerSecond >
                context.models[fastest_].slotTokensPerSecond)
                fastest_ = r;
        }
        next_ = 0;
    }

    void onArrival(const sched::ArrivalContext &context,
                   const sched::FleetView &view,
                   sched::FleetActions &actions) override
    {
        if (context.generateTokens >= 24 ||
            view.replicaCount() <= 1) {
            actions.routeTo(fastest_);
            return;
        }
        // Round-robin over the other replicas.
        std::uint32_t replica = next_++ % (view.replicaCount() - 1);
        if (replica >= fastest_)
            ++replica;
        actions.routeTo(replica);
    }

  private:
    std::uint32_t fastest_ = 0;
    std::uint32_t next_ = 0;
};

} // namespace

int
main()
{
    const auto llm = model::modelByName("OPT-66B");

    // 1. Describe the traffic: a bursty trace, reproducible by seed.
    serving::ScenarioConfig scenario =
        serving::scenarioByName("bursty", /*requests=*/36,
                                /*rate_per_second=*/6.0,
                                /*seed=*/42);
    scenario.prompt = {128, 64, 0.0, 1.0};
    scenario.generate = {16, 8, 0.0, 1.0};
    // A quarter of the traffic is high priority: it jumps the
    // admission queue on every replica, and the priority-preempt
    // lifecycle policy additionally evicts low-priority running
    // work for it when its TTFT deadline is at risk.
    scenario.highPriorityFraction = 0.25;
    const auto workload = serving::generateWorkload(scenario);
    std::printf("scenario '%s': %zu requests, first at %.2fs, "
                "last at %.2fs\n",
                scenario.name.c_str(), workload.size(),
                workload.front().arrival,
                workload.back().arrival);

    // 2. Describe the fleet: heterogeneous tiers behind one router.
    fleet::FleetConfig config;
    config.ttftDeadline = 6.0;
    for (int i = 0; i < 2; ++i) {
        fleet::ReplicaConfig replica;
        replica.name = "hermes-" + std::to_string(i);
        replica.system = runtime::platformPreset("default", 6);
        replica.serving.engine = runtime::EngineKind::Hermes;
        replica.serving.maxBatch = 4;
        replica.serving.calibrationTokens = 6;
        config.replicas.push_back(replica);
    }
    {
        fleet::ReplicaConfig replica;
        replica.name = "budget";
        replica.system = runtime::platformPreset("budget", 6);
        replica.serving.engine = runtime::EngineKind::HermesBase;
        replica.serving.maxBatch = 4;
        replica.serving.calibrationTokens = 6;
        config.replicas.push_back(replica);
    }

    // 3. Pick a control plane per run.  Built-ins come from the
    //    registry by name — "a+b" composes a routing policy with a
    //    stealing policy — and a custom policy is just an object:
    //    the kernel owns physics, the policy owns decisions, and
    //    every decision happens at an event on the shared clock.
    TextTable table({"control", "done", "shed", "steals",
                     "preempts", "tok/s", "hi-pri p99 TTFT (ms)",
                     "p99 TTFT (ms)", "SLO att.", "per-replica"});
    std::vector<std::shared_ptr<sched::ControlPolicy>> controls = {
        sched::controlPolicyByName("round-robin"),
        sched::controlPolicyByName("round-robin+greedy-steal"),
        sched::controlPolicyByName("round-robin+slo-steal"),
        sched::controlPolicyByName("least-backlog"),
        sched::controlPolicyByName("least-backlog+priority-preempt"),
        std::make_shared<LongToFastestPolicy>(),
    };
    for (const auto &control : controls) {
        config.control = control;
        fleet::FleetSimulator simulator(config, llm);
        const auto report = simulator.run(workload);

        std::string spread;
        for (std::size_t r = 0;
             r < report.replicaReports.size(); ++r) {
            spread += report.replicaNames[r] + ":" +
                      std::to_string(
                          report.replicaReports[r].completed) +
                      " ";
        }
        table.addRow({report.policy,
                      std::to_string(report.completed),
                      std::to_string(report.shed),
                      std::to_string(
                          report.kernelStats.stolenRequests),
                      std::to_string(
                          report.kernelStats.preemptions),
                      TextTable::num(report.throughputTps, 2),
                      TextTable::num(
                          fleet::ttftPercentile(report, 99.0, 1) *
                              1e3,
                          1),
                      TextTable::num(report.p99Ttft * 1e3, 1),
                      TextTable::num(report.sloAttainment, 3),
                      spread});
    }
    table.print();
    std::printf(
        "\nleast-backlog *observes* the budget replica's slower "
        "drain at each arrival event;\ngreedy-steal lets the "
        "Hermes tier drain whatever round-robin strands on the "
        "budget tier,\nslo-steal only when the move beats the "
        "victim's estimated wait; priority-preempt evicts\n"
        "low-priority running work when a high-priority request "
        "would miss its deadline\n(the victim resumes with its KV "
        "retained); long-to-fastest is a custom policy\nwritten "
        "in this example — see README \"Writing a control "
        "policy\"\n");

    // 4. Traces round-trip through CSV for replay.
    const std::string csv = serving::toCsvTrace(workload);
    serving::ScenarioConfig replay;
    replay.process = serving::ArrivalProcess::Replay;
    replay.replayCsv = csv;
    std::printf("replayed %zu requests from CSV\n",
                serving::generateWorkload(replay).size());
    return 0;
}
