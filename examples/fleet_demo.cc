/**
 * @file
 * Walkthrough of the fleet + workload APIs (README "Fleet serving").
 *
 * Builds a heterogeneous fleet — two default replicas running Hermes
 * plus one budget replica (half the DIMM pool) running Hermes-base —
 * generates a bursty scenario, serves it under two router policies,
 * and prints where every request went and how the fleet did.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/fleet.hh"
#include "core/hermes.hh"
#include "core/workload.hh"

using namespace hermes;

int
main()
{
    const auto llm = model::modelByName("OPT-66B");

    // 1. Describe the traffic: a bursty trace, reproducible by seed.
    serving::ScenarioConfig scenario =
        serving::scenarioByName("bursty", /*requests=*/24,
                                /*rate_per_second=*/1.5,
                                /*seed=*/42);
    scenario.prompt = {128, 64, 0.0, 1.0};
    scenario.generate = {16, 8, 0.0, 1.0};
    const auto workload = serving::generateWorkload(scenario);
    std::printf("scenario '%s': %zu requests, first at %.2fs, "
                "last at %.2fs\n",
                scenario.name.c_str(), workload.size(),
                workload.front().arrival,
                workload.back().arrival);

    // 2. Describe the fleet: heterogeneous tiers behind one router.
    fleet::FleetConfig config;
    config.ttftDeadline = 6.0;
    for (int i = 0; i < 2; ++i) {
        fleet::ReplicaConfig replica;
        replica.name = "hermes-" + std::to_string(i);
        replica.system = runtime::platformPreset("default", 6);
        replica.serving.engine = runtime::EngineKind::Hermes;
        replica.serving.maxBatch = 8;
        replica.serving.calibrationTokens = 6;
        config.replicas.push_back(replica);
    }
    {
        fleet::ReplicaConfig replica;
        replica.name = "budget";
        replica.system = runtime::platformPreset("budget", 6);
        replica.serving.engine = runtime::EngineKind::HermesBase;
        replica.serving.maxBatch = 8;
        replica.serving.calibrationTokens = 6;
        config.replicas.push_back(replica);
    }

    // 3. Serve under two policies and compare.
    TextTable table({"policy", "done", "shed", "tok/s",
                     "p99 TTFT (ms)", "SLO att.", "per-replica"});
    for (const auto policy :
         {sched::RouterPolicy::RoundRobin,
          sched::RouterPolicy::LeastOutstandingTokens}) {
        config.policy = policy;
        fleet::FleetSimulator simulator(config, llm);
        const auto report = simulator.run(workload);

        std::string spread;
        for (std::size_t r = 0;
             r < report.replicaReports.size(); ++r) {
            spread += report.replicaNames[r] + ":" +
                      std::to_string(
                          report.replicaReports[r].completed) +
                      " ";
        }
        table.addRow({report.policy,
                      std::to_string(report.completed),
                      std::to_string(report.shed),
                      TextTable::num(report.throughputTps, 2),
                      TextTable::num(report.p99Ttft * 1e3, 1),
                      TextTable::num(report.sloAttainment, 3),
                      spread});
    }
    table.print();
    std::printf("\nleast-tokens sees the budget replica's slower "
                "decode rate and shifts load to the Hermes tier; "
                "round-robin splits evenly regardless\n");

    // 4. Traces round-trip through CSV for replay.
    const std::string csv = serving::toCsvTrace(workload);
    serving::ScenarioConfig replay;
    replay.process = serving::ArrivalProcess::Replay;
    replay.replayCsv = csv;
    std::printf("replayed %zu requests from CSV\n",
                serving::generateWorkload(replay).size());
    return 0;
}
