/**
 * @file
 * Walkthrough of the fleet + workload APIs (README "Fleet serving").
 *
 * Builds a heterogeneous fleet — two default replicas running Hermes
 * plus one budget replica (half the DIMM pool) running Hermes-base —
 * generates a bursty scenario, and serves it on the event-driven
 * co-simulation kernel under estimate-based and feedback router
 * policies, with and without work stealing.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/fleet.hh"
#include "core/hermes.hh"
#include "core/workload.hh"

using namespace hermes;

int
main()
{
    const auto llm = model::modelByName("OPT-66B");

    // 1. Describe the traffic: a bursty trace, reproducible by seed.
    serving::ScenarioConfig scenario =
        serving::scenarioByName("bursty", /*requests=*/36,
                                /*rate_per_second=*/6.0,
                                /*seed=*/42);
    scenario.prompt = {128, 64, 0.0, 1.0};
    scenario.generate = {16, 8, 0.0, 1.0};
    const auto workload = serving::generateWorkload(scenario);
    std::printf("scenario '%s': %zu requests, first at %.2fs, "
                "last at %.2fs\n",
                scenario.name.c_str(), workload.size(),
                workload.front().arrival,
                workload.back().arrival);

    // 2. Describe the fleet: heterogeneous tiers behind one router.
    fleet::FleetConfig config;
    config.ttftDeadline = 6.0;
    for (int i = 0; i < 2; ++i) {
        fleet::ReplicaConfig replica;
        replica.name = "hermes-" + std::to_string(i);
        replica.system = runtime::platformPreset("default", 6);
        replica.serving.engine = runtime::EngineKind::Hermes;
        replica.serving.maxBatch = 4;
        replica.serving.calibrationTokens = 6;
        config.replicas.push_back(replica);
    }
    {
        fleet::ReplicaConfig replica;
        replica.name = "budget";
        replica.system = runtime::platformPreset("budget", 6);
        replica.serving.engine = runtime::EngineKind::HermesBase;
        replica.serving.maxBatch = 4;
        replica.serving.calibrationTokens = 6;
        config.replicas.push_back(replica);
    }

    // 3. Serve on the event kernel under estimate-based and
    //    feedback policies, and once with work stealing: every
    //    placement happens at the arrival event, so the feedback
    //    policies route on the replicas' observed state and the
    //    stealing hook drains queues stranded behind the slow
    //    budget tier.
    TextTable table({"policy", "steal", "done", "shed", "tok/s",
                     "p99 TTFT (ms)", "SLO att.", "per-replica"});
    struct Cell
    {
        sched::RouterPolicy policy;
        bool steal;
    };
    for (const Cell &cell :
         {Cell{sched::RouterPolicy::RoundRobin, false},
          Cell{sched::RouterPolicy::RoundRobin, true},
          Cell{sched::RouterPolicy::LeastOutstandingTokens, false},
          Cell{sched::RouterPolicy::LeastActualBacklog, false}}) {
        config.policy = cell.policy;
        config.workStealing = cell.steal;
        fleet::FleetSimulator simulator(config, llm);
        const auto report = simulator.run(workload);

        std::string spread;
        for (std::size_t r = 0;
             r < report.replicaReports.size(); ++r) {
            spread += report.replicaNames[r] + ":" +
                      std::to_string(
                          report.replicaReports[r].completed) +
                      " ";
        }
        table.addRow({report.policy, cell.steal ? "yes" : "no",
                      std::to_string(report.completed),
                      std::to_string(report.shed),
                      TextTable::num(report.throughputTps, 2),
                      TextTable::num(report.p99Ttft * 1e3, 1),
                      TextTable::num(report.sloAttainment, 3),
                      spread});
    }
    table.print();
    std::printf("\nleast-tokens models the budget replica's slower "
                "drain; least-backlog *observes* it at each arrival "
                "event;\nwork stealing lets the Hermes tier drain "
                "whatever round-robin strands on the budget tier\n");

    // 4. Traces round-trip through CSV for replay.
    const std::string csv = serving::toCsvTrace(workload);
    serving::ScenarioConfig replay;
    replay.process = serving::ArrivalProcess::Replay;
    replay.replayCsv = csv;
    std::printf("replayed %zu requests from CSV\n",
                serving::generateWorkload(replay).size());
    return 0;
}
