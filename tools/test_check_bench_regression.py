#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (stdlib only)."""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import types
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))


def load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression",
        os.path.join(HERE, "check_bench_regression.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


TOOL = load_tool()


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def run_check(baseline, current, tolerance=0.2):
    args = types.SimpleNamespace(
        baseline=baseline, current=current, tolerance=tolerance
    )
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        TOOL.check(args)
    return out.getvalue()


class CheckMode(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.baseline = write_json(
            self.dir.name,
            "baseline.json",
            {
                "bench": "bench_fleet",
                "tiers": {
                    "multiturn-scale": {
                        "tier": "multiturn-scale",
                        "events_per_sec": 1000.0,
                    }
                },
            },
        )

    def current(self, **fields):
        payload = {"tier": "multiturn-scale", "events_per_sec": 990.0}
        payload.update(fields)
        return write_json(self.dir.name, "current.json", payload)

    def test_within_tolerance_passes(self):
        out = run_check(self.baseline, self.current())
        self.assertIn("ok: within tolerance", out)

    def test_regression_fails(self):
        with self.assertRaises(SystemExit) as caught:
            run_check(self.baseline, self.current(events_per_sec=700.0))
        self.assertIn("REGRESSION", str(caught.exception))

    def test_unknown_tier_is_a_note_not_a_failure(self):
        out = run_check(
            self.baseline, self.current(tier="huge-smoke")
        )
        self.assertIn("nothing to compare", out)

    def test_calibration_bound_tier_is_flagged(self):
        out = run_check(
            self.baseline,
            self.current(loop_ms=5.0, calibration_ms=41800.0),
        )
        self.assertIn("calibration-bound", out)
        # Non-fatal: the events/sec gate still runs and passes.
        self.assertIn("ok: within tolerance", out)

    def test_loop_bound_tier_is_not_flagged(self):
        out = run_check(
            self.baseline,
            self.current(loop_ms=100.0, calibration_ms=5.0),
        )
        self.assertNotIn("calibration-bound", out)

    def test_runs_without_timing_fields_are_not_flagged(self):
        out = run_check(self.baseline, self.current())
        self.assertNotIn("calibration-bound", out)


class MergeMode(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def merge(self, out_name, runs, seed_baseline=None):
        args = types.SimpleNamespace(
            merge=os.path.join(self.dir.name, out_name),
            runs=runs,
            seed_baseline=seed_baseline,
        )
        captured = io.StringIO()
        with contextlib.redirect_stdout(captured):
            TOOL.merge(args)
        with open(args.merge, "r", encoding="utf-8") as handle:
            return json.load(handle), captured.getvalue()

    def test_merge_folds_runs_and_carries_prior_tiers(self):
        prior = {
            "bench": "bench_fleet",
            "seed_baseline_events_per_sec": 29011.0,
            "tiers": {
                "scale": {"tier": "scale", "events_per_sec": 4.0e6}
            },
        }
        write_json(self.dir.name, "out.json", prior)
        fresh = write_json(
            self.dir.name,
            "multiturn.json",
            {"tier": "multiturn", "events_per_sec": 4.1e6},
        )
        merged, _ = self.merge("out.json", [fresh])
        self.assertEqual(
            sorted(merged["tiers"]), ["multiturn", "scale"]
        )
        # The untouched tier and the seed pin are carried over.
        self.assertEqual(
            merged["tiers"]["scale"]["events_per_sec"], 4.0e6
        )
        self.assertEqual(
            merged["seed_baseline_events_per_sec"], 29011.0
        )

    def test_merge_flags_calibration_bound_runs(self):
        fresh = write_json(
            self.dir.name,
            "multiturn.json",
            {
                "tier": "multiturn",
                "events_per_sec": 4.1e6,
                "loop_ms": 5.4,
                "calibration_ms": 41800.0,
            },
        )
        _, output = self.merge("out.json", [fresh])
        self.assertIn("calibration-bound", output)


if __name__ == "__main__":
    unittest.main()
