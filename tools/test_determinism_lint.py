#!/usr/bin/env python3
"""Unit tests for determinism_lint.py (stdlib only).

Seeded violation fixtures for every rule of the determinism
contract, the suppression protocol (justified allow honoured,
unjustified or unknown-rule allow rejected), per-path rule scoping,
comment/string masking, and a clean run over the real src/ tree.
"""

import contextlib
import importlib.util
import io
import os
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)


def load_tool():
    spec = importlib.util.spec_from_file_location(
        "determinism_lint",
        os.path.join(HERE, "determinism_lint.py"),
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


TOOL = load_tool()


class LintRunner(unittest.TestCase):
    """Helpers: write fixture files under a fake repo root and run
    the linter's main() against them with the regex engine."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.root = self.dir.name

    def write(self, relpath, text):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path

    def run_lint(self, *extra):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = TOOL.main(["--root", self.root,
                              "--engine", "regex", *extra])
        return code, out.getvalue(), err.getvalue()

    def assert_flags(self, relpath, text, rule):
        self.write(relpath, text)
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1, out)
        self.assertIn("[%s]" % rule, out)

    def assert_clean(self, relpath, text):
        self.write(relpath, text)
        code, out, _err = self.run_lint()
        self.assertEqual(code, 0, out)


class UnorderedIter(LintRunner):
    def test_range_for_over_unordered_type_expression(self):
        self.assert_flags(
            "src/core/foo.cc",
            "void f(const std::unordered_map<int, int> &m) {\n"
            "    for (const auto &[k, v] : m.items()) {}\n"
            "    for (auto &kv : std::unordered_map<int,int>{}) {}\n"
            "}\n",
            "unordered-iter")

    def test_range_for_over_declared_unordered_variable(self):
        self.assert_flags(
            "src/core/foo.cc",
            "std::unordered_map<int, double> cache;\n"
            "void f() {\n"
            "    for (const auto &kv : cache) { use(kv); }\n"
            "}\n",
            "unordered-iter")

    def test_begin_on_declared_unordered_variable(self):
        self.assert_flags(
            "src/sched/bar.cc",
            "std::unordered_set<int> seen;\n"
            "auto it = seen.begin();\n",
            "unordered-iter")

    def test_unordered_lookup_without_iteration_is_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "std::unordered_map<int, double> cache;\n"
            "double f(int k) { return cache.at(k); }\n")

    def test_ordered_map_iteration_is_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "std::map<std::string, int> counters;\n"
            "void f() { for (auto &kv : counters) use(kv); }\n")


class PointerKey(LintRunner):
    def test_pointer_keyed_map(self):
        self.assert_flags(
            "src/runtime/foo.cc",
            "std::map<Replica *, int> backlog;\n",
            "pointer-key")

    def test_pointer_keyed_set_with_const(self):
        self.assert_flags(
            "src/core/foo.hh",
            "std::set<const Request *> inflight;\n",
            "pointer-key")

    def test_value_keyed_map_is_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "std::map<std::uint64_t, Request> table;\n"
            "std::map<std::pair<int, int>, double> cache;\n")


class RawRandom(LintRunner):
    def test_rand_call(self):
        self.assert_flags("src/core/foo.cc",
                          "int f() { return rand() % 6; }\n",
                          "raw-random")

    def test_std_rand_and_srand(self):
        self.assert_flags("src/gpu/foo.cc",
                          "void f() { std::srand(42); }\n",
                          "raw-random")

    def test_random_device(self):
        self.assert_flags("src/model/foo.cc",
                          "std::random_device entropy;\n",
                          "raw-random")

    def test_std_mersenne_twister(self):
        self.assert_flags("src/core/foo.cc",
                          "std::mt19937_64 gen(seed);\n",
                          "raw-random")

    def test_allowed_inside_common_rng(self):
        # The seeded RNG implementation itself may touch <random>.
        self.assert_clean("src/common/rng.hh",
                          "inline std::mt19937 bootstrap(s);\n")

    def test_identifier_containing_rand_is_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "double spread(double x) { return x; }\n"
            "double operand(int i);\n"
            "double y = fleet.operand(3);\n")


class WallClock(LintRunner):
    def test_system_clock(self):
        self.assert_flags(
            "src/core/foo.cc",
            "auto t = std::chrono::system_clock::now();\n",
            "wall-clock")

    def test_time_null(self):
        self.assert_flags("src/sched/foo.cc",
                          "long t = time(NULL);\n",
                          "wall-clock")

    def test_std_time(self):
        self.assert_flags("src/core/foo.cc",
                          "auto t = std::time(nullptr);\n",
                          "wall-clock")

    def test_steady_clock_is_allowed(self):
        # steady_clock only ever bills calibration wall time; it is
        # explicitly outside the ban list.
        self.assert_clean(
            "src/core/foo.cc",
            "auto t0 = std::chrono::steady_clock::now();\n")

    def test_member_named_time_is_clean(self):
        self.assert_clean(
            "src/runtime/foo.cc",
            "double t = event.time();\n"
            "double u = timeline.time(3);\n"
            "double v = sim_time(step);\n")


class EnvRead(LintRunner):
    def test_getenv(self):
        self.assert_flags(
            "src/core/foo.cc",
            "const char *g = getenv(\"HERMES_SEED\");\n",
            "env-read")

    def test_std_getenv(self):
        self.assert_flags("src/dram/foo.cc",
                          "const char *g = std::getenv(\"X\");\n",
                          "env-read")

    def test_locale(self):
        self.assert_flags("src/core/foo.cc",
                          "std::locale::global(std::locale(\"\"));\n",
                          "env-read")


class MutableStatic(LintRunner):
    def test_static_counter_in_core(self):
        self.assert_flags("src/core/foo.cc",
                          "static int counter = 0;\n",
                          "mutable-static")

    def test_function_local_static(self):
        self.assert_flags(
            "src/runtime/foo.cc",
            "int next_id() {\n"
            "    static std::uint64_t id;\n"
            "    return ++id;\n"
            "}\n",
            "mutable-static")

    def test_thread_local(self):
        self.assert_flags("src/sched/foo.cc",
                          "thread_local double scratch[8];\n",
                          "mutable-static")

    def test_static_const_is_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "static const int kTableSize = 64;\n"
            "static constexpr double kEps = 1e-9;\n")

    def test_static_member_function_declaration_is_clean(self):
        self.assert_clean(
            "src/core/foo.hh",
            "struct S {\n"
            "    static StepCosts simulate(Engine &engine,\n"
            "                              int batch);\n"
            "    static void reset(State &state);\n"
            "};\n")

    def test_static_cast_and_assert_are_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "static_assert(sizeof(int) == 4, \"abi\");\n"
            "auto x = static_cast<double>(3);\n")

    def test_rule_scoped_to_hot_layers_only(self):
        # The same mutable static outside core/sched/runtime (e.g.
        # a lazily-built lookup table in gpu/) is out of scope.
        self.assert_clean("src/gpu/foo.cc",
                          "static int counter = 0;\n")


class Suppressions(LintRunner):
    def test_justified_allow_on_same_line(self):
        self.assert_clean(
            "src/core/foo.cc",
            "static int hits = 0; "
            "// lint:allow(mutable-static): debug-only counter, "
            "never read by physics\n")

    def test_justified_allow_on_previous_line(self):
        self.assert_clean(
            "src/core/foo.cc",
            "// lint:allow(mutable-static): guarded by call-once,\n"
            "static int table_built = 0;\n")

    def test_unjustified_allow_is_rejected(self):
        self.write("src/core/foo.cc",
                   "static int hits = 0; "
                   "// lint:allow(mutable-static)\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1, out)
        self.assertIn("[unjustified-suppression]", out)

    def test_allow_for_unknown_rule_is_rejected(self):
        self.write("src/core/foo.cc",
                   "int x = 0; // lint:allow(no-such-rule): because\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1, out)
        self.assertIn("[unknown-rule]", out)

    def test_allow_for_wrong_rule_does_not_waive(self):
        self.write("src/core/foo.cc",
                   "static int hits = 0; "
                   "// lint:allow(raw-random): wrong rule named\n")
        code, out, _err = self.run_lint()
        self.assertEqual(code, 1, out)
        self.assertIn("[mutable-static]", out)


class Masking(LintRunner):
    def test_banned_tokens_in_comments_are_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "// unlike rand() or std::random_device, the seeded\n"
            "/* generator avoids time(NULL) and getenv(\"X\") and\n"
            "   std::chrono::system_clock entirely */\n"
            "int x = 0;\n")

    def test_banned_tokens_in_strings_are_clean(self):
        self.assert_clean(
            "src/core/foo.cc",
            "const char *kHelp = \"never calls rand() or "
            "getenv()\";\n")


class Driver(LintRunner):
    def test_multiple_findings_sorted_and_counted(self):
        self.write("src/core/a.cc",
                   "static int n = 0;\n"
                   "int r = rand();\n")
        code, out, err = self.run_lint()
        self.assertEqual(code, 1)
        lines = [l for l in out.splitlines() if l]
        self.assertEqual(len(lines), 2)
        self.assertIn("a.cc:1:", lines[0])
        self.assertIn("a.cc:2:", lines[1])
        self.assertIn("2 finding(s)", err)

    def test_missing_src_root_is_usage_error(self):
        with self.assertRaises(SystemExit):
            TOOL.collect_files(self.root, [])

    def test_list_rules(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = TOOL.main(["--list-rules"])
        self.assertEqual(code, 0)
        for rule in ("unordered-iter", "pointer-key", "raw-random",
                     "wall-clock", "env-read", "mutable-static"):
            self.assertIn(rule, out.getvalue())


class RealTree(unittest.TestCase):
    def test_real_src_tree_is_clean(self):
        """The committed tree satisfies its own contract.  Any new
        violation fails this test before it ever reaches the golden
        suite."""
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = TOOL.main(["--root", REPO,
                              "--engine", "regex", "--quiet"])
        self.assertEqual(code, 0,
                         "determinism lint found violations:\n%s%s"
                         % (out.getvalue(), err.getvalue()))


if __name__ == "__main__":
    unittest.main(verbosity=2)
