#!/usr/bin/env python3
"""Guard the fleet kernel's events/sec against silent regressions.

Two modes:

  check (default)
      Compare a fresh bench run against the committed baseline and
      fail when events/sec regressed beyond the tolerance:

          check_bench_regression.py --baseline BENCH_fleet.json \
              --current build/BENCH_fleet.json [--tolerance 0.2]

      The current file is the flat JSON one `bench_fleet --json`
      writes; its "tier" field selects which baseline tier to
      compare against (CI runs `--scale --smoke`, so it compares
      the "scale-smoke" tier).

  merge
      Fold one or more fresh runs (one flat JSON per tier) into
      the committed baseline.  Tiers already in the baseline but
      not among the runs are carried over unchanged, so adding a
      new tier does not force re-measuring every other one:

          check_bench_regression.py --merge BENCH_fleet.json \
              scale.json huge.json ... [--seed-baseline 29011]

      `--seed-baseline` pins the pre-optimization measurement the
      perf trajectory is tracked against; omitted, an existing
      baseline's pin is carried over.

Standard library only — CI runs it with a bare python3.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"{path}: {error}")


def flag_calibration_bound(tier, run):
    """Warn when a tier spends more wall-clock calibrating cost
    caches than running the kernel loop: its events/sec then
    measures engine-simulation throughput, not kernel throughput,
    and the tier should probably warm caches or use the interp
    cost model.  Non-fatal — calibration cost is real but tracked
    separately from the loop."""
    loop_ms = run.get("loop_ms")
    calibration_ms = run.get("calibration_ms")
    if loop_ms is None or calibration_ms is None:
        return False
    if float(calibration_ms) <= float(loop_ms):
        return False
    print(
        f"warning: tier {tier} is calibration-bound "
        f"({float(calibration_ms):,.1f} ms calibrating vs "
        f"{float(loop_ms):,.1f} ms in the loop)"
    )
    return True


def check(args):
    current = load(args.current)
    baseline = load(args.baseline)
    tier = current.get("tier")
    if not tier:
        sys.exit(f"{args.current}: no 'tier' field")
    flag_calibration_bound(tier, current)
    tiers = baseline.get("tiers", {})
    pinned = tiers.get(tier)
    if pinned is None:
        print(
            f"note: baseline has no '{tier}' tier "
            f"(tiers: {', '.join(sorted(tiers)) or 'none'}); "
            "nothing to compare"
        )
        return
    now = float(current.get("events_per_sec", 0.0))
    then = float(pinned.get("events_per_sec", 0.0))
    if then <= 0.0:
        sys.exit(f"{args.baseline}: tier '{tier}' pins no "
                 "events_per_sec")
    floor = then * (1.0 - args.tolerance)
    ratio = now / then
    print(
        f"tier {tier}: {now:,.0f} events/s vs pinned "
        f"{then:,.0f} ({ratio:.2f}x, floor {floor:,.0f})"
    )
    if now < floor:
        sys.exit(
            f"REGRESSION: events/sec fell more than "
            f"{args.tolerance:.0%} below the committed baseline — "
            "if the slowdown is intentional, regenerate "
            "BENCH_fleet.json with --merge and commit it"
        )
    print("ok: within tolerance")


def merge(args):
    previous = load(args.merge) if os.path.exists(args.merge) else {}
    merged = {
        "bench": "bench_fleet",
        "tiers": dict(previous.get("tiers", {})),
    }
    if args.seed_baseline is not None:
        merged["seed_baseline_events_per_sec"] = args.seed_baseline
    elif "seed_baseline_events_per_sec" in previous:
        merged["seed_baseline_events_per_sec"] = previous[
            "seed_baseline_events_per_sec"
        ]
    for path in args.runs:
        run = load(path)
        tier = run.get("tier")
        if not tier:
            sys.exit(f"{path}: no 'tier' field")
        flag_calibration_bound(tier, run)
        merged["tiers"][tier] = run
    with open(args.merge, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"{args.merge}: tiers {', '.join(sorted(merged['tiers']))}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--baseline", help="committed BENCH_fleet.json")
    parser.add_argument("--current", help="fresh run to check")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression (default 0.2)",
    )
    parser.add_argument(
        "--merge", metavar="OUT", help="rebuild OUT from per-tier runs"
    )
    parser.add_argument(
        "--seed-baseline",
        type=float,
        default=None,
        help="pin the pre-optimization events/sec in the merged file",
    )
    parser.add_argument("runs", nargs="*", help="per-tier runs to merge")
    args = parser.parse_args()

    if args.merge:
        if not args.runs:
            parser.error("--merge needs at least one run file")
        merge(args)
    elif args.baseline and args.current:
        check(args)
    else:
        parser.error("need --baseline and --current, or --merge")


if __name__ == "__main__":
    main()
