#!/usr/bin/env python3
"""Determinism-contract linter for the hermes-ndp simulator.

The repo's crown-jewel guarantee is bit-identical simulation: golden
tests pin exact metrics, the event kernel is pinned equivalent to the
two-phase path, and calibration-thread counts must never change
physics.  End-to-end golden tests catch a determinism break only
after the offending line lands; this linter rejects the known classes
of nondeterminism statically, at review time.

Enforced rules (see README "Determinism contract"):

  unordered-iter   No iteration over std::unordered_map /
                   std::unordered_set in simulation code.  Hash-table
                   iteration order is implementation-defined and can
                   vary with insertion history, so any physics or
                   report derived from it is not reproducible.
  pointer-key      No pointer-keyed ordered containers
                   (std::map<T*, ...>, std::set<T*>).  Ordered
                   iteration over pointer keys is allocation-order
                   dependent: same inputs, different heap, different
                   traversal.
  raw-random       No rand()/srand()/std::random_device/std::mt19937
                   and friends outside common/rng.hh.  All simulation
                   randomness flows through the seeded xoshiro256**
                   in common/rng.hh; std::random_device is entropy,
                   and <random> distributions are
                   implementation-defined across standard libraries.
  wall-clock       No time()/gettimeofday()/clock_gettime()/
                   std::chrono::system_clock.  Physics runs on the
                   simulator's virtual clock; wall-clock reads leak
                   host state into results.  std::chrono::steady_clock
                   is allowed — it is used only to *bill* calibration
                   wall time, never to steer simulation.
  env-read         No getenv()/setlocale()/std::locale in simulation
                   code.  Environment and locale are host state; a
                   run's output must be a function of its config and
                   seed only.
  mutable-static   No mutable static data (including thread_local) in
                   src/core, src/sched, src/runtime.  Mutable statics
                   are cross-run and cross-thread shared state:
                   order-dependent initialisation and silent coupling
                   between supposedly independent simulations.

Suppressions: a finding is waived by a justified allow comment on the
same line or the line directly above:

    // lint:allow(rule-id): why this specific use is deterministic

The justification is mandatory; a bare lint:allow(rule-id) is itself
an error (rule `unjustified-suppression`), as is an allow naming an
unknown rule (`unknown-rule`).

Engines: `--engine libclang` uses the clang Python bindings for
AST-accurate matching when available; the default `auto` falls back
to the token/regex engine below, which is deliberately conservative
(tracks declared unordered variables, strips comments and string
literals before matching) so it runs anywhere CI runs.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------- rules

RULES = {
    "unordered-iter": "iteration over an unordered container "
                      "(hash order is implementation-defined)",
    "pointer-key": "pointer-keyed ordered container "
                   "(iteration order depends on allocation)",
    "raw-random": "raw randomness outside common/rng.hh "
                  "(use the seeded RNG in common/rng.hh)",
    "wall-clock": "wall-clock read in simulation code "
                  "(physics must use the virtual clock)",
    "env-read": "environment/locale read in simulation code "
                "(results must be a function of config + seed)",
    "mutable-static": "mutable static state in core/sched/runtime "
                      "(order-dependent init, cross-run coupling)",
    "unjustified-suppression": "lint:allow without a justification",
    "unknown-rule": "lint:allow names a rule this linter does not "
                    "have",
}

# Paths (relative, '/'-separated) where raw-random is legitimate: the
# seeded RNG implementation itself.
RNG_ALLOWED_SUFFIXES = ("common/rng.hh",)

# mutable-static applies only to the simulation hot layers.
MUTABLE_STATIC_DIRS = ("core", "sched", "runtime")

ALLOW_RE = re.compile(
    r"//\s*lint:allow\(([A-Za-z0-9_-]+)\)\s*(?::\s*(.*\S))?")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# ------------------------------------------------------ source masking

def mask_code(text):
    """Replace comments and string/char literals with spaces, keeping
    line structure, so rule regexes never match inside either."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "str"
                out.append(" ")
                i += 1
            elif c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # str | chr
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


# ------------------------------------------------------- regex engine

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{(]*?>\s*&?\s*"
    r"(\w+)\s*[;={(]")
UNORDERED_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]*:\s*[^)]*\bunordered_(?:multi)?(?:map|set)\b")
POINTER_KEY_RE = re.compile(
    r"\b(?:std\s*::\s*)(?:multi)?(?:map|set)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
RAW_RANDOM_RE = re.compile(
    r"\bstd\s*::\s*random_device\b|"
    r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
    r"default_random_engine|ranlux\w+|knuth_b)\b|"
    r"\bstd\s*::\s*s?rand\s*\(|"
    r"(?<![\w.>:])s?rand\s*\(")
WALL_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*system_clock\b|"
    r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
    r"\bstd\s*::\s*time\s*\(|"
    r"(?<![\w.>:])time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)")
ENV_READ_RE = re.compile(
    r"\bstd\s*::\s*getenv\s*\(|"
    r"(?<![\w.>:])(?:secure_)?getenv\s*\(|"
    r"\bstd\s*::\s*setlocale\s*\(|"
    r"(?<![\w.>:])setlocale\s*\(|\bstd\s*::\s*locale\b")
# A static that is not const/constexpr/constinit and not a function:
# no '(' before the terminating ';' or '=' (member-function decls and
# static free functions always carry a parameter list).  thread_local
# counts: per-thread state still breaks "same config, same results"
# whenever thread count changes.
MUTABLE_STATIC_RE = re.compile(
    r"(?:^|\s)(?:static\s+thread_local|thread_local\s+static|"
    r"static|thread_local)\s+(?!const\b|constexpr\b|constinit\b)"
    r"[^;=(]*[;=]")
STATIC_ASSERT_RE = re.compile(r"\bstatic_assert\b|\bstatic_cast\b")


def rel_parts(path, root):
    rel = os.path.relpath(os.path.abspath(path),
                          os.path.abspath(root))
    return rel.replace(os.sep, "/")


def rule_applies(rule, relpath):
    """Per-rule path scoping over the '/'-separated relative path."""
    parts = relpath.split("/")
    if rule == "raw-random":
        return not relpath.endswith(RNG_ALLOWED_SUFFIXES)
    if rule == "mutable-static":
        return any(d in parts for d in MUTABLE_STATIC_DIRS)
    return True


def scan_regex(path, relpath, text):
    """Token/regex engine: one pass over the masked source."""
    masked = mask_code(text)
    lines = masked.split("\n")
    findings = []

    # Names of variables/members declared with an unordered type, so
    # `for (x : cache)` and `cache.begin()` are caught even when the
    # type is not spelled at the use site.
    unordered_names = set()
    for match in UNORDERED_DECL_RE.finditer(masked):
        unordered_names.add(match.group(1))
    begin_res = []
    if unordered_names:
        alt = "|".join(sorted(re.escape(n) for n in unordered_names))
        begin_res.append(re.compile(
            r"\b(?:%s)\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(" % alt))
        begin_res.append(re.compile(
            r"\bfor\s*\([^;()]*:\s*(?:\*?\s*)?(?:%s)\b" % alt))

    per_line = [
        ("unordered-iter", UNORDERED_RANGE_FOR_RE),
        ("pointer-key", POINTER_KEY_RE),
        ("raw-random", RAW_RANDOM_RE),
        ("wall-clock", WALL_CLOCK_RE),
        ("env-read", ENV_READ_RE),
    ]
    for lineno, line in enumerate(lines, 1):
        for rule, regex in per_line:
            if rule_applies(rule, relpath) and regex.search(line):
                findings.append(Finding(path, lineno, rule,
                                        RULES[rule]))
        for regex in begin_res:
            if regex.search(line):
                findings.append(Finding(path, lineno,
                                        "unordered-iter",
                                        RULES["unordered-iter"]))
        if (rule_applies("mutable-static", relpath)
                and MUTABLE_STATIC_RE.search(line)
                and not STATIC_ASSERT_RE.search(line)):
            findings.append(Finding(path, lineno, "mutable-static",
                                    RULES["mutable-static"]))
    return findings


# ----------------------------------------------------- libclang engine

def scan_libclang(path, relpath, text, index):
    """AST engine over the clang Python bindings.  Covers the rules
    that benefit from type information; the purely lexical rules
    (wall-clock, env-read, raw-random) reuse the regex matchers on
    the masked source, which is exactly as accurate and much
    cheaper."""
    import clang.cindex as ci

    tu = index.parse(path, args=["-std=c++20", "-Isrc"])
    findings = []

    def type_is_unordered(t):
        return "unordered_map" in t.spelling \
            or "unordered_set" in t.spelling

    def visit(cursor):
        if cursor.location.file and \
                cursor.location.file.name != path:
            return
        kind = cursor.kind
        if kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(cursor.get_children())
            if children and type_is_unordered(children[-2].type):
                findings.append(Finding(
                    path, cursor.location.line, "unordered-iter",
                    RULES["unordered-iter"]))
        elif kind == ci.CursorKind.VAR_DECL:
            storage = cursor.storage_class
            if storage == ci.StorageClass.STATIC and \
                    rule_applies("mutable-static", relpath) and \
                    not cursor.type.is_const_qualified():
                findings.append(Finding(
                    path, cursor.location.line, "mutable-static",
                    RULES["mutable-static"]))
            spelling = cursor.type.spelling
            if re.search(r"\b(?:map|set)\s*<[^,>]*\*", spelling) and \
                    "unordered" not in spelling:
                findings.append(Finding(
                    path, cursor.location.line, "pointer-key",
                    RULES["pointer-key"]))
        for child in cursor.get_children():
            visit(child)

    visit(tu.cursor)

    masked = mask_code(text)
    for lineno, line in enumerate(masked.split("\n"), 1):
        for rule, regex in (("raw-random", RAW_RANDOM_RE),
                            ("wall-clock", WALL_CLOCK_RE),
                            ("env-read", ENV_READ_RE)):
            if rule_applies(rule, relpath) and regex.search(line):
                findings.append(Finding(path, lineno, rule,
                                        RULES[rule]))
    return findings


# -------------------------------------------------------- suppressions

def apply_suppressions(findings, path, text):
    """Honour justified `// lint:allow(rule): why` comments on the
    finding's line or the line above; flag unjustified or unknown
    allows as findings in their own right."""
    raw_lines = text.split("\n")
    allows = {}  # line number -> (rule, justified)
    result = []
    for lineno, line in enumerate(raw_lines, 1):
        match = ALLOW_RE.search(line)
        if not match:
            continue
        rule, why = match.group(1), match.group(2)
        if rule not in RULES or rule in ("unjustified-suppression",
                                         "unknown-rule"):
            result.append(Finding(
                path, lineno, "unknown-rule",
                "lint:allow(%s): %s" % (rule, RULES["unknown-rule"])))
            continue
        if not why:
            result.append(Finding(
                path, lineno, "unjustified-suppression",
                "lint:allow(%s) needs a ': <justification>'"
                % rule))
            continue
        allows[lineno] = rule

    for finding in findings:
        waived = False
        for at in (finding.line, finding.line - 1):
            if allows.get(at) == finding.rule:
                waived = True
                break
        if not waived:
            result.append(finding)
    result.sort(key=lambda f: (f.path, f.line, f.rule))
    return result


# --------------------------------------------------------------- driver

def lint_file(path, root, engine, index):
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    relpath = rel_parts(path, root)
    if engine == "libclang":
        findings = scan_libclang(path, relpath, text, index)
    else:
        findings = scan_regex(path, relpath, text)
    return apply_suppressions(findings, path, text)


def collect_files(root, paths):
    if paths:
        files = []
        for p in paths:
            if os.path.isdir(p):
                for base, _dirs, names in sorted(os.walk(p)):
                    files.extend(os.path.join(base, n)
                                 for n in sorted(names)
                                 if n.endswith((".hh", ".cc", ".h",
                                                ".cpp", ".hpp")))
            else:
                files.append(p)
        return sorted(files)
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        raise SystemExit(
            "determinism_lint: no src/ under root %r "
            "(use --root or pass paths)" % root)
    return collect_files(root, [src])


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="statically enforce the determinism contract")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: <root>/src)")
    parser.add_argument("--root", default=None,
                        help="repo root used for rule path scoping "
                             "(default: parent of this script)")
    parser.add_argument("--engine",
                        choices=("auto", "regex", "libclang"),
                        default="auto")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the clean-run summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, text in sorted(RULES.items()):
            print("%-24s %s" % (rule, text))
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    engine = args.engine
    index = None
    if engine in ("auto", "libclang"):
        try:
            import clang.cindex as ci
            index = ci.Index.create()
            engine = "libclang"
        except Exception as error:  # ImportError, missing libclang.so
            if args.engine == "libclang":
                print("determinism_lint: libclang unavailable: %s"
                      % error, file=sys.stderr)
                return 2
            engine = "regex"

    files = collect_files(root, args.paths)
    all_findings = []
    for path in files:
        all_findings.extend(lint_file(path, root, engine, index))

    for finding in all_findings:
        print(finding)
    if all_findings:
        print("determinism_lint: %d finding(s) in %d file(s) "
              "[engine=%s]"
              % (len(all_findings),
                 len({f.path for f in all_findings}), engine),
              file=sys.stderr)
        return 1
    if not args.quiet:
        print("determinism_lint: clean (%d files) [engine=%s]"
              % (len(files), engine))
    return 0


if __name__ == "__main__":
    sys.exit(main())
