/**
 * @file
 * Fleet request router: pick a replica for each arriving request.
 *
 * The router sees arrivals in time order and holds a lightweight
 * queueing model of every replica (batch slots with estimated
 * free-times, calibrated prefill latency and per-slot decode rate).
 * Each decision commits the request to the chosen replica's model, so
 * later decisions see the backlog earlier ones created — an online
 * router, not an offline partitioner.
 *
 * Policies:
 *  - RoundRobin: static interleave, ignores state;
 *  - JoinShortestQueue: fewest outstanding requests at arrival;
 *  - LeastOutstandingTokens: smallest estimated backlog measured in
 *    tokens, which discriminates between slow and fast replicas in a
 *    heterogeneous fleet;
 *  - SloAware: smallest estimated TTFT, and sheds (rejects at the
 *    door) requests whose best achievable TTFT estimate already
 *    misses the deadline — protecting the latency of admitted work;
 *  - TrueJsq / LeastActualBacklog: the feedback twins of
 *    JoinShortestQueue / LeastOutstandingTokens.  Instead of the
 *    calibrated estimate they rank replicas by *observed* state
 *    (actual occupancy / actual token backlog), which the fleet's
 *    event kernel samples at the arrival instant and passes into
 *    route().  Without observations (the offline two-phase path)
 *    they degrade to their estimate twins.
 *
 * The model is an estimate: the replica's own ServingSimulator run
 * remains the ground truth for timing.  Estimates only decide *where*
 * a request goes (and, for SloAware, *whether* it is admitted); the
 * feedback policies replace the estimate with ground truth at the
 * decision instant, closing the loop the estimate approximates.
 *
 * Since the control-plane redesign (sched/control_policy.hh) the
 * Router is the calibrated *estimator* behind the built-in routing
 * ControlPolicy objects; configuring a fleet by RouterPolicy enum
 * (FleetConfig::policy) is deprecated-but-stable — prefer
 * `controlPolicyByName` / `FleetConfig::control`.
 *
 * Calibration probes go through ServingSimulator's cost surface, so
 * the router automatically shares whatever cost model the replica is
 * configured with (ServingConfig::costModel): under the interpolated
 * model its estimates are built from the same anchor surface the
 * kernel serves steps from, and the shared per-cache-group cost
 * cache means probing N replicas of one group costs one calibration.
 */

#ifndef HERMES_SCHED_ROUTER_HH
#define HERMES_SCHED_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace hermes::sched {

/** Replica-selection policy of the fleet router. */
enum class RouterPolicy
{
    RoundRobin,
    JoinShortestQueue,
    LeastOutstandingTokens,
    SloAware,
    TrueJsq,
    LeastActualBacklog,
};

/**
 * Display name ("round-robin", "jsq", "least-tokens", "slo-aware",
 * "true-jsq", "least-backlog").
 */
std::string routerPolicyName(RouterPolicy policy);

/** All policies, in the order benches sweep them. */
std::vector<RouterPolicy> allRouterPolicies();

/** Parse a display name back to a policy; throws on unknown names. */
RouterPolicy routerPolicyByName(const std::string &name);

/** Whether a policy ranks replicas by observed (not estimated) state. */
bool routerPolicyNeedsObservations(RouterPolicy policy);

/**
 * Ground-truth replica state sampled at a routing instant by the
 * fleet event kernel (core/event_sim.hh): what the estimate-based
 * policies approximate, the feedback policies consume directly.
 */
struct ReplicaObservation
{
    /** Requests on the replica: running + queued + undecided. */
    std::uint32_t outstanding = 0;

    /** Tokens still owed to requests on the replica. */
    double backlogTokens = 0.0;
};

/** The router's calibrated view of one replica. */
struct ReplicaModel
{
    /** Continuous-batching slots (concurrent decodes). */
    std::uint32_t maxBatch = 16;

    /** Calibrated prefill latency for a typical prompt. */
    Seconds prefillSeconds = 0.05;

    /**
     * Calibrated decode throughput of ONE batch slot when the batch
     * is full (aggregate tokens/s divided by maxBatch).
     */
    double slotTokensPerSecond = 10.0;

    /**
     * Calibrated prefill throughput (prompt tokens per second at
     * the full-batch joint prefill): typical prompt length over
     * prefillSeconds.  What converts a KV-resident prefix into the
     * prefill seconds it saves — prefill is typically an order of
     * magnitude cheaper per token than decode, which is exactly why
     * affinity scores must not compare cached tokens against
     * backlog tokens 1:1.
     */
    double prefillTokensPerSecond = 2560.0;

    /**
     * Median generate length of the calibration workload, in
     * tokens.  Lets capacity planners amortize the joint prefill
     * over a request's decode phase: a full admission group pays
     * prefillSeconds once before emitting maxBatch tokens per
     * decode step, so the *sustained* drain rate is
     * maxBatch * G / (prefillSeconds + G / slotTokensPerSecond),
     * far below slotTokensPerSecond * maxBatch on prefill-heavy
     * workloads.  Zero means uncalibrated — consumers fall back to
     * the raw full-batch step rate.
     */
    double typicalGenerateTokens = 0.0;
};

/** One routing decision. */
struct RouteDecision
{
    /** Chosen replica, or < 0 when the request was shed (SloAware). */
    int replica = -1;

    /** Estimated time-to-first-token on the chosen replica. */
    Seconds estimatedTtft = 0.0;
};

/**
 * Online router over a fixed replica set.  Feed arrivals in
 * non-decreasing arrival order; every accepted request updates the
 * internal backlog estimate of its replica.
 */
class Router
{
  public:
    /**
     * @param ttft_deadline  SloAware shedding threshold; ignored by
     *                       the other policies (they never shed).
     */
    Router(RouterPolicy policy, std::vector<ReplicaModel> replicas,
           Seconds ttft_deadline = 2.0);

    /**
     * Route one request arriving at `arrival`.  `observed`, when
     * provided, carries one ground-truth ReplicaObservation per
     * replica, sampled at this instant; the feedback policies
     * (TrueJsq, LeastActualBacklog) rank by it and every other
     * policy ignores it.  A feedback policy routed without
     * observations falls back to its estimate twin.
     *
     * `eligible`, when provided, restricts every ranking to the
     * replicas whose entry is non-zero — how the control plane
     * masks replicas that exist but are not routable (still
     * provisioning or warming after an autoscaler spawn, draining,
     * retired).  With no eligible replica at all the request is
     * shed (replica < 0).  Passing nullptr (or an all-true mask)
     * reproduces the unmasked decision sequence bit for bit.
     */
    RouteDecision
    route(Seconds arrival, std::uint32_t generate_tokens,
          const std::vector<ReplicaObservation> *observed = nullptr,
          const std::vector<char> *eligible = nullptr);

    /**
     * Append a replica to the routed set with an empty queueing
     * model — how the control plane keeps the router in sync when
     * an autoscaler spawns a replica mid-run.  Existing replicas'
     * committed backlogs are untouched, so decisions over the old
     * set stay bit-identical.
     */
    void addReplica(const ReplicaModel &model);

    std::uint32_t replicaCount() const
    {
        return static_cast<std::uint32_t>(replicas_.size());
    }

    /** Outstanding (routed, not estimated-finished) requests. */
    std::uint32_t outstandingRequests(std::uint32_t replica,
                                      Seconds now) const;

    /**
     * Estimated backlog of a replica in tokens at `now`: committed
     * generate-tokens not yet produced, draining linearly over each
     * request's estimated decode interval.  Deliberately NOT
     * speed-normalized — least-outstanding-tokens measures work
     * queued, and slower replicas shed load by draining it slower.
     */
    double outstandingTokens(std::uint32_t replica,
                             Seconds now) const;

  private:
    struct Commitment
    {
        Seconds decodeStart = 0.0; ///< Prefill done, tokens flowing.
        Seconds finish = 0.0;
        double tokens = 0.0;
    };

    struct SlotState
    {
        /** Per batch slot: estimated instant the slot frees. */
        std::vector<Seconds> freeAt;

        /** Routed requests still draining (pruned lazily). */
        std::vector<Commitment> commitments;

        /** Start of the last joint-prefill window charged. */
        Seconds lastPrefillStart = -1.0;

        /** Requests sharing that window. */
        std::uint32_t groupSize = 0;

        /**
         * Slots that were free when the window formed: the serving
         * simulator admits a group only into free batch slots, so a
         * cold replica groups up to maxBatch while a backlogged one
         * (slots freeing one by one) prefills almost per-request.
         */
        std::uint32_t groupCapacity = 0;
    };

    /** Whether a request arriving now would share the last window. */
    bool joinsGroup(const SlotState &state, Seconds arrival) const
    {
        return arrival <= state.lastPrefillStart &&
               state.groupSize < state.groupCapacity;
    }

    /** Estimated TTFT if `arrival` were routed to `replica` now. */
    Seconds estimateTtft(std::uint32_t replica, Seconds arrival) const;

    /** Commit a request to a replica's backlog model. */
    void commit(std::uint32_t replica, Seconds arrival,
                std::uint32_t generate_tokens);

    RouterPolicy policy_;
    std::vector<ReplicaModel> replicas_;
    std::vector<SlotState> state_;
    Seconds deadline_;
    std::uint64_t routed_ = 0; ///< RoundRobin cursor.
};

} // namespace hermes::sched

#endif // HERMES_SCHED_ROUTER_HH
