/**
 * @file
 * The lightweight online activation predictor (Sec. IV-C1, Fig. 7).
 *
 * Token-wise prediction: a 4-bit saturating state per neuron,
 * initialized from prefill activation frequency (16 stages), bumped
 * +s on activation and -1 on inactivity each token — a branch-
 * predictor-style exploitation of the temporal locality of Fig. 4a.
 *
 * Layer-wise prediction: an offline-sampled table of the top-2
 * correlated neurons in the preceding block; the number of active
 * parents s2 boosts the decision.
 *
 * Decision rule: predict active iff  s1 + lambda*s2 >= T  (the paper
 * prints a strict ">" with T = 15, which would exclude even fully
 * saturated neurons with idle parents; we use ">=" so a state-15
 * neuron predicts active on token-wise evidence alone).
 *
 * Storage matches the paper's accounting: 4 bits per neuron of state
 * (232 KB for LLaMA-7B) and two 8-bit rank-relative parent offsets
 * per neuron, keeping the whole predictor under ~1 MB per model.
 */

#ifndef HERMES_SCHED_PREDICTOR_HH
#define HERMES_SCHED_PREDICTOR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "sparsity/trace.hh"

namespace hermes::sched {

/** Tunable predictor constants (paper values as defaults). */
struct PredictorConfig
{
    std::uint32_t activateStep = 4;  ///< s: state bump on activation.
    std::uint32_t decayStep = 1;     ///< State decay when inactive.
    std::uint32_t lambda = 6;        ///< Layer-correlation weight.
    std::uint32_t threshold = 15;    ///< T: decision threshold.
    std::uint32_t hotThreshold = 10; ///< Th: hot-neuron cut (IV-C2).
    std::uint32_t maxState = 15;     ///< 4-bit saturating ceiling.
};

/** Aggregate prediction-quality metrics. */
struct PredictionMetrics
{
    std::uint64_t truePositive = 0;
    std::uint64_t trueNegative = 0;
    std::uint64_t falsePositive = 0;
    std::uint64_t falseNegative = 0;

    void
    tally(bool predicted, bool actual)
    {
        if (predicted && actual)
            ++truePositive;
        else if (predicted && !actual)
            ++falsePositive;
        else if (!predicted && actual)
            ++falseNegative;
        else
            ++trueNegative;
    }

    std::uint64_t
    total() const
    {
        return truePositive + trueNegative + falsePositive +
               falseNegative;
    }
    double
    accuracy() const
    {
        return total() == 0
                   ? 0.0
                   : static_cast<double>(truePositive + trueNegative) /
                         static_cast<double>(total());
    }
    double
    recall() const
    {
        const auto actual = truePositive + falseNegative;
        return actual == 0 ? 1.0
                           : static_cast<double>(truePositive) /
                                 static_cast<double>(actual);
    }
    double
    precision() const
    {
        const auto predicted = truePositive + falsePositive;
        return predicted == 0 ? 1.0
                              : static_cast<double>(truePositive) /
                                    static_cast<double>(predicted);
    }
};

/** Predictor state for one block of one layer. */
class BlockPredictor
{
  public:
    BlockPredictor(std::uint32_t neurons, PredictorConfig config);

    /**
     * Initialize states from prefill activation frequency, bucketed
     * into the 16 state stages (Fig. 7a).
     */
    void initFromFrequency(const std::vector<double> &frequency);

    /** Install the offline-sampled correlation table. */
    void setCorrelation(std::vector<std::uint32_t> parent1,
                        std::vector<std::uint32_t> parent2);

    /**
     * Predict the activation mask for the next token.
     *
     * @param parent_mask  Actual activations of the preceding block
     *                     (already computed when this block is
     *                     scheduled), or nullptr for the first block.
     * @param out          Output mask (resized to the block).
     */
    void predict(const std::vector<std::uint8_t> *parent_mask,
                 std::vector<std::uint8_t> &out) const;

    /** FSM update with the token's actual activations (Fig. 7a). */
    void update(const std::vector<std::uint8_t> &actual);

    /**
     * Hot-scores for the online mapper (Fig. 13 ablation hooks):
     * s1 taken live (token-wise) or frozen at initialization, plus
     * the lambda-weighted active-parent bonus (layer-wise).
     *
     * @param parent_mask Current activations of the parent block, or
     *                    nullptr to skip the layer term.
     * @param use_token   Use the live FSM state (else the initial).
     * @param use_layer   Add the correlated-parent bonus.
     */
    void hotScores(const std::vector<std::uint8_t> *parent_mask,
                   bool use_token, bool use_layer,
                   std::vector<std::uint32_t> &out) const;

    std::uint8_t state(std::uint32_t i) const { return states_[i]; }

    /** Hot-neuron classification for the online mapper (IV-C2). */
    bool
    isHot(std::uint32_t i) const
    {
        return states_[i] >= config_.hotThreshold;
    }

    std::uint32_t
    neurons() const
    {
        return static_cast<std::uint32_t>(states_.size());
    }
    const PredictorConfig &config() const { return config_; }

    /** 4-bit packed state-table footprint. */
    Bytes stateTableBytes() const { return (states_.size() + 1) / 2; }

    /**
     * Correlation-table footprint: parents are offline-sampled from
     * a rank-neighborhood pool of 8 (sampleCorrelation), so each of
     * the two parents encodes as a 4-bit rank-relative offset —
     * one byte per neuron.
     */
    Bytes correlationTableBytes() const { return states_.size(); }

  private:
    PredictorConfig config_;
    std::vector<std::uint8_t> states_;
    std::vector<std::uint8_t> initialStates_;
    std::vector<std::uint32_t> parent1_;
    std::vector<std::uint32_t> parent2_;
};

/**
 * Whole-model predictor: one BlockPredictor per block, chained so
 * each block's prediction consumes the previous block's actuals.
 */
class ModelPredictor
{
  public:
    ModelPredictor(const model::LlmConfig &llm, PredictorConfig config);

    /**
     * Install state and correlation tables from a prefill profile:
     * runs `prefill_tokens` tokens of the trace, gathers frequencies,
     * and wires correlations from the trace's offline tables.
     */
    void calibrate(sparsity::ActivationTrace &trace,
                   std::uint32_t prefill_tokens);

    BlockPredictor &attn(std::uint32_t layer);
    BlockPredictor &mlp(std::uint32_t layer);

    /**
     * Predict all blocks for the current token of the trace, then
     * update the FSMs with the trace's actuals and tally metrics.
     * Masks are written into the caller-provided buffers.
     */
    void stepToken(const sparsity::ActivationTrace &trace,
                   std::vector<std::vector<std::uint8_t>> &attn_masks,
                   std::vector<std::vector<std::uint8_t>> &mlp_masks);

    const PredictionMetrics &metrics() const { return metrics_; }
    void resetMetrics() { metrics_ = PredictionMetrics{}; }

    /** Whole-model predictor footprint (state + correlation tables). */
    Bytes totalBytes() const;
    Bytes stateTableBytes() const;

  private:
    model::LlmConfig llm_;
    PredictorConfig config_;
    std::vector<BlockPredictor> attn_;
    std::vector<BlockPredictor> mlp_;
    PredictionMetrics metrics_;
};

/**
 * Offline correlation sampling (Sec. IV-C1): estimate the top-2
 * correlated parents of each child neuron by counting co-activations
 * over `tokens` trace tokens, searching a rank-neighborhood candidate
 * pool.  Returns {parent1, parent2} for the child block.
 */
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
sampleCorrelation(sparsity::ActivationTrace &trace,
                  std::uint32_t child_layer, bool child_is_mlp,
                  std::uint32_t tokens, std::uint32_t pool = 8);

} // namespace hermes::sched

#endif // HERMES_SCHED_PREDICTOR_HH
