/**
 * @file
 * Online hot/cold neuron adjustment (Sec. IV-C2, Fig. 8a).
 *
 * All neurons live in the DIMMs; the GPU holds copies of the hot set.
 * Each token, neurons whose predictor state crosses Th are promoted
 * (copied DIMM->GPU over PCIe, overlapped with the projection
 * computation) and the lowest-state residents are overwritten, so a
 * swap costs exactly one upload and no download.
 */

#ifndef HERMES_SCHED_MAPPER_HH
#define HERMES_SCHED_MAPPER_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "sched/ilp_partition.hh"
#include "sched/placement.hh"
#include "sched/predictor.hh"

namespace hermes::sched {

/** Outcome of one block's online adjustment. */
struct AdjustmentResult
{
    std::uint64_t promotions = 0; ///< Neurons copied to the GPU.
    std::uint64_t evictions = 0;  ///< Residents overwritten.
    Bytes pcieBytes = 0;          ///< Upload volume (promotions).
};

/** Swap policy of the online mapper. */
struct AdjustmentPolicy
{
    /** Score at or above which a neuron counts as hot (Th). */
    std::uint32_t hotThreshold = 10;

    /**
     * Minimum score advantage a promotion must have over the evicted
     * resident; suppresses churn on noisy scores.
     */
    std::uint32_t hysteresis = 2;

    /** Swap-rate cap per block per token (bounds PCIe pressure). */
    std::uint32_t maxSwaps = 64;
};

/** Applies offline partitions and performs online swaps. */
class NeuronMapper
{
  public:
    /**
     * Install an offline partition into a placement.  Block order in
     * the partition problem must be (attn0, mlp0, attn1, mlp1, ...).
     */
    static void applyPartition(ModelPlacement &placement,
                               const PartitionAssignment &assignment);

    /**
     * Swap-based online adjustment of one block: promote hot
     * non-residents while their score exceeds that of the coldest
     * residents by the hysteresis margin (keeping the block's GPU
     * quota constant).
     *
     * @param scores Per-neuron hot score
     *               (BlockPredictor::hotScores).
     * @return Promotion/eviction counts and PCIe upload volume.
     */
    static AdjustmentResult
    adjustBlock(BlockPlacement &placement,
                const std::vector<std::uint32_t> &scores,
                Bytes neuron_bytes,
                AdjustmentPolicy policy = AdjustmentPolicy{});
};

} // namespace hermes::sched

#endif // HERMES_SCHED_MAPPER_HH
