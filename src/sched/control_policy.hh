/**
 * @file
 * Composable fleet control plane: event-subscribed policy objects.
 *
 * Before this API every control behavior of the fleet was
 * hard-wired: routing was a six-value RouterPolicy enum threaded
 * through the event kernel, work stealing a bool with one fixed
 * occupancy-greedy heuristic, and each new behavior (SLO-aware
 * stealing, autoscaling, preemption) would have needed another enum
 * value or flag inside FleetSimulator::runEventDriven.  The control
 * plane inverts that: the kernel owns *physics* (the virtual clock,
 * replica boundaries, report bookkeeping) and a ControlPolicy owns
 * *decisions*.  A policy subscribes to kernel events —
 *
 *   onArrival          a request reached the fleet; place or shed it
 *   onPrefillComplete  a replica finished a joint admission prefill
 *   onStepComplete     a replica finished one decode step
 *   onReplicaIdle      a replica ran out of work at a boundary
 *   onReplicaDead      a replica's capability probe failed
 *   onTick             a periodic heartbeat (tickPeriod() > 0)
 *
 * — observes ground truth through a read-only FleetView, and acts
 * through a capability-checked FleetActions surface (routeTo, shed,
 * steal, the request-lifecycle verbs preempt / migrate, and the
 * autoscaling verbs spawnReplica / requestDrain).  Illegal
 * actions — routing twice, routing to a draining replica, stealing
 * when the victim has only running requests, preempting a queued or
 * unknown request, migrating to a draining or dead replica — throw
 * std::logic_error instead of corrupting kernel state.
 *
 * The wants() bitmask is both a subscription list and a performance
 * contract: the kernel skips the O(replicas) observation gather at
 * arrival events unless kObservations is declared, and never calls
 * hooks the policy did not subscribe to.
 *
 * All six legacy RouterPolicy behaviors and the occupancy-greedy
 * stealing heuristic are built-in ControlPolicy implementations
 * behind a name registry (controlPolicyByName, mirroring
 * engineKindByName); the old FleetConfig enum/bool path is a thin
 * adapter over them and stays bit-identical (pinned by the golden
 * and event-vs-two-phase equivalence tests).  The first policy the
 * old surface could not express is SloStealPolicy ("slo-steal"):
 * steal only when the thief's estimated TTFT for the stolen request
 * beats the victim's.
 */

#ifndef HERMES_SCHED_CONTROL_POLICY_HH
#define HERMES_SCHED_CONTROL_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "core/serving.hh"
#include "sched/router.hh"

namespace hermes::sched {

/**
 * Where a replica is in its runtime lifecycle.  Replicas configured
 * up front are born Active; replicas spawned mid-run by
 * FleetActions::spawnReplica walk the whole machine:
 *
 *   Provisioning → Warming → Active → Draining → Retired
 *
 * Provisioning models the time to stand the instance up (container
 * pull, model load — ReplicaSpec::provisionSeconds); Warming replays
 * the batch-ramp warm-up every pre-configured replica pays during
 * calibration, so a spawned replica's cost surface is hot before it
 * serves.  Only Active replicas are routable (routeTo, steal-into,
 * migrate-into all throw otherwise).  Draining replicas finish or
 * hand off what they hold; Retired replicas have stopped their
 * clock — they accrue no further active seconds (KernelStats).
 */
enum class ReplicaLifecycle : std::uint8_t
{
    Provisioning = 0,
    Warming = 1,
    Active = 2,
    Draining = 3,
    Retired = 4,
};

/** Display name ("provisioning", "warming", "active", ...). */
std::string replicaLifecycleName(ReplicaLifecycle lifecycle);

/**
 * Everything needed to stand up one replica mid-run: the hardware
 * system, the serving configuration, and the modeled provisioning
 * latency paid before warm-up begins.  A scaler typically clones an
 * existing replica's spec (FleetView::replicaSpec) rather than
 * inventing one, so the spawned replica joins an existing cost-cache
 * group instead of paying a full cold calibration.
 */
struct ReplicaSpec
{
    /** Report name; "" derives "s<index>" from the spawn order. */
    std::string name;

    runtime::SystemConfig system{};
    serving::ServingConfig serving{};

    /** Modeled instance stand-up time before warm-up starts. */
    Seconds provisionSeconds = 0.5;
};

/**
 * Read-only ground truth the kernel exposes to policies, per
 * replica.  Implemented by the fleet kernel; probes are sampled
 * live at the instant of the hook call.
 */
class FleetView
{
  public:
    virtual ~FleetView() = default;

    virtual std::uint32_t replicaCount() const = 0;

    /** The router-calibrated queueing model of a replica. */
    virtual const ReplicaModel &model(std::uint32_t replica) const = 0;

    /** Continuous-batching slot count of a replica. */
    virtual std::uint32_t maxBatch(std::uint32_t replica) const = 0;

    /** Whether a prefill or decode step is in flight right now. */
    virtual bool busy(std::uint32_t replica) const = 0;

    /** Capability probe ran and passed (replica can serve). */
    virtual bool knownServable(std::uint32_t replica) const = 0;

    /** Capability probe ran and failed (replica is dead). */
    virtual bool knownDead(std::uint32_t replica) const = 0;

    /** A drain was requested; the replica accepts no new routes. */
    virtual bool draining(std::uint32_t replica) const = 0;

    /** Lifecycle state (spawned replicas walk the whole machine). */
    virtual ReplicaLifecycle
    lifecycle(std::uint32_t replica) const = 0;

    /**
     * The spec `replica` was built from — what a scaler clones to
     * spawn a compatible sibling (same cost-cache group, no cold
     * calibration).
     */
    virtual ReplicaSpec replicaSpec(std::uint32_t replica) const = 0;

    /** Requests queued but not yet in the running batch. */
    virtual std::uint32_t queuedCount(std::uint32_t replica) const = 0;

    /** Requests on the replica: running + queued + undecided. */
    virtual std::uint32_t
    observedOutstanding(std::uint32_t replica) const = 0;

    /** Tokens still owed to requests on the replica. */
    virtual double
    observedBacklogTokens(std::uint32_t replica) const = 0;

    /**
     * The replica's running batch — ids, priorities, ages, progress
     * — sampled live.  What a preemption policy ranks victims by.
     */
    virtual std::vector<serving::RequestInfo>
    runningRequests(std::uint32_t replica) const = 0;

    /** The replica's queued requests, admission order. */
    virtual std::vector<serving::RequestInfo>
    queuedRequests(std::uint32_t replica) const = 0;

    /** Lifecycle state of request `id` on `replica`. */
    virtual serving::RequestState
    requestState(std::uint32_t replica, std::uint64_t id) const = 0;

    /**
     * KV-cache tokens `replica` still holds for `session` (0 when
     * nothing is resident — never cached, or evicted under KV
     * memory pressure).  What a KV-affinity router scores sticky
     * placements by: a resident prefix is prompt prefill the
     * follow-up turn does not pay again.
     */
    virtual std::uint64_t
    cachedSessionTokens(std::uint32_t replica,
                        std::uint64_t session) const = 0;

    /** The TTFT service-level objective of this run. */
    virtual Seconds ttftDeadline() const = 0;
};

/**
 * The capability-checked action surface.  Implemented by the fleet
 * kernel; every call is validated against the current hook context
 * and the fleet's state, and an illegal call throws
 * std::logic_error (never corrupts kernel state):
 *
 *  - routeTo / shed: only inside onArrival, exactly one decision
 *    per arrival; routing to a draining or out-of-range replica
 *    throws;
 *  - steal: thief must differ from the victim, be known servable,
 *    Active, and the victim must hold queued (never running)
 *    requests — asking to steal from a victim whose requests are
 *    all running throws;
 *  - spawnReplica / requestDrain: the autoscaling verbs.  spawnReplica
 *    (capability-gated on Wants::kSpawn) stands up a new replica
 *    mid-run with real physics: it pays the spec's provisioning
 *    latency, then replays the batch-ramp warm-up on the virtual
 *    clock, and only then goes Active and routable.  requestDrain
 *    walks a replica to Draining; compose with "drain-migrate" to
 *    evacuate its work, and the kernel retires it (stopping its
 *    active-seconds clock) once it holds nothing.
 *  - requestSpawn: the legacy intent counter — records the wish in
 *    KernelStats without physics.  Kept for observability;
 *    policies that want an actual replica call spawnReplica.
 */
class FleetActions
{
  public:
    virtual ~FleetActions() = default;

    /** Place the current arrival on `replica` (onArrival only). */
    virtual void routeTo(std::uint32_t replica) = 0;

    /** Reject the current arrival at the door (onArrival only). */
    virtual void shed() = 0;

    /**
     * Move up to `max_count` queued requests from `victim` to
     * `thief` (newest arrivals first, as stealQueued defines).
     * Returns how many actually moved.  If the thief is idle the
     * kernel starts its next work immediately, exactly like the
     * legacy stealing hook.
     */
    virtual std::uint32_t steal(std::uint32_t thief,
                                std::uint32_t victim,
                                std::uint32_t max_count) = 0;

    /**
     * Preempt running request `id` on `replica` at the current
     * boundary and requeue it there: its KV stays cached on the
     * replica, so resuming locally re-prefills nothing — the freed
     * slot goes to whatever the priority-aware admission picks next.
     * Capability-gated on Wants::kPreempt.  Throws std::logic_error
     * when the policy did not declare kPreempt, the replica is
     * mid-step (preemption happens at decode boundaries — defer to
     * its next onStepComplete), or `id` is queued/unknown there.
     */
    virtual void preempt(std::uint32_t replica,
                         std::uint64_t id) = 0;

    /**
     * Move request `id` — running (preempted first) or still queued
     * — from the replica that holds it to `to_replica`, KV cache
     * included.  The KV travels over the DIMM-link fabric: the
     * destination sees the arrival only after a transfer delay
     * proportional to the request's context length
     * (fleet::kvMigrationSeconds; zero for a request that never
     * started).  Capability-gated on Wants::kMigrate.  Throws
     * std::logic_error when the policy did not declare kMigrate,
     * the destination is out of range, draining, dead, or already
     * holds the request, the request is unknown / shed / already in
     * flight, or it is running on a replica that is mid-step.  The
     * destination is validated at call time: one that starts
     * draining while the KV is in flight still receives the
     * request (it was committed before the drain), and one whose
     * lazy capability probe fails later holds it like any other
     * delivery.
     */
    virtual void migrate(std::uint64_t id,
                         std::uint32_t to_replica) = 0;

    /**
     * Stand up one more replica mid-run (capability-gated on
     * Wants::kSpawn; throws std::logic_error without it).  Returns
     * the new replica's index, visible immediately through
     * FleetView in lifecycle Provisioning.  The replica becomes
     * routable only after its modeled warm-up completes:
     *
     *   now + spec.provisionSeconds          Provisioning → Warming
     *   ... + batch-ramp warm-up replay      Warming → Active
     *
     * The warm-up replay is the same power-of-two batch ramp every
     * pre-configured replica pays during calibration, priced on the
     * spawned replica's own cost surface.  A spec matching an
     * existing replica's full serving config joins that replica's
     * shared cost cache (warm — calibration already paid); a novel
     * spec calibrates cold, billed to FleetReport::calibrationSeconds
     * like any other calibration.
     */
    virtual std::uint32_t spawnReplica(const ReplicaSpec &spec) = 0;

    /** Record a spawn wish (legacy intent counter; see class doc). */
    virtual void requestSpawn() = 0;

    /**
     * Stop routing to `replica`; it drains what it holds and the
     * kernel retires it once nothing remains (lifecycle Draining →
     * Retired, freezing its active-seconds clock).  Routing to a
     * drained replica throws; the built-in routing policies mask
     * non-Active replicas out of their rankings, so composing a
     * router with a draining policy is safe.  Compose with
     * "drain-migrate" to evacuate running and queued work instead
     * of letting the replica finish it.
     */
    virtual void requestDrain(std::uint32_t replica) = 0;
};

/** Everything onArrival knows about the request being placed. */
struct ArrivalContext
{
    std::uint64_t requestId = 0;
    Seconds arrival = 0.0; ///< Also the current virtual time.
    std::uint32_t promptTokens = 0;
    std::uint32_t generateTokens = 0;
    std::uint32_t priority = 0;

    /** Conversation this request belongs to; 0 = standalone. */
    std::uint64_t sessionId = 0;

    /**
     * One ground-truth observation per replica, sampled at this
     * instant — or nullptr when the policy did not declare
     * kObservations (the gather is O(replicas), so it is skipped
     * unless asked for).
     */
    const std::vector<ReplicaObservation> *observed = nullptr;
};

/** Per-run binding handed to ControlPolicy::begin(). */
struct ControlContext
{
    /** Calibrated queueing model of every replica, fleet order. */
    std::vector<ReplicaModel> models;

    Seconds ttftDeadline = 0.0;
};

/**
 * One control-plane behavior (see file header).  Policies are
 * stateful across one run and reset in begin(); the same object may
 * drive many runs and many fleets sequentially.
 */
class ControlPolicy
{
  public:
    /** Subscription / capability bits for wants(). */
    enum Wants : std::uint32_t
    {
        kNone = 0,

        /** Gather ReplicaObservations before each onArrival. */
        kObservations = 1u << 0,

        /** Deliver onPrefillComplete / onStepComplete. */
        kReplicaEvents = 1u << 1,

        /** Deliver onReplicaIdle. */
        kIdle = 1u << 2,

        /** Deliver onReplicaDead. */
        kDead = 1u << 3,

        /** Deliver onTick every tickPeriod() virtual seconds. */
        kTick = 1u << 4,

        /** May call FleetActions::preempt (lifecycle capability). */
        kPreempt = 1u << 5,

        /** May call FleetActions::migrate (lifecycle capability). */
        kMigrate = 1u << 6,

        /** May call FleetActions::spawnReplica (autoscaling). */
        kSpawn = 1u << 7,
    };

    virtual ~ControlPolicy() = default;

    /** Registry / report name (e.g. "jsq", "slo-steal"). */
    virtual std::string name() const = 0;

    /** OR of Wants bits; the kernel honors exactly these. */
    virtual std::uint32_t wants() const { return kNone; }

    /** Virtual-time heartbeat period; <= 0 disables onTick. */
    virtual Seconds tickPeriod() const { return 0.0; }

    /** Reset per-run state; called once before each fleet run. */
    virtual void begin(const ControlContext &context)
    {
        (void)context;
    }

    /**
     * Place (or shed) one arriving request.  Exactly one decision —
     * routeTo or shed — must be made across all subscribed policies
     * per arrival; the kernel throws otherwise.
     */
    virtual void onArrival(const ArrivalContext &context,
                           const FleetView &view,
                           FleetActions &actions)
    {
        (void)context;
        (void)view;
        (void)actions;
    }

    /** A replica finished a joint admission prefill (kReplicaEvents). */
    virtual void onPrefillComplete(std::uint32_t replica, Seconds now,
                                   const FleetView &view,
                                   FleetActions &actions)
    {
        (void)replica;
        (void)now;
        (void)view;
        (void)actions;
    }

    /** A replica finished one decode step (kReplicaEvents). */
    virtual void onStepComplete(std::uint32_t replica, Seconds now,
                                const FleetView &view,
                                FleetActions &actions)
    {
        (void)replica;
        (void)now;
        (void)view;
        (void)actions;
    }

    /** A replica ran out of work at a boundary (kIdle). */
    virtual void onReplicaIdle(std::uint32_t replica, Seconds now,
                               const FleetView &view,
                               FleetActions &actions)
    {
        (void)replica;
        (void)now;
        (void)view;
        (void)actions;
    }

    /** A replica's capability probe failed (kDead; fires once). */
    virtual void onReplicaDead(std::uint32_t replica, Seconds now,
                               const FleetView &view,
                               FleetActions &actions)
    {
        (void)replica;
        (void)now;
        (void)view;
        (void)actions;
    }

    /** Periodic heartbeat on the virtual clock (kTick). */
    virtual void onTick(Seconds now, const FleetView &view,
                        FleetActions &actions)
    {
        (void)now;
        (void)view;
        (void)actions;
    }
};

/**
 * Fan one event stream out to several policies (e.g. a routing
 * policy plus a stealing policy).  wants() is the OR of the
 * children's; every child sees every hook it subscribed to, in
 * child order.  The one-decision-per-arrival contract applies to
 * the composite as a whole.
 */
class CompositeControlPolicy : public ControlPolicy
{
  public:
    explicit CompositeControlPolicy(
        std::vector<std::shared_ptr<ControlPolicy>> children);

    std::string name() const override;
    std::uint32_t wants() const override;
    Seconds tickPeriod() const override;
    void begin(const ControlContext &context) override;
    void onArrival(const ArrivalContext &context,
                   const FleetView &view,
                   FleetActions &actions) override;
    void onPrefillComplete(std::uint32_t replica, Seconds now,
                           const FleetView &view,
                           FleetActions &actions) override;
    void onStepComplete(std::uint32_t replica, Seconds now,
                        const FleetView &view,
                        FleetActions &actions) override;
    void onReplicaIdle(std::uint32_t replica, Seconds now,
                       const FleetView &view,
                       FleetActions &actions) override;
    void onReplicaDead(std::uint32_t replica, Seconds now,
                       const FleetView &view,
                       FleetActions &actions) override;
    void onTick(Seconds now, const FleetView &view,
                FleetActions &actions) override;

  private:
    std::vector<std::shared_ptr<ControlPolicy>> children_;
};

/**
 * A routing policy over the calibrated Router (sched/router.hh):
 * the six legacy RouterPolicy behaviors as ControlPolicy objects.
 * Bit-identical to the pre-API kernel by construction — the same
 * Router makes the same decisions from the same inputs.
 */
std::shared_ptr<ControlPolicy> makeRouterPolicy(RouterPolicy policy);

/**
 * The legacy occupancy-greedy work-stealing hook ("greedy-steal"):
 * an idle servable replica steals ceil(half) of the deepest queue
 * among busy-or-dead victims, capped at its own batch size.
 */
std::shared_ptr<ControlPolicy> makeGreedyStealPolicy();

/**
 * SLO-aware work stealing ("slo-steal") — the first policy the
 * enum/bool surface could not express.  An idle replica picks the
 * victim whose queued requests face the *worst estimated wait*
 * (observed token backlog over calibrated drain rate, plus prefill;
 * infinite for a dead victim) and steals only when its own
 * estimated TTFT for the stolen work — its calibrated prefill,
 * since it is idle — beats that wait.  A slow thief therefore
 * declines steals that occupancy-greedy would take at the cost of
 * the tail.
 */
std::shared_ptr<ControlPolicy> makeSloStealPolicy();

/**
 * Priority preemption ("priority-preempt") — the first lifecycle
 * policy.  At every replica boundary it looks for a queued request
 * whose projected TTFT — its age plus the wait for a batch slot to
 * free naturally plus the calibrated prefill — misses the deadline
 * while preempting would still save it, and evicts the
 * lowest-priority running request of strictly lower priority (ties:
 * most remaining work).  The victim requeues on the same replica
 * with its KV retained (free re-admission); the priority-aware
 * admission hands the freed slot to the protected request at the
 * same boundary.  Compose with a router ("jsq+priority-preempt").
 */
std::shared_ptr<ControlPolicy> makePriorityPreemptPolicy();

/**
 * Drain/dead-replica migration ("drain-migrate") — requests leave a
 * failing replica instead of being abandoned.  Queued work on a
 * dead or draining replica, and running work on a draining replica
 * at its decode boundaries, migrates to the least-loaded healthy
 * replica, paying the DIMM-link KV transfer for whatever context it
 * accumulated.  Compose with a router ("round-robin+drain-migrate").
 */
std::shared_ptr<ControlPolicy> makeDrainMigratePolicy();

/**
 * KV-affinity session routing ("affinity") — the multi-turn router.
 * A follow-up turn's prompt repeats its whole conversation history,
 * and the replica that served the previous turn may still hold that
 * history's KV cache (FleetView::cachedSessionTokens), making its
 * prefill almost free.  The policy routes a session turn back to
 * the replica holding its KV unless the load gap argues otherwise:
 * it sticks when the resident tokens (prefill work saved) at least
 * cover the token-backlog gap to the least-loaded replica (extra
 * queueing taken on).  Standalone requests (session 0), first
 * turns, turns whose KV was evicted, and turns whose sticky replica
 * is draining or dead all fall back to ground-truth
 * join-shortest-queue over observed outstanding requests.
 */
std::shared_ptr<ControlPolicy> makeAffinityPolicy();

/**
 * Target-backlog autoscaler ("target-backlog") — the first policy
 * to use the spawn/drain physics.  Every tick it compares the
 * fleet-wide observed token backlog against what the currently
 * provisioned replicas (Provisioning + Warming + Active — warming
 * capacity is already bought, double-spawning for it would
 * oscillate) can drain within the TTFT deadline, and scales toward
 * the implied replica count: spawning a clone of an Active
 * replica's spec when short, draining the least-loaded Active
 * replica when over.  Hysteresis (consecutive ticks agreeing before
 * acting) and a post-action cooldown damp flapping; min/max fleet
 * bounds cap both directions.  Compose with a lifecycle-aware
 * router and drain-migrate: "affinity+target-backlog+drain-migrate".
 */
std::shared_ptr<ControlPolicy> makeTargetBacklogPolicy();

/**
 * Compose routing + auxiliary policies into one control plane.
 * Throws std::invalid_argument when `children` is empty.
 */
std::shared_ptr<ControlPolicy> composeControlPolicies(
    std::vector<std::shared_ptr<ControlPolicy>> children);

/**
 * Registry names of the built-in atoms, in display order: the six
 * router policies ("round-robin", "jsq", "least-tokens",
 * "slo-aware", "true-jsq", "least-backlog"), then "greedy-steal",
 * "slo-steal", "priority-preempt", "drain-migrate", "affinity",
 * and "target-backlog".
 */
std::vector<std::string> controlPolicyNames();

/**
 * Build a control policy by registry name.  A '+'-joined name
 * ("least-tokens+slo-steal") composes atoms left to right; throws
 * std::invalid_argument on unknown atoms or an empty name.
 */
std::shared_ptr<ControlPolicy>
controlPolicyByName(const std::string &name);

} // namespace hermes::sched

#endif // HERMES_SCHED_CONTROL_POLICY_HH
