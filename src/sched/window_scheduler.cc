#include "sched/window_scheduler.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/logging.hh"

namespace hermes::sched {

WindowScheduler::WindowScheduler(std::uint32_t neurons,
                                 std::uint32_t num_dimms,
                                 std::uint32_t window_size)
    : numDimms_(num_dimms), windowSize_(window_size),
      activity_(neurons, 0)
{
    hermes_assert(num_dimms > 0 && window_size > 0,
                  "invalid window scheduler configuration");
}

void
WindowScheduler::observe(const std::vector<std::uint32_t> &active_list)
{
    for (const auto id : active_list) {
        hermes_assert(id < activity_.size(),
                      "active neuron outside block");
        ++activity_[id];
    }
    ++observed_;
}

void
WindowScheduler::clearWindow()
{
    std::fill(activity_.begin(), activity_.end(), 0);
    observed_ = 0;
}

std::vector<std::uint64_t>
WindowScheduler::dimmLoads(const BlockPlacement &placement) const
{
    std::vector<std::uint64_t> loads(numDimms_, 0);
    for (std::uint32_t i = 0; i < placement.neurons(); ++i) {
        if (!placement.onGpu(i))
            loads[placement.homeDimm(i)] += activity_[i];
    }
    return loads;
}

std::vector<interconnect::Transfer>
WindowScheduler::rebalance(BlockPlacement &placement, Bytes neuron_bytes)
{
    std::vector<interconnect::Transfer> transfers;
    if (numDimms_ < 2) {
        clearWindow();
        return transfers;
    }

    // Z_j: activated cold neurons per DIMM over the window (line 1).
    std::vector<std::uint64_t> loads = dimmLoads(placement);

    // Sort DIMM ids by load, descending (line 2).
    std::vector<std::uint32_t> order(numDimms_);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return loads[a] > loads[b];
              });

    // Per-DIMM cold-neuron lists, most activated first (line 5).
    std::vector<std::vector<std::uint32_t>> per_dimm(numDimms_);
    for (std::uint32_t i = 0; i < placement.neurons(); ++i) {
        if (!placement.onGpu(i) && activity_[i] > 0)
            per_dimm[placement.homeDimm(i)].push_back(i);
    }
    for (auto &list : per_dimm) {
        std::sort(list.begin(), list.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return activity_[a] > activity_[b];
                  });
    }

    // Pair heaviest with lightest (lines 3-6) and move the most
    // activated neurons while the move strictly improves the pair.
    for (std::uint32_t pair = 0; pair < numDimms_ / 2; ++pair) {
        const std::uint32_t heavy = order[pair];
        const std::uint32_t light = order[numDimms_ - 1 - pair];
        auto &donors = per_dimm[heavy];
        std::size_t next = 0;
        Bytes moved_bytes = 0;
        while (next < donors.size()) {
            const std::uint32_t h = donors[next];
            const std::uint64_t a = activity_[h];
            if (a == 0 ||
                loads[heavy] < loads[light] + 2 * a)
                break; // No strict improvement left.
            placement.setHomeDimm(
                h, static_cast<std::uint16_t>(light));
            loads[heavy] -= a;
            loads[light] += a;
            moved_bytes += neuron_bytes;
            ++next;
        }
        if (moved_bytes > 0)
            transfers.push_back(
                interconnect::Transfer{heavy, light, moved_bytes});
    }

    clearWindow();
    return transfers;
}

std::vector<interconnect::Transfer>
WindowScheduler::rebalanceOracle(BlockPlacement &placement,
                                 Bytes neuron_bytes)
{
    std::vector<interconnect::Transfer> transfers;
    if (numDimms_ < 2) {
        clearWindow();
        return transfers;
    }

    // LPT over window activity: reassign every active cold neuron to
    // the currently least-loaded DIMM.
    std::vector<std::uint32_t> cold;
    for (std::uint32_t i = 0; i < placement.neurons(); ++i)
        if (!placement.onGpu(i) && activity_[i] > 0)
            cold.push_back(i);
    std::sort(cold.begin(), cold.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return activity_[a] > activity_[b];
              });

    std::vector<std::uint64_t> loads(numDimms_, 0);
    std::vector<Bytes> moved(numDimms_ * numDimms_, 0);
    for (const std::uint32_t i : cold) {
        const auto best = static_cast<std::uint32_t>(std::distance(
            loads.begin(),
            std::min_element(loads.begin(), loads.end())));
        loads[best] += activity_[i];
        const std::uint16_t from = placement.homeDimm(i);
        if (from != best) {
            moved[from * numDimms_ + best] += neuron_bytes;
            placement.setHomeDimm(i,
                                  static_cast<std::uint16_t>(best));
        }
    }
    for (std::uint32_t f = 0; f < numDimms_; ++f) {
        for (std::uint32_t t = 0; t < numDimms_; ++t) {
            if (moved[f * numDimms_ + t] > 0)
                transfers.push_back(interconnect::Transfer{
                    f, t, moved[f * numDimms_ + t]});
        }
    }

    clearWindow();
    return transfers;
}

WindowSet::WindowSet(std::uint32_t layers, std::uint32_t attn_neurons,
                     std::uint32_t mlp_neurons,
                     std::uint32_t num_dimms,
                     std::uint32_t window_size, Policy policy)
    : policy_(policy)
{
    // A zero window would rebalance every token (and trips the
    // scheduler's own assertion); clamp to the minimum usable window.
    window_size = std::max<std::uint32_t>(window_size, 1);
    attn_.reserve(layers);
    mlp_.reserve(layers);
    for (std::uint32_t l = 0; l < layers; ++l) {
        attn_.emplace_back(attn_neurons, num_dimms, window_size);
        mlp_.emplace_back(mlp_neurons, num_dimms, window_size);
    }
}

void
WindowSet::observe(std::uint32_t layer,
                   const std::vector<std::uint32_t> &attn_active,
                   const std::vector<std::uint32_t> &mlp_active)
{
    attn_.at(layer).observe(attn_active);
    mlp_.at(layer).observe(mlp_active);
}

bool
WindowSet::windowComplete(std::uint32_t layer) const
{
    return attn_.at(layer).windowComplete();
}

WindowSet::RebalanceOutcome
WindowSet::maybeRebalance(std::uint32_t layer, BlockPlacement &attn,
                          BlockPlacement &mlp,
                          Bytes attn_neuron_bytes,
                          Bytes mlp_neuron_bytes,
                          const interconnect::DimmLinkNetwork &network)
{
    RebalanceOutcome outcome;
    if (!windowComplete(layer))
        return outcome;
    WindowScheduler &attn_window = attn_.at(layer);
    WindowScheduler &mlp_window = mlp_.at(layer);
    if (!policy_.enabled) {
        attn_window.clearWindow();
        mlp_window.clearWindow();
        return outcome;
    }
    std::vector<interconnect::Transfer> transfers =
        policy_.oracle
            ? attn_window.rebalanceOracle(attn, attn_neuron_bytes)
            : attn_window.rebalance(attn, attn_neuron_bytes);
    std::vector<interconnect::Transfer> mlp_transfers =
        policy_.oracle
            ? mlp_window.rebalanceOracle(mlp, mlp_neuron_bytes)
            : mlp_window.rebalance(mlp, mlp_neuron_bytes);
    transfers.insert(transfers.end(), mlp_transfers.begin(),
                     mlp_transfers.end());
    for (const auto &transfer : transfers)
        outcome.migrationBytes += transfer.bytes;
    outcome.transfers = transfers.size();
    outcome.migrationTime = network.migrationTime(transfers);
    return outcome;
}

} // namespace hermes::sched
