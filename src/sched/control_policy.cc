#include "sched/control_policy.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hermes::sched {

std::string
replicaLifecycleName(ReplicaLifecycle lifecycle)
{
    switch (lifecycle) {
    case ReplicaLifecycle::Provisioning:
        return "provisioning";
    case ReplicaLifecycle::Warming:
        return "warming";
    case ReplicaLifecycle::Active:
        return "active";
    case ReplicaLifecycle::Draining:
        return "draining";
    case ReplicaLifecycle::Retired:
        return "retired";
    }
    return "?";
}

namespace {

/**
 * The six legacy routing behaviors as one adapter: every arrival is
 * answered by the calibrated Router, so decisions are bit-identical
 * to the pre-API kernel (same inputs, same float sequence).
 */
class RouterControlPolicy final : public ControlPolicy
{
  public:
    explicit RouterControlPolicy(RouterPolicy policy)
        : policy_(policy)
    {
    }

    std::string name() const override
    {
        return routerPolicyName(policy_);
    }

    std::uint32_t wants() const override
    {
        return routerPolicyNeedsObservations(policy_)
                   ? kObservations
                   : kNone;
    }

    void begin(const ControlContext &context) override
    {
        router_ = std::make_unique<Router>(
            policy_, context.models, context.ttftDeadline);
    }

    void onArrival(const ArrivalContext &context,
                   const FleetView &view,
                   FleetActions &actions) override
    {
        if (!router_)
            throw std::logic_error(
                "RouterControlPolicy: onArrival before begin()");
        // An autoscaler may have grown the fleet since begin():
        // give the router an (empty) queueing model for every new
        // replica, and mask replicas that are not routable — still
        // provisioning or warming, draining, or retired.  A fixed
        // all-Active fleet passes no mask at all, so its decision
        // sequence is bit-identical to the legacy router.  Dead
        // replicas stay UNmasked on purpose: estimate policies have
        // historically kept routing to them (only the feedback
        // policies starve them), and that contract is pinned.
        const std::uint32_t n = view.replicaCount();
        while (router_->replicaCount() < n)
            router_->addReplica(
                view.model(router_->replicaCount()));
        eligible_.assign(n, 1);
        bool restricted = false;
        for (std::uint32_t r = 0; r < n; ++r) {
            if (view.lifecycle(r) != ReplicaLifecycle::Active) {
                eligible_[r] = 0;
                restricted = true;
            }
        }
        const RouteDecision decision = router_->route(
            context.arrival, context.generateTokens,
            context.observed, restricted ? &eligible_ : nullptr);
        if (decision.replica < 0)
            actions.shed();
        else
            actions.routeTo(
                static_cast<std::uint32_t>(decision.replica));
    }

  private:
    RouterPolicy policy_;
    std::unique_ptr<Router> router_;
    std::vector<char> eligible_; ///< Reused across arrivals.
};

/**
 * The legacy stealing hook, verbatim: deepest queue among stuck
 * (mid-step with a queue, or dead) victims, ceil(half), capped at
 * the thief's batch.
 */
class GreedyStealPolicy final : public ControlPolicy
{
  public:
    std::string name() const override { return "greedy-steal"; }

    std::uint32_t wants() const override { return kIdle; }

    void onReplicaIdle(std::uint32_t replica, Seconds now,
                       const FleetView &view,
                       FleetActions &actions) override
    {
        (void)now;
        // Only a replica proven able to serve may steal; a dead (or
        // never-probed, or draining) replica would strand the work.
        if (!view.knownServable(replica) || view.draining(replica))
            return;
        const std::uint32_t n = view.replicaCount();
        std::uint32_t victim = n;
        std::uint32_t deepest = 0;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (v == replica)
                continue;
            // A victim must be genuinely stuck: mid-step with a
            // queue behind it, or known dead.  An idle replica with
            // fresh deliveries has a same-instant Wake coming and
            // will serve them itself.
            if (!view.busy(v) && !view.knownDead(v))
                continue;
            const std::uint32_t queued = view.queuedCount(v);
            if (queued > deepest) {
                deepest = queued;
                victim = v;
            }
        }
        if (victim == n || deepest == 0)
            return;
        const std::uint32_t cap =
            std::max<std::uint32_t>(view.maxBatch(replica), 1);
        actions.steal(replica, victim,
                      std::min((deepest + 1) / 2, cap));
    }
};

/**
 * SLO-aware stealing: steal only when the thief's estimated TTFT
 * for the stolen request beats the victim's (see the factory doc in
 * control_policy.hh).
 */
class SloStealPolicy final : public ControlPolicy
{
  public:
    std::string name() const override { return "slo-steal"; }

    std::uint32_t wants() const override { return kIdle; }

    void begin(const ControlContext &context) override
    {
        models_ = context.models;
    }

    void onReplicaIdle(std::uint32_t replica, Seconds now,
                       const FleetView &view,
                       FleetActions &actions) override
    {
        (void)now;
        if (!view.knownServable(replica) || view.draining(replica))
            return;
        const std::uint32_t n = view.replicaCount();
        std::uint32_t victim = n;
        std::uint32_t victim_queued = 0;
        Seconds worst_wait = 0.0;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (v == replica)
                continue;
            // Same stuck-victim eligibility as greedy-steal; the
            // ranking differs: worst estimated wait, not deepest
            // queue.
            if (!view.busy(v) && !view.knownDead(v))
                continue;
            const std::uint32_t queued = view.queuedCount(v);
            if (queued == 0)
                continue;
            const Seconds wait = estimatedWait(v, view);
            if (victim == n || wait > worst_wait) {
                worst_wait = wait;
                victim = v;
                victim_queued = queued;
            }
        }
        if (victim == n)
            return;
        // The thief is idle: its estimated TTFT for stolen work is
        // just its calibrated group prefill.  Steal only when that
        // strictly beats the victim's estimated wait — a slow thief
        // declines steals that would trade one queue's depth for a
        // worse tail.
        const Seconds thief_ttft =
            models_[replica].prefillSeconds;
        if (thief_ttft >= worst_wait)
            return;
        const std::uint32_t cap =
            std::max<std::uint32_t>(view.maxBatch(replica), 1);
        actions.steal(replica, victim,
                      std::min((victim_queued + 1) / 2, cap));
    }

  private:
    /**
     * Estimated TTFT a queued request faces on `replica`: observed
     * token backlog over the calibrated full-batch drain rate, plus
     * one prefill; infinite for a dead replica (its queue never
     * drains).
     */
    Seconds
    estimatedWait(std::uint32_t replica,
                  const FleetView &view) const
    {
        if (view.knownDead(replica))
            return std::numeric_limits<double>::infinity();
        const ReplicaModel &model = models_[replica];
        const double drain_rate =
            std::max(model.slotTokensPerSecond, 1.0e-9) *
            static_cast<double>(
                std::max<std::uint32_t>(model.maxBatch, 1));
        return view.observedBacklogTokens(replica) / drain_rate +
               model.prefillSeconds;
    }

    std::vector<ReplicaModel> models_;
};

/**
 * Priority preemption (see the factory doc in control_policy.hh):
 * at each replica boundary, evict the lowest-priority running
 * request when a strictly-higher-priority queued request would miss
 * its TTFT deadline waiting for a slot to free naturally and
 * admitting it now would still meet (or at least approach) it.
 */
class PriorityPreemptPolicy final : public ControlPolicy
{
  public:
    std::string name() const override { return "priority-preempt"; }

    std::uint32_t wants() const override
    {
        return kReplicaEvents | kPreempt;
    }

    void begin(const ControlContext &context) override
    {
        models_ = context.models;
        deadline_ = context.ttftDeadline;
    }

    void onPrefillComplete(std::uint32_t replica, Seconds now,
                           const FleetView &view,
                           FleetActions &actions) override
    {
        maybePreempt(replica, now, view, actions);
    }

    void onStepComplete(std::uint32_t replica, Seconds now,
                        const FleetView &view,
                        FleetActions &actions) override
    {
        maybePreempt(replica, now, view, actions);
    }

  private:
    void
    maybePreempt(std::uint32_t replica, Seconds now,
                 const FleetView &view, FleetActions &actions)
    {
        if (view.busy(replica) || !view.knownServable(replica))
            return;
        const std::vector<serving::RequestInfo> running =
            view.runningRequests(replica);
        // A free slot means the queue head is admitted at this very
        // boundary anyway — nothing to evict for.
        if (running.empty() ||
            running.size() < view.maxBatch(replica))
            return;
        const std::vector<serving::RequestInfo> queued =
            view.queuedRequests(replica);
        if (queued.empty())
            return;

        // The endangered request: highest priority queued, oldest
        // among equals (matches what admission would pick).
        const serving::RequestInfo *protect = &queued.front();
        for (const serving::RequestInfo &info : queued) {
            if (info.priority > protect->priority)
                protect = &info;
        }

        // The victim: lowest priority strictly below the protected
        // request's, most remaining work among equals (frees the
        // slot for the longest), then highest id for determinism.
        const serving::RequestInfo *victim = nullptr;
        for (const serving::RequestInfo &info : running) {
            if (info.priority >= protect->priority)
                continue;
            if (victim == nullptr ||
                info.priority < victim->priority ||
                (info.priority == victim->priority &&
                 (info.remainingTokens > victim->remainingTokens ||
                  (info.remainingTokens ==
                       victim->remainingTokens &&
                   info.id > victim->id))))
                victim = &info;
        }
        if (victim == nullptr)
            return;

        // Would the protected request miss its deadline waiting
        // for a slot to free naturally?  The soonest natural slot
        // is the least-remaining running request finishing at the
        // calibrated full-batch step rate; after that the request
        // still pays its admission prefill.
        const ReplicaModel &model = models_[replica];
        const Seconds step =
            model.slotTokensPerSecond > 0.0
                ? 1.0 / model.slotTokensPerSecond
                : deadline_;
        std::uint32_t soonest = running.front().remainingTokens;
        for (const serving::RequestInfo &info : running)
            soonest = std::min(soonest, info.remainingTokens);
        const Seconds age = now - protect->arrival;
        const Seconds natural =
            age + static_cast<double>(soonest) * step +
            model.prefillSeconds;
        if (natural <= deadline_)
            return;
        actions.preempt(replica, victim->id);
    }

    std::vector<ReplicaModel> models_;
    Seconds deadline_ = 0.0;
};

/**
 * Drain/dead-replica migration (see the factory doc in
 * control_policy.hh): evacuate queued work from dead and draining
 * replicas, and running work from draining replicas at their decode
 * boundaries, onto the least-loaded healthy replica.
 */
class DrainMigratePolicy final : public ControlPolicy
{
  public:
    std::string name() const override { return "drain-migrate"; }

    std::uint32_t wants() const override
    {
        return kReplicaEvents | kIdle | kDead | kMigrate;
    }

    void onReplicaDead(std::uint32_t replica, Seconds now,
                       const FleetView &view,
                       FleetActions &actions) override
    {
        (void)now;
        evacuateQueued(replica, view, actions);
    }

    void onReplicaIdle(std::uint32_t replica, Seconds now,
                       const FleetView &view,
                       FleetActions &actions) override
    {
        // A dead replica takes an idle boundary whenever fresh
        // deliveries reach it (it never starts work), so routing
        // policies that keep feeding it are drained continually.
        (void)now;
        if (view.knownDead(replica) || view.draining(replica))
            evacuateQueued(replica, view, actions);
    }

    void onPrefillComplete(std::uint32_t replica, Seconds now,
                           const FleetView &view,
                           FleetActions &actions) override
    {
        onStepComplete(replica, now, view, actions);
    }

    void onStepComplete(std::uint32_t replica, Seconds now,
                        const FleetView &view,
                        FleetActions &actions) override
    {
        (void)now;
        if (!view.draining(replica) || view.busy(replica))
            return;
        // The draining replica is at a decode boundary: hand its
        // running requests (KV included) to healthy replicas, then
        // whatever is still queued behind them.
        for (const serving::RequestInfo &info :
             view.runningRequests(replica)) {
            const std::uint32_t to = destination(replica, view);
            if (to >= view.replicaCount())
                return;
            actions.migrate(info.id, to);
        }
        evacuateQueued(replica, view, actions);
    }

  private:
    /** Least-loaded healthy replica, or replicaCount() when none. */
    std::uint32_t
    destination(std::uint32_t from, const FleetView &view) const
    {
        const std::uint32_t n = view.replicaCount();
        std::uint32_t best = n;
        for (std::uint32_t r = 0; r < n; ++r) {
            // Only Active replicas may receive migrations: a
            // provisioning or warming spawn is not routable yet, a
            // draining or retired one is on its way out.
            if (r == from || view.knownDead(r) ||
                view.lifecycle(r) != ReplicaLifecycle::Active)
                continue;
            if (best == n || view.observedOutstanding(r) <
                                 view.observedOutstanding(best))
                best = r;
        }
        return best;
    }

    void
    evacuateQueued(std::uint32_t replica, const FleetView &view,
                   FleetActions &actions)
    {
        for (const serving::RequestInfo &info :
             view.queuedRequests(replica)) {
            const std::uint32_t to = destination(replica, view);
            if (to >= view.replicaCount())
                return;
            actions.migrate(info.id, to);
        }
    }
};

/**
 * KV-affinity session routing (see the factory doc in
 * control_policy.hh): sticky-route follow-up turns to the replica
 * holding their conversation's KV, unless the load gap outweighs
 * the resident prefix; everything else joins the shortest queue.
 */
class AffinityPolicy final : public ControlPolicy
{
  public:
    std::string name() const override { return "affinity"; }

    std::uint32_t wants() const override { return kObservations; }

    void onArrival(const ArrivalContext &context,
                   const FleetView &view,
                   FleetActions &actions) override
    {
        const std::uint32_t n = view.replicaCount();
        // Ground-truth JSQ over the routable replicas (first
        // minimum wins, matching true-jsq's determinism).  Only
        // Active replicas are routable — spawned replicas still
        // provisioning or warming, and draining or retired ones,
        // are skipped exactly like the kernel's routeTo would
        // reject them.
        std::uint32_t least = n;
        for (std::uint32_t r = 0; r < n; ++r) {
            if (view.knownDead(r) ||
                view.lifecycle(r) != ReplicaLifecycle::Active)
                continue;
            if (least == n ||
                (*context.observed)[r].outstanding <
                    (*context.observed)[least].outstanding)
                least = r;
        }
        if (least == n) {
            // Every replica is draining or dead; routing anywhere
            // would throw.
            actions.shed();
            return;
        }
        if (context.sessionId == 0) {
            actions.routeTo(least);
            return;
        }
        // Sticky candidate: the replica holding the session's KV.
        // At most one holds it (residency moves with the serving
        // replica and is consumed on re-admission).
        std::uint32_t holder = n;
        std::uint64_t cached = 0;
        for (std::uint32_t r = 0; r < n; ++r) {
            cached = view.cachedSessionTokens(r, context.sessionId);
            if (cached > 0) {
                holder = r;
                break;
            }
        }
        if (holder == n || view.knownDead(holder) ||
            view.lifecycle(holder) != ReplicaLifecycle::Active) {
            // First turn, KV evicted, or the sticky replica cannot
            // take new work: plain JSQ.
            actions.routeTo(least);
            return;
        }
        // Stick when the prefill seconds the resident prefix saves
        // at least cover the extra queueing seconds the sticky
        // replica's deeper backlog costs.  The two token counts are
        // not comparable 1:1: a cached token saves prefill work
        // while a backlog token costs decode work, and calibrated
        // prefill is typically an order of magnitude cheaper per
        // token than decode — so both sides convert to seconds
        // through the holder's calibrated model
        // (prefillTokensPerSecond vs the full-batch drain rate).
        // Under load this sticks less eagerly than a raw token
        // comparison would: a modest resident prefix no longer
        // outweighs a deep backlog.
        const ReplicaModel &holder_model = view.model(holder);
        const double saved_seconds =
            static_cast<double>(cached) /
            std::max(holder_model.prefillTokensPerSecond, 1.0e-9);
        const double gap =
            (*context.observed)[holder].backlogTokens -
            (*context.observed)[least].backlogTokens;
        const double drain_rate =
            std::max(holder_model.slotTokensPerSecond, 1.0e-9) *
            static_cast<double>(std::max<std::uint32_t>(
                holder_model.maxBatch, 1));
        actions.routeTo(saved_seconds >= gap / drain_rate
                            ? holder
                            : least);
    }
};

/**
 * Target-backlog autoscaler (see the factory doc in
 * control_policy.hh): every tick, scale the provisioned replica
 * count toward what the observed fleet-wide token backlog needs to
 * drain within one TTFT deadline, damped by hysteresis and a
 * post-action cooldown.
 */
class TargetBacklogScalerPolicy final : public ControlPolicy
{
  public:
    std::string name() const override { return "target-backlog"; }

    std::uint32_t wants() const override { return kTick | kSpawn; }

    Seconds tickPeriod() const override { return 1.0; }

    void begin(const ControlContext &context) override
    {
        deadline_ = context.ttftDeadline > 0.0
                        ? context.ttftDeadline
                        : 2.0;
        upTicks_ = 0;
        downTicks_ = 0;
        cooldownUntil_ = 0.0;
    }

    void onTick(Seconds now, const FleetView &view,
                FleetActions &actions) override
    {
        const std::uint32_t n = view.replicaCount();
        // Provisioned capacity counts Provisioning + Warming +
        // Active: warming capacity is already bought, and spawning
        // again for the same backlog spike would oscillate.
        // Draining replicas contribute their remaining backlog
        // (someone still has to serve it) but no capacity.
        std::uint32_t provisioned = 0;
        std::uint32_t active = 0;
        std::uint32_t reference = n;
        double backlog = 0.0;
        for (std::uint32_t r = 0; r < n; ++r) {
            if (view.knownDead(r))
                continue;
            const ReplicaLifecycle lc = view.lifecycle(r);
            if (lc == ReplicaLifecycle::Retired)
                continue;
            backlog += view.observedBacklogTokens(r);
            if (lc == ReplicaLifecycle::Draining)
                continue;
            ++provisioned;
            if (lc == ReplicaLifecycle::Active) {
                ++active;
                if (reference == n)
                    reference = r;
            }
        }
        // No Active replica to measure by or clone: a freshly
        // spawned fleet is still warming — wait.
        if (reference == n)
            return;
        const ReplicaModel &model = view.model(reference);
        const double slot =
            std::max(model.slotTokensPerSecond, 1.0e-9);
        const double batch = static_cast<double>(
            std::max<std::uint32_t>(model.maxBatch, 1));
        // Sustained drain rate of one replica, in backlog (decode)
        // tokens per second.  Each admission group of maxBatch
        // requests pays one joint prefill before its G decode
        // steps, so the sustained rate is mb*G/(prefill + G*step),
        // which on prefill-heavy workloads is several times below
        // the raw full-batch step rate slot*mb.  Fall back to the
        // raw rate when the model carries no calibrated generate
        // length (hand-built models predate the field).
        double rate = slot * batch;
        if (model.typicalGenerateTokens > 0.0) {
            const double g = model.typicalGenerateTokens;
            rate = batch * g /
                   (std::max(model.prefillSeconds, 0.0) + g / slot);
        }
        // Replicas needed to drain the backlog within one deadline
        // window at the reference replica's sustained rate.
        const std::uint32_t desired = std::clamp<std::uint32_t>(
            static_cast<std::uint32_t>(
                std::ceil(backlog / (rate * deadline_))),
            kMinReplicas, kMaxReplicas);

        if (desired > provisioned) {
            downTicks_ = 0;
            ++upTicks_;
            if (upTicks_ < kHysteresisTicks ||
                now < cooldownUntil_)
                return;
            actions.spawnReplica(view.replicaSpec(reference));
            upTicks_ = 0;
            cooldownUntil_ = now + kCooldownSeconds;
        } else if (desired < provisioned) {
            upTicks_ = 0;
            ++downTicks_;
            if (downTicks_ < kHysteresisTicks ||
                now < cooldownUntil_)
                return;
            // Never drain the last routable replica: replicas still
            // warming are counted as provisioned but cannot take
            // traffic yet, and an all-masked fleet sheds arrivals.
            if (active <= 1)
                return;
            // Drain the least-loaded Active replica; ties break to
            // the highest index so spawned replicas retire before
            // the seed fleet.
            std::uint32_t victim = n;
            for (std::uint32_t r = 0; r < n; ++r) {
                if (view.knownDead(r) ||
                    view.lifecycle(r) != ReplicaLifecycle::Active)
                    continue;
                if (victim == n ||
                    view.observedOutstanding(r) <=
                        view.observedOutstanding(victim))
                    victim = r;
            }
            if (victim == n)
                return;
            actions.requestDrain(victim);
            downTicks_ = 0;
            cooldownUntil_ = now + kCooldownSeconds;
        } else {
            upTicks_ = 0;
            downTicks_ = 0;
        }
    }

  private:
    /** Fleet bounds: never below the seed's floor, capped growth. */
    static constexpr std::uint32_t kMinReplicas = 1;
    static constexpr std::uint32_t kMaxReplicas = 16;

    /** Consecutive agreeing ticks required before acting. */
    static constexpr std::uint32_t kHysteresisTicks = 2;

    /** Quiet period after any scale action. */
    static constexpr Seconds kCooldownSeconds = 5.0;

    Seconds deadline_ = 2.0;
    std::uint32_t upTicks_ = 0;
    std::uint32_t downTicks_ = 0;
    Seconds cooldownUntil_ = 0.0;
};

} // namespace

CompositeControlPolicy::CompositeControlPolicy(
    std::vector<std::shared_ptr<ControlPolicy>> children)
    : children_(std::move(children))
{
    if (children_.empty())
        throw std::invalid_argument(
            "CompositeControlPolicy: no children");
    for (const auto &child : children_) {
        if (!child)
            throw std::invalid_argument(
                "CompositeControlPolicy: null child");
    }
}

std::string
CompositeControlPolicy::name() const
{
    std::string joined;
    for (const auto &child : children_) {
        if (!joined.empty())
            joined += '+';
        joined += child->name();
    }
    return joined;
}

std::uint32_t
CompositeControlPolicy::wants() const
{
    std::uint32_t bits = kNone;
    for (const auto &child : children_)
        bits |= child->wants();
    return bits;
}

Seconds
CompositeControlPolicy::tickPeriod() const
{
    // The composite heartbeat is the fastest child's.
    Seconds period = 0.0;
    for (const auto &child : children_) {
        const Seconds p = child->tickPeriod();
        if (p > 0.0 && (period <= 0.0 || p < period))
            period = p;
    }
    return period;
}

void
CompositeControlPolicy::begin(const ControlContext &context)
{
    for (const auto &child : children_)
        child->begin(context);
}

void
CompositeControlPolicy::onArrival(const ArrivalContext &context,
                                  const FleetView &view,
                                  FleetActions &actions)
{
    for (const auto &child : children_)
        child->onArrival(context, view, actions);
}

void
CompositeControlPolicy::onPrefillComplete(std::uint32_t replica,
                                          Seconds now,
                                          const FleetView &view,
                                          FleetActions &actions)
{
    for (const auto &child : children_) {
        if (child->wants() & kReplicaEvents)
            child->onPrefillComplete(replica, now, view, actions);
    }
}

void
CompositeControlPolicy::onStepComplete(std::uint32_t replica,
                                       Seconds now,
                                       const FleetView &view,
                                       FleetActions &actions)
{
    for (const auto &child : children_) {
        if (child->wants() & kReplicaEvents)
            child->onStepComplete(replica, now, view, actions);
    }
}

void
CompositeControlPolicy::onReplicaIdle(std::uint32_t replica,
                                      Seconds now,
                                      const FleetView &view,
                                      FleetActions &actions)
{
    for (const auto &child : children_) {
        if (child->wants() & kIdle)
            child->onReplicaIdle(replica, now, view, actions);
    }
}

void
CompositeControlPolicy::onReplicaDead(std::uint32_t replica,
                                      Seconds now,
                                      const FleetView &view,
                                      FleetActions &actions)
{
    for (const auto &child : children_) {
        if (child->wants() & kDead)
            child->onReplicaDead(replica, now, view, actions);
    }
}

void
CompositeControlPolicy::onTick(Seconds now, const FleetView &view,
                               FleetActions &actions)
{
    for (const auto &child : children_) {
        if (child->wants() & kTick)
            child->onTick(now, view, actions);
    }
}

std::shared_ptr<ControlPolicy>
makeRouterPolicy(RouterPolicy policy)
{
    return std::make_shared<RouterControlPolicy>(policy);
}

std::shared_ptr<ControlPolicy>
makeGreedyStealPolicy()
{
    return std::make_shared<GreedyStealPolicy>();
}

std::shared_ptr<ControlPolicy>
makeSloStealPolicy()
{
    return std::make_shared<SloStealPolicy>();
}

std::shared_ptr<ControlPolicy>
makePriorityPreemptPolicy()
{
    return std::make_shared<PriorityPreemptPolicy>();
}

std::shared_ptr<ControlPolicy>
makeDrainMigratePolicy()
{
    return std::make_shared<DrainMigratePolicy>();
}

std::shared_ptr<ControlPolicy>
makeAffinityPolicy()
{
    return std::make_shared<AffinityPolicy>();
}

std::shared_ptr<ControlPolicy>
makeTargetBacklogPolicy()
{
    return std::make_shared<TargetBacklogScalerPolicy>();
}

std::shared_ptr<ControlPolicy>
composeControlPolicies(
    std::vector<std::shared_ptr<ControlPolicy>> children)
{
    if (children.size() == 1)
        return children.front();
    return std::make_shared<CompositeControlPolicy>(
        std::move(children));
}

std::vector<std::string>
controlPolicyNames()
{
    std::vector<std::string> names;
    for (const RouterPolicy policy : allRouterPolicies())
        names.push_back(routerPolicyName(policy));
    names.push_back("greedy-steal");
    names.push_back("slo-steal");
    names.push_back("priority-preempt");
    names.push_back("drain-migrate");
    names.push_back("affinity");
    names.push_back("target-backlog");
    return names;
}

namespace {

std::shared_ptr<ControlPolicy>
atomByName(const std::string &name)
{
    for (const RouterPolicy policy : allRouterPolicies()) {
        if (routerPolicyName(policy) == name)
            return makeRouterPolicy(policy);
    }
    if (name == "greedy-steal")
        return makeGreedyStealPolicy();
    if (name == "slo-steal")
        return makeSloStealPolicy();
    if (name == "priority-preempt")
        return makePriorityPreemptPolicy();
    if (name == "drain-migrate")
        return makeDrainMigratePolicy();
    if (name == "affinity")
        return makeAffinityPolicy();
    if (name == "target-backlog")
        return makeTargetBacklogPolicy();
    throw std::invalid_argument(
        "controlPolicyByName: unknown policy '" + name + "'");
}

} // namespace

std::shared_ptr<ControlPolicy>
controlPolicyByName(const std::string &name)
{
    std::vector<std::shared_ptr<ControlPolicy>> children;
    std::size_t start = 0;
    while (start <= name.size()) {
        const std::size_t plus = name.find('+', start);
        const std::string atom =
            name.substr(start, plus == std::string::npos
                                   ? std::string::npos
                                   : plus - start);
        if (atom.empty())
            throw std::invalid_argument(
                "controlPolicyByName: empty atom in '" + name +
                "'");
        children.push_back(atomByName(atom));
        if (plus == std::string::npos)
            break;
        start = plus + 1;
    }
    // An empty name (or empty atom) already threw inside the loop,
    // so children is never empty here.
    return composeControlPolicies(std::move(children));
}

} // namespace hermes::sched
