#include "sched/router.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hermes::sched {

std::string
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
    case RouterPolicy::RoundRobin:
        return "round-robin";
    case RouterPolicy::JoinShortestQueue:
        return "jsq";
    case RouterPolicy::LeastOutstandingTokens:
        return "least-tokens";
    case RouterPolicy::SloAware:
        return "slo-aware";
    case RouterPolicy::TrueJsq:
        return "true-jsq";
    case RouterPolicy::LeastActualBacklog:
        return "least-backlog";
    }
    return "?";
}

std::vector<RouterPolicy>
allRouterPolicies()
{
    return {RouterPolicy::RoundRobin,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::LeastOutstandingTokens,
            RouterPolicy::SloAware,
            RouterPolicy::TrueJsq,
            RouterPolicy::LeastActualBacklog};
}

bool
routerPolicyNeedsObservations(RouterPolicy policy)
{
    return policy == RouterPolicy::TrueJsq ||
           policy == RouterPolicy::LeastActualBacklog;
}

RouterPolicy
routerPolicyByName(const std::string &name)
{
    for (const RouterPolicy policy : allRouterPolicies()) {
        if (routerPolicyName(policy) == name)
            return policy;
    }
    throw std::invalid_argument(
        "routerPolicyByName: unknown policy '" + name + "'");
}

Router::Router(RouterPolicy policy,
               std::vector<ReplicaModel> replicas,
               Seconds ttft_deadline)
    : policy_(policy), replicas_(std::move(replicas)),
      deadline_(ttft_deadline)
{
    if (replicas_.empty())
        throw std::invalid_argument("Router: no replicas");
    state_.resize(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
        auto &model = replicas_[i];
        model.maxBatch = std::max<std::uint32_t>(model.maxBatch, 1);
        model.slotTokensPerSecond =
            std::max(model.slotTokensPerSecond, 1.0e-9);
        model.prefillSeconds = std::max(model.prefillSeconds, 0.0);
        state_[i].freeAt.assign(model.maxBatch, 0.0);
    }
}

void
Router::addReplica(const ReplicaModel &model)
{
    replicas_.push_back(model);
    ReplicaModel &added = replicas_.back();
    added.maxBatch = std::max<std::uint32_t>(added.maxBatch, 1);
    added.slotTokensPerSecond =
        std::max(added.slotTokensPerSecond, 1.0e-9);
    added.prefillSeconds = std::max(added.prefillSeconds, 0.0);
    state_.emplace_back();
    state_.back().freeAt.assign(added.maxBatch, 0.0);
}

std::uint32_t
Router::outstandingRequests(std::uint32_t replica, Seconds now) const
{
    // Queue depth = routed requests not yet estimated-finished (NOT
    // busy batch slots: prefill stalls saturate every slot at once,
    // which would collapse all queue depths to maxBatch and reduce
    // JSQ to always-pick-the-first-tie).
    std::uint32_t outstanding = 0;
    for (const Commitment &c : state_[replica].commitments)
        outstanding += c.finish > now ? 1 : 0;
    return outstanding;
}

double
Router::outstandingTokens(std::uint32_t replica, Seconds now) const
{
    double tokens = 0.0;
    for (const Commitment &c : state_[replica].commitments) {
        if (c.finish <= now)
            continue;
        if (now <= c.decodeStart || c.finish <= c.decodeStart) {
            tokens += c.tokens;
        } else {
            tokens += c.tokens * (c.finish - now) /
                      (c.finish - c.decodeStart);
        }
    }
    return tokens;
}

Seconds
Router::estimateTtft(std::uint32_t replica, Seconds arrival) const
{
    const SlotState &state = state_[replica];
    const Seconds earliest = *std::min_element(
        state.freeAt.begin(), state.freeAt.end());
    const Seconds prefill = replicas_[replica].prefillSeconds;
    if (joinsGroup(state, arrival)) {
        // Joins the admission group whose joint prefill starts at
        // lastPrefillStart: slots stalled by that broadcast already
        // free no earlier than its end, so the wait IS the TTFT.
        return std::max(earliest,
                        state.lastPrefillStart + prefill) -
               arrival;
    }
    const Seconds start = std::max(arrival, earliest);
    return start - arrival + prefill;
}

void
Router::commit(std::uint32_t replica, Seconds arrival,
               std::uint32_t generate_tokens)
{
    SlotState &state = state_[replica];
    auto slot = std::min_element(state.freeAt.begin(),
                                 state.freeAt.end());
    const ReplicaModel &model = replicas_[replica];
    const double decode_seconds =
        static_cast<double>(generate_tokens) /
        model.slotTokensPerSecond;

    // The serving simulator serializes an admitted group's prefill
    // with the whole batch: while a group prefills, every slot of
    // the replica stalls.  Model that, or estimates stay wildly
    // optimistic under churn and SLO-aware shedding never triggers.
    // Requests routed at the same admission instant share ONE joint
    // prefill (the simulator prefills the group together), so only
    // the group's first commit broadcasts the stall.
    Seconds decode_start;
    if (joinsGroup(state, arrival)) {
        decode_start = std::max(
            *slot,
            state.lastPrefillStart + model.prefillSeconds);
        ++state.groupSize;
    } else {
        const Seconds start = std::max(arrival, *slot);
        std::uint32_t capacity = 0;
        for (const Seconds free_at : state.freeAt)
            capacity += free_at <= start ? 1 : 0;
        for (Seconds &free_at : state.freeAt)
            free_at =
                std::max(free_at, start) + model.prefillSeconds;
        state.lastPrefillStart = start;
        state.groupSize = 1;
        state.groupCapacity = std::max(capacity, 1u);
        decode_start = start + model.prefillSeconds;
    }
    *slot = decode_start + decode_seconds;

    // Prune drained commitments before recording the new one: no
    // arrival moves time backwards, so they can never matter again.
    std::erase_if(state.commitments,
                  [arrival](const Commitment &c) {
                      return c.finish <= arrival;
                  });
    state.commitments.push_back(
        Commitment{decode_start, *slot,
                   static_cast<double>(generate_tokens)});
}

RouteDecision
Router::route(Seconds arrival, std::uint32_t generate_tokens,
              const std::vector<ReplicaObservation> *observed,
              const std::vector<char> *eligible)
{
    const auto n =
        static_cast<std::uint32_t>(replicas_.size());
    // Feedback policies need one observation per replica; without
    // them (the offline two-phase path) degrade to the estimate
    // twin rather than routing on garbage.
    RouterPolicy policy = policy_;
    if (routerPolicyNeedsObservations(policy) &&
        (observed == nullptr || observed->size() != n)) {
        policy = policy == RouterPolicy::TrueJsq
                     ? RouterPolicy::JoinShortestQueue
                     : RouterPolicy::LeastOutstandingTokens;
    }
    // With a mask and no eligible replica there is nowhere legal to
    // send the request: shed.  (With at least one eligible replica
    // every ranking below finds a candidate, since the first
    // eligible entry always beats the infinite initial best.)
    const auto allowed = [eligible](std::uint32_t i) {
        return eligible == nullptr || (*eligible)[i] != 0;
    };
    if (eligible != nullptr) {
        bool any = false;
        for (std::uint32_t i = 0; i < n && !any; ++i)
            any = (*eligible)[i] != 0;
        if (!any) {
            ++routed_;
            return RouteDecision{
                -1, std::numeric_limits<double>::infinity()};
        }
    }
    std::uint32_t chosen = 0;
    switch (policy) {
    case RouterPolicy::RoundRobin:
        chosen = static_cast<std::uint32_t>(routed_ % n);
        // The cursor position may be masked: take the next eligible
        // replica at or after it, preserving the interleave over
        // the eligible set.
        while (!allowed(chosen))
            chosen = (chosen + 1) % n;
        break;
    case RouterPolicy::TrueJsq: {
        std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!allowed(i))
                continue;
            const std::uint32_t depth = (*observed)[i].outstanding;
            if (depth < best) {
                best = depth;
                chosen = i;
            }
        }
        break;
    }
    case RouterPolicy::LeastActualBacklog: {
        double best = std::numeric_limits<double>::infinity();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!allowed(i))
                continue;
            const double backlog = (*observed)[i].backlogTokens;
            if (backlog < best) {
                best = backlog;
                chosen = i;
            }
        }
        break;
    }
    case RouterPolicy::JoinShortestQueue: {
        std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!allowed(i))
                continue;
            const std::uint32_t depth =
                outstandingRequests(i, arrival);
            if (depth < best) {
                best = depth;
                chosen = i;
            }
        }
        break;
    }
    case RouterPolicy::LeastOutstandingTokens: {
        double best = std::numeric_limits<double>::infinity();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!allowed(i))
                continue;
            const double backlog = outstandingTokens(i, arrival);
            if (backlog < best) {
                best = backlog;
                chosen = i;
            }
        }
        break;
    }
    case RouterPolicy::SloAware: {
        // Min estimated TTFT, tie-broken by least outstanding
        // tokens: under light load every replica estimates
        // "prefill only", and without the tie-break the policy
        // degenerates into packing replica 0.
        Seconds best = std::numeric_limits<double>::infinity();
        double best_backlog =
            std::numeric_limits<double>::infinity();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!allowed(i))
                continue;
            const Seconds ttft = estimateTtft(i, arrival);
            const double backlog = outstandingTokens(i, arrival);
            if (ttft < best - 1.0e-12 ||
                (ttft < best + 1.0e-12 &&
                 backlog < best_backlog)) {
                best = std::min(ttft, best);
                best_backlog = backlog;
                chosen = i;
            }
        }
        if (best > deadline_) {
            // Even the least-loaded replica would miss the deadline:
            // shed at the door instead of poisoning the tail.
            ++routed_;
            return RouteDecision{-1, best};
        }
        break;
    }
    }
    ++routed_;
    const Seconds ttft = estimateTtft(chosen, arrival);
    commit(chosen, arrival, generate_tokens);
    return RouteDecision{static_cast<int>(chosen), ttft};
}

} // namespace hermes::sched
