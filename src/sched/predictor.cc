#include "sched/predictor.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hermes::sched {

BlockPredictor::BlockPredictor(std::uint32_t neurons,
                               PredictorConfig config)
    : config_(config), states_(neurons, 0)
{
    hermes_assert(config_.threshold <=
                  config_.maxState + 2 * config_.lambda,
                  "threshold unreachable even with two active parents");
}

void
BlockPredictor::initFromFrequency(const std::vector<double> &frequency)
{
    hermes_assert(frequency.size() == states_.size(),
                  "frequency table size mismatch");
    for (std::size_t i = 0; i < frequency.size(); ++i) {
        const double f = std::clamp(frequency[i], 0.0, 1.0);
        // 16 stages over the frequency range (Fig. 7a).
        states_[i] = static_cast<std::uint8_t>(std::min<std::uint32_t>(
            config_.maxState,
            static_cast<std::uint32_t>(f * (config_.maxState + 1))));
    }
    initialStates_ = states_;
}

void
BlockPredictor::setCorrelation(std::vector<std::uint32_t> parent1,
                               std::vector<std::uint32_t> parent2)
{
    hermes_assert(parent1.size() == states_.size() &&
                  parent2.size() == states_.size(),
                  "correlation table size mismatch");
    parent1_ = std::move(parent1);
    parent2_ = std::move(parent2);
}

void
BlockPredictor::predict(const std::vector<std::uint8_t> *parent_mask,
                        std::vector<std::uint8_t> &out) const
{
    out.resize(states_.size());
    const bool have_parents =
        parent_mask != nullptr && !parent1_.empty();
    for (std::size_t i = 0; i < states_.size(); ++i) {
        std::uint32_t s2 = 0;
        if (have_parents) {
            const auto &mask = *parent_mask;
            if (parent1_[i] < mask.size() && mask[parent1_[i]])
                ++s2;
            if (parent2_[i] < mask.size() && mask[parent2_[i]])
                ++s2;
        }
        const std::uint32_t score = states_[i] + config_.lambda * s2;
        if (have_parents) {
            out[i] = score >= config_.threshold;
        } else {
            // First block of the model: token-wise evidence only, so
            // the hot cut substitutes for the combined threshold.
            out[i] = states_[i] >= config_.hotThreshold;
        }
    }
}

void
BlockPredictor::update(const std::vector<std::uint8_t> &actual)
{
    hermes_assert(actual.size() == states_.size(),
                  "actual mask size mismatch");
    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (actual[i]) {
            states_[i] = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(config_.maxState,
                                        states_[i] +
                                            config_.activateStep));
        } else {
            states_[i] = static_cast<std::uint8_t>(
                states_[i] >= config_.decayStep
                    ? states_[i] - config_.decayStep
                    : 0);
        }
    }
}

void
BlockPredictor::hotScores(const std::vector<std::uint8_t> *parent_mask,
                          bool use_token, bool use_layer,
                          std::vector<std::uint32_t> &out) const
{
    out.resize(states_.size());
    const bool have_parents = use_layer && parent_mask != nullptr &&
                              !parent1_.empty();
    const auto &base = use_token ? states_ : initialStates_;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        std::uint32_t score = base.empty() ? 0 : base[i];
        if (have_parents) {
            const auto &mask = *parent_mask;
            if (parent1_[i] < mask.size() && mask[parent1_[i]])
                score += config_.lambda;
            if (parent2_[i] < mask.size() && mask[parent2_[i]])
                score += config_.lambda;
        }
        out[i] = score;
    }
}

ModelPredictor::ModelPredictor(const model::LlmConfig &llm,
                               PredictorConfig config)
    : llm_(llm), config_(config)
{
    attn_.reserve(llm.layers);
    mlp_.reserve(llm.layers);
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        attn_.emplace_back(
            static_cast<std::uint32_t>(llm.attnNeuronsPerLayer()),
            config);
        mlp_.emplace_back(
            static_cast<std::uint32_t>(llm.mlpNeuronsPerLayer()),
            config);
    }
}

BlockPredictor &
ModelPredictor::attn(std::uint32_t layer)
{
    hermes_assert(layer < attn_.size());
    return attn_[layer];
}

BlockPredictor &
ModelPredictor::mlp(std::uint32_t layer)
{
    hermes_assert(layer < mlp_.size());
    return mlp_[layer];
}

void
ModelPredictor::calibrate(sparsity::ActivationTrace &trace,
                          std::uint32_t prefill_tokens)
{
    hermes_assert(prefill_tokens > 0, "prefill must cover tokens");
    trace.reset(0);

    std::vector<std::vector<double>> attn_freq(llm_.layers);
    std::vector<std::vector<double>> mlp_freq(llm_.layers);
    for (std::uint32_t l = 0; l < llm_.layers; ++l) {
        attn_freq[l].assign(trace.attn(l).neurons(), 0.0);
        mlp_freq[l].assign(trace.mlp(l).neurons(), 0.0);
    }

    for (std::uint32_t t = 0; t < prefill_tokens; ++t) {
        trace.nextToken();
        for (std::uint32_t l = 0; l < llm_.layers; ++l) {
            for (const auto id : trace.attn(l).activeList)
                attn_freq[l][id] += 1.0;
            for (const auto id : trace.mlp(l).activeList)
                mlp_freq[l][id] += 1.0;
        }
    }
    for (std::uint32_t l = 0; l < llm_.layers; ++l) {
        for (auto &f : attn_freq[l])
            f /= prefill_tokens;
        for (auto &f : mlp_freq[l])
            f /= prefill_tokens;
        attn_[l].initFromFrequency(attn_freq[l]);
        mlp_[l].initFromFrequency(mlp_freq[l]);
        // Offline-sampled correlation tables: the trace exposes its
        // wiring, standing in for the paper's profiling pass (the
        // sampling estimator is validated separately in the tests).
        attn_[l].setCorrelation(trace.attn(l).parent1,
                                trace.attn(l).parent2);
        mlp_[l].setCorrelation(trace.mlp(l).parent1,
                               trace.mlp(l).parent2);
    }
}

void
ModelPredictor::stepToken(
    const sparsity::ActivationTrace &trace,
    std::vector<std::vector<std::uint8_t>> &attn_masks,
    std::vector<std::vector<std::uint8_t>> &mlp_masks)
{
    attn_masks.resize(llm_.layers);
    mlp_masks.resize(llm_.layers);
    for (std::uint32_t l = 0; l < llm_.layers; ++l) {
        // Prediction order mirrors execution: the parent block's
        // actual activations are known by the time the child block's
        // computation is scheduled.
        const std::vector<std::uint8_t> *attn_parent =
            l == 0 ? nullptr : &trace.mlp(l - 1).mask;
        attn_[l].predict(attn_parent, attn_masks[l]);
        mlp_[l].predict(&trace.attn(l).mask, mlp_masks[l]);

        const auto &attn_actual = trace.attn(l).mask;
        const auto &mlp_actual = trace.mlp(l).mask;
        for (std::size_t i = 0; i < attn_actual.size(); ++i)
            metrics_.tally(attn_masks[l][i] != 0, attn_actual[i] != 0);
        for (std::size_t i = 0; i < mlp_actual.size(); ++i)
            metrics_.tally(mlp_masks[l][i] != 0, mlp_actual[i] != 0);

        attn_[l].update(attn_actual);
        mlp_[l].update(mlp_actual);
    }
}

Bytes
ModelPredictor::totalBytes() const
{
    Bytes bytes = 0;
    for (const auto &predictor : attn_)
        bytes += predictor.stateTableBytes() +
                 predictor.correlationTableBytes();
    for (const auto &predictor : mlp_)
        bytes += predictor.stateTableBytes() +
                 predictor.correlationTableBytes();
    return bytes;
}

Bytes
ModelPredictor::stateTableBytes() const
{
    Bytes bytes = 0;
    for (const auto &predictor : attn_)
        bytes += predictor.stateTableBytes();
    for (const auto &predictor : mlp_)
        bytes += predictor.stateTableBytes();
    return bytes;
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
sampleCorrelation(sparsity::ActivationTrace &trace,
                  std::uint32_t child_layer, bool child_is_mlp,
                  std::uint32_t tokens, std::uint32_t pool)
{
    hermes_assert(child_is_mlp || child_layer > 0,
                  "first attention block has no parent");
    trace.reset(0);

    const sparsity::BlockTrace &child =
        child_is_mlp ? trace.mlp(child_layer) : trace.attn(child_layer);
    const sparsity::BlockTrace &parent =
        child_is_mlp ? trace.attn(child_layer)
                     : trace.mlp(child_layer - 1);

    const std::uint32_t child_n = child.neurons();
    const std::uint32_t parent_n = parent.neurons();

    // Candidate pool per child: parents in the same frequency-rank
    // neighborhood (co-activation outside it is noise by design of
    // the power law).
    std::vector<std::vector<std::uint32_t>> candidates(child_n);
    std::vector<std::vector<std::uint32_t>> co_counts(child_n);
    for (std::uint32_t id = 0; id < child_n; ++id) {
        const std::uint64_t r = child.rankOf[id];
        const auto center =
            static_cast<std::int64_t>(r * parent_n / child_n);
        for (std::uint32_t k = 0; k < pool; ++k) {
            const std::int64_t pr =
                center - static_cast<std::int64_t>(pool / 2) + k;
            if (pr < 0 || pr >= static_cast<std::int64_t>(parent_n))
                continue;
            candidates[id].push_back(
                parent.idOfRank[static_cast<std::size_t>(pr)]);
        }
        co_counts[id].assign(candidates[id].size(), 0);
    }

    std::vector<std::uint32_t> parent_counts(parent_n, 0);
    for (std::uint32_t t = 0; t < tokens; ++t) {
        trace.nextToken();
        for (const auto p : parent.activeList)
            ++parent_counts[p];
        for (const auto id : child.activeList) {
            for (std::size_t k = 0; k < candidates[id].size(); ++k) {
                if (parent.mask[candidates[id][k]])
                    ++co_counts[id][k];
            }
        }
    }

    std::vector<std::uint32_t> parent1(child_n, 0);
    std::vector<std::uint32_t> parent2(child_n, 0);
    for (std::uint32_t id = 0; id < child_n; ++id) {
        // Rank candidates by P(child | candidate) estimate.
        double best_score = -1.0;
        double second_score = -1.0;
        std::uint32_t best = 0;
        std::uint32_t second = 0;
        for (std::size_t k = 0; k < candidates[id].size(); ++k) {
            const std::uint32_t cand = candidates[id][k];
            if (parent_counts[cand] == 0)
                continue;
            const double score =
                static_cast<double>(co_counts[id][k]) /
                static_cast<double>(parent_counts[cand]);
            if (score > best_score) {
                second_score = best_score;
                second = best;
                best_score = score;
                best = cand;
            } else if (score > second_score) {
                second_score = score;
                second = cand;
            }
        }
        parent1[id] = best;
        parent2[id] = second;
    }
    return {std::move(parent1), std::move(parent2)};
}

} // namespace hermes::sched
