/**
 * @file
 * Offline neuron-mapping solver (Sec. IV-B, Eqs. 1-7).
 *
 * The paper formalizes the initial hot/cold placement as an ILP over
 * binary placement variables x_il^j and solves it offline with PuLP.
 * This implementation keeps the exact objective
 *
 *   min sum_b max( T_b^GPU * sum_{i in GPU} f_i + 2*Tsync,
 *                  max_j T_b^DIMM * sum_{i in DIMM j} f_i )
 *
 * subject to the GPU and per-DIMM capacity constraints, and solves it
 * with a two-stage method that exploits the problem's structure:
 *
 *  1. Waterline stage: within a block the optimum always promotes the
 *     most frequent neurons to the GPU (exchange argument), so the
 *     only per-block decision is the hot count.  Under the balanced-
 *     DIMM relaxation, GPU bytes are allocated across blocks greedily
 *     by marginal latency reduction per byte (a Lagrangian argument;
 *     gains are diminishing because frequencies are sorted).
 *  2. Assignment stage: cold neurons are distributed over DIMMs by
 *     LPT (longest-processing-time-first) on frequency, which is a
 *     4/3-approximation of the makespan-minimizing assignment.
 *
 * An exhaustive solver over tiny instances validates optimality in
 * the tests.
 */

#ifndef HERMES_SCHED_ILP_PARTITION_HH
#define HERMES_SCHED_ILP_PARTITION_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace hermes::sched {

/** One block (layer x attention/MLP) of the partition problem. */
struct BlockProblem
{
    /** Profiled activation frequency per neuron. */
    std::vector<double> frequency;

    /** Weight bytes per neuron. */
    Bytes neuronBytes = 0;

    /** GPU compute time per activated neuron (T_l^GPU). */
    Seconds gpuTimePerNeuron = 0.0;

    /** NDP-DIMM compute time per activated neuron (T_l^DIMM). */
    Seconds dimmTimePerNeuron = 0.0;
};

/** Whole-model partition problem. */
struct PartitionProblem
{
    std::vector<BlockProblem> blocks;
    Seconds syncTime = 10.0e-6;        ///< Tsync (one direction).
    Bytes gpuBudget = 0;               ///< GPU bytes for hot neurons.
    std::vector<Bytes> dimmBudgets;    ///< Per-DIMM weight capacity.
};

/** Assignment: per block, per neuron, -1 = GPU else the DIMM index. */
struct PartitionAssignment
{
    std::vector<std::vector<std::int16_t>> location;
};

/** Solver output. */
struct PartitionResult
{
    PartitionAssignment assignment;
    Seconds objective = 0.0;
};

/** Two-stage solver for the offline mapping ILP. */
class IlpPartitioner
{
  public:
    /** Solve with the waterline + LPT method described above. */
    PartitionResult solve(const PartitionProblem &problem) const;

    /**
     * Exhaustive optimum over all (D+1)^N assignments.  Exponential;
     * only for validating `solve` on tiny instances.
     */
    PartitionResult solveExhaustive(
        const PartitionProblem &problem) const;

    /** Evaluate Eq. 1 for an assignment (fatal on budget violation). */
    static Seconds objective(const PartitionProblem &problem,
                             const PartitionAssignment &assignment);

    /** Check capacity constraints (Eqs. 6-7). */
    static bool feasible(const PartitionProblem &problem,
                         const PartitionAssignment &assignment);
};

} // namespace hermes::sched

#endif // HERMES_SCHED_ILP_PARTITION_HH
