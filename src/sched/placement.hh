/**
 * @file
 * Neuron placement state shared by the offline partitioner, the
 * online mapper and the window scheduler.
 *
 * Following Sec. IV-C2, *all* neurons are stored in the NDP-DIMMs
 * (their home DIMM); hot neurons are additionally replicated in GPU
 * memory.  Swapping a neuron out of the GPU therefore costs nothing
 * (overwrite), and promoting one costs a DIMM->GPU PCIe copy.
 */

#ifndef HERMES_SCHED_PLACEMENT_HH
#define HERMES_SCHED_PLACEMENT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"
#include "model/llm_config.hh"

namespace hermes::sched {

/** Which functional block of a layer a neuron belongs to. */
enum class BlockKind { Attention, Mlp };

/** Placement of every neuron of one block. */
class BlockPlacement
{
  public:
    BlockPlacement() = default;

    BlockPlacement(std::uint32_t neurons, std::uint32_t num_dimms)
        : onGpu_(neurons, 0), homeDimm_(neurons, 0), numDimms_(num_dimms)
    {
    }

    std::uint32_t
    neurons() const
    {
        return static_cast<std::uint32_t>(onGpu_.size());
    }
    std::uint32_t numDimms() const { return numDimms_; }

    bool onGpu(std::uint32_t i) const { return onGpu_[i] != 0; }
    std::uint16_t homeDimm(std::uint32_t i) const { return homeDimm_[i]; }

    void
    setOnGpu(std::uint32_t i, bool value)
    {
        onGpu_[i] = value ? 1 : 0;
    }

    void
    setHomeDimm(std::uint32_t i, std::uint16_t dimm)
    {
        hermes_assert(dimm < numDimms_, "DIMM index out of range");
        homeDimm_[i] = dimm;
    }

    /** Number of neurons replicated on the GPU. */
    std::uint64_t
    gpuResidentCount() const
    {
        std::uint64_t count = 0;
        for (auto flag : onGpu_)
            count += flag;
        return count;
    }

    /** Number of neurons homed on each DIMM. */
    std::vector<std::uint64_t>
    dimmCounts() const
    {
        std::vector<std::uint64_t> counts(numDimms_, 0);
        for (auto dimm : homeDimm_)
            ++counts[dimm];
        return counts;
    }

  private:
    std::vector<std::uint8_t> onGpu_;
    std::vector<std::uint16_t> homeDimm_;
    std::uint32_t numDimms_ = 0;
};

/** Placement of every sparsity-eligible neuron in the model. */
struct ModelPlacement
{
    std::vector<BlockPlacement> attn; ///< One per layer.
    std::vector<BlockPlacement> mlp;  ///< One per layer.

    BlockPlacement &
    block(std::uint32_t layer, BlockKind kind)
    {
        return kind == BlockKind::Attention ? attn[layer] : mlp[layer];
    }
    const BlockPlacement &
    block(std::uint32_t layer, BlockKind kind) const
    {
        return kind == BlockKind::Attention ? attn[layer] : mlp[layer];
    }

    /** GPU bytes used by replicated hot neurons. */
    Bytes
    gpuBytesUsed(const model::LlmConfig &llm) const
    {
        Bytes bytes = 0;
        for (std::size_t l = 0; l < attn.size(); ++l) {
            bytes += attn[l].gpuResidentCount() * llm.attnNeuronBytes();
            bytes += mlp[l].gpuResidentCount() * llm.mlpNeuronBytes();
        }
        return bytes;
    }

    /** Bytes homed on each DIMM (weights only). */
    std::vector<Bytes>
    dimmBytesUsed(const model::LlmConfig &llm,
                  std::uint32_t num_dimms) const
    {
        std::vector<Bytes> bytes(num_dimms, 0);
        for (std::size_t l = 0; l < attn.size(); ++l) {
            const auto attn_counts = attn[l].dimmCounts();
            const auto mlp_counts = mlp[l].dimmCounts();
            for (std::uint32_t d = 0; d < num_dimms; ++d) {
                bytes[d] += attn_counts[d] * llm.attnNeuronBytes();
                bytes[d] += mlp_counts[d] * llm.mlpNeuronBytes();
            }
        }
        return bytes;
    }
};

/** Create an all-cold placement with round-robin DIMM homes. */
ModelPlacement makeRoundRobinPlacement(const model::LlmConfig &llm,
                                       std::uint32_t num_dimms);

} // namespace hermes::sched

#endif // HERMES_SCHED_PLACEMENT_HH
