/**
 * @file
 * Window-based online scheduling for cold-neuron load balance
 * (Sec. IV-D, Algorithm 1, Fig. 8b).
 *
 * Token-wise similarity means the activity observed over a small
 * window (5 tokens) predicts the near future, so at the end of each
 * window the scheduler pairs the most-loaded DIMM with the least-
 * loaded one and greedily remaps the most-activated cold neurons
 * until the pair balances, directing each pair's traffic to a
 * different DIMM-link bridge.
 *
 * Note on Algorithm 1 as printed: its inner loop condition reads
 * "while Z_id <= Z_{J-id}", which would remap neurons *away from the
 * underloaded* DIMM; the accompanying text and Fig. 8b describe the
 * opposite (remap from overloaded to underloaded until balanced), so
 * this implementation moves neurons from the overloaded DIMM of each
 * pair while the move strictly improves the pair's makespan.
 */

#ifndef HERMES_SCHED_WINDOW_SCHEDULER_HH
#define HERMES_SCHED_WINDOW_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "interconnect/dimm_link.hh"
#include "sched/placement.hh"

namespace hermes::sched {

/** Per-block sliding-window activity tracker + rebalancer. */
class WindowScheduler
{
  public:
    /**
     * @param neurons      Block size.
     * @param num_dimms    NDP-DIMM count.
     * @param window_size  Tokens per scheduling window (paper: 5).
     */
    WindowScheduler(std::uint32_t neurons, std::uint32_t num_dimms,
                    std::uint32_t window_size = 5);

    /** Record one token's activated neurons (Fig. 8b activity table). */
    void observe(const std::vector<std::uint32_t> &active_list);

    /** True once a full window of tokens has been observed. */
    bool windowComplete() const { return observed_ >= windowSize_; }

    /**
     * Rebalance cold neurons across DIMMs (Algorithm 1) and clear the
     * window.  Mutates the placement's home DIMMs and returns the
     * migrations for the DIMM-link cost model.
     *
     * @param placement    Block placement to adjust.
     * @param neuron_bytes Migration payload per neuron.
     */
    std::vector<interconnect::Transfer>
    rebalance(BlockPlacement &placement, Bytes neuron_bytes);

    /**
     * Oracle rebalance for the ablation study: full LPT reassignment
     * of all cold neurons by window activity (ignores migration
     * volume).  Returns the implied migrations.
     */
    std::vector<interconnect::Transfer>
    rebalanceOracle(BlockPlacement &placement, Bytes neuron_bytes);

    /** Activity count of neuron i in the current window. */
    std::uint32_t activity(std::uint32_t i) const { return activity_[i]; }

    /** Per-DIMM activated-neuron load under a placement. */
    std::vector<std::uint64_t>
    dimmLoads(const BlockPlacement &placement) const;

    void clearWindow();

  private:
    std::uint32_t numDimms_;
    std::uint32_t windowSize_;
    std::uint32_t observed_ = 0;
    std::vector<std::uint32_t> activity_;
};

/**
 * Per-layer attention + MLP window schedulers driven once per
 * completed timeline window.
 *
 * The decode pipeline invokes this after every layer's observation:
 * when the layer's window fills, both blocks rebalance (Algorithm 1
 * or the oracle) and the resulting DIMM-link migration batch is
 * returned so the pipeline can shadow it behind the dense projection.
 */
class WindowSet
{
  public:
    /** Outcome of one window boundary. */
    struct RebalanceOutcome
    {
        Seconds migrationTime = 0.0;
        Bytes migrationBytes = 0;
        std::uint64_t transfers = 0;
    };

    /** Policy switches forwarded from SchedulingConfig. */
    struct Policy
    {
        bool enabled = true; ///< false = observe only, never migrate.
        bool oracle = false; ///< Full-LPT upper bound (Fig. 13).
    };

    WindowSet(std::uint32_t layers, std::uint32_t attn_neurons,
              std::uint32_t mlp_neurons, std::uint32_t num_dimms,
              std::uint32_t window_size, Policy policy);

    /** Record one token's activated neurons for one layer. */
    void observe(std::uint32_t layer,
                 const std::vector<std::uint32_t> &attn_active,
                 const std::vector<std::uint32_t> &mlp_active);

    bool windowComplete(std::uint32_t layer) const;

    /**
     * Close the layer's window if complete: rebalance both blocks and
     * price the migration batch on the DIMM-link network.  Returns a
     * zero outcome while the window is still filling or when the
     * policy disables rebalancing.
     */
    RebalanceOutcome
    maybeRebalance(std::uint32_t layer, BlockPlacement &attn,
                   BlockPlacement &mlp, Bytes attn_neuron_bytes,
                   Bytes mlp_neuron_bytes,
                   const interconnect::DimmLinkNetwork &network);

  private:
    Policy policy_;
    std::vector<WindowScheduler> attn_;
    std::vector<WindowScheduler> mlp_;
};

} // namespace hermes::sched

#endif // HERMES_SCHED_WINDOW_SCHEDULER_HH
