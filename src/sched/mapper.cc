#include "sched/mapper.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace hermes::sched {

void
NeuronMapper::applyPartition(ModelPlacement &placement,
                             const PartitionAssignment &assignment)
{
    const std::size_t layers = placement.attn.size();
    hermes_assert(assignment.location.size() == 2 * layers,
                  "partition must cover attn+mlp of every layer");
    for (std::size_t l = 0; l < layers; ++l) {
        const auto &attn_loc = assignment.location[2 * l];
        const auto &mlp_loc = assignment.location[2 * l + 1];
        BlockPlacement &attn = placement.attn[l];
        BlockPlacement &mlp = placement.mlp[l];
        hermes_assert(attn_loc.size() == attn.neurons() &&
                      mlp_loc.size() == mlp.neurons(),
                      "partition block size mismatch");
        for (std::uint32_t i = 0; i < attn.neurons(); ++i) {
            if (attn_loc[i] < 0) {
                attn.setOnGpu(i, true);
                // Hot neurons still need a DIMM home (IV-C2); spread
                // them like the cold ones.
                attn.setHomeDimm(i, static_cast<std::uint16_t>(
                                        i % attn.numDimms()));
            } else {
                attn.setOnGpu(i, false);
                attn.setHomeDimm(
                    i, static_cast<std::uint16_t>(attn_loc[i]));
            }
        }
        for (std::uint32_t i = 0; i < mlp.neurons(); ++i) {
            if (mlp_loc[i] < 0) {
                mlp.setOnGpu(i, true);
                mlp.setHomeDimm(i, static_cast<std::uint16_t>(
                                       i % mlp.numDimms()));
            } else {
                mlp.setOnGpu(i, false);
                mlp.setHomeDimm(
                    i, static_cast<std::uint16_t>(mlp_loc[i]));
            }
        }
    }
}

AdjustmentResult
NeuronMapper::adjustBlock(BlockPlacement &placement,
                          const std::vector<std::uint32_t> &scores,
                          Bytes neuron_bytes, AdjustmentPolicy policy)
{
    hermes_assert(scores.size() == placement.neurons(),
                  "score/placement size mismatch");

    // Hot non-residents, hottest first; residents, coldest first.
    std::vector<std::uint32_t> promote;
    std::vector<std::uint32_t> residents;
    for (std::uint32_t i = 0; i < placement.neurons(); ++i) {
        if (placement.onGpu(i))
            residents.push_back(i);
        else if (scores[i] >= policy.hotThreshold)
            promote.push_back(i);
    }
    std::sort(promote.begin(), promote.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return scores[a] > scores[b];
              });
    std::sort(residents.begin(), residents.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return scores[a] < scores[b];
              });

    AdjustmentResult result;
    std::size_t out = 0;
    for (const std::uint32_t in : promote) {
        if (out >= residents.size() ||
            result.promotions >= policy.maxSwaps)
            break;
        const std::uint32_t victim = residents[out];
        // Only swap when the incoming neuron beats the coldest
        // resident by the hysteresis margin; otherwise churn buys
        // nothing and costs PCIe bandwidth.
        if (scores[in] < scores[victim] + policy.hysteresis)
            break;
        placement.setOnGpu(victim, false);
        placement.setOnGpu(in, true);
        ++out;
        ++result.promotions;
        ++result.evictions;
        result.pcieBytes += neuron_bytes;
    }
    return result;
}

} // namespace hermes::sched
