#include "sched/placement.hh"

#include <cstdint>
#include <utility>

namespace hermes::sched {

ModelPlacement
makeRoundRobinPlacement(const model::LlmConfig &llm,
                        std::uint32_t num_dimms)
{
    ModelPlacement placement;
    placement.attn.reserve(llm.layers);
    placement.mlp.reserve(llm.layers);
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        BlockPlacement attn(
            static_cast<std::uint32_t>(llm.attnNeuronsPerLayer()),
            num_dimms);
        BlockPlacement mlp(
            static_cast<std::uint32_t>(llm.mlpNeuronsPerLayer()),
            num_dimms);
        for (std::uint32_t i = 0; i < attn.neurons(); ++i)
            attn.setHomeDimm(i, static_cast<std::uint16_t>(
                                    (i + l) % num_dimms));
        for (std::uint32_t i = 0; i < mlp.neurons(); ++i)
            mlp.setHomeDimm(i, static_cast<std::uint16_t>(
                                   (i + l) % num_dimms));
        placement.attn.push_back(std::move(attn));
        placement.mlp.push_back(std::move(mlp));
    }
    return placement;
}

} // namespace hermes::sched
