#include "sched/ilp_partition.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hermes::sched {

namespace {

/** Per-block state used by the waterline stage. */
struct BlockState
{
    std::vector<std::uint32_t> byFreq; ///< Neuron ids, hottest first.
    std::vector<double> prefixMass;    ///< Hot mass for hot count k.
    double totalMass = 0.0;
    std::uint32_t hotCount = 0;
};

/** Block latency under the balanced-DIMM relaxation. */
Seconds
relaxedBlockTime(const BlockProblem &block, const BlockState &state,
                 std::uint32_t hot_count, std::uint32_t num_dimms,
                 Seconds sync_time)
{
    const double hot_mass = state.prefixMass[hot_count];
    const double cold_mass = state.totalMass - hot_mass;
    const Seconds gpu =
        block.gpuTimePerNeuron * hot_mass + 2.0 * sync_time;
    const Seconds dimm =
        block.dimmTimePerNeuron * cold_mass / num_dimms;
    return std::max(gpu, dimm);
}

} // namespace

PartitionResult
IlpPartitioner::solve(const PartitionProblem &problem) const
{
    const auto num_dimms =
        static_cast<std::uint32_t>(problem.dimmBudgets.size());
    hermes_assert(num_dimms > 0, "need at least one DIMM");

    // Stage 1: waterline.  Sort each block by frequency and allocate
    // the GPU byte budget by marginal gain per byte.
    std::vector<BlockState> states(problem.blocks.size());
    for (std::size_t b = 0; b < problem.blocks.size(); ++b) {
        const BlockProblem &block = problem.blocks[b];
        BlockState &state = states[b];
        state.byFreq.resize(block.frequency.size());
        std::iota(state.byFreq.begin(), state.byFreq.end(), 0);
        std::sort(state.byFreq.begin(), state.byFreq.end(),
                  [&](std::uint32_t a, std::uint32_t c) {
                      return block.frequency[a] > block.frequency[c];
                  });
        state.prefixMass.resize(block.frequency.size() + 1);
        state.prefixMass[0] = 0.0;
        for (std::size_t i = 0; i < state.byFreq.size(); ++i) {
            state.prefixMass[i + 1] =
                state.prefixMass[i] +
                block.frequency[state.byFreq[i]];
        }
        state.totalMass = state.prefixMass.back();
    }

    struct Candidate
    {
        double gainPerByte;
        std::size_t block;
    };
    auto cmp = [](const Candidate &a, const Candidate &b) {
        return a.gainPerByte < b.gainPerByte;
    };
    std::priority_queue<Candidate, std::vector<Candidate>,
                        decltype(cmp)>
        heap(cmp);

    auto marginal_gain = [&](std::size_t b) -> double {
        const BlockProblem &block = problem.blocks[b];
        const BlockState &state = states[b];
        if (state.hotCount >= block.frequency.size())
            return 0.0;
        const Seconds before = relaxedBlockTime(
            block, state, state.hotCount, num_dimms, problem.syncTime);
        const Seconds after =
            relaxedBlockTime(block, state, state.hotCount + 1,
                             num_dimms, problem.syncTime);
        return (before - after) /
               static_cast<double>(block.neuronBytes);
    };

    for (std::size_t b = 0; b < problem.blocks.size(); ++b) {
        const double gain = marginal_gain(b);
        if (gain > 0.0)
            heap.push({gain, b});
    }

    Bytes gpu_used = 0;
    while (!heap.empty()) {
        const Candidate top = heap.top();
        heap.pop();
        // Re-validate: the stored gain may be stale after promotions.
        const double gain = marginal_gain(top.block);
        if (gain <= 0.0)
            continue;
        if (gain < top.gainPerByte * (1.0 - 1e-12) && !heap.empty() &&
            gain < heap.top().gainPerByte) {
            heap.push({gain, top.block});
            continue;
        }
        const BlockProblem &block = problem.blocks[top.block];
        if (gpu_used + block.neuronBytes > problem.gpuBudget)
            continue;
        gpu_used += block.neuronBytes;
        ++states[top.block].hotCount;
        const double next = marginal_gain(top.block);
        if (next > 0.0)
            heap.push({next, top.block});
    }

    // Stage 2: LPT assignment of cold neurons to DIMMs, per block,
    // respecting per-DIMM byte budgets across blocks.
    PartitionResult result;
    result.assignment.location.resize(problem.blocks.size());
    std::vector<Bytes> dimm_used(num_dimms, 0);

    for (std::size_t b = 0; b < problem.blocks.size(); ++b) {
        const BlockProblem &block = problem.blocks[b];
        const BlockState &state = states[b];
        auto &location = result.assignment.location[b];
        location.assign(block.frequency.size(), 0);

        std::vector<double> dimm_mass(num_dimms, 0.0);
        std::vector<std::uint64_t> dimm_count(num_dimms, 0);
        for (std::size_t rank = 0; rank < state.byFreq.size(); ++rank) {
            const std::uint32_t id = state.byFreq[rank];
            if (rank < state.hotCount) {
                location[id] = -1;
                continue;
            }
            // Least-loaded DIMM with remaining capacity.  Neurons the
            // profile never saw activate (frequency 0) still fire
            // later — mass-based LPT would dump the whole tail on the
            // single least-mass DIMM, which then melts down when the
            // context drifts; spread the tail by neuron count
            // instead.
            const bool unseen = block.frequency[id] <= 0.0;
            std::uint32_t best = num_dimms;
            for (std::uint32_t d = 0; d < num_dimms; ++d) {
                if (dimm_used[d] + block.neuronBytes >
                    problem.dimmBudgets[d])
                    continue;
                if (best == num_dimms) {
                    best = d;
                    continue;
                }
                const bool better =
                    unseen ? dimm_count[d] < dimm_count[best]
                           : std::make_pair(dimm_mass[d],
                                            dimm_count[d]) <
                                 std::make_pair(dimm_mass[best],
                                                dimm_count[best]);
                if (better)
                    best = d;
            }
            if (best == num_dimms)
                hermes_fatal("cold neurons exceed total DIMM capacity");
            location[id] = static_cast<std::int16_t>(best);
            dimm_mass[best] += block.frequency[id];
            dimm_count[best] += 1;
            dimm_used[best] += block.neuronBytes;
        }
    }

    result.objective = objective(problem, result.assignment);
    return result;
}

PartitionResult
IlpPartitioner::solveExhaustive(const PartitionProblem &problem) const
{
    const auto num_dimms =
        static_cast<std::uint32_t>(problem.dimmBudgets.size());
    std::size_t total_neurons = 0;
    for (const auto &block : problem.blocks)
        total_neurons += block.frequency.size();
    hermes_assert(total_neurons <= 12,
                  "exhaustive solver limited to tiny instances");

    // Flatten (block, neuron) pairs and enumerate (D+1)^N choices.
    std::vector<std::pair<std::size_t, std::uint32_t>> flat;
    for (std::size_t b = 0; b < problem.blocks.size(); ++b)
        for (std::uint32_t i = 0; i < problem.blocks[b].frequency.size();
             ++i)
            flat.emplace_back(b, i);

    PartitionResult best;
    best.objective = -1.0;

    PartitionAssignment assignment;
    assignment.location.resize(problem.blocks.size());
    for (std::size_t b = 0; b < problem.blocks.size(); ++b)
        assignment.location[b].assign(
            problem.blocks[b].frequency.size(), 0);

    const std::uint64_t choices = num_dimms + 1;
    std::uint64_t combos = 1;
    for (std::size_t i = 0; i < flat.size(); ++i)
        combos *= choices;

    for (std::uint64_t code = 0; code < combos; ++code) {
        std::uint64_t rest = code;
        for (const auto &[b, i] : flat) {
            const auto choice =
                static_cast<std::int16_t>(rest % choices);
            rest /= choices;
            assignment.location[b][i] =
                choice == 0 ? -1
                            : static_cast<std::int16_t>(choice - 1);
        }
        if (!feasible(problem, assignment))
            continue;
        const Seconds obj = objective(problem, assignment);
        if (best.objective < 0.0 || obj < best.objective) {
            best.objective = obj;
            best.assignment = assignment;
        }
    }
    hermes_assert(best.objective >= 0.0, "no feasible assignment");
    return best;
}

bool
IlpPartitioner::feasible(const PartitionProblem &problem,
                         const PartitionAssignment &assignment)
{
    const auto num_dimms =
        static_cast<std::uint32_t>(problem.dimmBudgets.size());
    Bytes gpu_used = 0;
    std::vector<Bytes> dimm_used(num_dimms, 0);
    for (std::size_t b = 0; b < problem.blocks.size(); ++b) {
        const BlockProblem &block = problem.blocks[b];
        for (const std::int16_t loc : assignment.location[b]) {
            if (loc < 0) {
                gpu_used += block.neuronBytes;
            } else {
                hermes_assert(static_cast<std::uint32_t>(loc) <
                              num_dimms);
                dimm_used[static_cast<std::size_t>(loc)] +=
                    block.neuronBytes;
            }
        }
    }
    if (gpu_used > problem.gpuBudget)
        return false;
    for (std::uint32_t d = 0; d < num_dimms; ++d)
        if (dimm_used[d] > problem.dimmBudgets[d])
            return false;
    return true;
}

Seconds
IlpPartitioner::objective(const PartitionProblem &problem,
                          const PartitionAssignment &assignment)
{
    hermes_assert(assignment.location.size() == problem.blocks.size(),
                  "assignment/problem shape mismatch");
    const auto num_dimms =
        static_cast<std::uint32_t>(problem.dimmBudgets.size());
    Seconds total = 0.0;
    for (std::size_t b = 0; b < problem.blocks.size(); ++b) {
        const BlockProblem &block = problem.blocks[b];
        const auto &location = assignment.location[b];
        hermes_assert(location.size() == block.frequency.size());
        double gpu_mass = 0.0;
        std::vector<double> dimm_mass(num_dimms, 0.0);
        for (std::size_t i = 0; i < location.size(); ++i) {
            if (location[i] < 0)
                gpu_mass += block.frequency[i];
            else
                dimm_mass[static_cast<std::size_t>(location[i])] +=
                    block.frequency[i];
        }
        const Seconds gpu = block.gpuTimePerNeuron * gpu_mass +
                            2.0 * problem.syncTime;
        Seconds dimm = 0.0;
        for (const double mass : dimm_mass)
            dimm = std::max(dimm, block.dimmTimePerNeuron * mass);
        total += std::max(gpu, dimm);
    }
    return total;
}

} // namespace hermes::sched
