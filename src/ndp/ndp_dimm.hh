/**
 * @file
 * One NDP-DIMM device: a DDR4 DIMM with a center-buffer NDP core
 * (GEMV unit + activation unit) that can reach all ranks of its own
 * DIMM (Sec. IV-A1, Fig. 5b).
 *
 * The device exposes latency queries for the kernels Hermes offloads:
 * sparse GEMV over cold neurons, attention over the locally-held KV
 * cache, and the final merge of GPU and NDP partial results.  DRAM
 * time comes from the command-level rank model via the bandwidth
 * probe; datapath time comes from the cycle models of the units; the
 * two overlap (double-buffered streaming), so kernel time is their
 * maximum plus fixed launch overhead from the host command interface.
 */

#ifndef HERMES_NDP_NDP_DIMM_HH
#define HERMES_NDP_NDP_DIMM_HH

#include <cstdint>

#include "common/units.hh"
#include "dram/bandwidth_probe.hh"
#include "ndp/activation_unit.hh"
#include "ndp/gemv_unit.hh"

namespace hermes::ndp {

/** Static configuration of one NDP-DIMM. */
struct NdpDimmConfig
{
    dram::DimmConfig dimm{};
    GemvUnitConfig gemv{};
    ActivationUnitConfig activation{};

    /** NDP command dispatch cost over the memory command interface. */
    Seconds commandOverhead = 1.0e-6;

    bool operator==(const NdpDimmConfig &) const = default;
};

/** Latency breakdown of one NDP kernel invocation. */
struct NdpKernelTime
{
    Seconds memory = 0.0;   ///< DRAM streaming time.
    Seconds compute = 0.0;  ///< Datapath time.
    Seconds total = 0.0;    ///< max(memory, compute) + overhead.

    bool memoryBound() const { return memory >= compute; }
};

/** Performance model of one NDP-DIMM device. */
class NdpDimm
{
  public:
    explicit NdpDimm(NdpDimmConfig config = NdpDimmConfig{});

    const NdpDimmConfig &config() const { return config_; }
    Bytes capacity() const { return config_.dimm.capacity; }

    /** Sustained internal bandwidth for scattered neuron streaming. */
    BytesPerSecond internalBandwidth();

    /**
     * Sparse GEMV over `active_rows` locally-stored neurons of
     * `row_values` FP16 weights each, batched over `batch` tokens.
     *
     * @param compute_scale Fraction of the (rows x batch) element
     *        grid that is actually active: a batched sparse GEMV
     *        reads each unioned row once but multiplies only the
     *        batch elements whose mask is set
     *        (sparsity::BlockTrace::computeScale).
     */
    NdpKernelTime sparseGemv(std::uint64_t active_rows,
                             std::uint64_t row_values,
                             std::uint32_t batch,
                             double compute_scale = 1.0);

    /**
     * Attention over this DIMM's share of the KV cache.
     *
     * @param batch     Sequences.
     * @param kv_heads  KV heads stored on this DIMM.
     * @param head_dim  Per-head dimension.
     * @param seq_len   Context length.
     * @param gqa_group Query heads per KV head (arithmetic intensity).
     */
    NdpKernelTime attention(std::uint32_t batch, std::uint32_t kv_heads,
                            std::uint32_t head_dim, std::uint64_t seq_len,
                            std::uint32_t gqa_group);

    /** Merge partial results: stream + add `bytes` of partials. */
    NdpKernelTime merge(Bytes bytes);

    /** Elementwise ReLU over `values` activations. */
    NdpKernelTime relu(std::uint64_t values);

  private:
    NdpDimmConfig config_;
    GemvUnit gemvUnit_;
    ActivationUnit activationUnit_;
    dram::BandwidthProbe probe_;
};

} // namespace hermes::ndp

#endif // HERMES_NDP_NDP_DIMM_HH
