#include "ndp/gemv_unit.hh"

#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace hermes::ndp {

Cycles
GemvUnit::computeCycles(std::uint64_t macs) const
{
    if (macs == 0)
        return 0;
    const double cycles =
        static_cast<double>(macs) / config_.macsPerCycle();
    return static_cast<Cycles>(std::ceil(cycles)) +
           config_.pipelineDepth;
}

Seconds
GemvUnit::computeTime(std::uint64_t macs) const
{
    return cyclesToSeconds(computeCycles(macs), config_.frequencyHz);
}

Bytes
GemvUnit::spillBytes(Bytes output_bytes) const
{
    if (output_bytes <= config_.bufferBytes)
        return 0;
    // Spilled portion is written to DRAM and read back for the merge.
    return 2 * (output_bytes - config_.bufferBytes);
}

} // namespace hermes::ndp
