/**
 * @file
 * The GEMV unit inside each NDP-DIMM (Sec. IV-A1, Table II).
 *
 * 256 multipliers, each handling one 128-bit beat (eight FP16 values)
 * in a bit-serial fashion, feed a reduction-tree accumulator and a
 * 256 KB scratch buffer, all clocked at 1 GHz.  Bit-serial FP16 takes
 * one pass over the 16 value bits, so a multiplier retires its eight
 * lanes every 16 cycles; at the default width the unit sustains
 * 256 * 8 / 16 = 128 MACs/cycle = 256 GFLOP/s, i.e. the "hundreds of
 * GFLOPS" the paper quotes for DIMM-NDP.
 */

#ifndef HERMES_NDP_GEMV_UNIT_HH
#define HERMES_NDP_GEMV_UNIT_HH

#include <cstdint>

#include "common/units.hh"

namespace hermes::ndp {

/** Static configuration of one GEMV unit. */
struct GemvUnitConfig
{
    std::uint32_t multipliers = 256;        ///< Fig. 16 sweeps 32-512.
    std::uint32_t lanesPerMultiplier = 8;   ///< 128-bit beat of FP16.
    std::uint32_t bitSerialCycles = 16;     ///< One pass per FP16 bit.
    Bytes bufferBytes = 256 * kKiB;         ///< Intermediate buffer.
    double frequencyHz = 1.0e9;

    /** Reduction tree + accumulator pipeline depth (fill cycles). */
    Cycles pipelineDepth = 16;

    bool operator==(const GemvUnitConfig &) const = default;

    /** Sustained multiply-accumulates per cycle. */
    double
    macsPerCycle() const
    {
        return static_cast<double>(multipliers) * lanesPerMultiplier /
               bitSerialCycles;
    }

    /** Sustained FLOP/s (one MAC = 2 FLOPs). */
    FlopsPerSecond
    sustainedFlops() const
    {
        return 2.0 * macsPerCycle() * frequencyHz;
    }

    /**
     * Weight-byte consumption rate when compute-bound: each MAC
     * consumes one fresh FP16 weight.
     */
    BytesPerSecond
    weightDemandBandwidth() const
    {
        return macsPerCycle() * frequencyHz *
               static_cast<double>(kFp16Bytes);
    }
};

/** Cycle model of the GEMV datapath (excluding DRAM time). */
class GemvUnit
{
  public:
    explicit GemvUnit(GemvUnitConfig config = GemvUnitConfig{})
        : config_(config)
    {
    }

    const GemvUnitConfig &config() const { return config_; }

    /** Datapath cycles to execute `macs` multiply-accumulates. */
    Cycles computeCycles(std::uint64_t macs) const;

    /** Datapath time for `macs` multiply-accumulates. */
    Seconds computeTime(std::uint64_t macs) const;

    /**
     * Buffer spill traffic: output bytes beyond the on-unit buffer
     * must round-trip to DRAM.
     */
    Bytes spillBytes(Bytes output_bytes) const;

  private:
    GemvUnitConfig config_;
};

} // namespace hermes::ndp

#endif // HERMES_NDP_GEMV_UNIT_HH
