#include "ndp/activation_unit.hh"

#include <cstdint>

namespace hermes::ndp {

Cycles
ActivationUnit::reluCycles(std::uint64_t values) const
{
    if (values == 0)
        return 0;
    return (values + config_.lanes - 1) / config_.lanes + 1;
}

Cycles
ActivationUnit::softmaxCycles(std::uint64_t rows,
                              std::uint64_t width) const
{
    if (rows == 0 || width == 0)
        return 0;
    const Cycles lanes_passes = (width + config_.lanes - 1) /
                                config_.lanes;
    // Pass 1: running max (comparator tree), pass 2: exp + sum (adder
    // tree), pass 3: divide by the accumulated denominator.
    const Cycles per_row = lanes_passes      // max
                           + lanes_passes + config_.treeDepth  // exp+sum
                           + lanes_passes + config_.dividerLatency;
    return rows * per_row;
}

} // namespace hermes::ndp
