/**
 * @file
 * The activation unit inside each NDP-DIMM (Sec. IV-A1).
 *
 * 256 FP16 exponentiation, addition and multiplication lanes plus a
 * comparator tree, an adder tree and one divider.  ReLU is a single
 * comparator pass; softmax is the classic three-pass max / exp-sum /
 * divide pipeline.
 */

#ifndef HERMES_NDP_ACTIVATION_UNIT_HH
#define HERMES_NDP_ACTIVATION_UNIT_HH

#include <cstdint>

#include "common/units.hh"

namespace hermes::ndp {

/** Static configuration of one activation unit. */
struct ActivationUnitConfig
{
    std::uint32_t lanes = 256;
    double frequencyHz = 1.0e9;

    /** Latency of the single FP16 divider. */
    Cycles dividerLatency = 12;

    /** Depth of the comparator / adder trees (log2 of 256 lanes). */
    Cycles treeDepth = 8;

    bool operator==(const ActivationUnitConfig &) const = default;
};

/** Cycle model of the activation datapath. */
class ActivationUnit
{
  public:
    explicit ActivationUnit(
        ActivationUnitConfig config = ActivationUnitConfig{})
        : config_(config)
    {
    }

    const ActivationUnitConfig &config() const { return config_; }

    /** Cycles for an elementwise ReLU over `values` elements. */
    Cycles reluCycles(std::uint64_t values) const;

    /**
     * Cycles for `rows` independent softmaxes of `width` elements
     * each (one per attention head per sequence).
     */
    Cycles softmaxCycles(std::uint64_t rows, std::uint64_t width) const;

    Seconds
    reluTime(std::uint64_t values) const
    {
        return cyclesToSeconds(reluCycles(values), config_.frequencyHz);
    }

    Seconds
    softmaxTime(std::uint64_t rows, std::uint64_t width) const
    {
        return cyclesToSeconds(softmaxCycles(rows, width),
                               config_.frequencyHz);
    }

  private:
    ActivationUnitConfig config_;
};

} // namespace hermes::ndp

#endif // HERMES_NDP_ACTIVATION_UNIT_HH
