#include "ndp/ndp_dimm.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"

namespace hermes::ndp {

NdpDimm::NdpDimm(NdpDimmConfig config)
    : config_(config), gemvUnit_(config.gemv),
      activationUnit_(config.activation), probe_(config.dimm)
{
}

BytesPerSecond
NdpDimm::internalBandwidth()
{
    return probe_.internalBandwidth(dram::AccessPattern::ScatteredRows);
}

NdpKernelTime
NdpDimm::sparseGemv(std::uint64_t active_rows, std::uint64_t row_values,
                    std::uint32_t batch, double compute_scale)
{
    NdpKernelTime time;
    if (active_rows == 0 || row_values == 0 || batch == 0)
        return time;
    hermes_assert(compute_scale > 0.0 && compute_scale <= 1.0,
                  "compute scale must be in (0,1]");

    const Bytes weight_bytes = active_rows * row_values * kFp16Bytes;
    const Bytes output_bytes =
        active_rows * static_cast<Bytes>(batch) * kFp16Bytes;
    const Bytes spill = gemvUnit_.spillBytes(output_bytes);

    time.memory = probe_.streamTime(weight_bytes + spill,
                                    dram::AccessPattern::ScatteredRows);
    const auto macs = static_cast<std::uint64_t>(
        static_cast<double>(active_rows * row_values) * batch *
        compute_scale);
    time.compute = gemvUnit_.computeTime(macs);
    time.total = std::max(time.memory, time.compute) +
                 config_.commandOverhead;
    return time;
}

NdpKernelTime
NdpDimm::attention(std::uint32_t batch, std::uint32_t kv_heads,
                   std::uint32_t head_dim, std::uint64_t seq_len,
                   std::uint32_t gqa_group)
{
    NdpKernelTime time;
    if (batch == 0 || kv_heads == 0 || seq_len == 0)
        return time;
    hermes_assert(gqa_group >= 1, "GQA group must be at least 1");

    // KV cache is written/read sequentially per head.
    const Bytes kv_bytes = 2ULL * batch * kv_heads * seq_len * head_dim *
                           kFp16Bytes;
    time.memory = probe_.streamTime(
        kv_bytes, dram::AccessPattern::SequentialRows);

    // Each query head does QK^T + PV over the cache; kv_heads *
    // gqa_group query heads read this DIMM's cache share.
    const std::uint64_t query_heads =
        static_cast<std::uint64_t>(kv_heads) * gqa_group;
    const std::uint64_t macs =
        2ULL * batch * query_heads * seq_len * head_dim;
    const Seconds gemv_time = gemvUnit_.computeTime(macs);
    const Seconds softmax_time = activationUnit_.softmaxTime(
        static_cast<std::uint64_t>(batch) * query_heads, seq_len);
    time.compute = gemv_time + softmax_time;

    time.total = std::max(time.memory, time.compute) +
                 config_.commandOverhead;
    return time;
}

NdpKernelTime
NdpDimm::merge(Bytes bytes)
{
    NdpKernelTime time;
    if (bytes == 0)
        return time;
    time.memory =
        probe_.streamTime(bytes, dram::AccessPattern::SequentialRows);
    // Adder lanes consume 256 values * 2 B per cycle; never the
    // bottleneck but accounted for completeness.
    const std::uint64_t values = bytes / kFp16Bytes;
    time.compute = activationUnit_.reluTime(values);
    time.total = std::max(time.memory, time.compute) +
                 config_.commandOverhead;
    return time;
}

NdpKernelTime
NdpDimm::relu(std::uint64_t values)
{
    NdpKernelTime time;
    if (values == 0)
        return time;
    time.compute = activationUnit_.reluTime(values);
    time.memory = 0.0;
    time.total = time.compute + config_.commandOverhead;
    return time;
}

} // namespace hermes::ndp
