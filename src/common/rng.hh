/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component (trace generator, workload sampler) takes an
 * explicit seed so whole-system runs are bit-reproducible.  The engine is
 * xoshiro256** which is fast, tiny, and has no licensing constraints
 * (public domain reference implementation re-derived here).
 */

#ifndef HERMES_COMMON_RNG_HH
#define HERMES_COMMON_RNG_HH

#include <cstdint>

namespace hermes {

/**
 * xoshiro256** pseudo random generator with helpers for the
 * distributions used by the sparsity substrate.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free Lemire-style bounded draw; the tiny modulo bias
        // of the naive approach is irrelevant for bounds << 2^64 but we
        // use the multiply-shift reduction anyway.
        unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace hermes

#endif // HERMES_COMMON_RNG_HH
