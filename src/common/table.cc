#include "common/table.hh"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hermes {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header_.size()) {
        hermes_fatal("table row width ", cells.size(),
                     " does not match header width ", header_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    emit_row(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace hermes
