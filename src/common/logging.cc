#include "common/logging.hh"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace hermes {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel level, const std::string &tag,
             const std::string &message)
{
    if (static_cast<int>(level) > static_cast<int>(level_))
        return;
    std::fprintf(stderr, "[%s] %s\n", tag.c_str(), message.c_str());
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", message.c_str(), file,
                 line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file,
                 line);
    std::abort();
}

} // namespace detail
} // namespace hermes
