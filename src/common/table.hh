/**
 * @file
 * Plain-text table printer used by the figure-reproduction benches to
 * emit the same rows/series the paper reports.
 */

#ifndef HERMES_COMMON_TABLE_HH
#define HERMES_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace hermes {

/**
 * Column-aligned text table.  Collect rows of strings, then render to
 * stdout.  Keeps bench output diff-friendly.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render the table to a string with aligned columns. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hermes

#endif // HERMES_COMMON_TABLE_HH
