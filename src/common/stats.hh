/**
 * @file
 * Lightweight statistics collection.
 *
 * Device models and engines publish named scalar counters and
 * distributions into a StatSet; benches and tests read them back to
 * build figure tables and to assert invariants.
 */

#ifndef HERMES_COMMON_STATS_HH
#define HERMES_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace hermes {

/** Accumulating scalar statistic. */
class Counter
{
  public:
    void add(double value) { sum_ += value; ++samples_; }
    void set(double value) { sum_ = value; samples_ = 1; }
    void reset() { sum_ = 0.0; samples_ = 0; }

    double value() const { return sum_; }
    std::uint64_t samples() const { return samples_; }
    double
    mean() const
    {
        return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
    }

  private:
    double sum_ = 0.0;
    std::uint64_t samples_ = 0;
};

/** Online distribution statistic (min/max/mean/stddev). */
class Distribution
{
  public:
    void
    sample(double value)
    {
        ++n_;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        const double delta = value - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (value - mean_);
    }

    void
    reset()
    {
        n_ = 0;
        mean_ = 0.0;
        m2_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return mean_; }
    double min() const { return n_ == 0 ? 0.0 : min_; }
    double max() const { return n_ == 0 ? 0.0 : max_; }
    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        return std::sqrt(m2_ / static_cast<double>(n_ - 1));
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Named collection of counters and distributions.  Lookup lazily
 * creates the statistic so producers do not need a registration phase.
 */
class StatSet
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Distribution &
    distribution(const std::string &name)
    {
        return distributions_[name];
    }

    bool
    hasCounter(const std::string &name) const
    {
        return counters_.count(name) > 0;
    }

    /** Read a counter; fatal if it was never produced. */
    double
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        if (it == counters_.end())
            hermes_fatal("unknown counter '", name, "'");
        return it->second.value();
    }

    void
    reset()
    {
        for (auto &entry : counters_)
            entry.second.reset();
        for (auto &entry : distributions_)
            entry.second.reset();
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace hermes

#endif // HERMES_COMMON_STATS_HH
