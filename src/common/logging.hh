/**
 * @file
 * Logging and error-reporting helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * Severity model:
 *  - inform(): status messages, no connotation of incorrect behaviour.
 *  - warn():   something may be off; simulation continues.
 *  - fatal():  the simulation cannot continue due to a user error
 *              (bad configuration, invalid arguments).  Exits with
 *              status 1.
 *  - panic():  an internal invariant was violated (a simulator bug).
 *              Aborts so a core dump / debugger can be used.
 */

#ifndef HERMES_COMMON_LOGGING_HH
#define HERMES_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace hermes {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent = 0, Warning = 1, Info = 2, Debug = 3 };

/**
 * Process-wide logging configuration.  The level can be lowered in
 * benchmarks to suppress informational output.
 */
class Logger
{
  public:
    /** Return the singleton logger. */
    static Logger &instance();

    LogLevel level() const { return level_; }
    void setLevel(LogLevel level) { level_ = level; }

    /** Emit a message at the given level to stderr. */
    void emit(LogLevel level, const std::string &tag,
              const std::string &message);

  private:
    Logger() = default;

    LogLevel level_ = LogLevel::Warning;
};

namespace detail {

/** Fold a variadic argument pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

} // namespace detail

/** Emit an informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    Logger::instance().emit(LogLevel::Info, "info",
                            detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning message. */
template <typename... Args>
void
warn(Args &&...args)
{
    Logger::instance().emit(LogLevel::Warning, "warn",
                            detail::concat(std::forward<Args>(args)...));
}

/** Emit a debug message (only shown at LogLevel::Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    Logger::instance().emit(LogLevel::Debug, "debug",
                            detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate due to a user-caused error (bad config, impossible request).
 * Mirrors gem5's fatal(): exit(1), no core dump.
 */
#define hermes_fatal(...)                                                   \
    ::hermes::detail::fatalImpl(__FILE__, __LINE__,                         \
                                ::hermes::detail::concat(__VA_ARGS__))

/**
 * Terminate due to an internal invariant violation (a simulator bug).
 * Mirrors gem5's panic(): abort() so the failure is debuggable.
 */
#define hermes_panic(...)                                                   \
    ::hermes::detail::panicImpl(__FILE__, __LINE__,                         \
                                ::hermes::detail::concat(__VA_ARGS__))

/** Panic when a runtime invariant does not hold. */
#define hermes_assert(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::hermes::detail::panicImpl(                                    \
                __FILE__, __LINE__,                                         \
                ::hermes::detail::concat("assertion failed: " #cond " ",   \
                                         ##__VA_ARGS__));                   \
        }                                                                   \
    } while (0)

} // namespace hermes

#endif // HERMES_COMMON_LOGGING_HH
