/**
 * @file
 * Unit helpers shared across the simulator.
 *
 * All device models agree on the following conventions:
 *  - time is carried in double-precision seconds,
 *  - DRAM/NDP device-internal timing is carried in integer cycles of the
 *    owning clock domain,
 *  - sizes are carried in bytes (uint64_t),
 *  - bandwidth is carried in bytes per second.
 */

#ifndef HERMES_COMMON_UNITS_HH
#define HERMES_COMMON_UNITS_HH

#include <cstdint>

namespace hermes {

/** Integer cycle count within one clock domain. */
using Cycles = std::uint64_t;

/** Time in seconds. */
using Seconds = double;

/** Size in bytes. */
using Bytes = std::uint64_t;

/** Bandwidth in bytes per second. */
using BytesPerSecond = double;

/** Floating point operations. */
using Flops = double;

/** Floating point operation rate (FLOP/s). */
using FlopsPerSecond = double;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr Bytes kKiB = 1024ULL;
constexpr Bytes kMiB = 1024ULL * kKiB;
constexpr Bytes kGiB = 1024ULL * kMiB;

/** Convert gigabytes-per-second (decimal) to bytes-per-second. */
constexpr BytesPerSecond
gbps(double gigabytes_per_second)
{
    return gigabytes_per_second * kGiga;
}

/** Convert TFLOPS to FLOP/s. */
constexpr FlopsPerSecond
tflops(double teraflops)
{
    return teraflops * kTera;
}

/** Convert a cycle count at the given frequency (Hz) to seconds. */
constexpr Seconds
cyclesToSeconds(Cycles cycles, double frequency_hz)
{
    return static_cast<double>(cycles) / frequency_hz;
}

/** Convert seconds to cycles at the given frequency (Hz), rounding up. */
constexpr Cycles
secondsToCycles(Seconds seconds, double frequency_hz)
{
    double cycles = seconds * frequency_hz;
    auto floor_cycles = static_cast<Cycles>(cycles);
    return (cycles > static_cast<double>(floor_cycles)) ? floor_cycles + 1
                                                        : floor_cycles;
}

/** Bytes occupied by one FP16 value. */
constexpr Bytes kFp16Bytes = 2;

} // namespace hermes

#endif // HERMES_COMMON_UNITS_HH
