/**
 * @file
 * Worker-pool sizing helpers.
 *
 * Every thread pool in the simulator (router calibration, shared
 * cost-cache warming) sizes itself from a user request with a
 * hardware-probe fallback.  The standard allows
 * std::thread::hardware_concurrency() to return 0 ("not
 * computable"); these helpers clamp that case in exactly one place
 * so no caller can ever end up with a zero-thread pool or divide by
 * zero.  The clamp logic is pure (the probe value is a parameter)
 * so the zero-hardware path stays unit-testable without mocking the
 * standard library.
 */

#ifndef HERMES_COMMON_THREADS_HH
#define HERMES_COMMON_THREADS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>

namespace hermes {

/**
 * std::thread::hardware_concurrency(), clamped away from the
 * standard-sanctioned 0 return so callers can size pools (and
 * divide) without a special case.  Always >= 1.
 */
inline unsigned
hardwareThreads() noexcept
{
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

/**
 * The thread count a pool should aim for: the explicit request when
 * positive, otherwise the probed hardware parallelism — which is
 * itself clamped to 1 in case the probe reported "unknown" as 0.
 * Always >= 1.
 */
inline unsigned
effectiveThreads(std::uint32_t requested, unsigned probed) noexcept
{
    if (requested > 0)
        return requested;
    return probed == 0 ? 1 : probed;
}

/**
 * Workers to actually spawn over `jobs` independent jobs: the
 * effective thread count capped by the job count (an idle worker is
 * pure overhead).  Returns 0 only when there is no work at all;
 * callers treat <= 1 as "run serially".
 */
inline std::size_t
resolveWorkerCount(std::uint32_t requested, unsigned probed,
                   std::size_t jobs) noexcept
{
    return std::min<std::size_t>(jobs,
                                 effectiveThreads(requested, probed));
}

} // namespace hermes

#endif // HERMES_COMMON_THREADS_HH
