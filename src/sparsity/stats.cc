#include "sparsity/stats.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/logging.hh"

namespace hermes::sparsity {

double
maskSimilarity(const std::vector<std::uint8_t> &a,
               const std::vector<std::uint8_t> &b)
{
    hermes_assert(a.size() == b.size(), "mask sizes differ");
    std::uint64_t inter = 0;
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        base += a[i] != 0;
        inter += (a[i] != 0) && (b[i] != 0);
    }
    return base == 0 ? 0.0
                     : static_cast<double>(inter) /
                           static_cast<double>(base);
}

double
hotMassCoverage(std::vector<double> frequency, double hot_fraction)
{
    if (frequency.empty())
        return 0.0;
    std::sort(frequency.begin(), frequency.end(), std::greater<>());
    const double total =
        std::accumulate(frequency.begin(), frequency.end(), 0.0);
    if (total <= 0.0)
        return 0.0;
    const auto hot_count = static_cast<std::size_t>(
        hot_fraction * static_cast<double>(frequency.size()));
    const double hot_mass = std::accumulate(
        frequency.begin(),
        frequency.begin() + static_cast<std::ptrdiff_t>(hot_count), 0.0);
    return hot_mass / total;
}

TraceProfile
profileTrace(ActivationTrace &trace, std::uint32_t tokens,
             std::uint32_t max_distance, std::uint32_t probe_layer,
             double hot_fraction)
{
    hermes_assert(probe_layer + 1 < trace.llm().layers,
                  "probe layer must have a successor");
    hermes_assert(tokens > max_distance,
                  "need more tokens than the longest distance");

    trace.reset(0);

    const std::uint32_t neurons = trace.mlp(probe_layer).neurons();
    TraceProfile profile;
    profile.frequency.assign(neurons, 0.0);
    profile.similarity.byDistance.assign(max_distance, 0.0);

    // History of probed-layer masks for the similarity curve.
    std::vector<std::vector<std::uint8_t>> history;
    std::vector<std::uint64_t> sim_samples(max_distance, 0);

    double active_fraction_sum = 0.0;
    std::uint64_t parent_active = 0;
    std::uint64_t parent_and_child = 0;
    std::uint64_t child_active = 0;
    std::uint64_t child_samples = 0;

    for (std::uint32_t t = 0; t < tokens; ++t) {
        trace.nextToken();
        const BlockTrace &mlp = trace.mlp(probe_layer);
        const BlockTrace &next_attn = trace.attn(probe_layer + 1);

        for (std::uint32_t i = 0; i < neurons; ++i)
            profile.frequency[i] += mlp.mask[i];
        active_fraction_sum += trace.currentActiveFraction();

        // Layer-wise conditional: next layer's attention block reads
        // this MLP block as parent.
        for (std::uint32_t i = 0; i < next_attn.neurons(); ++i) {
            const std::uint32_t p = next_attn.parent1[i];
            const bool pa = mlp.mask[p] != 0;
            const bool ca = next_attn.mask[i] != 0;
            parent_active += pa;
            parent_and_child += pa && ca;
            child_active += ca;
            ++child_samples;
        }

        for (std::uint32_t d = 1;
             d <= max_distance && d <= history.size(); ++d) {
            profile.similarity.byDistance[d - 1] += maskSimilarity(
                history[history.size() - d], mlp.mask);
            ++sim_samples[d - 1];
        }
        history.push_back(mlp.mask);
    }

    for (auto &f : profile.frequency)
        f /= tokens;
    for (std::uint32_t d = 0; d < max_distance; ++d) {
        if (sim_samples[d] > 0)
            profile.similarity.byDistance[d] /=
                static_cast<double>(sim_samples[d]);
    }
    profile.meanActiveFraction = active_fraction_sum / tokens;
    profile.hotMassCoverage =
        hotMassCoverage(profile.frequency, hot_fraction);
    profile.parentConditional =
        parent_active == 0 ? 0.0
                           : static_cast<double>(parent_and_child) /
                                 static_cast<double>(parent_active);
    profile.childMarginal =
        child_samples == 0 ? 0.0
                           : static_cast<double>(child_active) /
                                 static_cast<double>(child_samples);
    return profile;
}

} // namespace hermes::sparsity
