/**
 * @file
 * Synthetic activation-sparsity traces.
 *
 * The paper drives Hermes with activation traces of ReLU-fied LLMs on
 * real datasets.  Those models/datasets are not available here, so
 * this generator synthesizes traces exhibiting the three measured
 * statistical properties every Hermes mechanism consumes
 * (Sec. III-B, Fig. 4):
 *
 *  1. Power-law activation frequency: ~20 % of neurons (hot) carry
 *     ~80 % of activation mass (Sec. I).  Per-neuron frequencies
 *     follow a power law whose exponent is calibrated, per block
 *     size, so the top-20 % mass coverage hits the configured target
 *     after capping and renormalization.
 *  2. Token-wise similarity (Fig. 4a): activations derive from
 *     persistent latent values that survive from token to token with
 *     probability `persistence`, so adjacent tokens overlap heavily
 *     and similarity decays to a plateau set by the frequency skew.
 *  3. Layer-wise correlation (Fig. 4b): a neuron is a "follower" with
 *     probability `couplingMix`; followers of the same frequency rank
 *     in different layers read the same master latent slot, so when a
 *     follower's rank-matched parent in the previous layer fires, the
 *     follower fires with probability ~>= parent coupling.
 *
 * The activation rule is threshold-based: neuron i is active at token
 * t iff u_i(t) < p_i, where p_i is its stationary probability and
 * u_i(t) is the (persistent) latent.  This preserves exact marginals
 * under any mixing of latent sources.
 *
 * Batched inference unions the activations of the batch's sequences:
 * a neuron must be computed when any sequence activates it, so the
 * per-neuron probability becomes 1-(1-p)^batch.
 */

#ifndef HERMES_SPARSITY_TRACE_HH
#define HERMES_SPARSITY_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "model/llm_config.hh"

namespace hermes::sparsity {

/** Statistical knobs of the synthetic trace. */
struct SparsityConfig
{
    /** Mean fraction of neurons active per token (batch 1). */
    double activeFraction = 0.2;

    /** Activation mass the top `hotFraction` of neurons must carry. */
    double targetHotMass = 0.8;

    /** Fraction of neurons counted as hot for the mass target. */
    double hotFraction = 0.2;

    /** Per-token survival probability of latent values (Fig. 4a). */
    double persistence = 0.90;

    /** Fraction of neurons that follow the shared master latent. */
    double couplingMix = 0.8;

    /** Per-token probability a follower ignores the master latent. */
    double followerNoise = 0.05;

    /**
     * Context drift (Sec. III-B, IV-C): activation sparsity is
     * input-specific — "approximately 52 % of the initialized hot
     * neurons exhibit varied activity during inference".  Every
     * `phaseTokens` tokens, a `phaseDrift` fraction of frequency
     * ranks swap owners consistently across all blocks, so hot/cold
     * membership drifts while every stationary statistic (power law,
     * similarity, correlation) is preserved.  Set phaseTokens = 0 to
     * disable.
     */
    double phaseDrift = 0.25;
    std::uint32_t phaseTokens = 48;

    /** Master seed; sequences derive sub-seeds from it. */
    std::uint64_t seed = 1;

    bool operator==(const SparsityConfig &) const = default;
};

/** Activation state of one block (attention or MLP) of one layer. */
struct BlockTrace
{
    /** Stationary activation probability per neuron (batch-unioned). */
    std::vector<double> probability;

    /**
     * Expected per-sequence activations divided by expected unioned
     * activations: multiplying (union rows x batch) MACs by this
     * factor yields the true per-element sparse compute (a batched
     * sparse GEMV masks inactive elements per row; only the weight
     * *reads* follow the union).  Equals 1 for batch 1.
     */
    double computeScale = 1.0;

    /** Current token's activation mask (1 = active). */
    std::vector<std::uint8_t> mask;

    /** Indices of currently active neurons. */
    std::vector<std::uint32_t> activeList;

    /** Rank-matched primary / secondary parent in the parent block. */
    std::vector<std::uint32_t> parent1;
    std::vector<std::uint32_t> parent2;

    /** Whether the neuron follows the master latent (correlated). */
    std::vector<std::uint8_t> follower;

    /** Neuron id holding each frequency rank (rank 0 = hottest). */
    std::vector<std::uint32_t> idOfRank;

    /** Frequency rank of each neuron id. */
    std::vector<std::uint32_t> rankOf;

    /** Master-latent slot per neuron (rank quantile). */
    std::vector<std::uint32_t> slot;

    /** Private latent per neuron. */
    std::vector<double> ownLatent;

    std::uint64_t activeCount() const { return activeList.size(); }
    std::uint32_t
    neurons() const
    {
        return static_cast<std::uint32_t>(probability.size());
    }
};

/**
 * Streaming trace generator: one instance produces the activation
 * masks of every layer, one token at a time.
 */
class ActivationTrace
{
  public:
    ActivationTrace(const model::LlmConfig &model, SparsityConfig config,
                    std::uint32_t batch = 1);

    /** Restart with a fresh sequence (new sub-seed). */
    void reset(std::uint64_t sequence_id = 0);

    /** Advance every layer to the next token. */
    void nextToken();

    /** Tokens generated since reset(). */
    std::uint64_t tokenIndex() const { return tokenIndex_; }

    const BlockTrace &attn(std::uint32_t layer) const;
    const BlockTrace &mlp(std::uint32_t layer) const;

    const model::LlmConfig &llm() const { return model_; }
    const SparsityConfig &config() const { return config_; }
    std::uint32_t batch() const { return batch_; }

    /** Mean active fraction over both blocks of all layers (current). */
    double currentActiveFraction() const;

    /**
     * Power-law exponent calibrated so the top `hotFraction` of a
     * block of `neurons` covers `targetHotMass` of the activation
     * mass (exposed for tests).
     */
    static double calibrateExponent(std::uint32_t neurons,
                                    const SparsityConfig &config);

  private:
    void
    initBlock(BlockTrace &block, std::uint32_t neurons,
              std::uint64_t salt);
    void wireParents(BlockTrace &child, const BlockTrace &parent);
    void rewireAllParents();
    void stepBlock(BlockTrace &block);
    void applyPhaseShift();
    static void swapRanks(BlockTrace &block, std::uint64_t rank_a,
                          std::uint64_t rank_b);

    model::LlmConfig model_;
    SparsityConfig config_;
    std::uint32_t batch_;
    Rng rng_;
    std::uint64_t tokenIndex_ = 0;
    std::uint32_t masterSlots_ = 0;
    std::vector<double> masterLatent_;
    std::vector<BlockTrace> attnBlocks_;
    std::vector<BlockTrace> mlpBlocks_;
};

} // namespace hermes::sparsity

#endif // HERMES_SPARSITY_TRACE_HH
