#include "sparsity/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hermes::sparsity {

namespace {

/**
 * Build per-rank probabilities: power law with exponent s, scaled by
 * water-filling so the mean equals `mean` with every entry capped at
 * `cap`.
 */
std::vector<double>
rankProbabilities(std::uint32_t neurons, double exponent, double mean,
                  double cap)
{
    std::vector<double> prob(neurons);
    for (std::uint32_t r = 0; r < neurons; ++r)
        prob[r] = std::pow(static_cast<double>(r + 1), -exponent);

    // Water-filling: repeatedly rescale the un-capped tail so the
    // total mass matches mean * neurons.
    const double target = mean * neurons;
    for (int iter = 0; iter < 32; ++iter) {
        double capped_mass = 0.0;
        double free_mass = 0.0;
        for (double p : prob) {
            if (p >= cap)
                capped_mass += cap;
            else
                free_mass += p;
        }
        if (free_mass <= 0.0)
            break;
        const double scale = (target - capped_mass) / free_mass;
        bool changed = false;
        for (double &p : prob) {
            if (p < cap) {
                p *= scale;
                if (p > cap) {
                    p = cap;
                    changed = true;
                }
            } else {
                p = cap;
            }
        }
        if (!changed)
            break;
    }
    for (double &p : prob)
        p = std::clamp(p, 1e-6, cap);
    return prob;
}

/** Mass share of the top `hot_fraction` ranks. */
double
topMassShare(const std::vector<double> &rank_prob, double hot_fraction)
{
    const auto hot = static_cast<std::size_t>(
        hot_fraction * static_cast<double>(rank_prob.size()));
    double top = 0.0;
    double total = 0.0;
    for (std::size_t r = 0; r < rank_prob.size(); ++r) {
        total += rank_prob[r];
        if (r < hot)
            top += rank_prob[r];
    }
    return total <= 0.0 ? 0.0 : top / total;
}

constexpr double kProbabilityCap = 0.98;

} // namespace

double
ActivationTrace::calibrateExponent(std::uint32_t neurons,
                                   const SparsityConfig &config)
{
    // Monotone in the exponent: steeper power law concentrates more
    // mass on the head.  Binary search to the configured target.
    double lo = 0.1;
    double hi = 3.0;
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const auto prob = rankProbabilities(
            neurons, mid, config.activeFraction, kProbabilityCap);
        if (topMassShare(prob, config.hotFraction) <
            config.targetHotMass) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

ActivationTrace::ActivationTrace(const model::LlmConfig &model,
                                 SparsityConfig config,
                                 std::uint32_t batch)
    : model_(model), config_(config), batch_(batch), rng_(config.seed)
{
    hermes_assert(batch_ >= 1, "batch must be at least 1");
    hermes_assert(config_.activeFraction > 0.0 &&
                  config_.activeFraction < 1.0,
                  "active fraction must be in (0,1)");

    masterSlots_ = static_cast<std::uint32_t>(
        std::max(model_.attnNeuronsPerLayer(),
                 model_.mlpNeuronsPerLayer()));
    masterLatent_.assign(masterSlots_, 0.0);

    attnBlocks_.resize(model_.layers);
    mlpBlocks_.resize(model_.layers);
    for (std::uint32_t l = 0; l < model_.layers; ++l) {
        initBlock(attnBlocks_[l],
                  static_cast<std::uint32_t>(model_.attnNeuronsPerLayer()),
                  0x1000 + l);
        initBlock(mlpBlocks_[l],
                  static_cast<std::uint32_t>(model_.mlpNeuronsPerLayer()),
                  0x2000 + l);
    }
    // Rank-matched correlation wiring in execution order: the
    // attention block of layer l couples to the MLP of layer l-1, the
    // MLP block couples to its own layer's attention block.
    rewireAllParents();
    reset(0);
}

void
ActivationTrace::initBlock(BlockTrace &block, std::uint32_t neurons,
                           std::uint64_t salt)
{
    // Cache exponents by block size: the calibration only depends on
    // the size and the (shared) config.
    static thread_local std::vector<std::pair<std::uint64_t, double>>
        exponent_cache;
    const std::uint64_t cache_key =
        (static_cast<std::uint64_t>(neurons) << 20) ^
        static_cast<std::uint64_t>(config_.targetHotMass * 1e6) ^
        static_cast<std::uint64_t>(config_.activeFraction * 1e3);
    double exponent = -1.0;
    for (const auto &[key, value] : exponent_cache) {
        if (key == cache_key)
            exponent = value;
    }
    if (exponent < 0.0) {
        exponent = calibrateExponent(neurons, config_);
        exponent_cache.emplace_back(cache_key, exponent);
    }

    const auto rank_prob = rankProbabilities(
        neurons, exponent, config_.activeFraction, kProbabilityCap);

    block.probability.resize(neurons);
    block.mask.assign(neurons, 0);
    block.parent1.assign(neurons, 0);
    block.parent2.assign(neurons, 0);
    block.follower.resize(neurons);
    block.slot.resize(neurons);
    block.ownLatent.assign(neurons, 0.0);
    block.idOfRank.resize(neurons);
    block.rankOf.resize(neurons);

    // Assign ranks to neuron ids through a deterministic per-block
    // permutation so hotness is not a function of the neuron index.
    std::vector<std::uint32_t> perm(neurons);
    std::iota(perm.begin(), perm.end(), 0);
    Rng init_rng(config_.seed ^ (salt * 0x9e3779b97f4a7c15ULL));
    for (std::uint32_t i = neurons; i > 1; --i)
        std::swap(perm[i - 1], perm[init_rng.below(i)]);

    double base_mass = 0.0;
    double union_mass = 0.0;
    for (std::uint32_t r = 0; r < neurons; ++r) {
        const std::uint32_t id = perm[r];
        const double base = rank_prob[r];
        base_mass += base;
        block.probability[id] =
            1.0 - std::pow(1.0 - base, static_cast<double>(batch_));
        union_mass += block.probability[id];
        block.idOfRank[r] = id;
        block.rankOf[id] = r;
        // Same-rank neurons in every block share a master slot, which
        // is what produces the cross-layer correlation.
        block.slot[id] = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(r) * masterSlots_ / neurons);
        block.follower[id] = init_rng.chance(config_.couplingMix);
    }
    // Guard against round-off at batch 1 (base == union up to eps).
    block.computeScale = std::clamp(
        union_mass > 0.0 ? base_mass / union_mass : 1.0, 1e-6, 1.0);
}

void
ActivationTrace::wireParents(BlockTrace &child, const BlockTrace &parent)
{
    const std::uint32_t child_n = child.neurons();
    const std::uint32_t parent_n = parent.neurons();
    for (std::uint32_t id = 0; id < child_n; ++id) {
        const std::uint64_t r = child.rankOf[id];
        const auto pr =
            static_cast<std::uint32_t>(r * parent_n / child_n);
        child.parent1[id] = parent.idOfRank[pr];
        child.parent2[id] = parent.idOfRank[(pr + 1) % parent_n];
    }
}

void
ActivationTrace::reset(std::uint64_t sequence_id)
{
    rng_ = Rng(config_.seed ^ (sequence_id * 0xda3e39cb94b95bdbULL) ^
               0xabcdef12345ULL);
    tokenIndex_ = 0;
    for (auto &u : masterLatent_)
        u = rng_.uniform();
    auto init_block = [&](BlockTrace &block) {
        block.activeList.clear();
        for (std::uint32_t i = 0; i < block.neurons(); ++i) {
            block.ownLatent[i] = rng_.uniform();
            const double u = block.follower[i]
                                 ? masterLatent_[block.slot[i]]
                                 : block.ownLatent[i];
            const bool active = u < block.probability[i];
            block.mask[i] = active;
            if (active)
                block.activeList.push_back(i);
        }
    };
    for (auto &block : attnBlocks_)
        init_block(block);
    for (auto &block : mlpBlocks_)
        init_block(block);
}

void
ActivationTrace::stepBlock(BlockTrace &block)
{
    const double refresh = 1.0 - config_.persistence;
    const double noise = config_.followerNoise;
    block.activeList.clear();
    for (std::uint32_t i = 0; i < block.neurons(); ++i) {
        // Evolve the private latent: one draw decides refresh and,
        // when refreshing, is recycled (scaled) as the new value.
        const double draw = rng_.uniform();
        if (draw < refresh)
            block.ownLatent[i] = draw / refresh;

        double u;
        if (block.follower[i]) {
            // Followers read the shared slot except for occasional
            // private excursions (keeps the conditional below 1).
            u = rng_.chance(noise) ? block.ownLatent[i]
                                   : masterLatent_[block.slot[i]];
        } else {
            u = block.ownLatent[i];
        }
        const bool active = u < block.probability[i];
        block.mask[i] = active;
        if (active)
            block.activeList.push_back(i);
    }
}

void
ActivationTrace::rewireAllParents()
{
    for (std::uint32_t l = 0; l < model_.layers; ++l) {
        if (l > 0)
            wireParents(attnBlocks_[l], mlpBlocks_[l - 1]);
        wireParents(mlpBlocks_[l], attnBlocks_[l]);
    }
}

void
ActivationTrace::swapRanks(BlockTrace &block, std::uint64_t rank_a,
                           std::uint64_t rank_b)
{
    const std::uint32_t id_a =
        block.idOfRank[static_cast<std::size_t>(rank_a)];
    const std::uint32_t id_b =
        block.idOfRank[static_cast<std::size_t>(rank_b)];
    if (id_a == id_b)
        return;
    // The ids trade every rank-derived attribute; their private
    // latents and current masks stay put (the new probability takes
    // effect from the next token on).
    std::swap(block.probability[id_a], block.probability[id_b]);
    std::swap(block.slot[id_a], block.slot[id_b]);
    std::swap(block.follower[id_a], block.follower[id_b]);
    block.idOfRank[static_cast<std::size_t>(rank_a)] = id_b;
    block.idOfRank[static_cast<std::size_t>(rank_b)] = id_a;
    block.rankOf[id_a] = static_cast<std::uint32_t>(rank_b);
    block.rankOf[id_b] = static_cast<std::uint32_t>(rank_a);
}

void
ActivationTrace::applyPhaseShift()
{
    // Swap rank owners at the same quantiles in every block, so the
    // cross-layer (rank-matched) correlation structure survives the
    // drift while the identity of hot neurons changes.
    const auto swaps = static_cast<std::uint64_t>(
        0.5 * config_.phaseDrift * masterSlots_);
    std::vector<std::pair<double, double>> quantiles;
    quantiles.reserve(swaps);
    for (std::uint64_t s = 0; s < swaps; ++s)
        quantiles.emplace_back(rng_.uniform(), rng_.uniform());

    auto shift_block = [&](BlockTrace &block) {
        const std::uint32_t n = block.neurons();
        for (const auto &[qa, qb] : quantiles) {
            swapRanks(block,
                      static_cast<std::uint64_t>(qa * n),
                      static_cast<std::uint64_t>(qb * n));
        }
    };
    for (std::uint32_t l = 0; l < model_.layers; ++l) {
        shift_block(attnBlocks_[l]);
        shift_block(mlpBlocks_[l]);
    }
    rewireAllParents();
}

void
ActivationTrace::nextToken()
{
    if (config_.phaseTokens > 0 && tokenIndex_ > 0 &&
        tokenIndex_ % config_.phaseTokens == 0) {
        applyPhaseShift();
    }
    // Evolve the shared semantic latent (one slot per frequency rank).
    const double refresh = 1.0 - config_.persistence;
    for (auto &u : masterLatent_) {
        const double draw = rng_.uniform();
        if (draw < refresh)
            u = draw / refresh;
    }
    for (std::uint32_t l = 0; l < model_.layers; ++l) {
        stepBlock(attnBlocks_[l]);
        stepBlock(mlpBlocks_[l]);
    }
    ++tokenIndex_;
}

const BlockTrace &
ActivationTrace::attn(std::uint32_t layer) const
{
    hermes_assert(layer < model_.layers);
    return attnBlocks_[layer];
}

const BlockTrace &
ActivationTrace::mlp(std::uint32_t layer) const
{
    hermes_assert(layer < model_.layers);
    return mlpBlocks_[layer];
}

double
ActivationTrace::currentActiveFraction() const
{
    std::uint64_t active = 0;
    std::uint64_t total = 0;
    for (std::uint32_t l = 0; l < model_.layers; ++l) {
        active += attnBlocks_[l].activeCount() +
                  mlpBlocks_[l].activeCount();
        total += attnBlocks_[l].neurons() + mlpBlocks_[l].neurons();
    }
    return total == 0 ? 0.0
                      : static_cast<double>(active) /
                            static_cast<double>(total);
}

} // namespace hermes::sparsity
