/**
 * @file
 * Profiling utilities over activation traces: the measurements behind
 * Fig. 4 (token-wise similarity, layer-wise correlation) and the
 * hot/cold 80-20 observation of Sec. I.
 */

#ifndef HERMES_SPARSITY_STATS_HH
#define HERMES_SPARSITY_STATS_HH

#include <cstdint>
#include <vector>

#include "sparsity/trace.hh"

namespace hermes::sparsity {

/** Token-wise similarity curve: similarity[d] for distance d+1. */
struct SimilarityCurve
{
    std::vector<double> byDistance;
};

/** Result of profiling a trace over a window of tokens. */
struct TraceProfile
{
    /** Per-neuron activation frequency of one probed MLP block. */
    std::vector<double> frequency;

    /** Fraction of activation mass carried by the top `hotFraction`. */
    double hotMassCoverage = 0.0;

    /** Mean active fraction over the profiled window. */
    double meanActiveFraction = 0.0;

    SimilarityCurve similarity;

    /** P(child active | primary parent active), probed layer pair. */
    double parentConditional = 0.0;

    /** P(child active) unconditioned, same probed block. */
    double childMarginal = 0.0;
};

/**
 * Run the trace for `tokens` tokens and measure all Fig. 4 statistics
 * on the probed layer.
 *
 * @param trace         Generator (reset by this call).
 * @param tokens        Number of tokens to profile.
 * @param max_distance  Longest token distance in the similarity curve.
 * @param probe_layer   Layer whose MLP block is profiled.
 * @param hot_fraction  Fraction of neurons counted as "hot".
 */
TraceProfile profileTrace(ActivationTrace &trace, std::uint32_t tokens,
                          std::uint32_t max_distance,
                          std::uint32_t probe_layer,
                          double hot_fraction = 0.2);

/**
 * Containment similarity |A & B| / |A| between two masks.
 */
double maskSimilarity(const std::vector<std::uint8_t> &a,
                      const std::vector<std::uint8_t> &b);

/**
 * Fraction of total activation mass covered by the top `hot_fraction`
 * of neurons when ranked by frequency.
 */
double hotMassCoverage(std::vector<double> frequency,
                       double hot_fraction);

} // namespace hermes::sparsity

#endif // HERMES_SPARSITY_STATS_HH
