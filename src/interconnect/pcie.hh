/**
 * @file
 * PCIe 4.0 x16 transfer model between host (DIMM) memory and the GPU.
 *
 * Three effects matter for reproducing the paper's baselines:
 *  1. peak link bandwidth (64 GB/s),
 *  2. pinned vs. pageable host buffers — pageable copies bounce
 *     through a driver staging buffer and land near 6 GB/s on PCIe 4.0
 *     systems, which is why HuggingFace Accelerate (no pinning) is so
 *     far below FlexGen (pinned, double-buffered),
 *  3. per-transfer setup cost — gathering many small tensors (Deja
 *     Vu's per-neuron loads) pays a DMA/launch overhead per chunk that
 *     large streaming transfers amortize away.
 */

#ifndef HERMES_INTERCONNECT_PCIE_HH
#define HERMES_INTERCONNECT_PCIE_HH

#include <cstdint>

#include "common/units.hh"

namespace hermes::interconnect {

/** Static PCIe link parameters. */
struct PcieConfig
{
    /** Peak link bandwidth (PCIe 4.0 x16). */
    BytesPerSecond peakBandwidth = gbps(64.0);

    /** Achievable fraction of peak with pinned host memory. */
    double pinnedEfficiency = 0.88;

    /** Effective bandwidth for pageable (unpinned) host buffers. */
    BytesPerSecond pageableBandwidth = gbps(6.0);

    /** Base latency of one transfer (submission + completion). */
    Seconds transferLatency = 8.0e-6;

    /** Extra per-chunk setup when a transfer is split into chunks. */
    Seconds perChunkOverhead = 2.5e-6;

    bool operator==(const PcieConfig &) const = default;
};

/** Latency/bandwidth model of one PCIe link. */
class PcieBus
{
  public:
    explicit PcieBus(PcieConfig config = PcieConfig{})
        : config_(config)
    {
    }

    const PcieConfig &config() const { return config_; }

    /** Time to move `bytes` in one contiguous transfer. */
    Seconds transferTime(Bytes bytes, bool pinned = true) const;

    /**
     * Time to move `bytes` as ceil(bytes/chunk) separate transfers
     * (models per-tensor or per-neuron gathers).
     */
    Seconds chunkedTransferTime(Bytes bytes, Bytes chunk_bytes,
                                bool pinned = true) const;

    /** Effective streaming bandwidth for the given buffer type. */
    BytesPerSecond effectiveBandwidth(bool pinned) const;

  private:
    PcieConfig config_;
};

} // namespace hermes::interconnect

#endif // HERMES_INTERCONNECT_PCIE_HH
