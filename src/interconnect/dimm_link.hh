/**
 * @file
 * DIMM-link inter-DIMM interconnect (Zhou et al., HPCA'23), as adopted
 * by Hermes for cold-neuron remapping.
 *
 * Each DIMM owns one bidirectional point-to-point link bridge
 * (25 GB/s per direction, Table II).  Transfers between disjoint DIMM
 * pairs proceed in parallel; transfers sharing an endpoint serialize
 * on that endpoint's bridge.
 *
 * The model also provides the host-mediated alternative (the path the
 * paper's 62x comparison uses): without DIMM-link the host CPU copies
 * neurons DIMM-to-DIMM through its own load/store path, paying driver
 * invocation per migration batch plus uncacheable-copy bandwidth, and
 * all pairs serialize behind one CPU.
 */

#ifndef HERMES_INTERCONNECT_DIMM_LINK_HH
#define HERMES_INTERCONNECT_DIMM_LINK_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace hermes::interconnect {

/** Static DIMM-link parameters (Table II). */
struct DimmLinkConfig
{
    /** Per-link, per-direction bandwidth: 8 lanes x 25 Gb/s. */
    BytesPerSecond linkBandwidth = gbps(25.0);

    /** Link traversal latency per transfer. */
    Seconds hopLatency = 200.0e-9;

    /** Energy per bit moved (1.17 pJ/b, Table II). */
    double energyPerBitJoules = 1.17e-12;

    /**
     * Host-mediated copy path used when DIMM-link is absent: the CPU
     * streams through both DIMMs with cache-bypassing accesses; the
     * sustained copy rate observed for such flows is a small fraction
     * of channel bandwidth.
     */
    BytesPerSecond hostCopyBandwidth = gbps(1.6);

    /** Driver/syscall overhead per host-mediated migration batch. */
    Seconds hostBatchOverhead = 30.0e-6;

    bool operator==(const DimmLinkConfig &) const = default;
};

/** One neuron-migration transfer between two DIMMs. */
struct Transfer
{
    std::uint32_t fromDimm = 0;
    std::uint32_t toDimm = 0;
    Bytes bytes = 0;
};

/** Timing model for a set of DIMMs joined by DIMM-links. */
class DimmLinkNetwork
{
  public:
    DimmLinkNetwork(std::uint32_t num_dimms,
                    DimmLinkConfig config = DimmLinkConfig{});

    std::uint32_t numDimms() const { return numDimms_; }
    const DimmLinkConfig &config() const { return config_; }

    /**
     * Completion time of a migration batch over DIMM-links.  Each
     * DIMM's bridge serializes the bytes it sources or sinks; disjoint
     * pairs overlap fully.
     */
    Seconds migrationTime(const std::vector<Transfer> &transfers) const;

    /** Completion time of the same batch copied through the host. */
    Seconds hostMediatedTime(const std::vector<Transfer> &transfers) const;

    /** Energy spent moving the batch over DIMM-links. */
    double migrationEnergyJoules(
        const std::vector<Transfer> &transfers) const;

  private:
    std::uint32_t numDimms_;
    DimmLinkConfig config_;
};

} // namespace hermes::interconnect

#endif // HERMES_INTERCONNECT_DIMM_LINK_HH
