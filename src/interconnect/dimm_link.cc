#include "interconnect/dimm_link.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace hermes::interconnect {

DimmLinkNetwork::DimmLinkNetwork(std::uint32_t num_dimms,
                                 DimmLinkConfig config)
    : numDimms_(num_dimms), config_(config)
{
    hermes_assert(num_dimms > 0, "need at least one DIMM");
}

Seconds
DimmLinkNetwork::migrationTime(
    const std::vector<Transfer> &transfers) const
{
    if (transfers.empty())
        return 0.0;

    // Bytes each DIMM bridge must source or sink; the batch finishes
    // when the busiest bridge drains.
    std::vector<Bytes> bridge_bytes(numDimms_, 0);
    bool any = false;
    for (const auto &transfer : transfers) {
        hermes_assert(transfer.fromDimm < numDimms_ &&
                      transfer.toDimm < numDimms_,
                      "transfer endpoint out of range");
        if (transfer.bytes == 0 || transfer.fromDimm == transfer.toDimm)
            continue;
        bridge_bytes[transfer.fromDimm] += transfer.bytes;
        bridge_bytes[transfer.toDimm] += transfer.bytes;
        any = true;
    }
    if (!any)
        return 0.0;

    const Bytes busiest =
        *std::max_element(bridge_bytes.begin(), bridge_bytes.end());
    return config_.hopLatency +
           static_cast<double>(busiest) / config_.linkBandwidth;
}

Seconds
DimmLinkNetwork::hostMediatedTime(
    const std::vector<Transfer> &transfers) const
{
    Seconds total = 0.0;
    for (const auto &transfer : transfers) {
        if (transfer.bytes == 0 || transfer.fromDimm == transfer.toDimm)
            continue;
        // Read out of the source DIMM and write into the target DIMM
        // serialize through the host CPU.
        total += config_.hostBatchOverhead +
                 2.0 * static_cast<double>(transfer.bytes) /
                     config_.hostCopyBandwidth;
    }
    return total;
}

double
DimmLinkNetwork::migrationEnergyJoules(
    const std::vector<Transfer> &transfers) const
{
    double joules = 0.0;
    for (const auto &transfer : transfers) {
        if (transfer.fromDimm == transfer.toDimm)
            continue;
        joules += static_cast<double>(transfer.bytes) * 8.0 *
                  config_.energyPerBitJoules;
    }
    return joules;
}

} // namespace hermes::interconnect
