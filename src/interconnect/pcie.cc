#include "interconnect/pcie.hh"

#include <cstdint>

#include "common/logging.hh"

namespace hermes::interconnect {

BytesPerSecond
PcieBus::effectiveBandwidth(bool pinned) const
{
    return pinned ? config_.peakBandwidth * config_.pinnedEfficiency
                  : config_.pageableBandwidth;
}

Seconds
PcieBus::transferTime(Bytes bytes, bool pinned) const
{
    if (bytes == 0)
        return 0.0;
    return config_.transferLatency +
           static_cast<double>(bytes) / effectiveBandwidth(pinned);
}

Seconds
PcieBus::chunkedTransferTime(Bytes bytes, Bytes chunk_bytes,
                             bool pinned) const
{
    if (bytes == 0)
        return 0.0;
    hermes_assert(chunk_bytes > 0, "chunk size must be positive");
    const std::uint64_t chunks =
        (bytes + chunk_bytes - 1) / chunk_bytes;
    return config_.transferLatency +
           static_cast<double>(chunks) * config_.perChunkOverhead +
           static_cast<double>(bytes) / effectiveBandwidth(pinned);
}

} // namespace hermes::interconnect
