#include "runtime/hermes_host_engine.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "runtime/common_costs.hh"
#include "runtime/decode_pipeline.hh"
#include "sparsity/trace.hh"

namespace hermes::runtime {

InferenceResult
HermesHostEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();

    const model::LlmConfig &llm = request.llm;
    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);

    // Attention runs on the GPU (PowerInfer keeps the KV cache there).
    const Bytes kv_bytes =
        static_cast<Bytes>(request.batch) *
        (request.promptTokens + request.generateTokens) *
        llm.kvBytesPerToken();
    const GpuResidency residency =
        computeResidency(config_, llm, kv_bytes);

    // Profile a representative layer to find how much activation mass
    // the hot budget covers.
    model::LlmConfig sim_llm = llm;
    sim_llm.layers = std::min<std::uint32_t>(llm.layers, 4);
    sparsity::SparsityConfig sparsity_config = config_.sparsity;
    sparsity_config.seed = request.seed;
    sparsity::ActivationTrace trace(sim_llm, sparsity_config,
                                    request.batch);
    std::vector<double> attn_freq(trace.attn(1).neurons(), 0.0);
    std::vector<double> mlp_freq(trace.mlp(1).neurons(), 0.0);
    for (std::uint32_t t = 0; t < request.profileTokens; ++t) {
        trace.nextToken();
        for (const auto id : trace.attn(1).activeList)
            attn_freq[id] += 1.0;
        for (const auto id : trace.mlp(1).activeList)
            mlp_freq[id] += 1.0;
    }
    for (auto &f : attn_freq)
        f /= request.profileTokens;
    for (auto &f : mlp_freq)
        f /= request.profileTokens;

    // Hot set: most frequent neurons until the per-layer quota fills.
    auto split_mass = [&](std::vector<double> freq, Bytes neuron_bytes,
                          Bytes layer_budget, double &hot,
                          double &cold) {
        std::sort(freq.begin(), freq.end(), std::greater<>());
        const std::uint64_t hot_count = std::min<std::uint64_t>(
            freq.size(), layer_budget / neuron_bytes);
        hot = std::accumulate(
            freq.begin(),
            freq.begin() + static_cast<std::ptrdiff_t>(hot_count), 0.0);
        cold = std::accumulate(
            freq.begin() + static_cast<std::ptrdiff_t>(hot_count),
            freq.end(), 0.0);
    };
    // The hot budget splits across layers and blocks pro rata.
    const Bytes per_layer_budget = residency.hotBudget / llm.layers;
    const Bytes attn_budget = static_cast<Bytes>(
        per_layer_budget *
        (static_cast<double>(llm.attnNeuronsPerLayer() *
                             llm.attnNeuronBytes()) /
         llm.sparseBytesPerLayer()));
    const Bytes mlp_budget = per_layer_budget - attn_budget;

    double attn_hot = 0.0, attn_cold = 0.0;
    double mlp_hot = 0.0, mlp_cold = 0.0;
    split_mass(attn_freq, llm.attnNeuronBytes(), attn_budget, attn_hot,
               attn_cold);
    split_mass(mlp_freq, llm.mlpNeuronBytes(), mlp_budget, mlp_hot,
               mlp_cold);

    // Prompting: as in Hermes, GPU + streamed weights.
    const Bytes resident =
        residency.denseBytes +
        std::min(residency.hotBudget,
                 static_cast<Bytes>(llm.layers) *
                     llm.sparseBytesPerLayer());
    const Bytes non_resident =
        llm.totalBytes() > resident ? llm.totalBytes() - resident : 0;
    result.prefillTime = streamingPrefill(config_, llm, request.batch,
                                          request.promptTokens,
                                          non_resident, true, true);
    result.breakdown.prefill = result.prefillTime;

    // Per token: GPU handles hot + dense parts, CPU streams the
    // activated cold rows from plain DIMMs; the two overlap, and each
    // layer syncs activations over PCIe.
    const Seconds sync = activationSyncTime(pcie, llm, request.batch);
    const std::uint64_t h = llm.hidden;
    const std::uint64_t attn_values = h + 2ULL * llm.kvDim();
    const std::uint64_t mlp_values =
        static_cast<std::uint64_t>(llm.mlpMatrices) * h;

    auto cpu_gemv = [&](double active_mass, std::uint64_t values) {
        const double bytes = active_mass * values * kFp16Bytes;
        const double flops =
            2.0 * active_mass * values * request.batch;
        return std::max(
            bytes / config_.host.effectiveGatherBandwidth(),
            flops / config_.host.compute);
    };

    // split_mass sums frequencies, i.e. the expected number of
    // activated neurons per token in each partition.
    const Seconds gpu_qkv = gpu_model.sparseGemv(
        static_cast<std::uint64_t>(attn_hot), attn_values,
        request.batch);
    const Seconds cpu_qkv = cpu_gemv(attn_cold, attn_values);
    const Seconds gpu_mlp = gpu_model.sparseGemv(
        static_cast<std::uint64_t>(mlp_hot), mlp_values,
        request.batch);
    const Seconds cpu_mlp = cpu_gemv(mlp_cold, mlp_values);
    const Seconds proj = gpu_model.gemm(request.batch, h, h);
    const Seconds layer_attn =
        gpu_model.attention(request.batch, llm.heads, llm.kvHeads,
                            llm.headDim(), request.promptTokens);
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);
    const Seconds predictor_cost =
        static_cast<double>(llm.layers) *
        static_cast<double>(llm.attnNeuronsPerLayer() +
                            llm.mlpNeuronsPerLayer()) *
        config_.predictorPerNeuron;

    // Hot/cold split against the host CPU on the shared pipeline:
    // the GPU computes the hot share and returns its partials over
    // PCIe while the CPU streams the activated cold rows; each layer
    // additionally pays the activation round trip and the
    // PowerInfer-style executor synchronization.
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        pipeline.hostSplitStage(CostCategory::Fc, gpu_qkv, 0.0, sync,
                                cpu_qkv);
        pipeline.gpuStage(CostCategory::Attention, layer_attn);
        pipeline.gpuStage(CostCategory::Fc, proj);
        pipeline.hostSplitStage(CostCategory::Fc, gpu_mlp, 0.0, sync,
                                cpu_mlp);
        pipeline.pcieStage(2.0 * sync);
        pipeline.hostStage(CostCategory::Communication,
                           config_.host.layerSyncOverhead);
    }
    pipeline.gpuStage(CostCategory::Others, lm_head);
    pipeline.endToken(1.0, request.generateTokens);
    pipeline.addSerial(CostCategory::Predictor,
                       predictor_cost * request.generateTokens);

    result.generateTime = pipeline.totalTime();
    result.breakdown += pipeline.accumulated().toBreakdown();

    result.stats.counter("hot.mass.attn").set(attn_hot);
    result.stats.counter("hot.mass.mlp").set(mlp_hot);

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
