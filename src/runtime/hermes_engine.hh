/**
 * @file
 * The Hermes inference engine (Sec. IV, Fig. 6).
 *
 * Workflow per generated token, per transformer layer:
 *  1. the lightweight predictor forecasts the activated neurons;
 *  2. QKV generation splits between the GPU (hot neurons) and the
 *     NDP-DIMMs (cold neurons); the layer completes when the slower
 *     side finishes (Eqs. 1-3);
 *  3. attention runs on the NDP-DIMMs next to the KV cache;
 *  4. the dense projection runs on the GPU while the idle DIMMs and
 *     the idle PCIe link absorb the hot/cold swaps (Sec. IV-C2) and
 *     the window-based cold-neuron rebalancing (Sec. IV-D);
 *  5. the MLP block splits like QKV; results merge on the DIMMs.
 *
 * The prompting stage streams non-resident weights once and runs on
 * the GPU, FlexGen-style (Sec. IV-A2).
 *
 * Scheduling toggles in SystemConfig::sched select the Fig. 13
 * ablation variants (Hermes-random / -partition / -token- /
 * -layer-adjustment / -adjustment / full).
 */

#ifndef HERMES_RUNTIME_HERMES_ENGINE_HH
#define HERMES_RUNTIME_HERMES_ENGINE_HH

#include <string>
#include <utility>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** Full Hermes system: GPU + NDP-DIMMs + scheduler. */
class HermesEngine : public InferenceEngine
{
  public:
    explicit HermesEngine(SystemConfig config,
                          std::string name = "Hermes")
        : config_(std::move(config)), name_(std::move(name))
    {
    }

    std::string name() const override { return name_; }

    bool supports(const InferenceRequest &request) const override;

    InferenceResult run(const InferenceRequest &request) override;

    const SystemConfig &config() const { return config_; }

  private:
    SystemConfig config_;
    std::string name_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_HERMES_ENGINE_HH
