#include "runtime/dejavu_engine.hh"

#include <algorithm>
#include <cstdint>

#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "runtime/common_costs.hh"
#include "runtime/decode_pipeline.hh"
#include "sparsity/trace.hh"

namespace hermes::runtime {

bool
DejaVuEngine::supports(const InferenceRequest &request) const
{
    return request.llm.name.rfind("OPT", 0) == 0;
}

InferenceResult
DejaVuEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();
    if (!supports(request)) {
        result.supported = false;
        result.unsupportedReason = "Deja Vu supports OPT models only";
        return result;
    }

    const model::LlmConfig &llm = request.llm;
    const gpu::GpuModel gpu_model(config_.gpu);
    // Per-neuron gathers issue one async copy each; the driver-side
    // submission cost dominates the paper's measured Deja Vu rates.
    interconnect::PcieConfig gather_config = config_.pcie;
    gather_config.perChunkOverhead = 5.0e-6;
    const interconnect::PcieBus pcie(gather_config);

    // Per-layer MLP predictors: two dense matrices per block pair.
    const Bytes predictor_bytes =
        static_cast<Bytes>(llm.layers) *
        (static_cast<Bytes>(llm.hidden) * kPredictorRank +
         static_cast<Bytes>(kPredictorRank) *
             (llm.hidden + llm.ffnHidden)) *
        kFp16Bytes;

    // "Since the activated neurons are dynamic and cannot be
    // pre-loaded into the limited consumer-grade GPU memory, data
    // still need to be loaded from host memory" (Sec. II-C): the
    // sparse weights live in host memory; the dense projections,
    // embeddings and the MLP predictors stay resident when they fit.
    const Bytes kv_bytes =
        static_cast<Bytes>(request.batch) *
        (request.promptTokens + request.generateTokens) *
        llm.kvBytesPerToken();
    const Bytes overhead = config_.gpuReservedBytes + kv_bytes +
                           llm.embeddingBytes() + predictor_bytes;
    const Bytes available = config_.gpu.memCapacity > overhead
                                ? config_.gpu.memCapacity - overhead
                                : 0;
    const Bytes dense_bytes = static_cast<Bytes>(llm.layers) *
                              llm.projectionBytesPerLayer();
    const bool dense_resident = dense_bytes <= available;
    const double resident_fraction = 0.0; // Sparse weights stream.

    result.prefillTime = streamingPrefill(
        config_, llm, request.batch, request.promptTokens,
        static_cast<Bytes>(llm.layers) * llm.sparseBytesPerLayer() +
            (dense_resident ? 0 : dense_bytes),
        /*pinned=*/true, /*overlap=*/true);
    result.breakdown.prefill = result.prefillTime;

    // A short trace determines how many neurons activate per token
    // (union over the batch), which is what must be gathered.
    model::LlmConfig sim_llm = llm;
    sim_llm.layers = std::min<std::uint32_t>(llm.layers, 4);
    sparsity::SparsityConfig sparsity_config = config_.sparsity;
    sparsity_config.seed = request.seed;
    sparsity::ActivationTrace trace(sim_llm, sparsity_config,
                                    request.batch);
    double active_fraction = 0.0;
    const std::uint32_t probe_tokens = 16;
    for (std::uint32_t t = 0; t < probe_tokens; ++t) {
        trace.nextToken();
        active_fraction += trace.currentActiveFraction();
    }
    active_fraction /= probe_tokens;

    // Per token: gather the activated neurons that are not resident,
    // in per-neuron chunks; the projection (dense) streams too.
    const Bytes active_sparse_bytes = static_cast<Bytes>(
        active_fraction *
        static_cast<double>(llm.layers * llm.sparseBytesPerLayer()));
    const Bytes nonresident_gather = static_cast<Bytes>(
        (1.0 - resident_fraction) *
        static_cast<double>(active_sparse_bytes));
    const Bytes nonresident_proj =
        dense_resident ? 0 : dense_bytes;
    const Bytes mean_neuron_bytes =
        (llm.attnNeuronBytes() + llm.mlpNeuronBytes()) / 2;
    const Seconds gather_time =
        pcie.chunkedTransferTime(nonresident_gather, mean_neuron_bytes,
                                 true) +
        pcie.transferTime(nonresident_proj, true);

    // GPU compute: sparse FC on activated neurons + dense projection
    // + attention + the MLP predictors themselves.
    const std::uint64_t h = llm.hidden;
    const auto active_attn = static_cast<std::uint64_t>(
        active_fraction * llm.attnNeuronsPerLayer());
    const auto active_mlp = static_cast<std::uint64_t>(
        active_fraction * llm.mlpNeuronsPerLayer());
    const Seconds layer_fc =
        gpu_model.sparseGemv(active_attn, h + 2ULL * llm.kvDim(),
                             request.batch) +
        gpu_model.gemm(request.batch, h, h) +
        gpu_model.sparseGemv(
            active_mlp,
            static_cast<std::uint64_t>(llm.mlpMatrices) * h,
            request.batch);
    const Seconds layer_attn =
        gpu_model.attention(request.batch, llm.heads, llm.kvHeads,
                            llm.headDim(), request.promptTokens);
    const Seconds layer_predictor =
        gpu_model.sparseGemv(kPredictorRank, h, request.batch) +
        gpu_model.sparseGemv(h + llm.ffnHidden, kPredictorRank,
                             request.batch);
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);
    const Seconds layer_gather =
        llm.layers > 0 ? gather_time / llm.layers : 0.0;

    // Gathers cannot overlap compute: the predictor must run first,
    // then the gather, then the sparse kernels (data dependence) —
    // a strictly serial chain on the shared pipeline.
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        pipeline.predictorStage(layer_predictor, /*on_gpu=*/true);
        pipeline.pcieStage(layer_gather);
        pipeline.gpuStage(CostCategory::Fc, layer_fc);
        pipeline.gpuStage(CostCategory::Attention, layer_attn);
    }
    pipeline.gpuStage(CostCategory::Others, lm_head);
    pipeline.endToken(1.0, request.generateTokens);

    result.generateTime = pipeline.totalTime();
    result.breakdown += pipeline.accumulated().toBreakdown();

    result.stats.counter("active.fraction").set(active_fraction);
    result.stats.counter("predictor.bytes").set(
        static_cast<double>(predictor_bytes));

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
