/**
 * @file
 * Deja Vu adapted to offloading (Liu et al., ICML'23; Sec. II-C, V-A2).
 *
 * Deja Vu predicts contextual sparsity with per-layer MLP predictors
 * and loads/computes only the activated neurons.  Adapted to a
 * single-GPU offloading setting (as the paper does), the activated
 * cold neurons still cross PCIe every token as many small per-neuron
 * gathers, and the MLP predictors consume GPU memory and compute.
 */

#ifndef HERMES_RUNTIME_DEJAVU_ENGINE_HH
#define HERMES_RUNTIME_DEJAVU_ENGINE_HH

#include <cstdint>
#include <string>
#include <utility>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** Deja Vu offloading baseline (OPT models only). */
class DejaVuEngine : public InferenceEngine
{
  public:
    explicit DejaVuEngine(SystemConfig config)
        : config_(std::move(config))
    {
    }

    std::string name() const override { return "DejaVu"; }
    bool supports(const InferenceRequest &request) const override;
    InferenceResult run(const InferenceRequest &request) override;

    /** Hidden width of each per-layer MLP predictor. */
    static constexpr std::uint32_t kPredictorRank = 1024;

  private:
    SystemConfig config_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_DEJAVU_ENGINE_HH
