/**
 * @file
 * Cost and energy accounting for the evaluated systems.
 *
 * The paper's headline economic claim (Sec. V-F) is that Hermes
 * delivers competitive LLaMA2-70B inference at ~5 % of the price of
 * a 5x A100 TensorRT-LLM node (~$2,500 vs ~$50,000).  This module
 * prices the platforms and estimates the energy of a run from the
 * device models' activity, so benches can report tokens/s/$ and
 * tokens/J alongside raw throughput.
 */

#ifndef HERMES_RUNTIME_COST_MODEL_HH
#define HERMES_RUNTIME_COST_MODEL_HH

#include <cstdint>

#include "common/units.hh"
#include "runtime/factory.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** Street prices (USD, 2024-class parts, as the paper assumes). */
struct PriceList
{
    double rtx4090 = 1600.0;
    double rtx3090 = 900.0;
    double teslaT4 = 700.0;
    double a100_40gb = 10000.0;

    /** Commodity 32 GB DDR4 RDIMM. */
    double dimm32gb = 80.0;

    /**
     * NDP premium per DIMM: buffer-chip GEMV/activation units and a
     * DIMM-link bridge (1.23 mm^2 at 7 nm per Table II, plus the
     * link PHY) — a small fraction of the DRAM cost.
     */
    double ndpPremium = 45.0;

    /** Host board, CPU, PSU shared by all single-GPU systems. */
    double hostSystem = 600.0;

    /** Server chassis/fabric per multi-GPU node. */
    double serverOverhead = 5000.0;
};

/** Device power envelopes and per-bit transfer energies. */
struct EnergyParams
{
    double gpuPowerWatts = 450.0;     ///< RTX 4090 board power.
    double hostPowerWatts = 125.0;    ///< Host CPU under load.
    double a100PowerWatts = 400.0;

    /** DDR4 access energy, activate+IO amortized. */
    double dramJoulePerBit = 18.0e-12;

    /** NDP GEMV datapath energy per MAC (bit-serial FP16, 7 nm). */
    double ndpJoulePerMac = 1.2e-12;

    double pcieJoulePerBit = 5.0e-12;
    double dimmLinkJoulePerBit = 1.17e-12; ///< Table II.
};

/** Platform price for one engine kind. */
double platformPriceUsd(EngineKind kind, const SystemConfig &config,
                        std::uint32_t tensorrt_gpus = 5,
                        PriceList prices = PriceList{});

/** Activity volumes of one run (engines export these via stats). */
struct RunActivity
{
    Seconds gpuBusy = 0.0;
    Seconds hostBusy = 0.0;
    Bytes dramBytes = 0;     ///< DIMM-internal weight traffic.
    Bytes pcieBytes = 0;
    Bytes dimmLinkBytes = 0;
    double ndpMacs = 0.0;
};

/** Estimated energy of a run in joules. */
double runEnergyJoules(const RunActivity &activity,
                       EnergyParams params = EnergyParams{});

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_COST_MODEL_HH
