#include "runtime/accelerate_engine.hh"

#include <algorithm>
#include <cstdint>

#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "runtime/common_costs.hh"
#include "runtime/decode_pipeline.hh"

namespace hermes::runtime {

InferenceResult
AccelerateEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();

    const model::LlmConfig &llm = request.llm;
    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);

    // Accelerate's auto device map reserves GPU memory for
    // activations and the KV cache and dispatches every transformer
    // layer from host memory (the conservative placement users get in
    // practice); only the embeddings stay resident.
    const Bytes streamed_per_pass =
        static_cast<Bytes>(llm.layers) * llm.layerBytes();

    // Python-level module hooks add a fixed dispatch cost per layer.
    const Seconds dispatch_per_layer = 2.0e-3;

    // Prompting: weights stream once (no overlap, pageable buffers),
    // compute follows.
    result.prefillTime =
        streamingPrefill(config_, llm, request.batch,
                         request.promptTokens, streamed_per_pass,
                         /*pinned=*/false, /*overlap=*/false);
    result.breakdown.prefill = result.prefillTime;

    // Token generation: per token, every non-resident layer's weights
    // cross PCIe in per-tensor chunks (4 weight tensors per layer).
    const Bytes chunk = llm.layerBytes() / 4;
    const Seconds transfer_per_token = pcie.chunkedTransferTime(
        streamed_per_pass, std::max<Bytes>(chunk, 1), false);
    const Seconds layer_transfer =
        llm.layers > 0 ? transfer_per_token / llm.layers : 0.0;

    // Dense compute of one token on the GPU.
    const std::uint64_t h = llm.hidden;
    const Seconds layer_fc =
        gpu_model.sparseGemv(h + 2ULL * llm.kvDim(), h,
                             request.batch) +
        gpu_model.gemm(request.batch, h, h) +
        gpu_model.sparseGemv(
            static_cast<std::uint64_t>(llm.mlpMatrices) * llm.ffnHidden,
            h, request.batch);
    const Seconds layer_attn =
        gpu_model.attention(request.batch, llm.heads, llm.kvHeads,
                            llm.headDim(), request.promptTokens);
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);

    // Synchronous per-tensor fetches: no transfer/compute overlap, so
    // every stage chains serially on the shared pipeline.
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        pipeline.pcieStage(layer_transfer);
        pipeline.gpuStage(CostCategory::Others, dispatch_per_layer);
        pipeline.gpuStage(CostCategory::Fc, layer_fc);
        pipeline.gpuStage(CostCategory::Attention, layer_attn);
    }
    pipeline.gpuStage(CostCategory::Others, lm_head);
    pipeline.endToken(1.0, request.generateTokens);

    result.generateTime = pipeline.totalTime();
    result.breakdown += pipeline.accumulated().toBreakdown();

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
