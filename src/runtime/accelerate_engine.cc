#include "runtime/accelerate_engine.hh"

#include <algorithm>

#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "runtime/common_costs.hh"

namespace hermes::runtime {

InferenceResult
AccelerateEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();

    const model::LlmConfig &llm = request.llm;
    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);

    // Accelerate's auto device map reserves GPU memory for
    // activations and the KV cache and dispatches every transformer
    // layer from host memory (the conservative placement users get in
    // practice); only the embeddings stay resident.
    const Bytes streamed_per_pass =
        static_cast<Bytes>(llm.layers) * llm.layerBytes();

    // Python-level module hooks add a fixed dispatch cost per layer.
    const Seconds dispatch_per_layer = 2.0e-3;

    // Prompting: weights stream once (no overlap, pageable buffers),
    // compute follows.
    result.prefillTime =
        streamingPrefill(config_, llm, request.batch,
                         request.promptTokens, streamed_per_pass,
                         /*pinned=*/false, /*overlap=*/false);
    result.breakdown.prefill = result.prefillTime;

    // Token generation: per token, every non-resident layer's weights
    // cross PCIe in per-tensor chunks (4 weight tensors per layer).
    const Bytes chunk = llm.layerBytes() / 4;
    const Seconds transfer_per_token = pcie.chunkedTransferTime(
        streamed_per_pass, std::max<Bytes>(chunk, 1), false);

    // Dense compute of one token on the GPU.
    Seconds fc_time = 0.0;
    Seconds attn_time = 0.0;
    const std::uint64_t h = llm.hidden;
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        fc_time += gpu_model.sparseGemv(h + 2ULL * llm.kvDim(), h,
                                        request.batch);
        fc_time += gpu_model.gemm(request.batch, h, h);
        fc_time += gpu_model.sparseGemv(
            static_cast<std::uint64_t>(llm.mlpMatrices) * llm.ffnHidden,
            h, request.batch);
        attn_time += gpu_model.attention(request.batch, llm.heads,
                                         llm.kvHeads, llm.headDim(),
                                         request.promptTokens);
    }
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);

    const Seconds dispatch = dispatch_per_layer * llm.layers;
    const Seconds per_token =
        transfer_per_token + dispatch + fc_time + attn_time + lm_head;
    result.generateTime = per_token * request.generateTokens;
    result.breakdown.communication =
        transfer_per_token * request.generateTokens;
    result.breakdown.fc = fc_time * request.generateTokens;
    result.breakdown.attention = attn_time * request.generateTokens;
    result.breakdown.others =
        (lm_head + dispatch) * request.generateTokens;

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
