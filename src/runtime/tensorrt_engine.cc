#include "runtime/tensorrt_engine.hh"

#include <algorithm>
#include <cstdint>

#include "gpu/gpu_spec.hh"
#include "gpu/kernels.hh"
#include "runtime/common_costs.hh"
#include "runtime/decode_pipeline.hh"

namespace hermes::runtime {

std::uint32_t
TensorRtLlmEngine::gpusFor(const InferenceRequest &request) const
{
    if (numGpus_ != 0)
        return numGpus_;
    const gpu::GpuSpec a100 = gpu::a100_40gb();
    const Bytes kv = static_cast<Bytes>(request.batch) *
                     (request.promptTokens + request.generateTokens) *
                     request.llm.kvBytesPerToken();
    const Bytes need = request.llm.totalBytes() + kv;
    const Bytes per_gpu = a100.memCapacity - config_.gpuReservedBytes;
    return static_cast<std::uint32_t>((need + per_gpu - 1) / per_gpu);
}

InferenceResult
TensorRtLlmEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();

    const model::LlmConfig &llm = request.llm;
    const std::uint32_t gpus = gpusFor(request);
    const gpu::GpuSpec a100 = gpu::a100_40gb();
    const gpu::GpuModel gpu_model(a100);

    // Prompting: compute-bound across the tensor-parallel group.
    const Seconds prompt_compute =
        gpuPromptCompute(gpu_model, llm, request.batch,
                         request.promptTokens) /
        gpus;
    result.prefillTime = prompt_compute;
    result.breakdown.prefill = prompt_compute;

    // Token generation: every weight byte is read once per token from
    // the aggregate HBM; two all-reduces per layer cross NVLink.
    const Seconds weight_time =
        static_cast<double>(llm.totalBytes()) /
        (static_cast<double>(gpus) * a100.effectiveBandwidth());
    const Seconds kv_time =
        static_cast<double>(static_cast<Bytes>(request.batch) *
                            request.promptTokens *
                            llm.kvBytesPerToken()) /
        (static_cast<double>(gpus) * a100.effectiveBandwidth());
    const Bytes allreduce_bytes = static_cast<Bytes>(request.batch) *
                                  llm.hidden * kFp16Bytes;
    const Seconds allreduce =
        2.0 * llm.layers *
        (5.0e-6 + 2.0 * static_cast<double>(allreduce_bytes) *
                      (gpus - 1.0) /
                      (static_cast<double>(gpus) * kNvlinkBandwidth));
    const Seconds launches =
        llm.layers * 4.0 * a100.kernelLaunchOverhead;

    // Weight streaming, KV reads, NVLink all-reduces and kernel
    // launches chain serially per token on the shared pipeline (the
    // all-reduce is a collective: compute stalls on it).
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    pipeline.gpuStage(CostCategory::Fc, weight_time);
    pipeline.gpuStage(CostCategory::Attention, kv_time);
    pipeline.pcieStage(allreduce); // NVLink fabric slot.
    pipeline.gpuStage(CostCategory::Others, launches);
    pipeline.endToken(1.0, request.generateTokens);

    result.generateTime = pipeline.totalTime();
    result.breakdown += pipeline.accumulated().toBreakdown();

    result.stats.counter("gpus").set(gpus);

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
