#include "runtime/tensorrt_engine.hh"

#include <algorithm>

#include "gpu/gpu_spec.hh"
#include "gpu/kernels.hh"
#include "runtime/common_costs.hh"

namespace hermes::runtime {

std::uint32_t
TensorRtLlmEngine::gpusFor(const InferenceRequest &request) const
{
    if (numGpus_ != 0)
        return numGpus_;
    const gpu::GpuSpec a100 = gpu::a100_40gb();
    const Bytes kv = static_cast<Bytes>(request.batch) *
                     (request.promptTokens + request.generateTokens) *
                     request.llm.kvBytesPerToken();
    const Bytes need = request.llm.totalBytes() + kv;
    const Bytes per_gpu = a100.memCapacity - config_.gpuReservedBytes;
    return static_cast<std::uint32_t>((need + per_gpu - 1) / per_gpu);
}

InferenceResult
TensorRtLlmEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();

    const model::LlmConfig &llm = request.llm;
    const std::uint32_t gpus = gpusFor(request);
    const gpu::GpuSpec a100 = gpu::a100_40gb();
    const gpu::GpuModel gpu_model(a100);

    // Prompting: compute-bound across the tensor-parallel group.
    const Seconds prompt_compute =
        gpuPromptCompute(gpu_model, llm, request.batch,
                         request.promptTokens) /
        gpus;
    result.prefillTime = prompt_compute;
    result.breakdown.prefill = prompt_compute;

    // Token generation: every weight byte is read once per token from
    // the aggregate HBM; two all-reduces per layer cross NVLink.
    const Seconds weight_time =
        static_cast<double>(llm.totalBytes()) /
        (static_cast<double>(gpus) * a100.effectiveBandwidth());
    const Seconds kv_time =
        static_cast<double>(static_cast<Bytes>(request.batch) *
                            request.promptTokens *
                            llm.kvBytesPerToken()) /
        (static_cast<double>(gpus) * a100.effectiveBandwidth());
    const Bytes allreduce_bytes = static_cast<Bytes>(request.batch) *
                                  llm.hidden * kFp16Bytes;
    const Seconds allreduce =
        2.0 * llm.layers *
        (5.0e-6 + 2.0 * static_cast<double>(allreduce_bytes) *
                      (gpus - 1.0) /
                      (static_cast<double>(gpus) * kNvlinkBandwidth));
    const Seconds launches =
        llm.layers * 4.0 * a100.kernelLaunchOverhead;

    const Seconds per_token =
        weight_time + kv_time + allreduce + launches;
    result.generateTime = per_token * request.generateTokens;
    result.breakdown.fc =
        (weight_time)*request.generateTokens;
    result.breakdown.attention = kv_time * request.generateTokens;
    result.breakdown.communication =
        allreduce * request.generateTokens;
    result.breakdown.others = launches * request.generateTokens;

    result.stats.counter("gpus").set(gpus);

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
