#include "runtime/hermes_engine.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/kernels.hh"
#include "interconnect/dimm_link.hh"
#include "interconnect/pcie.hh"
#include "ndp/ndp_dimm.hh"
#include "runtime/common_costs.hh"
#include "sched/ilp_partition.hh"
#include "sched/mapper.hh"
#include "sched/predictor.hh"
#include "sched/window_scheduler.hh"
#include "sparsity/trace.hh"

namespace hermes::runtime {

namespace {

/** Predicted-active neuron counts per compute location. */
struct LocationCounts
{
    std::uint64_t gpu = 0;
    std::vector<std::uint64_t> dimm;
};

LocationCounts
countLocations(const std::vector<std::uint8_t> &mask,
               const sched::BlockPlacement &placement)
{
    LocationCounts counts;
    counts.dimm.assign(placement.numDimms(), 0);
    for (std::uint32_t i = 0; i < placement.neurons(); ++i) {
        if (!mask[i])
            continue;
        if (placement.onGpu(i))
            ++counts.gpu;
        else
            ++counts.dimm[placement.homeDimm(i)];
    }
    return counts;
}

/** Slowest NDP-DIMM for a sparse GEMV with the given per-DIMM rows. */
Seconds
worstDimmGemv(ndp::NdpDimm &ndp, const std::vector<std::uint64_t> &rows,
              std::uint64_t row_values, std::uint32_t batch,
              double compute_scale)
{
    Seconds worst = 0.0;
    for (const auto count : rows)
        worst = std::max(worst,
                         ndp.sparseGemv(count, row_values, batch,
                                        compute_scale)
                             .total);
    return worst;
}

} // namespace

bool
HermesEngine::supports(const InferenceRequest &request) const
{
    // All weights (plus the KV cache) must fit in the NDP-DIMM pool.
    const Bytes kv = static_cast<Bytes>(request.batch) *
                     (request.promptTokens + request.generateTokens) *
                     request.llm.kvBytesPerToken();
    return request.llm.totalBytes() + kv <= config_.totalDimmCapacity();
}

InferenceResult
HermesEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name_;
    if (!supports(request)) {
        result.supported = false;
        result.unsupportedReason = "model exceeds NDP-DIMM capacity";
        return result;
    }

    const model::LlmConfig &llm = request.llm;
    const std::uint32_t layers = llm.layers;
    const std::uint32_t sim_layers =
        config_.simulatedLayers == 0
            ? layers
            : std::min(layers, config_.simulatedLayers);
    const double layer_scale =
        static_cast<double>(layers) / sim_layers;

    model::LlmConfig sim_llm = llm;
    sim_llm.layers = sim_layers;

    sparsity::SparsityConfig sparsity_config = config_.sparsity;
    sparsity_config.seed = request.seed;
    sparsity::ActivationTrace trace(sim_llm, sparsity_config,
                                    request.batch);

    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);
    ndp::NdpDimm ndp(config_.dimm);
    const interconnect::DimmLinkNetwork link_net(config_.numDimms,
                                                 config_.link);

    // ---- Offline profiling: per-block activation frequencies. ----
    std::vector<std::vector<double>> attn_freq(sim_layers);
    std::vector<std::vector<double>> mlp_freq(sim_layers);
    for (std::uint32_t l = 0; l < sim_layers; ++l) {
        attn_freq[l].assign(trace.attn(l).neurons(), 0.0);
        mlp_freq[l].assign(trace.mlp(l).neurons(), 0.0);
    }
    trace.reset(0);
    for (std::uint32_t t = 0; t < request.profileTokens; ++t) {
        trace.nextToken();
        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            for (const auto id : trace.attn(l).activeList)
                attn_freq[l][id] += 1.0;
            for (const auto id : trace.mlp(l).activeList)
                mlp_freq[l][id] += 1.0;
        }
    }
    for (std::uint32_t l = 0; l < sim_layers; ++l) {
        for (auto &f : attn_freq[l])
            f /= request.profileTokens;
        for (auto &f : mlp_freq[l])
            f /= request.profileTokens;
    }

    // ---- Predictor setup. ----
    // The compute-set predictor always combines token- and layer-wise
    // signals; the Fig. 13 ablation flags select which signals feed
    // the *adjustment* scores (Sec. V-C evaluates prediction variants
    // as guides for online adjustment).
    sched::PredictorConfig predictor_config;
    sched::ModelPredictor predictor(sim_llm, predictor_config);
    for (std::uint32_t l = 0; l < sim_layers; ++l) {
        predictor.attn(l).initFromFrequency(attn_freq[l]);
        predictor.mlp(l).initFromFrequency(mlp_freq[l]);
        predictor.attn(l).setCorrelation(trace.attn(l).parent1,
                                         trace.attn(l).parent2);
        predictor.mlp(l).setCorrelation(trace.mlp(l).parent1,
                                        trace.mlp(l).parent2);
    }

    // ---- Offline partition (Sec. IV-B). ----
    const GpuResidency residency = computeResidency(config_, llm, 0);
    const Bytes sim_gpu_budget = static_cast<Bytes>(
        static_cast<double>(residency.hotBudget) / layer_scale);

    sched::ModelPlacement placement =
        sched::makeRoundRobinPlacement(sim_llm, config_.numDimms);

    const std::uint64_t attn_values = llm.hidden + 2ULL * llm.kvDim();
    const std::uint64_t mlp_values =
        static_cast<std::uint64_t>(llm.mlpMatrices) * llm.hidden;

    if (config_.sched.offlinePartition) {
        sched::PartitionProblem problem;
        problem.syncTime = activationSyncTime(pcie, llm, request.batch);
        problem.gpuBudget = sim_gpu_budget;
        problem.dimmBudgets.assign(
            config_.numDimms,
            static_cast<Bytes>(0.95 *
                               static_cast<double>(
                                   config_.dimm.dimm.capacity) /
                               layer_scale));
        // Per-neuron marginal costs via finite differences, so the
        // fixed per-kernel terms (launch, activation I/O, command
        // dispatch) cancel and only the per-row weight traffic and
        // compute remain.
        auto gpu_marginal = [&](std::uint64_t values) {
            return gpu_model.sparseGemv(1025, values, request.batch) -
                   gpu_model.sparseGemv(1024, values, request.batch);
        };
        auto dimm_marginal = [&](std::uint64_t values, double scale) {
            return ndp.sparseGemv(1025, values, request.batch, scale)
                       .total -
                   ndp.sparseGemv(1024, values, request.batch, scale)
                       .total;
        };
        const Seconds gpu_per_attn = gpu_marginal(attn_values);
        const Seconds gpu_per_mlp = gpu_marginal(mlp_values);
        const Seconds dimm_per_attn =
            dimm_marginal(attn_values, trace.attn(0).computeScale);
        const Seconds dimm_per_mlp =
            dimm_marginal(mlp_values, trace.mlp(0).computeScale);
        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            sched::BlockProblem attn_block;
            attn_block.frequency = attn_freq[l];
            attn_block.neuronBytes = llm.attnNeuronBytes();
            attn_block.gpuTimePerNeuron = gpu_per_attn;
            attn_block.dimmTimePerNeuron = dimm_per_attn;
            problem.blocks.push_back(std::move(attn_block));

            sched::BlockProblem mlp_block;
            mlp_block.frequency = mlp_freq[l];
            mlp_block.neuronBytes = llm.mlpNeuronBytes();
            mlp_block.gpuTimePerNeuron = gpu_per_mlp;
            mlp_block.dimmTimePerNeuron = dimm_per_mlp;
            problem.blocks.push_back(std::move(mlp_block));
        }
        const sched::PartitionResult partition =
            sched::IlpPartitioner().solve(problem);
        sched::NeuronMapper::applyPartition(placement,
                                            partition.assignment);
    } else {
        // Hermes-random: fill the same GPU budget with a uniformly
        // random hot set (Fig. 13 baseline).  Each block receives a
        // budget share proportional to its weight volume; a random
        // permutation prefix fills it.
        Rng rng(request.seed ^ 0xfeedface);
        const double share = std::min(
            1.0, static_cast<double>(sim_gpu_budget) /
                     static_cast<double>(
                         static_cast<Bytes>(sim_layers) *
                         llm.sparseBytesPerLayer()));
        auto fill_random = [&](sched::BlockPlacement &block) {
            const auto target = static_cast<std::uint32_t>(
                share * block.neurons());
            std::vector<std::uint32_t> order(block.neurons());
            std::iota(order.begin(), order.end(), 0);
            for (std::uint32_t i = block.neurons(); i > 1; --i)
                std::swap(order[i - 1], order[rng.below(i)]);
            for (std::uint32_t k = 0; k < target; ++k)
                block.setOnGpu(order[k], true);
        };
        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            fill_random(placement.attn[l]);
            fill_random(placement.mlp[l]);
        }
    }

    // ---- Prompting stage (Fig. 6a): GPU + streamed weights. ----
    // Every sparse weight crosses PCIe once during prompting (hot
    // neurons are only "loaded back into GPU memory" afterwards,
    // Sec. IV-A2), so the prompting cost is independent of the
    // partition; only the startup-resident dense components skip the
    // stream.
    const Bytes hot_bytes = static_cast<Bytes>(
        static_cast<double>(placement.gpuBytesUsed(llm)) * layer_scale);
    const Bytes non_resident =
        llm.totalBytes() > residency.denseBytes
            ? llm.totalBytes() - residency.denseBytes
            : 0;
    Seconds prefill = streamingPrefill(config_, llm, request.batch,
                                       request.promptTokens,
                                       non_resident, true, true);
    // KV cache produced by prompting lands in the DIMMs over PCIe.
    prefill += pcie.transferTime(static_cast<Bytes>(request.batch) *
                                 request.promptTokens *
                                 llm.kvBytesPerToken());
    result.prefillTime = prefill;
    result.breakdown.prefill = prefill;

    // ---- Token generation. ----
    std::vector<sched::WindowScheduler> attn_windows;
    std::vector<sched::WindowScheduler> mlp_windows;
    for (std::uint32_t l = 0; l < sim_layers; ++l) {
        attn_windows.emplace_back(trace.attn(l).neurons(),
                                  config_.numDimms,
                                  config_.sched.windowSize);
        mlp_windows.emplace_back(trace.mlp(l).neurons(),
                                 config_.numDimms,
                                 config_.sched.windowSize);
    }

    const std::uint32_t kv_heads_per_dimm =
        (llm.kvHeads + config_.numDimms - 1) / config_.numDimms;
    const std::uint32_t gqa_group = llm.heads / llm.kvHeads;
    const Seconds sync = activationSyncTime(pcie, llm, request.batch);
    const Seconds predictor_cost =
        static_cast<double>(layers) *
        static_cast<double>(llm.attnNeuronsPerLayer() +
                            llm.mlpNeuronsPerLayer()) *
        config_.predictorPerNeuron;
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);

    LatencyBreakdown per_layer_acc; // Scaled by layer_scale at the end.
    LatencyBreakdown per_token_acc; // Unscaled extras.

    std::vector<std::uint8_t> attn_pred;
    std::vector<std::uint8_t> mlp_pred;
    std::vector<std::uint32_t> hot_scores;
    sched::PredictionMetrics metrics;
    std::uint64_t promotions = 0;
    Bytes promotion_bytes = 0;
    Bytes migration_bytes = 0;

    for (std::uint32_t t = 0; t < request.generateTokens; ++t) {
        trace.nextToken();
        const std::uint64_t seq = request.promptTokens + t;

        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            const sparsity::BlockTrace &attn_actual = trace.attn(l);
            const sparsity::BlockTrace &mlp_actual = trace.mlp(l);

            // 1. Prediction (parents' actuals are available in
            // execution order).
            const std::vector<std::uint8_t> *attn_parent =
                l == 0 ? nullptr : &trace.mlp(l - 1).mask;
            predictor.attn(l).predict(attn_parent, attn_pred);
            predictor.mlp(l).predict(&attn_actual.mask, mlp_pred);

            // 2. QKV generation split (Fig. 6b).
            const LocationCounts qkv_counts =
                countLocations(attn_pred, placement.attn[l]);
            const Seconds qkv_gpu = gpu_model.sparseGemv(
                qkv_counts.gpu, attn_values, request.batch);
            const Seconds qkv_dimm = worstDimmGemv(
                ndp, qkv_counts.dimm, attn_values, request.batch,
                attn_actual.computeScale);
            const Seconds qkv =
                std::max(qkv_gpu + 2.0 * sync, qkv_dimm);
            per_layer_acc.fc += std::max(qkv - 2.0 * sync, 0.0);
            per_layer_acc.communication += std::min(qkv, 2.0 * sync);
            result.stats.counter("time.qkv.gpu").add(qkv_gpu);
            result.stats.counter("time.qkv.dimm").add(qkv_dimm);

            // 3. Attention on the NDP-DIMMs, next to the KV cache.
            per_layer_acc.attention +=
                ndp.attention(request.batch, kv_heads_per_dimm,
                              llm.headDim(), seq, gqa_group)
                    .total;

            // 4. Projection on the GPU; DIMMs and PCIe are idle, so
            // swaps and rebalancing hide behind it.
            per_layer_acc.communication += sync; // Attention out.
            const Seconds proj = gpu_model.gemm(
                request.batch, llm.hidden, llm.hidden);
            per_layer_acc.fc += proj;

            Seconds promote_time = 0.0;
            if (config_.sched.onlineAdjustment) {
                const bool token = config_.sched.tokenWisePrediction;
                const bool layer = config_.sched.layerWisePrediction;
                predictor.attn(l).hotScores(attn_parent, token, layer,
                                            hot_scores);
                const sched::AdjustmentResult adj_attn =
                    sched::NeuronMapper::adjustBlock(
                        placement.attn[l], hot_scores,
                        llm.attnNeuronBytes());
                predictor.mlp(l).hotScores(&attn_actual.mask, token,
                                           layer, hot_scores);
                const sched::AdjustmentResult adj_mlp =
                    sched::NeuronMapper::adjustBlock(
                        placement.mlp[l], hot_scores,
                        llm.mlpNeuronBytes());
                const Bytes upload =
                    adj_attn.pcieBytes + adj_mlp.pcieBytes;
                promotions +=
                    adj_attn.promotions + adj_mlp.promotions;
                promotion_bytes += upload;
                if (upload > 0)
                    promote_time = pcie.transferTime(upload);
            }

            Seconds migrate_time = 0.0;
            attn_windows[l].observe(attn_actual.activeList);
            mlp_windows[l].observe(mlp_actual.activeList);
            if (config_.sched.windowRebalance &&
                attn_windows[l].windowComplete()) {
                auto transfers =
                    config_.sched.oracleRebalance
                        ? attn_windows[l].rebalanceOracle(
                              placement.attn[l], llm.attnNeuronBytes())
                        : attn_windows[l].rebalance(
                              placement.attn[l], llm.attnNeuronBytes());
                auto mlp_transfers =
                    config_.sched.oracleRebalance
                        ? mlp_windows[l].rebalanceOracle(
                              placement.mlp[l], llm.mlpNeuronBytes())
                        : mlp_windows[l].rebalance(
                              placement.mlp[l], llm.mlpNeuronBytes());
                transfers.insert(transfers.end(),
                                 mlp_transfers.begin(),
                                 mlp_transfers.end());
                for (const auto &transfer : transfers)
                    migration_bytes += transfer.bytes;
                migrate_time = link_net.migrationTime(transfers);
            } else if (!config_.sched.windowRebalance &&
                       attn_windows[l].windowComplete()) {
                attn_windows[l].clearWindow();
                mlp_windows[l].clearWindow();
            }

            // Only the non-overlapped surplus shows up end to end.
            per_layer_acc.communication +=
                std::max(0.0, promote_time - proj) +
                std::max(0.0, migrate_time - proj);

            // 5. MLP split.
            const LocationCounts mlp_counts =
                countLocations(mlp_pred, placement.mlp[l]);
            const Seconds mlp_gpu = gpu_model.sparseGemv(
                mlp_counts.gpu, mlp_values, request.batch);
            const Seconds mlp_dimm = worstDimmGemv(
                ndp, mlp_counts.dimm, mlp_values, request.batch,
                mlp_actual.computeScale);
            const Seconds mlp =
                std::max(mlp_gpu + 2.0 * sync, mlp_dimm);
            per_layer_acc.fc += std::max(mlp - 2.0 * sync, 0.0);
            per_layer_acc.communication += std::min(mlp, 2.0 * sync);
            result.stats.counter("time.mlp.gpu").add(mlp_gpu);
            result.stats.counter("time.mlp.dimm").add(mlp_dimm);
            result.stats.counter("count.mlp.gpu").add(
                static_cast<double>(mlp_counts.gpu));
            result.stats.counter("count.mlp.dimm.max").add(
                static_cast<double>(*std::max_element(
                    mlp_counts.dimm.begin(), mlp_counts.dimm.end())));

            // 6. Merge of GPU and NDP partials on the DIMMs.
            per_layer_acc.others +=
                ndp.merge(static_cast<Bytes>(request.batch) *
                          llm.hidden * kFp16Bytes)
                    .total;

            // Predictor bookkeeping (metrics + FSM update).
            for (std::uint32_t i = 0; i < attn_actual.neurons(); ++i)
                metrics.tally(attn_pred[i] != 0,
                              attn_actual.mask[i] != 0);
            for (std::uint32_t i = 0; i < mlp_actual.neurons(); ++i)
                metrics.tally(mlp_pred[i] != 0,
                              mlp_actual.mask[i] != 0);
            predictor.attn(l).update(attn_actual.mask);
            predictor.mlp(l).update(mlp_actual.mask);
        }
        per_token_acc.others += lm_head;
        per_token_acc.predictor += predictor_cost;
    }

    // Scale per-layer categories to the full depth.
    LatencyBreakdown generate;
    generate.fc = per_layer_acc.fc * layer_scale;
    generate.attention = per_layer_acc.attention * layer_scale;
    generate.communication =
        per_layer_acc.communication * layer_scale;
    generate.others =
        per_layer_acc.others * layer_scale + per_token_acc.others;
    generate.predictor = per_token_acc.predictor;

    result.generateTime = generate.fc + generate.attention +
                          generate.communication + generate.others +
                          generate.predictor;
    result.breakdown += generate;

    result.stats.counter("predictor.accuracy").set(metrics.accuracy());
    result.stats.counter("predictor.recall").set(metrics.recall());
    result.stats.counter("predictor.precision").set(
        metrics.precision());
    result.stats.counter("hot.bytes").set(
        static_cast<double>(hot_bytes));
    result.stats.counter("promotions").set(
        static_cast<double>(promotions));
    result.stats.counter("promotion.bytes").set(
        static_cast<double>(promotion_bytes));
    result.stats.counter("migration.bytes").set(
        static_cast<double>(migration_bytes));

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
