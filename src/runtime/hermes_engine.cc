#include "runtime/hermes_engine.hh"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/kernels.hh"
#include "interconnect/dimm_link.hh"
#include "interconnect/pcie.hh"
#include "ndp/ndp_dimm.hh"
#include "runtime/common_costs.hh"
#include "runtime/decode_pipeline.hh"
#include "sched/ilp_partition.hh"
#include "sched/mapper.hh"
#include "sched/predictor.hh"
#include "sched/window_scheduler.hh"
#include "sparsity/trace.hh"

namespace hermes::runtime {

namespace {

/** Predicted-active neuron counts per compute location. */
struct LocationCounts
{
    std::uint64_t gpu = 0;
    std::vector<std::uint64_t> dimm;
};

LocationCounts
countLocations(const std::vector<std::uint8_t> &mask,
               const sched::BlockPlacement &placement)
{
    LocationCounts counts;
    counts.dimm.assign(placement.numDimms(), 0);
    for (std::uint32_t i = 0; i < placement.neurons(); ++i) {
        if (!mask[i])
            continue;
        if (placement.onGpu(i))
            ++counts.gpu;
        else
            ++counts.dimm[placement.homeDimm(i)];
    }
    return counts;
}

/** Per-DIMM sparse-GEMV lane times for a split stage. */
std::vector<Seconds>
dimmLaneTimes(ndp::NdpDimm &ndp, const std::vector<std::uint64_t> &rows,
              std::uint64_t row_values, std::uint32_t batch,
              double compute_scale)
{
    std::vector<Seconds> lanes;
    lanes.reserve(rows.size());
    for (const auto count : rows)
        lanes.push_back(
            ndp.sparseGemv(count, row_values, batch, compute_scale)
                .total);
    return lanes;
}

} // namespace

bool
HermesEngine::supports(const InferenceRequest &request) const
{
    if (config_.numDimms == 0)
        return false; // Hermes is defined by its NDP-DIMM pool.
    // All weights (plus the KV cache) must fit in the NDP-DIMM pool.
    const Bytes kv = static_cast<Bytes>(request.batch) *
                     (request.promptTokens + request.generateTokens) *
                     request.llm.kvBytesPerToken();
    return request.llm.totalBytes() + kv <= config_.totalDimmCapacity();
}

InferenceResult
HermesEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name_;
    if (!supports(request)) {
        result.supported = false;
        result.unsupportedReason =
            config_.numDimms == 0
                ? "platform has no NDP-DIMMs"
                : "model exceeds NDP-DIMM capacity";
        return result;
    }

    const model::LlmConfig &llm = request.llm;
    const std::uint32_t layers = llm.layers;
    const std::uint32_t sim_layers =
        config_.simulatedLayers == 0
            ? layers
            : std::min(layers, config_.simulatedLayers);
    const double layer_scale =
        static_cast<double>(layers) / sim_layers;

    model::LlmConfig sim_llm = llm;
    sim_llm.layers = sim_layers;

    sparsity::SparsityConfig sparsity_config = config_.sparsity;
    sparsity_config.seed = request.seed;
    sparsity::ActivationTrace trace(sim_llm, sparsity_config,
                                    request.batch);

    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);
    ndp::NdpDimm ndp(config_.dimm);
    const interconnect::DimmLinkNetwork link_net(config_.numDimms,
                                                 config_.link);

    // ---- Offline profiling: per-block activation frequencies. ----
    std::vector<std::vector<double>> attn_freq(sim_layers);
    std::vector<std::vector<double>> mlp_freq(sim_layers);
    for (std::uint32_t l = 0; l < sim_layers; ++l) {
        attn_freq[l].assign(trace.attn(l).neurons(), 0.0);
        mlp_freq[l].assign(trace.mlp(l).neurons(), 0.0);
    }
    const std::uint32_t profile_tokens =
        std::max<std::uint32_t>(request.profileTokens, 1);
    trace.reset(0);
    for (std::uint32_t t = 0; t < profile_tokens; ++t) {
        trace.nextToken();
        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            for (const auto id : trace.attn(l).activeList)
                attn_freq[l][id] += 1.0;
            for (const auto id : trace.mlp(l).activeList)
                mlp_freq[l][id] += 1.0;
        }
    }
    for (std::uint32_t l = 0; l < sim_layers; ++l) {
        for (auto &f : attn_freq[l])
            f /= profile_tokens;
        for (auto &f : mlp_freq[l])
            f /= profile_tokens;
    }

    // ---- Predictor setup. ----
    // The compute-set predictor always combines token- and layer-wise
    // signals; the Fig. 13 ablation flags select which signals feed
    // the *adjustment* scores (Sec. V-C evaluates prediction variants
    // as guides for online adjustment).
    sched::PredictorConfig predictor_config;
    sched::ModelPredictor predictor(sim_llm, predictor_config);
    for (std::uint32_t l = 0; l < sim_layers; ++l) {
        predictor.attn(l).initFromFrequency(attn_freq[l]);
        predictor.mlp(l).initFromFrequency(mlp_freq[l]);
        predictor.attn(l).setCorrelation(trace.attn(l).parent1,
                                         trace.attn(l).parent2);
        predictor.mlp(l).setCorrelation(trace.mlp(l).parent1,
                                        trace.mlp(l).parent2);
    }

    // ---- Offline partition (Sec. IV-B). ----
    const GpuResidency residency = computeResidency(config_, llm, 0);
    const Bytes sim_gpu_budget = static_cast<Bytes>(
        static_cast<double>(residency.hotBudget) / layer_scale);

    sched::ModelPlacement placement =
        sched::makeRoundRobinPlacement(sim_llm, config_.numDimms);

    const std::uint64_t attn_values = llm.hidden + 2ULL * llm.kvDim();
    const std::uint64_t mlp_values =
        static_cast<std::uint64_t>(llm.mlpMatrices) * llm.hidden;

    if (config_.sched.offlinePartition) {
        sched::PartitionProblem problem;
        problem.syncTime = activationSyncTime(pcie, llm, request.batch);
        problem.gpuBudget = sim_gpu_budget;
        problem.dimmBudgets.assign(
            config_.numDimms,
            static_cast<Bytes>(0.95 *
                               static_cast<double>(
                                   config_.dimm.dimm.capacity) /
                               layer_scale));
        // Per-neuron marginal costs via finite differences, so the
        // fixed per-kernel terms (launch, activation I/O, command
        // dispatch) cancel and only the per-row weight traffic and
        // compute remain.
        auto gpu_marginal = [&](std::uint64_t values) {
            return gpu_model.sparseGemv(1025, values, request.batch) -
                   gpu_model.sparseGemv(1024, values, request.batch);
        };
        auto dimm_marginal = [&](std::uint64_t values, double scale) {
            return ndp.sparseGemv(1025, values, request.batch, scale)
                       .total -
                   ndp.sparseGemv(1024, values, request.batch, scale)
                       .total;
        };
        const Seconds gpu_per_attn = gpu_marginal(attn_values);
        const Seconds gpu_per_mlp = gpu_marginal(mlp_values);
        const Seconds dimm_per_attn =
            dimm_marginal(attn_values, trace.attn(0).computeScale);
        const Seconds dimm_per_mlp =
            dimm_marginal(mlp_values, trace.mlp(0).computeScale);
        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            sched::BlockProblem attn_block;
            attn_block.frequency = attn_freq[l];
            attn_block.neuronBytes = llm.attnNeuronBytes();
            attn_block.gpuTimePerNeuron = gpu_per_attn;
            attn_block.dimmTimePerNeuron = dimm_per_attn;
            problem.blocks.push_back(std::move(attn_block));

            sched::BlockProblem mlp_block;
            mlp_block.frequency = mlp_freq[l];
            mlp_block.neuronBytes = llm.mlpNeuronBytes();
            mlp_block.gpuTimePerNeuron = gpu_per_mlp;
            mlp_block.dimmTimePerNeuron = dimm_per_mlp;
            problem.blocks.push_back(std::move(mlp_block));
        }
        const sched::PartitionResult partition =
            sched::IlpPartitioner().solve(problem);
        sched::NeuronMapper::applyPartition(placement,
                                            partition.assignment);
    } else {
        // Hermes-random: fill the same GPU budget with a uniformly
        // random hot set (Fig. 13 baseline).  Each block receives a
        // budget share proportional to its weight volume; a random
        // permutation prefix fills it.
        Rng rng(request.seed ^ 0xfeedface);
        const double share = std::min(
            1.0, static_cast<double>(sim_gpu_budget) /
                     static_cast<double>(
                         static_cast<Bytes>(sim_layers) *
                         llm.sparseBytesPerLayer()));
        auto fill_random = [&](sched::BlockPlacement &block) {
            const auto target = static_cast<std::uint32_t>(
                share * block.neurons());
            std::vector<std::uint32_t> order(block.neurons());
            std::iota(order.begin(), order.end(), 0);
            for (std::uint32_t i = block.neurons(); i > 1; --i)
                std::swap(order[i - 1], order[rng.below(i)]);
            for (std::uint32_t k = 0; k < target; ++k)
                block.setOnGpu(order[k], true);
        };
        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            fill_random(placement.attn[l]);
            fill_random(placement.mlp[l]);
        }
    }

    // ---- Prompting stage (Fig. 6a): GPU + streamed weights. ----
    // Every sparse weight crosses PCIe once during prompting (hot
    // neurons are only "loaded back into GPU memory" afterwards,
    // Sec. IV-A2), so the prompting cost is independent of the
    // partition; only the startup-resident dense components skip the
    // stream.
    const Bytes hot_bytes = static_cast<Bytes>(
        static_cast<double>(placement.gpuBytesUsed(llm)) * layer_scale);
    const Bytes non_resident =
        llm.totalBytes() > residency.denseBytes
            ? llm.totalBytes() - residency.denseBytes
            : 0;
    Seconds prefill = streamingPrefill(config_, llm, request.batch,
                                       request.promptTokens,
                                       non_resident, true, true);
    // KV cache produced by prompting lands in the DIMMs over PCIe.
    prefill += pcie.transferTime(static_cast<Bytes>(request.batch) *
                                 request.promptTokens *
                                 llm.kvBytesPerToken());
    result.prefillTime = prefill;
    result.breakdown.prefill = prefill;

    // ---- Token generation on the shared decode pipeline. ----
    sched::WindowSet windows(
        sim_layers, trace.attn(0).neurons(), trace.mlp(0).neurons(),
        config_.numDimms, config_.sched.windowSize,
        sched::WindowSet::Policy{config_.sched.windowRebalance,
                                 config_.sched.oracleRebalance});

    const std::uint32_t kv_heads_per_dimm =
        (llm.kvHeads + config_.numDimms - 1) / config_.numDimms;
    const std::uint32_t gqa_group =
        llm.kvHeads > 0 ? llm.heads / llm.kvHeads : 1;
    const Seconds sync = activationSyncTime(pcie, llm, request.batch);
    const Seconds predictor_cost =
        static_cast<double>(layers) *
        static_cast<double>(llm.attnNeuronsPerLayer() +
                            llm.mlpNeuronsPerLayer()) *
        config_.predictorPerNeuron;
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);

    DecodePipeline pipeline(config_.numDimms);

    std::vector<std::uint8_t> attn_pred;
    std::vector<std::uint8_t> mlp_pred;
    std::vector<std::uint32_t> hot_scores;
    sched::PredictionMetrics metrics;
    std::uint64_t promotions = 0;
    Bytes promotion_bytes = 0;
    Bytes migration_bytes = 0;

    for (std::uint32_t t = 0; t < request.generateTokens; ++t) {
        trace.nextToken();
        const std::uint64_t seq = request.promptTokens + t;
        pipeline.beginToken();

        for (std::uint32_t l = 0; l < sim_layers; ++l) {
            const sparsity::BlockTrace &attn_actual = trace.attn(l);
            const sparsity::BlockTrace &mlp_actual = trace.mlp(l);

            // 1. Prediction (parents' actuals are available in
            // execution order).
            const std::vector<std::uint8_t> *attn_parent =
                l == 0 ? nullptr : &trace.mlp(l - 1).mask;
            predictor.attn(l).predict(attn_parent, attn_pred);
            predictor.mlp(l).predict(&attn_actual.mask, mlp_pred);

            // 2. QKV generation split (Fig. 6b).
            const LocationCounts qkv_counts =
                countLocations(attn_pred, placement.attn[l]);
            const Seconds qkv_gpu = gpu_model.sparseGemv(
                qkv_counts.gpu, attn_values, request.batch);
            const std::vector<Seconds> qkv_lanes = dimmLaneTimes(
                ndp, qkv_counts.dimm, attn_values, request.batch,
                attn_actual.computeScale);
            pipeline.splitStage(CostCategory::Fc, qkv_gpu, sync, sync,
                                qkv_lanes);
            result.stats.counter("time.qkv.gpu").add(qkv_gpu);
            result.stats.counter("time.qkv.dimm")
                .add(*std::max_element(qkv_lanes.begin(),
                                       qkv_lanes.end()));

            // 3. Attention on the NDP-DIMMs, next to the KV cache.
            pipeline.ndpStage(
                CostCategory::Attention,
                ndp.attention(request.batch, kv_heads_per_dimm,
                              llm.headDim(), seq, gqa_group)
                    .total);

            // 4. Projection on the GPU; DIMMs and PCIe are idle, so
            // swaps and rebalancing hide behind it.
            pipeline.pcieStage(sync); // Attention out.
            pipeline.gpuStage(CostCategory::Fc,
                              gpu_model.gemm(request.batch, llm.hidden,
                                             llm.hidden));

            if (config_.sched.onlineAdjustment) {
                const bool token = config_.sched.tokenWisePrediction;
                const bool layer = config_.sched.layerWisePrediction;
                predictor.attn(l).hotScores(attn_parent, token, layer,
                                            hot_scores);
                const sched::AdjustmentResult adj_attn =
                    sched::NeuronMapper::adjustBlock(
                        placement.attn[l], hot_scores,
                        llm.attnNeuronBytes());
                predictor.mlp(l).hotScores(&attn_actual.mask, token,
                                           layer, hot_scores);
                const sched::AdjustmentResult adj_mlp =
                    sched::NeuronMapper::adjustBlock(
                        placement.mlp[l], hot_scores,
                        llm.mlpNeuronBytes());
                const Bytes upload =
                    adj_attn.pcieBytes + adj_mlp.pcieBytes;
                promotions +=
                    adj_attn.promotions + adj_mlp.promotions;
                promotion_bytes += upload;
                if (upload > 0)
                    pipeline.shadowedPcie(pcie.transferTime(upload));
            }

            windows.observe(l, attn_actual.activeList,
                            mlp_actual.activeList);
            const sched::WindowSet::RebalanceOutcome rebalance =
                windows.maybeRebalance(
                    l, placement.attn[l], placement.mlp[l],
                    llm.attnNeuronBytes(), llm.mlpNeuronBytes(),
                    link_net);
            migration_bytes += rebalance.migrationBytes;
            result.stats.counter("migration.transfers")
                .add(static_cast<double>(rebalance.transfers));
            pipeline.shadowedDimmLink(rebalance.migrationTime);

            // 5. MLP split.
            const LocationCounts mlp_counts =
                countLocations(mlp_pred, placement.mlp[l]);
            const Seconds mlp_gpu = gpu_model.sparseGemv(
                mlp_counts.gpu, mlp_values, request.batch);
            const std::vector<Seconds> mlp_lanes = dimmLaneTimes(
                ndp, mlp_counts.dimm, mlp_values, request.batch,
                mlp_actual.computeScale);
            pipeline.splitStage(CostCategory::Fc, mlp_gpu, sync, sync,
                                mlp_lanes);
            result.stats.counter("time.mlp.gpu").add(mlp_gpu);
            result.stats.counter("time.mlp.dimm")
                .add(*std::max_element(mlp_lanes.begin(),
                                       mlp_lanes.end()));
            result.stats.counter("count.mlp.gpu").add(
                static_cast<double>(mlp_counts.gpu));
            result.stats.counter("count.mlp.dimm.max").add(
                static_cast<double>(*std::max_element(
                    mlp_counts.dimm.begin(), mlp_counts.dimm.end())));

            // 6. Merge of GPU and NDP partials on the DIMMs.
            pipeline.ndpStage(
                CostCategory::Others,
                ndp.merge(static_cast<Bytes>(request.batch) *
                          llm.hidden * kFp16Bytes)
                    .total);

            // Predictor bookkeeping (metrics + FSM update).
            for (std::uint32_t i = 0; i < attn_actual.neurons(); ++i)
                metrics.tally(attn_pred[i] != 0,
                              attn_actual.mask[i] != 0);
            for (std::uint32_t i = 0; i < mlp_actual.neurons(); ++i)
                metrics.tally(mlp_pred[i] != 0,
                              mlp_actual.mask[i] != 0);
            predictor.attn(l).update(attn_actual.mask);
            predictor.mlp(l).update(mlp_actual.mask);
        }

        // The layer section extrapolates to the full depth; the
        // LM head and the host-side predictor scan are per token.
        pipeline.endToken(layer_scale);
        pipeline.addSerial(CostCategory::Others, lm_head);
        pipeline.addSerial(CostCategory::Predictor, predictor_cost);
    }

    result.generateTime = pipeline.totalTime();
    result.breakdown += pipeline.accumulated().toBreakdown();

    result.stats.counter("predictor.accuracy").set(metrics.accuracy());
    result.stats.counter("predictor.recall").set(metrics.recall());
    result.stats.counter("predictor.precision").set(
        metrics.precision());
    result.stats.counter("hot.bytes").set(
        static_cast<double>(hot_bytes));
    result.stats.counter("promotions").set(
        static_cast<double>(promotions));
    result.stats.counter("promotion.bytes").set(
        static_cast<double>(promotion_bytes));
    result.stats.counter("migration.bytes").set(
        static_cast<double>(migration_bytes));

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
