/**
 * @file
 * Hermes-base baseline (Sec. V-A2, V-B1): the NDP-DIMM extended
 * system *without* activation sparsity.  FC layers run on the GPU
 * when their parameters are resident and on the NDP-DIMMs otherwise
 * (dense, all neurons); attention always runs on the NDP-DIMMs.
 * There is no predictor, no online adjustment, and no rebalancing —
 * the dense split is static and perfectly balanced by construction.
 */

#ifndef HERMES_RUNTIME_HERMES_BASE_ENGINE_HH
#define HERMES_RUNTIME_HERMES_BASE_ENGINE_HH

#include <string>
#include <utility>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** NDP-DIMM extension without activation sparsity. */
class HermesBaseEngine : public InferenceEngine
{
  public:
    explicit HermesBaseEngine(SystemConfig config)
        : config_(std::move(config))
    {
    }

    std::string name() const override { return "Hermes-base"; }
    bool supports(const InferenceRequest &request) const override;
    InferenceResult run(const InferenceRequest &request) override;

  private:
    SystemConfig config_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_HERMES_BASE_ENGINE_HH
