#include "runtime/factory.hh"

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "runtime/accelerate_engine.hh"
#include "runtime/dejavu_engine.hh"
#include "runtime/flexgen_engine.hh"
#include "runtime/hermes_base_engine.hh"
#include "runtime/hermes_engine.hh"
#include "runtime/hermes_host_engine.hh"
#include "runtime/tensorrt_engine.hh"

namespace hermes::runtime {

std::unique_ptr<InferenceEngine>
makeEngine(EngineKind kind, const SystemConfig &config)
{
    switch (kind) {
      case EngineKind::Accelerate:
        return std::make_unique<AccelerateEngine>(config);
      case EngineKind::FlexGen:
        return std::make_unique<FlexGenEngine>(config);
      case EngineKind::DejaVu:
        return std::make_unique<DejaVuEngine>(config);
      case EngineKind::HermesHost:
        return std::make_unique<HermesHostEngine>(config);
      case EngineKind::HermesBase:
        return std::make_unique<HermesBaseEngine>(config);
      case EngineKind::Hermes:
        return std::make_unique<HermesEngine>(config);
      case EngineKind::TensorRtLlm:
        return std::make_unique<TensorRtLlmEngine>(config);
    }
    hermes_panic("unknown engine kind");
}

std::vector<EngineKind>
allEngineKinds()
{
    return {EngineKind::Accelerate, EngineKind::FlexGen,
            EngineKind::DejaVu,     EngineKind::HermesHost,
            EngineKind::HermesBase, EngineKind::Hermes,
            EngineKind::TensorRtLlm};
}

std::string
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Accelerate:
        return "Accelerate";
      case EngineKind::FlexGen:
        return "FlexGen";
      case EngineKind::DejaVu:
        return "DejaVu";
      case EngineKind::HermesHost:
        return "Hermes-host";
      case EngineKind::HermesBase:
        return "Hermes-base";
      case EngineKind::Hermes:
        return "Hermes";
      case EngineKind::TensorRtLlm:
        return "TensorRT-LLM";
    }
    hermes_panic("unknown engine kind");
}

EngineKind
engineKindByName(const std::string &name)
{
    for (const EngineKind kind : allEngineKinds()) {
        if (engineKindName(kind) == name)
            return kind;
    }
    throw std::invalid_argument(
        "engineKindByName: unknown engine '" + name + "'");
}

std::vector<std::string>
engineKindNames()
{
    std::vector<std::string> names;
    for (const EngineKind kind : allEngineKinds())
        names.push_back(engineKindName(kind));
    return names;
}

SystemConfig
platformPreset(const std::string &name,
               std::uint32_t simulated_layers)
{
    SystemConfig config;
    config.simulatedLayers = simulated_layers;
    if (name == "default") {
        // Sec. V-A1 defaults as constructed.
    } else if (name == "budget") {
        config.numDimms = 4;
    } else if (name == "scaled") {
        config.numDimms = 16;
    } else {
        throw std::invalid_argument(
            "platformPreset: unknown preset '" + name + "'");
    }
    return config;
}

std::vector<std::string>
platformPresetNames()
{
    return {"default", "budget", "scaled"};
}

} // namespace hermes::runtime
