/**
 * @file
 * Engine factory: build any of the paper's seven systems by name.
 */

#ifndef HERMES_RUNTIME_FACTORY_HH
#define HERMES_RUNTIME_FACTORY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** The systems evaluated in Sec. V. */
enum class EngineKind
{
    Accelerate,
    FlexGen,
    DejaVu,
    HermesHost,
    HermesBase,
    Hermes,
    TensorRtLlm,
};

/**
 * Instantiate an engine on the given platform.
 *
 * Engines are pure cost models: construction captures only the
 * platform configuration, and `run()` derives every result from the
 * request plus that configuration — no mutable state survives a
 * call.  The serving layer's cost caches rely on this contract to
 * pool one engine per replica cache group and to run calibration on
 * thread-private engines: any engine, constructed anywhere, must
 * return identical results for identical requests.
 */
std::unique_ptr<InferenceEngine> makeEngine(EngineKind kind,
                                            const SystemConfig &config);

/** All engine kinds in the order the figures list them. */
std::vector<EngineKind> allEngineKinds();

/** Display name used in the figures. */
std::string engineKindName(EngineKind kind);

/** Parse a display name back to a kind; throws on unknown names. */
EngineKind engineKindByName(const std::string &name);

/** All display names in figure order (CLI help, sweep parsing). */
std::vector<std::string> engineKindNames();

/**
 * Named platform presets for building heterogeneous fleets: replicas
 * of one fleet can run different hardware tiers behind one router.
 *
 *  - "default": the Sec. V-A1 platform (8 NDP-DIMMs);
 *  - "budget":  half the DIMM pool (4), for cost-tiered replicas;
 *  - "scaled":  a doubled pool (16), the Fig. 14 scaling point.
 *
 * `simulated_layers` forwards to SystemConfig::simulatedLayers (0 =
 * every layer).  Throws on unknown names.
 */
SystemConfig platformPreset(const std::string &name,
                            std::uint32_t simulated_layers = 0);

/** Preset names accepted by platformPreset, in display order. */
std::vector<std::string> platformPresetNames();

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_FACTORY_HH
