/**
 * @file
 * Engine factory: build any of the paper's seven systems by name.
 */

#ifndef HERMES_RUNTIME_FACTORY_HH
#define HERMES_RUNTIME_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** The systems evaluated in Sec. V. */
enum class EngineKind
{
    Accelerate,
    FlexGen,
    DejaVu,
    HermesHost,
    HermesBase,
    Hermes,
    TensorRtLlm,
};

/** Instantiate an engine on the given platform. */
std::unique_ptr<InferenceEngine> makeEngine(EngineKind kind,
                                            const SystemConfig &config);

/** All engine kinds in the order the figures list them. */
std::vector<EngineKind> allEngineKinds();

/** Display name used in the figures. */
std::string engineKindName(EngineKind kind);

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_FACTORY_HH
