/**
 * @file
 * Resource timeline for one simulated token step.
 *
 * Engines used to hand-sum `max(...)` expressions to model overlap
 * between the GPU stream, the per-DIMM NDP lanes, PCIe and the
 * DIMM-link network (Eqs. 1-3).  The timeline replaces those sums
 * with an explicit schedule: work items are posted onto named
 * resources with dependencies, each item starts when its dependencies
 * and its resource are free, and the token latency is the makespan.
 *
 * Every work item carries a breakdown category; the Fig. 12 latency
 * breakdown is produced by walking the critical path (the chain of
 * binding constraints that determined the makespan), so overlapped
 * work never inflates the breakdown and the per-category components
 * sum to the makespan exactly.
 */

#ifndef HERMES_RUNTIME_TIMELINE_HH
#define HERMES_RUNTIME_TIMELINE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "runtime/engine.hh"

namespace hermes::runtime {

/** Fig. 12 breakdown category of one scheduled work item. */
enum class CostCategory : std::uint8_t
{
    Fc,            ///< QKV + MLP + projection compute.
    Attention,
    Predictor,
    Prefill,       ///< Whole prompting stage.
    Communication, ///< PCIe + DIMM-link traffic.
    Others,        ///< Merge, sync, scheduling, LM head.
};

inline constexpr std::size_t kNumCostCategories = 6;

/** Per-category accumulated time, convertible to LatencyBreakdown. */
struct CategoryTimes
{
    std::array<Seconds, kNumCostCategories> time{};

    Seconds &
    operator[](CostCategory category)
    {
        return time[static_cast<std::size_t>(category)];
    }

    Seconds
    operator[](CostCategory category) const
    {
        return time[static_cast<std::size_t>(category)];
    }

    Seconds
    total() const
    {
        Seconds sum = 0.0;
        for (const Seconds value : time)
            sum += value;
        return sum;
    }

    CategoryTimes &
    operator+=(const CategoryTimes &other)
    {
        for (std::size_t i = 0; i < kNumCostCategories; ++i)
            time[i] += other.time[i];
        return *this;
    }

    /** this += other * scale (layer-sample extrapolation). */
    CategoryTimes &
    addScaled(const CategoryTimes &other, double scale)
    {
        for (std::size_t i = 0; i < kNumCostCategories; ++i)
            time[i] += other.time[i] * scale;
        return *this;
    }

    LatencyBreakdown
    toBreakdown() const
    {
        LatencyBreakdown breakdown;
        breakdown.fc = (*this)[CostCategory::Fc];
        breakdown.attention = (*this)[CostCategory::Attention];
        breakdown.predictor = (*this)[CostCategory::Predictor];
        breakdown.prefill = (*this)[CostCategory::Prefill];
        breakdown.communication = (*this)[CostCategory::Communication];
        breakdown.others = (*this)[CostCategory::Others];
        return breakdown;
    }
};

/**
 * An append-only schedule of work items over named resources.
 *
 * Work items are posted in dependency order (a dependency must be a
 * previously posted node).  Each resource executes its items in post
 * order: an item starts at the later of its dependencies' completion
 * and its resource becoming free.
 */
class Timeline
{
  public:
    using ResourceId = std::uint32_t;
    using NodeId = std::uint32_t;

    static constexpr NodeId kNoNode = UINT32_MAX;

    /** Register a named resource (e.g. "gpu", "pcie", "ndp0"). */
    ResourceId addResource(std::string name);

    const std::string &resourceName(ResourceId resource) const;
    std::size_t resourceCount() const { return resources_.size(); }

    /**
     * Post one work item.
     *
     * @param resource  Executing resource.
     * @param category  Breakdown category.
     * @param duration  Busy time (clamped to >= 0).
     * @param deps      Nodes that must complete before this starts.
     */
    NodeId post(ResourceId resource, CostCategory category,
                Seconds duration,
                const std::vector<NodeId> &deps = {});

    Seconds startOf(NodeId node) const;
    Seconds endOf(NodeId node) const;
    CostCategory categoryOf(NodeId node) const;

    /** Completion time of the whole schedule (0 when empty). */
    Seconds makespan() const { return makespan_; }

    /** Total busy time of one resource. */
    Seconds busy(ResourceId resource) const;

    /**
     * Attribute the makespan to categories along the critical path:
     * starting from the last-finishing node, walk the chain of
     * binding constraints (the dependency or resource predecessor
     * whose completion set each node's start time) back to time zero,
     * crediting each node's duration to its category.  The components
     * sum to the makespan by construction.  Ties between binding
     * constraints prefer compute over communication, so exactly
     * shadowed transfers are attributed to the compute they hide
     * behind.
     */
    CategoryTimes criticalPath() const;

    /** Drop all nodes but keep the registered resources. */
    void clear();

    std::size_t nodeCount() const { return nodes_.size(); }

  private:
    struct Node
    {
        ResourceId resource;
        CostCategory category;
        Seconds start;
        Seconds end;
        NodeId binding; ///< Constraint that set `start` (or kNoNode).
    };

    struct Resource
    {
        std::string name;
        NodeId tail = kNoNode; ///< Last node posted on this resource.
        Seconds busy = 0.0;
    };

    std::vector<Node> nodes_;
    std::vector<Resource> resources_;
    Seconds makespan_ = 0.0;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_TIMELINE_HH
