/**
 * @file
 * FlexGen-style offloading baseline (Sheng et al., ICML'23; Sec. II-C).
 *
 * FlexGen pins host buffers and overlaps weight prefetch with compute
 * using a zig-zag block schedule.  At the small batch sizes of local
 * deployment the schedule degenerates: every layer's weights still
 * cross PCIe each token, and the effective rate is bounded by the
 * host-side copy into the pinned staging buffer in series with the
 * DMA itself.
 */

#ifndef HERMES_RUNTIME_FLEXGEN_ENGINE_HH
#define HERMES_RUNTIME_FLEXGEN_ENGINE_HH

#include <string>
#include <utility>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** FlexGen baseline (OPT models only, matching the paper). */
class FlexGenEngine : public InferenceEngine
{
  public:
    explicit FlexGenEngine(SystemConfig config)
        : config_(std::move(config))
    {
    }

    std::string name() const override { return "FlexGen"; }
    bool supports(const InferenceRequest &request) const override;
    InferenceResult run(const InferenceRequest &request) override;

    /** Host memcpy rate into the pinned staging buffer. */
    static constexpr BytesPerSecond kStagingBandwidth = 25.0e9;

  private:
    SystemConfig config_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_FLEXGEN_ENGINE_HH
