/**
 * @file
 * TensorRT-LLM reference (Sec. V-F): the high-performance serving
 * system running on as many NVIDIA A100-40GB-SXM4 GPUs as the model
 * requires (five for LLaMA2-70B at batch 16), with tensor-parallel
 * execution and NVLink all-reduces.  It provides the upper-bound
 * curve of Fig. 17, not a budget system.
 */

#ifndef HERMES_RUNTIME_TENSORRT_ENGINE_HH
#define HERMES_RUNTIME_TENSORRT_ENGINE_HH

#include <cstdint>
#include <string>
#include <utility>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** Multi-A100 TensorRT-LLM reference system. */
class TensorRtLlmEngine : public InferenceEngine
{
  public:
    /**
     * @param config   Platform config (only workload knobs are used).
     * @param num_gpus GPUs in the tensor-parallel group; 0 = pick the
     *                 smallest count that fits the model + KV cache.
     */
    explicit TensorRtLlmEngine(SystemConfig config,
                               std::uint32_t num_gpus = 0)
        : config_(std::move(config)), numGpus_(num_gpus)
    {
    }

    std::string name() const override { return "TensorRT-LLM"; }
    InferenceResult run(const InferenceRequest &request) override;

    /** GPUs needed for a request when auto-sizing. */
    std::uint32_t gpusFor(const InferenceRequest &request) const;

    /** NVLink all-reduce bandwidth per GPU. */
    static constexpr BytesPerSecond kNvlinkBandwidth = 600.0e9;

  private:
    SystemConfig config_;
    std::uint32_t numGpus_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_TENSORRT_ENGINE_HH
