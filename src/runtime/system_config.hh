/**
 * @file
 * Hardware + scheduling configuration of the simulated platform,
 * shared by all engines so comparisons run on identical substrates.
 */

#ifndef HERMES_RUNTIME_SYSTEM_CONFIG_HH
#define HERMES_RUNTIME_SYSTEM_CONFIG_HH

#include <cstdint>

#include "common/units.hh"
#include "gpu/gpu_spec.hh"
#include "interconnect/dimm_link.hh"
#include "interconnect/pcie.hh"
#include "ndp/ndp_dimm.hh"
#include "sparsity/trace.hh"

namespace hermes::runtime {

/** Host-CPU parameters used by the Hermes-host baseline (Sec. V-A2). */
struct HostCpuConfig
{
    /**
     * Peak DRAM bandwidth of the Intel i9-13900K host (89.6 GB/s) and
     * the fraction achievable for scattered cold-neuron row gathers.
     */
    BytesPerSecond memBandwidth = gbps(89.6);
    double gatherEfficiency = 0.40;

    /** Effective FP16 GEMV compute throughput (AVX-512 class). */
    FlopsPerSecond compute = 0.4e12;

    /**
     * CPU/GPU coordination cost per hybrid layer (PowerInfer-style
     * executors synchronize the device stream and wake worker
     * threads every layer).
     */
    Seconds layerSyncOverhead = 150.0e-6;

    bool operator==(const HostCpuConfig &) const = default;

    BytesPerSecond
    effectiveGatherBandwidth() const
    {
        return memBandwidth * gatherEfficiency;
    }
};

/** Scheduling ablation switches (Fig. 13 variants). */
struct SchedulingConfig
{
    bool offlinePartition = true;  ///< false = Hermes-random mapper.
    bool onlineAdjustment = true;  ///< Hot/cold swaps (Sec. IV-C2).
    bool tokenWisePrediction = true;
    bool layerWisePrediction = true;
    bool windowRebalance = true;   ///< Algorithm 1 (Sec. IV-D).
    std::uint32_t windowSize = 5;

    /** Oracle rebalance instead of Algorithm 1 (upper bound). */
    bool oracleRebalance = false;

    bool operator==(const SchedulingConfig &) const = default;
};

/** Whole-platform configuration. */
struct SystemConfig
{
    gpu::GpuSpec gpu = gpu::rtx4090();
    std::uint32_t numDimms = 8;
    ndp::NdpDimmConfig dimm{};
    interconnect::PcieConfig pcie{};
    interconnect::DimmLinkConfig link{};
    HostCpuConfig host{};
    sparsity::SparsityConfig sparsity{};
    SchedulingConfig sched{};

    /** GPU bytes reserved for activations / workspace / runtime. */
    Bytes gpuReservedBytes = 1ULL * kGiB;

    /**
     * Simulate only this many transformer layers and scale per-layer
     * costs to the full depth (0 = simulate every layer).  Layer
     * statistics are i.i.d. by construction, so a representative
     * sample preserves every reported trend while keeping the trace
     * generation cost bounded.
     */
    std::uint32_t simulatedLayers = 0;

    /** Host-side predictor scan cost per neuron (LLC-resident). */
    Seconds predictorPerNeuron = 1.0e-11;

    /**
     * Memberwise equality: engine physics are pure functions of the
     * configuration, so equal-config replicas can share calibrated
     * cost caches (core/serving.hh) with bit-identical results.
     */
    bool operator==(const SystemConfig &) const = default;

    /** Aggregate NDP-DIMM weight capacity. */
    Bytes
    totalDimmCapacity() const
    {
        return static_cast<Bytes>(numDimms) * dimm.dimm.capacity;
    }
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_SYSTEM_CONFIG_HH
