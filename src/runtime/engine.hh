/**
 * @file
 * Inference-engine interface shared by Hermes and every baseline.
 *
 * Engines simulate end-to-end LLM inference (prompting + token
 * generation, Sec. II-A) against the device models and report
 * throughput plus the latency breakdown of Fig. 12.
 */

#ifndef HERMES_RUNTIME_ENGINE_HH
#define HERMES_RUNTIME_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "model/llm_config.hh"

namespace hermes::runtime {

/** One end-to-end inference workload (Sec. V-A4 defaults). */
struct InferenceRequest
{
    model::LlmConfig llm;
    std::uint32_t batch = 1;
    std::uint32_t promptTokens = 128;
    std::uint32_t generateTokens = 128;

    /** Trace tokens used for offline profiling / calibration. */
    std::uint32_t profileTokens = 48;

    /** Workload seed (activation trace). */
    std::uint64_t seed = 1;
};

/** Fig. 12 latency-breakdown categories. */
struct LatencyBreakdown
{
    Seconds fc = 0.0;            ///< QKV + MLP + projection compute.
    Seconds attention = 0.0;
    Seconds predictor = 0.0;
    Seconds prefill = 0.0;       ///< Whole prompting stage.
    Seconds communication = 0.0; ///< PCIe + DIMM-link, non-overlapped.
    Seconds others = 0.0;        ///< Merge, sync, scheduling, LM head.

    Seconds
    total() const
    {
        return fc + attention + predictor + prefill + communication +
               others;
    }

    LatencyBreakdown &
    operator+=(const LatencyBreakdown &other)
    {
        fc += other.fc;
        attention += other.attention;
        predictor += other.predictor;
        prefill += other.prefill;
        communication += other.communication;
        others += other.others;
        return *this;
    }
};

/** Output of one engine run. */
struct InferenceResult
{
    std::string engine;
    bool supported = true;       ///< N.P. in the figures when false.
    std::string unsupportedReason;

    Seconds prefillTime = 0.0;
    Seconds generateTime = 0.0;

    /** Aggregate generated tokens per second (end to end). */
    double tokensPerSecond = 0.0;

    LatencyBreakdown breakdown;
    StatSet stats;
};

/** Abstract engine. */
class InferenceEngine
{
  public:
    virtual ~InferenceEngine() = default;

    virtual std::string name() const = 0;

    /** Whether this system can run the model at all. */
    virtual bool
    supports(const InferenceRequest &) const
    {
        return true;
    }

    /** Simulate the request end to end. */
    virtual InferenceResult run(const InferenceRequest &request) = 0;

  protected:
    /** Fill the derived totals of a result. */
    static void
    finalize(InferenceResult &result, const InferenceRequest &request)
    {
        const double tokens = static_cast<double>(request.batch) *
                              request.generateTokens;
        const Seconds total = result.prefillTime + result.generateTime;
        result.tokensPerSecond = total > 0.0 ? tokens / total : 0.0;
    }
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_ENGINE_HH
