/**
 * @file
 * HuggingFace-Accelerate-style offloading baseline (Sec. II-C).
 *
 * Accelerate maps as many whole layers as fit into GPU memory and
 * streams the rest from host memory per token.  Two properties make
 * it the slowest baseline: transfers use pageable (unpinned) host
 * buffers, and each tensor is fetched synchronously with no
 * overlap between transfer and compute.
 */

#ifndef HERMES_RUNTIME_ACCELERATE_ENGINE_HH
#define HERMES_RUNTIME_ACCELERATE_ENGINE_HH

#include <string>
#include <utility>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** HuggingFace Accelerate baseline. */
class AccelerateEngine : public InferenceEngine
{
  public:
    explicit AccelerateEngine(SystemConfig config)
        : config_(std::move(config))
    {
    }

    std::string name() const override { return "Accelerate"; }
    InferenceResult run(const InferenceRequest &request) override;

  private:
    SystemConfig config_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_ACCELERATE_ENGINE_HH
