#include "runtime/timeline.hh"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace hermes::runtime {

namespace {

/**
 * Tie-break priority between binding-constraint candidates: when two
 * predecessors finish at the same instant, walk the chain through the
 * compute side so exactly-shadowed transfers stay attributed to the
 * work that hides them.
 */
int
categoryPriority(CostCategory category)
{
    switch (category) {
      case CostCategory::Fc:
      case CostCategory::Attention:
        return 3;
      case CostCategory::Predictor:
      case CostCategory::Prefill:
        return 2;
      case CostCategory::Others:
        return 1;
      case CostCategory::Communication:
        return 0;
    }
    return 0;
}

} // namespace

Timeline::ResourceId
Timeline::addResource(std::string name)
{
    resources_.push_back(Resource{std::move(name), kNoNode, 0.0});
    return static_cast<ResourceId>(resources_.size() - 1);
}

const std::string &
Timeline::resourceName(ResourceId resource) const
{
    return resources_.at(resource).name;
}

Timeline::NodeId
Timeline::post(ResourceId resource, CostCategory category,
               Seconds duration, const std::vector<NodeId> &deps)
{
    if (resource >= resources_.size())
        hermes_fatal("timeline: unknown resource ", resource);
    duration = std::max(duration, 0.0);

    Seconds start = 0.0;
    NodeId binding = kNoNode;
    auto consider = [&](NodeId candidate) {
        if (candidate == kNoNode)
            return;
        const Node &node = nodes_.at(candidate);
        if (node.end > start ||
            (binding != kNoNode && node.end == start &&
             categoryPriority(node.category) >
                 categoryPriority(nodes_[binding].category))) {
            start = std::max(start, node.end);
            binding = candidate;
        }
    };
    consider(resources_[resource].tail);
    for (const NodeId dep : deps)
        consider(dep);

    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(
        Node{resource, category, start, start + duration, binding});
    resources_[resource].tail = id;
    resources_[resource].busy += duration;
    makespan_ = std::max(makespan_, start + duration);
    return id;
}

Seconds
Timeline::startOf(NodeId node) const
{
    return nodes_.at(node).start;
}

Seconds
Timeline::endOf(NodeId node) const
{
    return nodes_.at(node).end;
}

CostCategory
Timeline::categoryOf(NodeId node) const
{
    return nodes_.at(node).category;
}

Seconds
Timeline::busy(ResourceId resource) const
{
    return resources_.at(resource).busy;
}

CategoryTimes
Timeline::criticalPath() const
{
    CategoryTimes times;
    if (nodes_.empty())
        return times;

    // Last-finishing node; ties prefer compute (same rationale as the
    // binding tie-break).
    NodeId current = 0;
    for (NodeId i = 1; i < nodes_.size(); ++i) {
        const Node &node = nodes_[i];
        const Node &best = nodes_[current];
        if (node.end > best.end ||
            (node.end == best.end &&
             categoryPriority(node.category) >
                 categoryPriority(best.category)))
            current = i;
    }

    while (current != kNoNode) {
        const Node &node = nodes_[current];
        times[node.category] += node.end - node.start;
        current = node.binding;
    }
    return times;
}

void
Timeline::clear()
{
    nodes_.clear();
    makespan_ = 0.0;
    for (Resource &resource : resources_) {
        resource.tail = kNoNode;
        resource.busy = 0.0;
    }
}

} // namespace hermes::runtime
