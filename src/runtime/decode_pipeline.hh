/**
 * @file
 * Token-step assembly from reusable stage descriptors.
 *
 * A DecodePipeline owns one Timeline plus the platform's standard
 * resources (GPU stream, per-DIMM NDP lanes, PCIe, DIMM-link, host
 * CPU) and exposes the stages every engine's token step is built
 * from:
 *
 *  - serial stages on one resource (gpuStage, hostStage, pcieStage,
 *    dimmLinkStage, predictorStage);
 *  - the hot/cold split of Fig. 6b (splitStage / hostSplitStage):
 *    activations sync to the cold side, the GPU computes the hot
 *    share while each lane computes its cold share, and the step
 *    joins when the slower side finishes (Eqs. 1-3);
 *  - barrier work on all NDP lanes (ndpStage) for attention and the
 *    partial-result merge;
 *  - shadowed transfers (shadowedPcie / shadowedDimmLink) that run
 *    concurrently with the most recent GPU stage — hot/cold swaps and
 *    window rebalancing hide behind the dense projection and only
 *    their surplus extends the token;
 *  - background transfers (backgroundPcie) that overlap the whole
 *    token, FlexGen-style.
 *
 * Engines are reduced to stage-configuration functions: they compute
 * per-stage durations from the device models, post stages, and call
 * endToken(); the latency totals and the Fig. 12 breakdown fall out
 * of the timeline's critical path instead of ad-hoc sums.
 */

#ifndef HERMES_RUNTIME_DECODE_PIPELINE_HH
#define HERMES_RUNTIME_DECODE_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "runtime/timeline.hh"

namespace hermes::runtime {

/** Builder + accumulator for per-token timelines. */
class DecodePipeline
{
  public:
    /** @param num_dimms NDP lanes to register (0 for GPU-only). */
    explicit DecodePipeline(std::uint32_t num_dimms);

    std::uint32_t numDimms() const
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    /** Start a fresh token-step timeline. */
    void beginToken();

    // ---- Stage descriptors (post onto the current token). ----

    /** Serial work on the GPU stream. */
    void gpuStage(CostCategory category, Seconds duration);

    /** Serial work on the host CPU. */
    void hostStage(CostCategory category, Seconds duration);

    /** Serial transfer over PCIe. */
    void pcieStage(Seconds duration,
                   CostCategory category = CostCategory::Communication);

    /** Serial transfer over the DIMM-link network. */
    void dimmLinkStage(Seconds duration);

    /** Activated-neuron prediction (host-side scan or GPU MLP). */
    void predictorStage(Seconds duration, bool on_gpu = false);

    /**
     * Hot/cold split (Fig. 6b): `pre_sync` broadcasts activations
     * over PCIe, the GPU computes for `gpu_time`, `post_sync` returns
     * the hot partials; meanwhile lane i computes its cold share for
     * `lane_times[i]`.  The step completes when the slower side
     * finishes: max(pre + gpu + post, max_i lane_i).
     */
    void splitStage(CostCategory category, Seconds gpu_time,
                    Seconds pre_sync, Seconds post_sync,
                    const std::vector<Seconds> &lane_times);

    /** Hot/cold split against the host CPU (PowerInfer-style). */
    void hostSplitStage(CostCategory category, Seconds gpu_time,
                        Seconds pre_sync, Seconds post_sync,
                        Seconds host_time);

    /** The same work on every NDP lane (attention, merge). */
    void ndpStage(CostCategory category, Seconds per_lane_duration);

    /**
     * Transfer over PCIe running concurrently with the most recent
     * GPU stage (hot-neuron promotion during the dense projection).
     */
    void shadowedPcie(Seconds duration);

    /** DIMM-link migration shadowed by the most recent GPU stage. */
    void shadowedDimmLink(Seconds duration);

    /**
     * Transfer that overlaps the whole token from its start
     * (FlexGen's zig-zag weight streaming).  Join it back into the
     * serial order with joinBackground().
     */
    void backgroundPcie(Seconds duration);

    /** Barrier on all outstanding background transfers. */
    void joinBackground();

    // ---- Token bookkeeping. ----

    /**
     * Close the current token: accumulate its makespan and
     * critical-path breakdown, optionally extrapolated.
     *
     * @param scale  Layer-sample extrapolation factor.
     * @param repeat Identical tokens this step stands for.
     * @return The accumulated time of one such token (scaled).
     */
    Seconds endToken(double scale = 1.0, std::uint64_t repeat = 1);

    /**
     * Serial per-token work accounted outside the timeline (e.g. the
     * LM head and predictor epilogue when the layer section is
     * extrapolated with a different scale).
     */
    void addSerial(CostCategory category, Seconds duration);

    // ---- Accumulated results. ----

    Seconds totalTime() const { return total_; }
    const CategoryTimes &accumulated() const { return accumulated_; }
    Seconds lastTokenTime() const { return lastToken_; }
    std::uint64_t tokensSimulated() const { return tokens_; }

    /** The current (or last closed) token's timeline, for inspection. */
    const Timeline &timeline() const { return timeline_; }

  private:
    Timeline timeline_;
    Timeline::ResourceId gpu_;
    Timeline::ResourceId pcie_;
    Timeline::ResourceId link_;
    Timeline::ResourceId host_;
    std::vector<Timeline::ResourceId> lanes_;

    /** Nodes the next serial stage depends on. */
    std::vector<Timeline::NodeId> frontier_;
    /** Frontier as of the most recent GPU stage (shadow target). */
    std::vector<Timeline::NodeId> shadowAnchor_;
    /** Outstanding background transfers. */
    std::vector<Timeline::NodeId> background_;

    CategoryTimes accumulated_;
    Seconds total_ = 0.0;
    Seconds lastToken_ = 0.0;
    std::uint64_t tokens_ = 0;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_DECODE_PIPELINE_HH
