#include "runtime/flexgen_engine.hh"

#include <algorithm>
#include <cstdint>

#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "runtime/common_costs.hh"
#include "runtime/decode_pipeline.hh"

namespace hermes::runtime {

bool
FlexGenEngine::supports(const InferenceRequest &request) const
{
    // FlexGen's released runtime targets the OPT family (Sec. V-A2).
    return request.llm.name.rfind("OPT", 0) == 0;
}

InferenceResult
FlexGenEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();
    if (!supports(request)) {
        result.supported = false;
        result.unsupportedReason = "FlexGen supports OPT models only";
        return result;
    }

    const model::LlmConfig &llm = request.llm;
    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);

    // FlexGen's offloading policy places transformer weights in host
    // memory at these model-to-GPU size ratios (its GPU share goes to
    // the working set and double buffers); all layers stream per
    // token.
    const Bytes streamed_per_pass =
        static_cast<Bytes>(llm.layers) * llm.layerBytes();

    // Prompting overlaps prefetch with the (large) prompt compute.
    result.prefillTime =
        streamingPrefill(config_, llm, request.batch,
                         request.promptTokens, streamed_per_pass,
                         /*pinned=*/true, /*overlap=*/true);
    result.breakdown.prefill = result.prefillTime;

    // Token generation: weights flow host-memcpy -> pinned staging ->
    // DMA; the two stages pipeline, so the rate is the slower stage,
    // but both consume the same bytes.
    const BytesPerSecond dma = pcie.effectiveBandwidth(true);
    const BytesPerSecond staging = kStagingBandwidth;
    const BytesPerSecond effective =
        1.0 / (1.0 / dma + 1.0 / staging);
    const Seconds transfer_per_token =
        streamed_per_pass > 0
            ? static_cast<double>(streamed_per_pass) / effective
            : 0.0;

    const std::uint64_t h = llm.hidden;
    const Seconds layer_fc =
        gpu_model.sparseGemv(h + 2ULL * llm.kvDim(), h,
                             request.batch) +
        gpu_model.gemm(request.batch, h, h) +
        gpu_model.sparseGemv(
            static_cast<std::uint64_t>(llm.mlpMatrices) * llm.ffnHidden,
            h, request.batch);
    const Seconds layer_attn =
        gpu_model.attention(request.batch, llm.heads, llm.kvHeads,
                            llm.headDim(), request.promptTokens);
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);

    // Zig-zag overlap on the shared pipeline: the whole pass's weight
    // stream runs in the background while the GPU computes; the LM
    // head waits for both, so the slower side sets the token time.
    DecodePipeline pipeline(0);
    pipeline.beginToken();
    pipeline.backgroundPcie(transfer_per_token);
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        pipeline.gpuStage(CostCategory::Fc, layer_fc);
        pipeline.gpuStage(CostCategory::Attention, layer_attn);
    }
    pipeline.joinBackground();
    pipeline.gpuStage(CostCategory::Others, lm_head);
    pipeline.endToken(1.0, request.generateTokens);

    result.generateTime = pipeline.totalTime();
    result.breakdown += pipeline.accumulated().toBreakdown();

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
