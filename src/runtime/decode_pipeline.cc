#include "runtime/decode_pipeline.hh"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hermes::runtime {

DecodePipeline::DecodePipeline(std::uint32_t num_dimms)
{
    gpu_ = timeline_.addResource("gpu");
    pcie_ = timeline_.addResource("pcie");
    link_ = timeline_.addResource("dimm-link");
    host_ = timeline_.addResource("host");
    lanes_.reserve(num_dimms);
    for (std::uint32_t i = 0; i < num_dimms; ++i)
        lanes_.push_back(
            timeline_.addResource("ndp" + std::to_string(i)));
}

void
DecodePipeline::beginToken()
{
    timeline_.clear();
    frontier_.clear();
    shadowAnchor_.clear();
    background_.clear();
}

void
DecodePipeline::gpuStage(CostCategory category, Seconds duration)
{
    shadowAnchor_ = frontier_;
    const auto node =
        timeline_.post(gpu_, category, duration, frontier_);
    frontier_ = {node};
}

void
DecodePipeline::hostStage(CostCategory category, Seconds duration)
{
    const auto node =
        timeline_.post(host_, category, duration, frontier_);
    frontier_ = {node};
}

void
DecodePipeline::pcieStage(Seconds duration, CostCategory category)
{
    const auto node =
        timeline_.post(pcie_, category, duration, frontier_);
    frontier_ = {node};
}

void
DecodePipeline::dimmLinkStage(Seconds duration)
{
    const auto node = timeline_.post(
        link_, CostCategory::Communication, duration, frontier_);
    frontier_ = {node};
}

void
DecodePipeline::predictorStage(Seconds duration, bool on_gpu)
{
    const auto node =
        timeline_.post(on_gpu ? gpu_ : host_,
                       CostCategory::Predictor, duration, frontier_);
    frontier_ = {node};
}

void
DecodePipeline::splitStage(CostCategory category, Seconds gpu_time,
                           Seconds pre_sync, Seconds post_sync,
                           const std::vector<Seconds> &lane_times)
{
    const std::vector<Timeline::NodeId> entry = frontier_;
    const auto pre = timeline_.post(
        pcie_, CostCategory::Communication, pre_sync, entry);
    const auto gpu = timeline_.post(gpu_, category, gpu_time, {pre});
    const auto post = timeline_.post(
        pcie_, CostCategory::Communication, post_sync, {gpu});

    frontier_ = {post};
    for (std::size_t i = 0;
         i < lane_times.size() && i < lanes_.size(); ++i)
        frontier_.push_back(timeline_.post(
            lanes_[i], category, lane_times[i], entry));
}

void
DecodePipeline::hostSplitStage(CostCategory category, Seconds gpu_time,
                               Seconds pre_sync, Seconds post_sync,
                               Seconds host_time)
{
    const std::vector<Timeline::NodeId> entry = frontier_;
    const auto pre = timeline_.post(
        pcie_, CostCategory::Communication, pre_sync, entry);
    const auto gpu = timeline_.post(gpu_, category, gpu_time, {pre});
    const auto post = timeline_.post(
        pcie_, CostCategory::Communication, post_sync, {gpu});
    const auto host =
        timeline_.post(host_, category, host_time, entry);
    frontier_ = {post, host};
}

void
DecodePipeline::ndpStage(CostCategory category,
                         Seconds per_lane_duration)
{
    if (lanes_.empty()) {
        // Zero-DIMM config: account the work on the host instead of
        // silently dropping it.
        hostStage(category, per_lane_duration);
        return;
    }
    const std::vector<Timeline::NodeId> entry = frontier_;
    frontier_.clear();
    for (const auto lane : lanes_)
        frontier_.push_back(
            timeline_.post(lane, category, per_lane_duration, entry));
}

void
DecodePipeline::shadowedPcie(Seconds duration)
{
    if (duration <= 0.0)
        return;
    frontier_.push_back(timeline_.post(
        pcie_, CostCategory::Communication, duration, shadowAnchor_));
}

void
DecodePipeline::shadowedDimmLink(Seconds duration)
{
    if (duration <= 0.0)
        return;
    frontier_.push_back(timeline_.post(
        link_, CostCategory::Communication, duration, shadowAnchor_));
}

void
DecodePipeline::backgroundPcie(Seconds duration)
{
    if (duration <= 0.0)
        return;
    background_.push_back(timeline_.post(
        pcie_, CostCategory::Communication, duration, {}));
}

void
DecodePipeline::joinBackground()
{
    frontier_.insert(frontier_.end(), background_.begin(),
                     background_.end());
    background_.clear();
}

Seconds
DecodePipeline::endToken(double scale, std::uint64_t repeat)
{
    const Seconds token = timeline_.makespan() * scale;
    const CategoryTimes path = timeline_.criticalPath();
    accumulated_.addScaled(path,
                           scale * static_cast<double>(repeat));
    total_ += token * static_cast<double>(repeat);
    lastToken_ = token;
    tokens_ += repeat;
    return token;
}

void
DecodePipeline::addSerial(CostCategory category, Seconds duration)
{
    accumulated_[category] += duration;
    total_ += duration;
}

} // namespace hermes::runtime
