/**
 * @file
 * Cost helpers shared by the engines: GPU residency accounting,
 * prompting-stage (prefill) models, and small per-token kernels.
 */

#ifndef HERMES_RUNTIME_COMMON_COSTS_HH
#define HERMES_RUNTIME_COMMON_COSTS_HH

#include <cstdint>

#include "common/units.hh"
#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "model/llm_config.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** GPU-memory accounting for one engine setup. */
struct GpuResidency
{
    Bytes denseBytes = 0;  ///< Projections + embeddings (always on GPU).
    Bytes hotBudget = 0;   ///< Bytes left for hot-neuron replicas.
};

/**
 * GPU residency when the dense components (attention projections,
 * embeddings, LM head) are pinned in GPU memory and `extra` bytes are
 * consumed by other state (KV cache, predictor weights, ...).
 */
GpuResidency computeResidency(const SystemConfig &config,
                              const model::LlmConfig &llm, Bytes extra);

/**
 * GPU compute time of the whole prompting stage: every transformer
 * layer over batch * prompt_tokens positions, roofline per kernel
 * class (weights are read once per layer regardless of positions).
 */
Seconds gpuPromptCompute(const gpu::GpuModel &gpu,
                         const model::LlmConfig &llm,
                         std::uint32_t batch,
                         std::uint32_t prompt_tokens);

/**
 * Prompting stage of a streaming-offload system: non-resident weights
 * cross PCIe once, overlapped with GPU compute when `overlap`.
 */
Seconds streamingPrefill(const SystemConfig &config,
                         const model::LlmConfig &llm,
                         std::uint32_t batch,
                         std::uint32_t prompt_tokens,
                         Bytes non_resident_bytes, bool pinned,
                         bool overlap);

/** LM head GEMV on the GPU (per generated token). */
Seconds lmHeadTime(const gpu::GpuModel &gpu, const model::LlmConfig &llm,
                   std::uint32_t batch);

/** One-direction activation sync over PCIe (Tsync of Eq. 3). */
Seconds activationSyncTime(const interconnect::PcieBus &pcie,
                           const model::LlmConfig &llm,
                           std::uint32_t batch);

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_COMMON_COSTS_HH
