#include "runtime/cost_model.hh"

#include <cstdint>

#include "common/logging.hh"

namespace hermes::runtime {

namespace {

double
gpuPrice(const gpu::GpuSpec &spec, const PriceList &prices)
{
    if (spec.name == "RTX4090")
        return prices.rtx4090;
    if (spec.name == "RTX3090")
        return prices.rtx3090;
    if (spec.name == "TeslaT4")
        return prices.teslaT4;
    if (spec.name == "A100-40GB")
        return prices.a100_40gb;
    hermes_fatal("no price for GPU '", spec.name, "'");
}

} // namespace

double
platformPriceUsd(EngineKind kind, const SystemConfig &config,
                 std::uint32_t tensorrt_gpus, PriceList prices)
{
    switch (kind) {
      case EngineKind::TensorRtLlm:
        return prices.serverOverhead +
               tensorrt_gpus * prices.a100_40gb;
      case EngineKind::Hermes:
      case EngineKind::HermesBase:
        // GPU + NDP-DIMM pool + host.
        return gpuPrice(config.gpu, prices) + prices.hostSystem +
               config.numDimms * (prices.dimm32gb + prices.ndpPremium);
      case EngineKind::Accelerate:
      case EngineKind::FlexGen:
      case EngineKind::DejaVu:
      case EngineKind::HermesHost:
        // GPU + plain DIMM pool + host.
        return gpuPrice(config.gpu, prices) + prices.hostSystem +
               config.numDimms * prices.dimm32gb;
    }
    hermes_panic("unknown engine kind");
}

double
runEnergyJoules(const RunActivity &activity, EnergyParams params)
{
    double joules = 0.0;
    joules += activity.gpuBusy * params.gpuPowerWatts;
    joules += activity.hostBusy * params.hostPowerWatts;
    joules += static_cast<double>(activity.dramBytes) * 8.0 *
              params.dramJoulePerBit;
    joules += static_cast<double>(activity.pcieBytes) * 8.0 *
              params.pcieJoulePerBit;
    joules += static_cast<double>(activity.dimmLinkBytes) * 8.0 *
              params.dimmLinkJoulePerBit;
    joules += activity.ndpMacs * params.ndpJoulePerMac;
    return joules;
}

} // namespace hermes::runtime
