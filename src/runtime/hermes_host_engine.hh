/**
 * @file
 * Hermes-host baseline (Sec. V-A2): the hot/cold neuron partition of
 * Hermes, but cold neurons are computed by the host CPU out of plain
 * DIMMs (PowerInfer-style), not by NDP units.  The CPU reads cold
 * neuron rows at its (scatter-limited) DRAM bandwidth, which is the
 * bottleneck the NDP-DIMMs remove.
 */

#ifndef HERMES_RUNTIME_HERMES_HOST_ENGINE_HH
#define HERMES_RUNTIME_HERMES_HOST_ENGINE_HH

#include <string>
#include <utility>

#include "runtime/engine.hh"
#include "runtime/system_config.hh"

namespace hermes::runtime {

/** Hot neurons on the GPU, cold neurons on the host CPU. */
class HermesHostEngine : public InferenceEngine
{
  public:
    explicit HermesHostEngine(SystemConfig config)
        : config_(std::move(config))
    {
    }

    std::string name() const override { return "Hermes-host"; }
    InferenceResult run(const InferenceRequest &request) override;

  private:
    SystemConfig config_;
};

} // namespace hermes::runtime

#endif // HERMES_RUNTIME_HERMES_HOST_ENGINE_HH
