#include "runtime/hermes_base_engine.hh"

#include <algorithm>

#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "ndp/ndp_dimm.hh"
#include "runtime/common_costs.hh"

namespace hermes::runtime {

bool
HermesBaseEngine::supports(const InferenceRequest &request) const
{
    const Bytes kv = static_cast<Bytes>(request.batch) *
                     (request.promptTokens + request.generateTokens) *
                     request.llm.kvBytesPerToken();
    return request.llm.totalBytes() + kv <= config_.totalDimmCapacity();
}

InferenceResult
HermesBaseEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();
    if (!supports(request)) {
        result.supported = false;
        result.unsupportedReason = "model exceeds NDP-DIMM capacity";
        return result;
    }

    const model::LlmConfig &llm = request.llm;
    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);
    ndp::NdpDimm ndp(config_.dimm);

    // Whole FC blocks are resident until GPU memory runs out (the KV
    // cache lives on the DIMMs, as in Hermes).
    const GpuResidency residency = computeResidency(config_, llm, 0);
    const Bytes sparse_per_layer = llm.sparseBytesPerLayer();
    const std::uint32_t resident_layers = std::min<std::uint64_t>(
        llm.layers, residency.hotBudget / sparse_per_layer);

    const Bytes resident =
        residency.denseBytes +
        static_cast<Bytes>(resident_layers) * sparse_per_layer;
    const Bytes non_resident =
        llm.totalBytes() > resident ? llm.totalBytes() - resident : 0;
    result.prefillTime = streamingPrefill(config_, llm, request.batch,
                                          request.promptTokens,
                                          non_resident, true, true);
    result.breakdown.prefill = result.prefillTime;

    const Seconds sync = activationSyncTime(pcie, llm, request.batch);
    const std::uint64_t h = llm.hidden;
    const std::uint64_t attn_neurons = llm.attnNeuronsPerLayer();
    const std::uint64_t mlp_neurons = llm.mlpNeuronsPerLayer();
    const std::uint64_t attn_values = h + 2ULL * llm.kvDim();
    const std::uint64_t mlp_values =
        static_cast<std::uint64_t>(llm.mlpMatrices) * h;
    const std::uint32_t kv_heads_per_dimm =
        (llm.kvHeads + config_.numDimms - 1) / config_.numDimms;
    const std::uint32_t gqa_group = llm.heads / llm.kvHeads;

    // Dense per-layer costs on each side.
    const Seconds gpu_layer_fc =
        gpu_model.sparseGemv(attn_neurons, attn_values, request.batch) +
        gpu_model.gemm(request.batch, h, h) +
        gpu_model.sparseGemv(mlp_neurons, mlp_values, request.batch);
    const Seconds dimm_layer_fc =
        ndp.sparseGemv(attn_neurons / config_.numDimms, attn_values,
                       request.batch)
            .total +
        ndp.sparseGemv(mlp_neurons / config_.numDimms, mlp_values,
                       request.batch)
            .total +
        gpu_model.gemm(request.batch, h, h); // Projection stays dense
                                             // on the GPU.

    Seconds fc_time = 0.0;
    Seconds attn_time = 0.0;
    Seconds comm_time = 0.0;
    const Seconds seq_attn =
        ndp.attention(request.batch, kv_heads_per_dimm, llm.headDim(),
                      request.promptTokens, gqa_group)
            .total;
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        fc_time +=
            l < resident_layers ? gpu_layer_fc : dimm_layer_fc;
        attn_time += seq_attn;
        comm_time += 2.0 * sync; // Activations cross PCIe per layer.
    }
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);
    const Seconds merge =
        ndp.merge(static_cast<Bytes>(request.batch) * h * kFp16Bytes)
            .total *
        llm.layers;

    const Seconds per_token =
        fc_time + attn_time + comm_time + lm_head + merge;
    result.generateTime = per_token * request.generateTokens;
    result.breakdown.fc = fc_time * request.generateTokens;
    result.breakdown.attention = attn_time * request.generateTokens;
    result.breakdown.communication =
        comm_time * request.generateTokens;
    result.breakdown.others =
        (lm_head + merge) * request.generateTokens;

    result.stats.counter("resident.layers").set(resident_layers);

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
