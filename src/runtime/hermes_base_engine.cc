#include "runtime/hermes_base_engine.hh"

#include <algorithm>
#include <cstdint>

#include "gpu/kernels.hh"
#include "interconnect/pcie.hh"
#include "ndp/ndp_dimm.hh"
#include "runtime/common_costs.hh"
#include "runtime/decode_pipeline.hh"

namespace hermes::runtime {

bool
HermesBaseEngine::supports(const InferenceRequest &request) const
{
    if (config_.numDimms == 0)
        return false;
    const Bytes kv = static_cast<Bytes>(request.batch) *
                     (request.promptTokens + request.generateTokens) *
                     request.llm.kvBytesPerToken();
    return request.llm.totalBytes() + kv <= config_.totalDimmCapacity();
}

InferenceResult
HermesBaseEngine::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.engine = name();
    if (!supports(request)) {
        result.supported = false;
        result.unsupportedReason = "model exceeds NDP-DIMM capacity";
        return result;
    }

    const model::LlmConfig &llm = request.llm;
    const gpu::GpuModel gpu_model(config_.gpu);
    const interconnect::PcieBus pcie(config_.pcie);
    ndp::NdpDimm ndp(config_.dimm);

    // Whole FC blocks are resident until GPU memory runs out (the KV
    // cache lives on the DIMMs, as in Hermes).
    const GpuResidency residency = computeResidency(config_, llm, 0);
    const Bytes sparse_per_layer = llm.sparseBytesPerLayer();
    const std::uint32_t resident_layers = std::min<std::uint64_t>(
        llm.layers, residency.hotBudget / sparse_per_layer);

    const Bytes resident =
        residency.denseBytes +
        static_cast<Bytes>(resident_layers) * sparse_per_layer;
    const Bytes non_resident =
        llm.totalBytes() > resident ? llm.totalBytes() - resident : 0;
    result.prefillTime = streamingPrefill(config_, llm, request.batch,
                                          request.promptTokens,
                                          non_resident, true, true);
    result.breakdown.prefill = result.prefillTime;

    const Seconds sync = activationSyncTime(pcie, llm, request.batch);
    const std::uint64_t h = llm.hidden;
    const std::uint64_t attn_neurons = llm.attnNeuronsPerLayer();
    const std::uint64_t mlp_neurons = llm.mlpNeuronsPerLayer();
    const std::uint64_t attn_values = h + 2ULL * llm.kvDim();
    const std::uint64_t mlp_values =
        static_cast<std::uint64_t>(llm.mlpMatrices) * h;
    const std::uint32_t kv_heads_per_dimm =
        (llm.kvHeads + config_.numDimms - 1) / config_.numDimms;
    const std::uint32_t gqa_group =
        llm.kvHeads > 0 ? llm.heads / llm.kvHeads : 1;

    // Dense per-layer costs on each side (no predictor: every neuron
    // computes, so offloaded layers run whole blocks on the NDP).
    const Seconds gpu_attn_fc =
        gpu_model.sparseGemv(attn_neurons, attn_values, request.batch);
    const Seconds gpu_mlp_fc =
        gpu_model.sparseGemv(mlp_neurons, mlp_values, request.batch);
    const Seconds dimm_attn_fc =
        ndp.sparseGemv(attn_neurons / config_.numDimms, attn_values,
                       request.batch)
            .total;
    const Seconds dimm_mlp_fc =
        ndp.sparseGemv(mlp_neurons / config_.numDimms, mlp_values,
                       request.batch)
            .total;
    const Seconds proj = gpu_model.gemm(request.batch, h, h);
    const Seconds seq_attn =
        ndp.attention(request.batch, kv_heads_per_dimm, llm.headDim(),
                      request.promptTokens, gqa_group)
            .total;
    const Seconds lm_head = lmHeadTime(gpu_model, llm, request.batch);
    const Seconds merge =
        ndp.merge(static_cast<Bytes>(request.batch) * h * kFp16Bytes)
            .total;

    // Every token is identical: build one token step on the shared
    // pipeline and extrapolate.  Without sparsity there is no hot/cold
    // overlap to exploit, so the chain is serial; the layer's FC runs
    // dense on the GPU while layers fit and whole-block on the NDP
    // lanes beyond that.
    DecodePipeline pipeline(config_.numDimms);
    pipeline.beginToken();
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        if (l < resident_layers) {
            pipeline.gpuStage(CostCategory::Fc, gpu_attn_fc);
        } else {
            pipeline.pcieStage(sync); // Activations to the DIMMs.
            pipeline.ndpStage(CostCategory::Fc, dimm_attn_fc);
        }
        pipeline.ndpStage(CostCategory::Attention, seq_attn);
        pipeline.pcieStage(sync); // Attention out.
        pipeline.gpuStage(CostCategory::Fc, proj);
        if (l < resident_layers) {
            pipeline.gpuStage(CostCategory::Fc, gpu_mlp_fc);
            pipeline.pcieStage(sync); // Partials to the merge.
        } else {
            pipeline.pcieStage(sync);
            pipeline.ndpStage(CostCategory::Fc, dimm_mlp_fc);
        }
        pipeline.ndpStage(CostCategory::Others, merge);
    }
    pipeline.gpuStage(CostCategory::Others, lm_head);
    pipeline.endToken(1.0, request.generateTokens);

    result.generateTime = pipeline.totalTime();
    result.breakdown += pipeline.accumulated().toBreakdown();

    result.stats.counter("resident.layers").set(resident_layers);

    finalize(result, request);
    return result;
}

} // namespace hermes::runtime
