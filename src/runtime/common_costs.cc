#include "runtime/common_costs.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"

namespace hermes::runtime {

GpuResidency
computeResidency(const SystemConfig &config, const model::LlmConfig &llm,
                 Bytes extra)
{
    GpuResidency residency;
    residency.denseBytes =
        static_cast<Bytes>(llm.layers) * llm.projectionBytesPerLayer() +
        llm.embeddingBytes();
    const Bytes needed =
        residency.denseBytes + config.gpuReservedBytes + extra;
    residency.hotBudget = config.gpu.memCapacity > needed
                              ? config.gpu.memCapacity - needed
                              : 0;
    return residency;
}

Seconds
gpuPromptCompute(const gpu::GpuModel &gpu, const model::LlmConfig &llm,
                 std::uint32_t batch, std::uint32_t prompt_tokens)
{
    const std::uint64_t positions =
        static_cast<std::uint64_t>(batch) * prompt_tokens;
    // Per layer: QKV + projection + MLP as one batched GEMM over all
    // positions; attention over the (growing) causal context, charged
    // at its full final length for every head (upper bound within a
    // factor of 2, which the roofline absorbs).
    Seconds total = 0.0;
    const auto h = static_cast<std::uint64_t>(llm.hidden);
    const std::uint64_t qkv_out = h + 2ULL * llm.kvDim();
    const std::uint64_t mlp_out =
        static_cast<std::uint64_t>(llm.mlpMatrices) * llm.ffnHidden;
    for (std::uint32_t l = 0; l < llm.layers; ++l) {
        total += gpu.gemm(positions, qkv_out, h);
        total += gpu.gemm(positions, h, h);
        total += gpu.gemm(positions, mlp_out, h);
        total += gpu.attention(batch, llm.heads, llm.kvHeads,
                               llm.headDim(), prompt_tokens);
    }
    total += gpu.gemm(positions, llm.vocab, h); // LM head.
    return total;
}

Seconds
streamingPrefill(const SystemConfig &config, const model::LlmConfig &llm,
                 std::uint32_t batch, std::uint32_t prompt_tokens,
                 Bytes non_resident_bytes, bool pinned, bool overlap)
{
    const gpu::GpuModel gpu(config.gpu);
    const interconnect::PcieBus pcie(config.pcie);
    const Seconds compute =
        gpuPromptCompute(gpu, llm, batch, prompt_tokens);
    const Seconds transfer =
        pcie.transferTime(non_resident_bytes, pinned);
    return overlap ? std::max(compute, transfer) : compute + transfer;
}

Seconds
lmHeadTime(const gpu::GpuModel &gpu, const model::LlmConfig &llm,
           std::uint32_t batch)
{
    return gpu.sparseGemv(llm.vocab, llm.hidden, batch);
}

Seconds
activationSyncTime(const interconnect::PcieBus &pcie,
                   const model::LlmConfig &llm, std::uint32_t batch)
{
    return pcie.transferTime(static_cast<Bytes>(batch) * llm.hidden *
                             kFp16Bytes);
}

} // namespace hermes::runtime
