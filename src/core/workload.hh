/**
 * @file
 * Workload scenario generator: seeded, reproducible arrival traces.
 *
 * PR 1's serving layer consumed hand-built traces (fixed lengths,
 * exponential gaps).  Real fleets face richer traffic: steady Poisson
 * streams, bursty arrivals with heavy inter-arrival tails, diurnal
 * load swings, and recorded production traces to replay.  This module
 * produces all of them from a single `ScenarioConfig`, bit-identically
 * for a given seed, so benches and tests can sweep scenarios instead
 * of hardcoding traces and every run is reproducible.
 *
 * Arrival processes:
 *  - Poisson: exponential inter-arrivals at `ratePerSecond`;
 *  - Bursty: Gamma inter-arrivals with squared coefficient of
 *    variation `burstiness` (> 1 clusters arrivals into bursts while
 *    preserving the mean rate);
 *  - Diurnal: inhomogeneous Poisson, rate modulated by a sinusoid of
 *    period `diurnalPeriodSeconds` and depth `diurnalDepth`, sampled
 *    by thinning;
 *  - Replay: parse a recorded `arrival_s,prompt,generate` CSV.
 *
 * Request lengths come from a bounded discrete distribution with an
 * optional heavy tail (a small fraction of long-context stragglers),
 * matching the shape of production prompt-length histograms.
 */

#ifndef HERMES_CORE_WORKLOAD_HH
#define HERMES_CORE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/serving.hh"

namespace hermes::serving {

/** How request arrival instants are generated. */
enum class ArrivalProcess
{
    Poisson,
    Bursty,
    Diurnal,
    Replay,
};

/** Display name of an arrival process. */
std::string arrivalProcessName(ArrivalProcess process);

/**
 * Bounded discrete length distribution with an optional heavy tail.
 *
 * Draws uniform in [mean - spread, mean + spread] (clamped to >= 1);
 * with probability `tailChance` the draw is stretched by `tailScale`
 * to model long-context stragglers.  spread = 0 is deterministic.
 */
struct LengthDistribution
{
    std::uint32_t mean = 128;
    std::uint32_t spread = 0;
    double tailChance = 0.0;
    double tailScale = 4.0;

    /** One seeded draw (>= 1 token). */
    std::uint32_t sample(Rng &rng) const;
};

/** Everything needed to synthesize one reproducible arrival trace. */
struct ScenarioConfig
{
    std::string name = "steady";
    ArrivalProcess process = ArrivalProcess::Poisson;

    /** Number of requests in the trace (Replay: taken from the CSV). */
    std::uint32_t requests = 64;

    /**
     * Mean arrival rate.  A rate <= 0 collapses the trace into one
     * burst at t = 0 (every request arrives simultaneously).
     */
    double ratePerSecond = 2.0;

    /**
     * Squared coefficient of variation of Bursty inter-arrivals
     * (Gamma shape = 1 / burstiness).  1 degenerates to Poisson;
     * larger values cluster arrivals harder.  Clamped to >= 1.
     */
    double burstiness = 8.0;

    /** Diurnal sinusoid period (seconds per load cycle). */
    double diurnalPeriodSeconds = 60.0;

    /** Diurnal modulation depth in [0, 1): rate swings rate*(1±depth). */
    double diurnalDepth = 0.8;

    LengthDistribution prompt{256, 128, 0.05, 4.0};
    LengthDistribution generate{64, 32, 0.0, 1.0};

    /**
     * Fraction of requests marked high priority (drawn from a
     * dedicated RNG stream, so 0 — the default — produces traces
     * bit-identical to the pre-priority generator).
     */
    double highPriorityFraction = 0.0;

    /** Priority level assigned to the high-priority fraction. */
    std::uint32_t highPriority = 1;

    /**
     * Multi-turn sessions (generateSessionWorkload): turns per
     * conversation.  The default mean 1 / spread 0 makes every
     * session single-turn — generateSessionWorkload then degenerates
     * to independent arrivals.  In session mode `requests` counts
     * *sessions*, not turns.
     */
    LengthDistribution turns{1, 0, 0.0, 1.0};

    /**
     * Think time between a turn completing and the follow-up
     * arriving: gaussian(thinkMeanSeconds, thinkSpreadSeconds)
     * clamped to >= 0.
     */
    double thinkMeanSeconds = 2.0;
    double thinkSpreadSeconds = 0.5;

    std::uint64_t seed = 1;

    /**
     * Replay only: CSV text (`arrival_s,prompt,generate[,priority]`
     * per line).
     */
    std::string replayCsv;
};

/**
 * Generate the trace described by `scenario`.  Arrivals come out
 * sorted; ids are assigned 0..n-1 in arrival order.  Same config and
 * seed => bit-identical trace.
 */
std::vector<ServedRequest> generateWorkload(const ScenarioConfig &scenario);

/**
 * A multi-turn conversational workload: the turns plus the
 * continuation plan the fleet kernel schedules them by.  Only a
 * session's *first* turn has a workload-determined arrival instant;
 * every follow-up turn arrives a think-time after its predecessor
 * completes, which only the simulation can decide — its stored
 * `arrival` is a placeholder (the session start) until the kernel
 * overwrites it at `done + thinkAfter`.
 *
 * All vectors are parallel to `requests` (index == request id):
 * `turnOf[i]` is i's zero-based turn number within its session,
 * `successor[i]` the request id of the next turn (-1: last turn),
 * and `thinkAfter[i]` the think-time gap the successor waits after
 * i completes.  Context grows with the conversation: turn k's
 * prompt is the full history (previous prompt + generated tokens)
 * plus a fresh user message.
 */
struct SessionTrace
{
    std::vector<ServedRequest> requests;
    std::vector<std::uint32_t> turnOf;
    std::vector<std::int64_t> successor;
    std::vector<Seconds> thinkAfter;
};

/**
 * Generate the seeded session trace described by `scenario`:
 * `scenario.requests` conversations, first turns arriving by the
 * scenario's arrival process, turn counts from `scenario.turns`,
 * think times from thinkMeanSeconds/thinkSpreadSeconds.  Session
 * ids are 1..sessions (0 is reserved for "no session"); request ids
 * are dense 0..turns-1, grouped by session in first-arrival order.
 * Same config and seed => bit-identical trace.
 */
SessionTrace generateSessionWorkload(const ScenarioConfig &scenario);

/**
 * Parse a replayed trace: one `arrival_s,prompt,generate` triple —
 * optionally extended with a fourth `priority` column — per line;
 * blank lines and lines starting with '#' are skipped.  Old
 * three-column traces parse with the default priority 0.  Throws
 * std::invalid_argument on malformed rows.
 */
std::vector<ServedRequest> parseCsvTrace(const std::string &csv);

/** Serialize a trace to the CSV format parseCsvTrace() accepts. */
std::string toCsvTrace(const std::vector<ServedRequest> &workload);

/**
 * The standard scenario sweep ("steady", "bursty", "diurnal") at the
 * given size and mean rate, for benches that compare like with like.
 */
std::vector<ScenarioConfig>
standardScenarios(std::uint32_t requests, double rate_per_second,
                  std::uint64_t seed);

/**
 * One standard scenario by name; throws on an unknown name.  Besides
 * the standard sweep, "multiturn" names the conversational scenario
 * consumed through generateSessionWorkload() (Poisson session
 * starts, 2-6 turns, ~2 s think time).
 */
ScenarioConfig scenarioByName(const std::string &name,
                              std::uint32_t requests,
                              double rate_per_second,
                              std::uint64_t seed);

} // namespace hermes::serving

#endif // HERMES_CORE_WORKLOAD_HH
