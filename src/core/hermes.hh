/**
 * @file
 * Public facade of the Hermes library.
 *
 * Typical use:
 * @code
 *   hermes::System system;                       // RTX 4090 + 8 DIMMs
 *   auto request = hermes::defaultRequest(
 *       hermes::model::llama2_70b());
 *   auto result = system.infer(request);
 *   std::cout << result.tokensPerSecond << " tokens/s\n";
 * @endcode
 *
 * The facade wraps the Hermes engine; the baselines of the paper's
 * evaluation are reachable through `compare()` or directly via
 * runtime::makeEngine.
 */

#ifndef HERMES_CORE_HERMES_HH
#define HERMES_CORE_HERMES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/serving.hh"
#include "model/llm_config.hh"
#include "runtime/engine.hh"
#include "runtime/factory.hh"
#include "runtime/system_config.hh"

namespace hermes {

using runtime::EngineKind;
using runtime::InferenceRequest;
using runtime::InferenceResult;
using runtime::SystemConfig;

/** Build the Sec. V-A1 default request for a model. */
InferenceRequest defaultRequest(const model::LlmConfig &llm,
                                std::uint32_t batch = 1);

/**
 * The Hermes system: one consumer-grade GPU plus NDP-DIMMs, with the
 * full scheduling stack of Sec. IV.
 */
class System
{
  public:
    /** Construct with the Sec. V-A1 default platform. */
    System();

    /** Construct with a custom platform. */
    explicit System(SystemConfig config);

    const SystemConfig &config() const { return config_; }

    /** Whether the platform can serve the request at all. */
    bool supports(const InferenceRequest &request) const;

    /** Run one inference workload on Hermes. */
    InferenceResult infer(const InferenceRequest &request);

    /** Run the same workload on Hermes and a set of baselines. */
    std::vector<InferenceResult>
    compare(const InferenceRequest &request,
            const std::vector<EngineKind> &engines);

    /**
     * Serve a multi-request arrival trace with continuous batching
     * (core/serving.hh) on this platform.
     */
    serving::ServingReport
    serve(const model::LlmConfig &llm,
          const std::vector<serving::ServedRequest> &workload,
          serving::ServingConfig config = {});

    /** Serve the same trace on each engine, for serving comparisons. */
    std::vector<serving::ServingReport>
    compareServing(const model::LlmConfig &llm,
                   const std::vector<serving::ServedRequest> &workload,
                   const std::vector<EngineKind> &engines,
                   serving::ServingConfig config = {});

  private:
    SystemConfig config_;
    std::unique_ptr<runtime::InferenceEngine> engine_;
};

/**
 * A platform config with `speed` times fewer simulated layers, for
 * fast exploratory runs (statistics are per-layer i.i.d.).
 */
SystemConfig fastConfig(std::uint32_t simulated_layers = 8);

} // namespace hermes

#endif // HERMES_CORE_HERMES_HH
