#include "core/workload.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hermes::serving {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** Standard normal via Box-Muller (two uniform draws per call). */
double
gaussian(Rng &rng)
{
    const double u = std::max(rng.uniform(), 1.0e-300);
    const double v = rng.uniform();
    return std::sqrt(-2.0 * std::log(u)) *
           std::cos(kTwoPi * v);
}

/** Exponential draw with the given mean (> 0). */
double
exponential(Rng &rng, double mean)
{
    const double u = std::max(rng.uniform(), 1.0e-12);
    return -std::log(u) * mean;
}

/**
 * Gamma(shape, scale) via Marsaglia-Tsang squeeze; shape < 1 handled
 * with the standard boosting identity Gamma(a) = Gamma(a+1) * U^(1/a).
 */
double
gammaDraw(Rng &rng, double shape, double scale)
{
    if (shape < 1.0) {
        const double u = std::max(rng.uniform(), 1.0e-300);
        return gammaDraw(rng, shape + 1.0, scale) *
               std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = gaussian(rng);
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        const double u = std::max(rng.uniform(), 1.0e-300);
        if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v))
            return d * v * scale;
    }
}

std::vector<Seconds>
arrivalInstants(const ScenarioConfig &scenario, Rng &rng)
{
    std::vector<Seconds> instants;
    instants.reserve(scenario.requests);
    const double rate = scenario.ratePerSecond;

    // Zero (or negative) rate: the whole trace is one burst at t = 0.
    if (rate <= 0.0) {
        instants.assign(scenario.requests, 0.0);
        return instants;
    }

    Seconds clock = 0.0;
    switch (scenario.process) {
    case ArrivalProcess::Poisson:
        for (std::uint32_t i = 0; i < scenario.requests; ++i) {
            instants.push_back(clock);
            clock += std::min(exponential(rng, 1.0 / rate),
                              100.0 / rate);
        }
        break;
    case ArrivalProcess::Bursty: {
        // Gamma inter-arrivals: mean 1/rate, CV^2 = burstiness.
        // shape < 1 piles probability near zero (bursts) with a heavy
        // tail (lulls between bursts).
        const double cv2 = std::max(scenario.burstiness, 1.0);
        const double shape = 1.0 / cv2;
        const double scale = cv2 / rate;
        for (std::uint32_t i = 0; i < scenario.requests; ++i) {
            instants.push_back(clock);
            clock += std::min(gammaDraw(rng, shape, scale),
                              100.0 / rate);
        }
        break;
    }
    case ArrivalProcess::Diurnal: {
        // Inhomogeneous Poisson by thinning: candidates at the peak
        // rate, accepted with probability lambda(t) / lambda_max.
        const double depth =
            std::clamp(scenario.diurnalDepth, 0.0, 0.999);
        const double period =
            std::max(scenario.diurnalPeriodSeconds, 1.0e-6);
        const double peak = rate * (1.0 + depth);
        while (instants.size() < scenario.requests) {
            clock += std::min(exponential(rng, 1.0 / peak),
                              100.0 / peak);
            const double lambda =
                rate * (1.0 + depth * std::sin(kTwoPi * clock /
                                               period));
            if (rng.uniform() * peak < lambda)
                instants.push_back(clock);
        }
        break;
    }
    case ArrivalProcess::Replay:
        break; // Handled by the caller; no synthesis.
    }
    return instants;
}

} // namespace

std::string
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
    case ArrivalProcess::Poisson:
        return "poisson";
    case ArrivalProcess::Bursty:
        return "bursty";
    case ArrivalProcess::Diurnal:
        return "diurnal";
    case ArrivalProcess::Replay:
        return "replay";
    }
    return "?";
}

std::uint32_t
LengthDistribution::sample(Rng &rng) const
{
    const std::uint32_t lo =
        mean > spread ? mean - spread : 1;
    const std::uint64_t width =
        static_cast<std::uint64_t>(mean) + spread - lo + 1;
    auto tokens =
        static_cast<std::uint32_t>(lo + rng.below(width));
    if (tailChance > 0.0 && rng.chance(tailChance)) {
        const double stretched =
            static_cast<double>(tokens) * std::max(tailScale, 1.0);
        tokens = static_cast<std::uint32_t>(
            std::min(stretched, 4.0e9));
    }
    return std::max<std::uint32_t>(tokens, 1);
}

std::vector<ServedRequest>
generateWorkload(const ScenarioConfig &scenario)
{
    if (scenario.process == ArrivalProcess::Replay)
        return parseCsvTrace(scenario.replayCsv);

    // Independent streams for arrivals, lengths, and priorities:
    // adding a request never shifts the lengths of the ones before
    // it, and turning priorities on never shifts arrivals/lengths.
    Rng arrival_rng(scenario.seed ^ 0xa27c3f11d5b86e09ULL);
    Rng length_rng(scenario.seed ^ 0x3c96b41f0e72a5cdULL);
    Rng priority_rng(scenario.seed ^ 0x91f4be5a60d8c723ULL);

    const auto instants = arrivalInstants(scenario, arrival_rng);
    std::vector<ServedRequest> workload;
    workload.reserve(instants.size());
    for (std::size_t i = 0; i < instants.size(); ++i) {
        ServedRequest request;
        request.id = i;
        request.arrival = instants[i];
        request.promptTokens = scenario.prompt.sample(length_rng);
        request.generateTokens =
            scenario.generate.sample(length_rng);
        if (scenario.highPriorityFraction > 0.0 &&
            priority_rng.chance(scenario.highPriorityFraction))
            request.priority = scenario.highPriority;
        workload.push_back(request);
    }
    return workload;
}

SessionTrace
generateSessionWorkload(const ScenarioConfig &scenario)
{
    // Independent streams, same discipline as generateWorkload:
    // session starts reuse the arrival stream, per-turn lengths the
    // length stream; turn counts and think times get a dedicated
    // stream so tuning them never shifts arrivals or lengths.
    Rng arrival_rng(scenario.seed ^ 0xa27c3f11d5b86e09ULL);
    Rng length_rng(scenario.seed ^ 0x3c96b41f0e72a5cdULL);
    Rng session_rng(scenario.seed ^ 0x6f2d8c4b9e1a3750ULL);

    const auto starts = arrivalInstants(scenario, arrival_rng);

    SessionTrace trace;
    for (std::size_t s = 0; s < starts.size(); ++s) {
        const std::uint64_t session =
            static_cast<std::uint64_t>(s) + 1; // 0 = no session.
        const std::uint32_t turns =
            scenario.turns.sample(session_rng);
        std::uint64_t history = 0;
        for (std::uint32_t turn = 0; turn < turns; ++turn) {
            ServedRequest request;
            request.id = trace.requests.size();
            // Follow-up arrivals are simulation-determined (done +
            // think); the session start is a placeholder the fleet
            // kernel overwrites.
            request.arrival = starts[s];
            // The prompt replays the whole conversation so far plus
            // a fresh user message; with the session KV resident,
            // only that fresh suffix actually prefills.
            const std::uint64_t message =
                scenario.prompt.sample(length_rng);
            request.promptTokens = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(history + message,
                                        UINT32_MAX));
            request.generateTokens =
                scenario.generate.sample(length_rng);
            request.sessionId = session;
            history = static_cast<std::uint64_t>(
                          request.promptTokens) +
                      request.generateTokens;

            const double think = std::max(
                0.0, scenario.thinkMeanSeconds +
                         scenario.thinkSpreadSeconds *
                             gaussian(session_rng));
            const bool last = turn + 1 == turns;
            trace.requests.push_back(request);
            trace.turnOf.push_back(turn);
            trace.successor.push_back(
                last ? -1
                     : static_cast<std::int64_t>(request.id) + 1);
            trace.thinkAfter.push_back(last ? 0.0 : think);
        }
    }
    return trace;
}

std::vector<ServedRequest>
parseCsvTrace(const std::string &csv)
{
    std::vector<ServedRequest> workload;
    std::istringstream stream(csv);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        ServedRequest request;
        double arrival = 0.0;
        long long prompt = 0;
        long long generate = 0;
        long long priority = 0;
        char comma1 = 0;
        char comma2 = 0;
        std::istringstream row(line);
        row >> arrival >> comma1 >> prompt >> comma2 >> generate;
        bool fields_ok =
            !row.fail() && comma1 == ',' && comma2 == ',';
        // Optional fourth column: priority.  Old three-column rows
        // parse with the default priority 0.
        char comma3 = 0;
        if (fields_ok && row >> comma3) {
            fields_ok = comma3 == ',' &&
                        static_cast<bool>(row >> priority);
        }
        char trailing = 0;
        const bool garbage = // Non-whitespace leftovers.
            fields_ok && static_cast<bool>(row >> trailing);
        if (!fields_ok || garbage || arrival < 0.0 || prompt < 1 ||
            generate < 0 || priority < 0 || prompt > UINT32_MAX ||
            generate > UINT32_MAX || priority > UINT32_MAX) {
            throw std::invalid_argument(
                "parseCsvTrace: malformed row " +
                std::to_string(line_no) + ": '" + line + "'");
        }
        request.id = workload.size();
        request.arrival = arrival;
        request.promptTokens = static_cast<std::uint32_t>(prompt);
        request.generateTokens =
            static_cast<std::uint32_t>(generate);
        request.priority = static_cast<std::uint32_t>(priority);
        workload.push_back(request);
    }
    sortByArrival(workload);
    for (std::size_t i = 0; i < workload.size(); ++i)
        workload[i].id = i;
    return workload;
}

std::string
toCsvTrace(const std::vector<ServedRequest> &workload)
{
    // The priority column is emitted only when some request uses
    // it, so all-default traces keep their historical byte-exact
    // three-column form (and stay readable by older parsers).
    bool prioritized = false;
    for (const ServedRequest &request : workload)
        prioritized |= request.priority != 0;

    std::ostringstream out;
    out << (prioritized ? "# arrival_s,prompt,generate,priority\n"
                        : "# arrival_s,prompt,generate\n");
    out.precision(17);
    for (const ServedRequest &request : workload) {
        out << request.arrival << ',' << request.promptTokens << ','
            << request.generateTokens;
        if (prioritized)
            out << ',' << request.priority;
        out << '\n';
    }
    return out.str();
}

std::vector<ScenarioConfig>
standardScenarios(std::uint32_t requests, double rate_per_second,
                  std::uint64_t seed)
{
    return {
        scenarioByName("steady", requests, rate_per_second, seed),
        scenarioByName("bursty", requests, rate_per_second, seed),
        scenarioByName("diurnal", requests, rate_per_second, seed),
    };
}

ScenarioConfig
scenarioByName(const std::string &name, std::uint32_t requests,
               double rate_per_second, std::uint64_t seed)
{
    ScenarioConfig scenario;
    scenario.name = name;
    scenario.requests = requests;
    scenario.ratePerSecond = rate_per_second;
    scenario.seed = seed;
    if (name == "steady") {
        scenario.process = ArrivalProcess::Poisson;
    } else if (name == "bursty") {
        scenario.process = ArrivalProcess::Bursty;
        scenario.burstiness = 8.0;
    } else if (name == "diurnal") {
        scenario.process = ArrivalProcess::Diurnal;
        scenario.diurnalPeriodSeconds =
            rate_per_second > 0.0
                ? 2.0 * static_cast<double>(requests) /
                      rate_per_second / 3.0
                : 60.0;
        scenario.diurnalDepth = 0.8;
    } else if (name == "multiturn") {
        // Conversational traffic: Poisson session starts, 2-6 turns
        // per conversation, ~2 s of think time between turns.
        // Messages are document-heavy (pasted context, retrieved
        // chunks) with chat-length replies, so the conversation
        // context reaches the multi-thousand-token regime where
        // re-prefilling history is the dominant per-turn cost —
        // exactly the regime KV-affinity routing targets.
        scenario.process = ArrivalProcess::Poisson;
        scenario.turns = LengthDistribution{4, 2, 0.0, 1.0};
        scenario.thinkMeanSeconds = 2.0;
        scenario.thinkSpreadSeconds = 0.5;
        scenario.prompt = LengthDistribution{3072, 512, 0.0, 1.0};
        scenario.generate = LengthDistribution{48, 16, 0.0, 1.0};
    } else {
        throw std::invalid_argument(
            "scenarioByName: unknown scenario '" + name + "'");
    }
    return scenario;
}

} // namespace hermes::serving
