#include "core/hermes.hh"

#include "runtime/hermes_engine.hh"

namespace hermes {

InferenceRequest
defaultRequest(const model::LlmConfig &llm, std::uint32_t batch)
{
    InferenceRequest request;
    request.llm = llm;
    request.batch = batch;
    request.promptTokens = 128;
    request.generateTokens = 128;
    return request;
}

System::System() : System(SystemConfig{}) {}

System::System(SystemConfig config)
    : config_(std::move(config)),
      engine_(std::make_unique<runtime::HermesEngine>(config_))
{
}

bool
System::supports(const InferenceRequest &request) const
{
    return engine_->supports(request);
}

InferenceResult
System::infer(const InferenceRequest &request)
{
    return engine_->run(request);
}

std::vector<InferenceResult>
System::compare(const InferenceRequest &request,
                const std::vector<EngineKind> &engines)
{
    std::vector<InferenceResult> results;
    results.reserve(engines.size() + 1);
    for (const EngineKind kind : engines) {
        auto engine = runtime::makeEngine(kind, config_);
        results.push_back(engine->run(request));
    }
    return results;
}

SystemConfig
fastConfig(std::uint32_t simulated_layers)
{
    SystemConfig config;
    config.simulatedLayers = simulated_layers;
    return config;
}

} // namespace hermes
