#include "core/hermes.hh"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/hermes_engine.hh"

namespace hermes {

InferenceRequest
defaultRequest(const model::LlmConfig &llm, std::uint32_t batch)
{
    InferenceRequest request;
    request.llm = llm;
    request.batch = batch;
    request.promptTokens = 128;
    request.generateTokens = 128;
    return request;
}

System::System() : System(SystemConfig{}) {}

System::System(SystemConfig config)
    : config_(std::move(config)),
      engine_(std::make_unique<runtime::HermesEngine>(config_))
{
}

bool
System::supports(const InferenceRequest &request) const
{
    return engine_->supports(request);
}

InferenceResult
System::infer(const InferenceRequest &request)
{
    return engine_->run(request);
}

std::vector<InferenceResult>
System::compare(const InferenceRequest &request,
                const std::vector<EngineKind> &engines)
{
    std::vector<InferenceResult> results;
    results.reserve(engines.size() + 1);
    for (const EngineKind kind : engines) {
        auto engine = runtime::makeEngine(kind, config_);
        results.push_back(engine->run(request));
    }
    return results;
}

serving::ServingReport
System::serve(const model::LlmConfig &llm,
              const std::vector<serving::ServedRequest> &workload,
              serving::ServingConfig config)
{
    serving::ServingSimulator simulator(config_, llm, config);
    return simulator.run(workload);
}

std::vector<serving::ServingReport>
System::compareServing(
    const model::LlmConfig &llm,
    const std::vector<serving::ServedRequest> &workload,
    const std::vector<EngineKind> &engines,
    serving::ServingConfig config)
{
    std::vector<serving::ServingReport> reports;
    reports.reserve(engines.size());
    for (const EngineKind kind : engines) {
        config.engine = kind;
        reports.push_back(serve(llm, workload, config));
    }
    return reports;
}

SystemConfig
fastConfig(std::uint32_t simulated_layers)
{
    SystemConfig config;
    config.simulatedLayers = simulated_layers;
    return config;
}

} // namespace hermes
