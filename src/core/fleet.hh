/**
 * @file
 * Fleet serving: N engine replicas co-simulated on one virtual clock.
 *
 * One ServingSimulator drives one engine instance; a production
 * deployment runs many replicas — possibly on different hardware
 * tiers or different engines — behind a router.  The FleetSimulator
 * composes both layers as an event-driven co-simulation
 * (core/event_sim.hh):
 *
 *  1. every request arrival is an event on the shared virtual
 *     clock; at that instant the active sched::ControlPolicy
 *     places the request on a replica (or sheds it), observing
 *     the replicas' ground-truth state through the kernel's
 *     FleetView and acting through its capability-checked
 *     FleetActions surface (sched/control_policy.hh);
 *  2. each replica is a resumable stepwise engine; its prefill and
 *     decode-step completions are events on the same clock, so all
 *     timing remains ground truth from the decode pipeline and
 *     the control plane finally *sees* the consequences of its own
 *     decisions;
 *  3. the policy's other subscriptions (onReplicaIdle, onTick,
 *     onReplicaDead, ...) fire on the same clock — work stealing,
 *     for example, is just a policy that reacts to onReplicaIdle
 *     by moving queued requests to the idle replica;
 *  4. per-replica reports are merged — joined back to the trace by
 *     request id, never by slot position — into a FleetReport:
 *     aggregate throughput (the sum over replicas), fleet-wide TTFT
 *     percentiles, and SLO attainment against the TTFT deadline.
 *
 * The pre-kernel two-phase path (route everything up front from the
 * estimate, then replay each replica in isolation) is kept behind
 * FleetKernel::TwoPhase; on estimate-based policies both kernels
 * produce bit-identical reports, which the tests pin.
 *
 * Replica ServingSimulators (and their calibrated cost caches)
 * persist across run() calls, so sweeping scenarios over one fleet
 * re-simulates engines only for unseen (batch, context) buckets.
 * Router calibration probes all replicas in parallel on a small
 * thread pool (each thread only touches its own replica's cache).
 */

#ifndef HERMES_CORE_FLEET_HH
#define HERMES_CORE_FLEET_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/event_sim.hh"
#include "core/serving.hh"
#include "core/workload.hh"
#include "model/llm_config.hh"
#include "runtime/system_config.hh"
#include "sched/control_policy.hh"
#include "sched/router.hh"

namespace hermes::fleet {

/** One replica: a platform plus its serving policy/engine. */
struct ReplicaConfig
{
    std::string name; ///< Display name; defaults to "r<i>".
    runtime::SystemConfig system{};
    serving::ServingConfig serving{};
};

/** Which co-simulation core drives the fleet. */
enum class FleetKernel
{
    /** Event-driven: routing at arrival events, shared clock. */
    EventDriven,

    /** PR 2 compatibility: route all up front, replay in isolation. */
    TwoPhase,
};

/** Display name ("event" / "two-phase"). */
std::string fleetKernelName(FleetKernel kernel);

/** Parse a display name back to a kernel; throws on unknown names. */
FleetKernel fleetKernelByName(const std::string &name);

/** Fleet topology and control plane. */
struct FleetConfig
{
    std::vector<ReplicaConfig> replicas;

    /**
     * First-class control plane (sched/control_policy.hh): an
     * event-subscribed policy object owning every placement,
     * shedding, and stealing decision.  Build one with
     * `sched::controlPolicyByName("least-tokens+slo-steal")` or
     * compose your own.  Event-driven kernel only.
     *
     * When unset (nullptr), the deprecated `policy` /
     * `workStealing` fields below are adapted onto the same API —
     * bit-identical to the pre-control-plane kernel.
     */
    std::shared_ptr<sched::ControlPolicy> control;

    /**
     * [deprecated — stable] Routing behavior when `control` is
     * unset.  Kept as a thin adapter over the ControlPolicy API
     * (`sched::makeRouterPolicy`); prefer `control`.
     */
    sched::RouterPolicy policy =
        sched::RouterPolicy::JoinShortestQueue;

    /**
     * TTFT service-level objective.  SloAware sheds requests whose
     * estimated TTFT already misses it; every policy reports
     * attainment against it.
     */
    Seconds ttftDeadline = 2.0;

    /**
     * Co-simulation core.  Feedback policies (true-jsq,
     * least-backlog) and work stealing require EventDriven; asking
     * for them under TwoPhase throws at run().
     */
    FleetKernel kernel = FleetKernel::EventDriven;

    /**
     * [deprecated — stable] Work stealing when `control` is unset
     * (EventDriven only): when a replica runs dry it steals up to
     * half of the most backlogged replica's queued — never running
     * — requests, newest arrivals first, capped at its own batch
     * size.  Kept as a thin adapter over the ControlPolicy API
     * (`sched::makeGreedyStealPolicy`); prefer composing `control`
     * with "greedy-steal" or "slo-steal".
     */
    bool workStealing = false;

    /**
     * Threads for router calibration across replicas (0 = one per
     * replica, capped at the hardware concurrency).
     */
    std::uint32_t calibrationThreads = 0;
};

/** `count` identical replicas behind the given policy. */
FleetConfig uniformFleet(std::uint32_t count,
                         const runtime::SystemConfig &system,
                         const serving::ServingConfig &serving,
                         sched::RouterPolicy policy,
                         Seconds ttft_deadline = 2.0);

/**
 * DIMM-link KV-transfer time for migrating `context_tokens` of
 * accumulated KV cache between replicas: the cost the event kernel
 * charges before a migrated request's ResumeReady event fires, and
 * the cost a test can assert is proportional to context length.
 * Reuses the decode pipeline's migration interconnect model
 * (interconnect::DimmLinkNetwork) with the source replica's link
 * parameters; zero when there is no context to move.
 */
Seconds kvMigrationSeconds(const runtime::SystemConfig &system,
                           const model::LlmConfig &llm,
                           std::uint64_t context_tokens);

/** What the event kernel did during one run (zero under TwoPhase). */
struct KernelStats
{
    sim::EventStats events;

    /** Work-stealing action firings / requests moved. */
    std::uint64_t steals = 0;
    std::uint64_t stolenRequests = 0;

    /** Request-lifecycle verbs (FleetActions::preempt / migrate). */
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0;

    /** Virtual seconds spent in DIMM-link KV transfers (migrate). */
    double kvTransferSeconds = 0.0;

    /**
     * Autoscaling verbs.  spawnRequests counts the legacy
     * requestSpawn intent (recorded, no physics); drainRequests
     * counts requestDrain calls that actually started a drain.
     * spawnedReplicas counts replicas stood up mid-run by
     * spawnReplica (each walks Provisioning → Warming → Active on
     * the virtual clock); retiredReplicas counts replicas whose
     * drain completed — their active-seconds clock stopped at the
     * retire instant (FleetReport::replicaActiveSeconds).
     */
    std::uint64_t spawnRequests = 0;
    std::uint64_t drainRequests = 0;
    std::uint64_t spawnedReplicas = 0;
    std::uint64_t retiredReplicas = 0;

    /**
     * Wall-clock seconds spent inside the event loop itself —
     * control-plane + bookkeeping overhead.  Engine-simulation time
     * for cold cost-cache buckets hit mid-loop is measured
     * separately (calibrationSeconds) and subtracted here, so
     * events.popped() / loopSeconds is the kernel's events/sec, not
     * the calibration wall's.
     */
    double loopSeconds = 0.0;

    /**
     * Wall-clock seconds the run spent inside cost-model engine
     * simulations, summed over cache groups: up-front router
     * calibration and trajectory warming plus any cold buckets the
     * loop still hit.  A bench tier where this exceeds loopSeconds
     * is calibration-bound — grow the warmed surface or switch the
     * tier to the interpolated cost model.
     */
    double calibrationSeconds = 0.0;
};

/** Fleet-level outcome of one run. */
struct FleetReport
{
    std::string policy;
    std::string kernel; ///< "event" or "two-phase".
    Seconds ttftDeadline = 0.0;

    /**
     * Per-replica serving reports, fleet order.  Replicas spawned
     * mid-run by the autoscaler append after the configured fleet,
     * named "s<k>" by default (spawn order).
     */
    std::vector<serving::ServingReport> replicaReports;
    std::vector<std::string> replicaNames;

    /**
     * Virtual seconds each replica was alive and billable, fleet
     * order (parallel to replicaReports): from its spawn instant
     * (0 for configured replicas) to its retire instant (end of
     * run when never retired).  Provisioning and warming time is
     * billable — the instance is up — which is exactly why a
     * scaler that flaps pays for it.
     */
    std::vector<Seconds> replicaActiveSeconds;

    /** Fleet cost: sum over replicaActiveSeconds. */
    Seconds replicaSeconds = 0.0;

    /**
     * replicaSeconds per completed request — the autoscaling
     * headline metric (0 when nothing completed).  A scaler beats a
     * fixed fleet when it completes the same work within the SLO on
     * fewer replica-seconds.
     */
    double costPerRequest = 0.0;

    /**
     * Request -> replica index, in arrival order (parallel to
     * `requests`); -1 marks a request shed by the router.  Under
     * work stealing this is the replica that finally held the
     * request, not the router's first placement.
     */
    std::vector<int> assignment;

    /** All requests in arrival order (shed ones marked rejected). */
    std::vector<serving::RequestMetrics> requests;

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0; ///< Includes shed.
    std::uint64_t shed = 0;     ///< Rejected at the router.

    Seconds makespan = 0.0;      ///< Max over replica makespans.
    double throughputTps = 0.0;  ///< Sum of replica throughputs.

    Seconds p50Ttft = 0.0; ///< Over served (non-rejected) requests.
    Seconds p99Ttft = 0.0;

    /**
     * Fraction of ALL requests that were served with TTFT within the
     * deadline — shed and rejected requests count as misses, so
     * shedding trades attainment for tail latency honestly.
     */
    double sloAttainment = 0.0;

    bool costModelSaturated = false;

    KernelStats kernelStats;
};

/**
 * TTFT percentile over the served (non-rejected) requests with
 * priority >= `min_priority` — how a priority tier's tail reads
 * from a FleetReport (0 covers everything, matching p99Ttft).
 */
Seconds ttftPercentile(const FleetReport &report, double p,
                       std::uint32_t min_priority = 0);

/**
 * End-to-end latency (arrival -> completion) percentile over the
 * served requests with priority >= `min_priority`.  The multi-turn
 * headline metric: a conversation blocks on the *whole* turn, not
 * just its first token, so KV-affinity wins show up here even when
 * TTFT ties.
 */
Seconds latencyPercentile(const FleetReport &report, double p,
                          std::uint32_t min_priority = 0);

/** Multi-replica co-simulator (see file header). */
class FleetSimulator
{
  public:
    FleetSimulator(FleetConfig config, model::LlmConfig llm);

    /**
     * Serve one arrival trace (any order; sorted internally).
     * Request ids must be unique: the report merge joins replica
     * rows back to the trace by id.
     */
    FleetReport run(std::vector<serving::ServedRequest> workload);

    /**
     * Serve a multi-turn session trace (core/workload.hh).  Only
     * each session's first turn is scheduled up front; every
     * follow-up turn arrives think-time after its predecessor
     * completes — a closed-loop arrival process only the
     * event-driven kernel can express, so TwoPhase throws.
     * Follow-up turns whose predecessor was shed or rejected never
     * arrive and are reported as rejected (the conversation ended).
     */
    FleetReport run(const serving::SessionTrace &sessions);

    const FleetConfig &config() const { return config_; }

  private:
    /**
     * Calibrate the router's view of replica `index` at the
     * workload's typical prompt length and decode context, and
     * warm the replica's cost cache across the batch ramp up to
     * the workload's maximum prompt/context so the event loop
     * itself runs on cache hits.
     */
    sched::ReplicaModel calibrate(std::size_t index,
                                  std::uint64_t typical_prompt,
                                  std::uint64_t typical_context,
                                  std::uint64_t max_prompt,
                                  std::uint64_t max_context);

    /** Calibrate all replicas, in parallel across a thread pool. */
    std::vector<sched::ReplicaModel>
    calibrateAll(std::uint64_t typical_prompt,
                 std::uint64_t typical_context,
                 std::uint64_t max_prompt,
                 std::uint64_t max_context);

    /**
     * Pre-warm every cache group's cost surface across the batch
     * ramp and the full context trajectory a session trace will
     * climb (columns 0..max_context/seqBucket), using the
     * calibration thread pool.  Under the interpolated cost model
     * the grid collapses to the log-spaced anchors; under the exact
     * model oversized grids are skipped (the run would not touch
     * most of them either).  Warming is observable only as
     * wall-clock time — cache fills are order-independent and never
     * latch saturation, so warmed runs stay bit-identical.
     */
    void warmSessionCosts(std::uint64_t max_context);

    /**
     * Engine-simulation seconds accumulated in the cost caches so
     * far, summed over cache-group leaders (a shared cache counts
     * once).  Snapshot deltas around the event loop split
     * KernelStats::loopSeconds from calibrationSeconds.
     */
    double totalCalibrationSeconds() const;

    /**
     * The event-driven co-simulation core.  The workload-shape
     * scalars carry the calibration operating point into the kernel
     * so replicas spawned mid-run calibrate and warm against the
     * same shape the configured fleet did.  `sessions` (with its
     * parallel mutable `workload` copy) switches the kernel into
     * session mode: first turns only are preloaded, follow-ups are
     * scheduled as SessionContinue events at done + think.
     */
    void runEventDriven(
        FleetReport &report,
        const std::vector<serving::ServedRequest> &workload,
        std::vector<sched::ReplicaModel> models,
        sched::ControlPolicy &control,
        std::uint64_t typical_prompt, std::uint64_t typical_context,
        std::uint64_t max_prompt, std::uint64_t max_context,
        const serving::SessionTrace *sessions = nullptr,
        std::vector<serving::ServedRequest> *mutable_workload =
            nullptr);

    /** The PR 2 compatibility path (route, then replay). */
    void runTwoPhase(
        FleetReport &report,
        const std::vector<serving::ServedRequest> &workload,
        std::vector<sched::ReplicaModel> models);

    /**
     * Join replica report rows back to the trace by request id and
     * fill the fleet aggregates (counts, percentiles, SLO).
     */
    void mergeReports(
        FleetReport &report,
        const std::vector<serving::ServedRequest> &workload);

    FleetConfig config_;
    model::LlmConfig llm_;
    std::vector<std::unique_ptr<serving::ServingSimulator>>
        replicas_;

    /**
     * Cost-cache sharing groups: replica i adopted the calibrated
     * step-cost cache of replica cacheGroupOf_[i] (its own index
     * when it leads a group).  Engine physics are pure functions of
     * the (system, model, serving) configuration, so equal-config
     * replicas share bit-identically — a uniform fleet pays each
     * cold (batch, context) bucket once instead of once per
     * replica, and calibration probes one representative per group.
     */
    std::vector<std::size_t> cacheGroupOf_;
};

} // namespace hermes::fleet

#endif // HERMES_CORE_FLEET_HH
