/**
 * @file
 * Fleet serving: N engine replicas behind a request router.
 *
 * One ServingSimulator drives one engine instance; a production
 * deployment runs many replicas — possibly on different hardware
 * tiers or different engines — behind a router.  The FleetSimulator
 * composes both layers:
 *
 *  1. a sched::Router walks the arrival trace in time order and
 *     assigns each request to a replica (or sheds it, under the
 *     SLO-aware policy), using a calibrated queueing estimate of
 *     every replica's backlog;
 *  2. each replica then serves its assigned sub-trace with the full
 *     continuous-batching simulation, so all timing remains ground
 *     truth from the decode pipeline — the router estimate only
 *     decides placement;
 *  3. per-replica reports are merged into a FleetReport: aggregate
 *     throughput (the sum over replicas), fleet-wide TTFT
 *     percentiles, and SLO attainment against the TTFT deadline.
 *
 * Replica ServingSimulators (and their calibrated cost caches)
 * persist across run() calls, so sweeping scenarios over one fleet
 * re-simulates engines only for unseen (batch, context) buckets.
 */

#ifndef HERMES_CORE_FLEET_HH
#define HERMES_CORE_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/serving.hh"
#include "model/llm_config.hh"
#include "runtime/system_config.hh"
#include "sched/router.hh"

namespace hermes::fleet {

/** One replica: a platform plus its serving policy/engine. */
struct ReplicaConfig
{
    std::string name; ///< Display name; defaults to "r<i>".
    runtime::SystemConfig system{};
    serving::ServingConfig serving{};
};

/** Fleet topology and routing policy. */
struct FleetConfig
{
    std::vector<ReplicaConfig> replicas;

    sched::RouterPolicy policy =
        sched::RouterPolicy::JoinShortestQueue;

    /**
     * TTFT service-level objective.  SloAware sheds requests whose
     * estimated TTFT already misses it; every policy reports
     * attainment against it.
     */
    Seconds ttftDeadline = 2.0;
};

/** `count` identical replicas behind the given policy. */
FleetConfig uniformFleet(std::uint32_t count,
                         const runtime::SystemConfig &system,
                         const serving::ServingConfig &serving,
                         sched::RouterPolicy policy,
                         Seconds ttft_deadline = 2.0);

/** Fleet-level outcome of one run. */
struct FleetReport
{
    std::string policy;
    Seconds ttftDeadline = 0.0;

    /** Per-replica serving reports, fleet order. */
    std::vector<serving::ServingReport> replicaReports;
    std::vector<std::string> replicaNames;

    /**
     * Request -> replica index, in arrival order (parallel to
     * `requests`); -1 marks a request shed by the router.
     */
    std::vector<int> assignment;

    /** All requests in arrival order (shed ones marked rejected). */
    std::vector<serving::RequestMetrics> requests;

    std::uint64_t completed = 0;
    std::uint64_t rejected = 0; ///< Includes shed.
    std::uint64_t shed = 0;     ///< Rejected at the router.

    Seconds makespan = 0.0;      ///< Max over replica makespans.
    double throughputTps = 0.0;  ///< Sum of replica throughputs.

    Seconds p50Ttft = 0.0; ///< Over served (non-rejected) requests.
    Seconds p99Ttft = 0.0;

    /**
     * Fraction of ALL requests that were served with TTFT within the
     * deadline — shed and rejected requests count as misses, so
     * shedding trades attainment for tail latency honestly.
     */
    double sloAttainment = 0.0;

    bool costModelSaturated = false;
};

/** Multi-replica serving simulator (see file header). */
class FleetSimulator
{
  public:
    FleetSimulator(FleetConfig config, model::LlmConfig llm);

    /** Serve one arrival trace (any order; sorted internally). */
    FleetReport run(std::vector<serving::ServedRequest> workload);

    const FleetConfig &config() const { return config_; }

  private:
    /**
     * Calibrate the router's view of replica `index` at the
     * workload's typical prompt length and decode context.
     */
    sched::ReplicaModel calibrate(std::size_t index,
                                  std::uint64_t typical_prompt,
                                  std::uint64_t typical_context);

    FleetConfig config_;
    model::LlmConfig llm_;
    std::vector<std::unique_ptr<serving::ServingSimulator>>
        replicas_;
};

} // namespace hermes::fleet

#endif // HERMES_CORE_FLEET_HH
