#include "core/event_sim.hh"

#include <tuple>

#include "common/logging.hh"

namespace hermes::sim {

std::string
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::Arrival:
        return "arrival";
    case EventKind::RequestDone:
        return "request-done";
    case EventKind::PrefillComplete:
        return "prefill-complete";
    case EventKind::StepComplete:
        return "step-complete";
    case EventKind::Wake:
        return "wake";
    case EventKind::Tick:
        return "tick";
    case EventKind::ResumeReady:
        return "resume-ready";
    }
    return "?";
}

bool
EventQueue::Later::operator()(const Event &a, const Event &b) const
{
    // Total order (earliest pops first): time, then replica with
    // fleet-level events (replica < 0) ahead of every replica's, so
    // a boundary at time t observes all arrivals with arrival <= t;
    // then kind, id, and finally insertion order.  No two events
    // ever compare equal, so pop order is deterministic.
    return std::tie(a.time, a.replica, a.kind, a.id, a.seq) >
           std::tie(b.time, b.replica, b.kind, b.id, b.seq);
}

void
EventQueue::push(Seconds time, EventKind kind, std::int32_t replica,
                 std::uint64_t id)
{
    hermes_assert(time >= now_,
                  "event scheduled in the virtual past: ",
                  eventKindName(kind), " at ", time, " < now ",
                  now_);
    heap_.push(Event{time, kind, replica, id, seq_++});
}

Event
EventQueue::pop()
{
    hermes_assert(!heap_.empty(), "pop from empty event queue");
    const Event event = heap_.top();
    heap_.pop();
    now_ = event.time;
    switch (event.kind) {
    case EventKind::Arrival:
        ++stats_.arrivals;
        break;
    case EventKind::RequestDone:
        ++stats_.requestsDone;
        break;
    case EventKind::PrefillComplete:
        ++stats_.prefills;
        break;
    case EventKind::StepComplete:
        ++stats_.decodeSteps;
        break;
    case EventKind::Wake:
        ++stats_.wakes;
        break;
    case EventKind::Tick:
        ++stats_.ticks;
        break;
    case EventKind::ResumeReady:
        ++stats_.resumes;
        break;
    }
    return event;
}

} // namespace hermes::sim
