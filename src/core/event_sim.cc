#include "core/event_sim.hh"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>

#include "common/logging.hh"

namespace hermes::sim {
namespace {

/** Strict "earlier than" under the documented total order. */
bool
earlier(const Event &a, const Event &b)
{
    // Total order (earliest pops first): time, then replica with
    // fleet-level events (replica < 0) ahead of every replica's, so
    // a boundary at time t observes all arrivals with arrival <= t;
    // then kind, id, and finally insertion order.  No two events
    // ever compare equal (seq is unique), so any correct merge over
    // the shards pops the byte-identical sequence a single heap
    // would.
    return std::tie(a.time, a.replica, a.kind, a.id, a.seq) <
           std::tie(b.time, b.replica, b.kind, b.id, b.seq);
}

/** Heap predicate for std::push_heap (max-heap on "later"). */
struct Later
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        return earlier(b, a);
    }
};

} // namespace

std::string
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::Arrival:
        return "arrival";
    case EventKind::RequestDone:
        return "request-done";
    case EventKind::PrefillComplete:
        return "prefill-complete";
    case EventKind::StepComplete:
        return "step-complete";
    case EventKind::Wake:
        return "wake";
    case EventKind::Tick:
        return "tick";
    case EventKind::ResumeReady:
        return "resume-ready";
    case EventKind::SessionContinue:
        return "session-continue";
    case EventKind::ReplicaReady:
        return "replica-ready";
    }
    return "?";
}

void
EventQueue::Heap::push(const Event &event)
{
    events.push_back(event);
    std::push_heap(events.begin(), events.end(), Later{});
}

void
EventQueue::Heap::pop()
{
    std::pop_heap(events.begin(), events.end(), Later{});
    events.pop_back();
}

EventQueue::Heap &
EventQueue::replicaQueue(std::int32_t replica)
{
    const auto index = static_cast<std::size_t>(replica);
    if (index >= replica_.size())
        replica_.resize(index + 1);
    return replica_[index];
}

void
EventQueue::push(Seconds time, EventKind kind, std::int32_t replica,
                 std::uint64_t id)
{
    hermes_assert(time >= now_,
                  "event scheduled in the virtual past: ",
                  eventKindName(kind), " at ", time, " < now ",
                  now_);
    const Event event{time, kind, replica, id, seq_++};
    if (replica < 0) {
        fleet_.push(event);
    } else {
        Heap &queue = replicaQueue(replica);
        queue.push(event);
        // New head of its shard: register it as a merge candidate.
        // A displaced previous head stays behind as a stale entry
        // and is discarded lazily at pop time.
        if (queue.top().seq == event.seq)
            heads_.push(event);
    }
    ++size_;
}

void
EventQueue::pushSorted(Seconds time, EventKind kind,
                       std::uint64_t id)
{
    hermes_assert(time >= now_,
                  "event scheduled in the virtual past: ",
                  eventKindName(kind), " at ", time, " < now ",
                  now_);
    const Event event{time, kind, -1, id, seq_++};
    hermes_assert(sorted_.empty() ||
                      !earlier(event, sorted_.back()),
                  "pushSorted out of order: ", eventKindName(kind),
                  " at ", time, " id ", id);
    sorted_.push_back(event);
    ++size_;
}

void
EventQueue::shard(std::uint32_t replicas)
{
    if (replicas > replica_.size())
        replica_.resize(replicas);
}

void
EventQueue::reserve(std::size_t events)
{
    if (replica_.empty()) {
        // Unsharded: everything funnels into the fleet heap.
        fleet_.reserve(events);
        return;
    }
    // Each shard holds only its replica's in-flight events — a
    // handful per batch in steady state — so a capped slice of the
    // total budget covers it without allocating events × replicas.
    const std::size_t slice = std::min<std::size_t>(
        512, events / replica_.size() + 8);
    for (Heap &queue : replica_)
        queue.reserve(slice);
    // Amortized ≤ 2 merge candidates per in-flight shard head plus
    // lazily-discarded stale entries.
    heads_.reserve(4 * replica_.size() + 16);
    fleet_.reserve(std::min<std::size_t>(events, 4096));
}

void
EventQueue::reserveSorted(std::size_t events)
{
    sorted_.reserve(sorted_.size() + events);
}

void
EventQueue::dropStaleHeads()
{
    while (!heads_.empty()) {
        const Event &head = heads_.top();
        const Heap &queue =
            replica_[static_cast<std::size_t>(head.replica)];
        // seq is unique, so an exact match proves this candidate is
        // still its shard's live head.
        if (!queue.empty() && queue.top().seq == head.seq)
            return;
        heads_.pop();
    }
}

Event
EventQueue::pop()
{
    hermes_assert(size_ > 0, "pop from empty event queue");
    dropStaleHeads();

    // Three-way merge: presorted fleet stream, fleet heap, and the
    // validated earliest replica head.
    const Event *best = nullptr;
    enum class Source { Sorted, Fleet, Replica } source = Source::Sorted;
    if (sortedNext_ < sorted_.size())
        best = &sorted_[sortedNext_];
    if (!fleet_.empty() &&
        (best == nullptr || earlier(fleet_.top(), *best))) {
        best = &fleet_.top();
        source = Source::Fleet;
    }
    if (!heads_.empty() &&
        (best == nullptr || earlier(heads_.top(), *best))) {
        best = &heads_.top();
        source = Source::Replica;
    }
    hermes_assert(best != nullptr, "event queue shards all empty");

    const Event event = *best;
    switch (source) {
    case Source::Sorted:
        ++sortedNext_;
        // Recycle the consumed prefix once the stream fully drains
        // so interleaved preload phases do not accumulate.
        if (sortedNext_ == sorted_.size()) {
            sorted_.clear();
            sortedNext_ = 0;
        }
        break;
    case Source::Fleet:
        fleet_.pop();
        break;
    case Source::Replica: {
        Heap &queue =
            replica_[static_cast<std::size_t>(event.replica)];
        queue.pop();
        heads_.pop();
        // The shard's next event (possibly a previously displaced
        // head) becomes a merge candidate.
        if (!queue.empty())
            heads_.push(queue.top());
        break;
    }
    }
    --size_;
    now_ = event.time;

    switch (event.kind) {
    case EventKind::Arrival:
        ++stats_.arrivals;
        break;
    case EventKind::RequestDone:
        ++stats_.requestsDone;
        break;
    case EventKind::PrefillComplete:
        ++stats_.prefills;
        break;
    case EventKind::StepComplete:
        ++stats_.decodeSteps;
        break;
    case EventKind::Wake:
        ++stats_.wakes;
        break;
    case EventKind::Tick:
        ++stats_.ticks;
        break;
    case EventKind::ResumeReady:
        ++stats_.resumes;
        break;
    case EventKind::SessionContinue:
        ++stats_.sessionContinues;
        break;
    case EventKind::ReplicaReady:
        ++stats_.replicaReadies;
        break;
    }
    ++stats_.poppedEvents;
    return event;
}

} // namespace hermes::sim
