#include "core/fleet.hh"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"

namespace hermes::fleet {

namespace {

/** Median of a (copied) sample set; 0 when empty. */
std::uint64_t
median(std::vector<std::uint64_t> values)
{
    if (values.empty())
        return 0;
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid,
                     values.end());
    return values[mid];
}

} // namespace

std::string
fleetKernelName(FleetKernel kernel)
{
    switch (kernel) {
    case FleetKernel::EventDriven:
        return "event";
    case FleetKernel::TwoPhase:
        return "two-phase";
    }
    return "?";
}

FleetKernel
fleetKernelByName(const std::string &name)
{
    if (name == "event")
        return FleetKernel::EventDriven;
    if (name == "two-phase")
        return FleetKernel::TwoPhase;
    throw std::invalid_argument(
        "fleetKernelByName: unknown kernel '" + name + "'");
}

FleetConfig
uniformFleet(std::uint32_t count,
             const runtime::SystemConfig &system,
             const serving::ServingConfig &serving,
             sched::RouterPolicy policy, Seconds ttft_deadline)
{
    FleetConfig config;
    config.policy = policy;
    config.ttftDeadline = ttft_deadline;
    config.replicas.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        ReplicaConfig replica;
        replica.name = "r" + std::to_string(i);
        replica.system = system;
        replica.serving = serving;
        config.replicas.push_back(std::move(replica));
    }
    return config;
}

FleetSimulator::FleetSimulator(FleetConfig config,
                               model::LlmConfig llm)
    : config_(std::move(config)), llm_(std::move(llm))
{
    if (config_.replicas.empty())
        throw std::invalid_argument("FleetSimulator: no replicas");
    for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
        ReplicaConfig &replica = config_.replicas[i];
        if (replica.name.empty())
            replica.name = "r" + std::to_string(i);
        replicas_.push_back(
            std::make_unique<serving::ServingSimulator>(
                replica.system, llm_, replica.serving));
    }
}

sched::ReplicaModel
FleetSimulator::calibrate(std::size_t index,
                          std::uint64_t typical_prompt,
                          std::uint64_t typical_context)
{
    serving::ServingSimulator &simulator = *replicas_[index];
    const std::uint32_t max_batch = std::max<std::uint32_t>(
        config_.replicas[index].serving.maxBatch, 1);

    sched::ReplicaModel model;
    model.maxBatch = max_batch;
    if (!simulator.servable(1, typical_prompt)) {
        // Dead replica (platform cannot run the model): make it look
        // infinitely slow, so the SLO-aware policy never picks it
        // and backlog-aware policies back off once its never-
        // draining queue estimate piles up.  Round-robin still hits
        // it — by design.
        model.prefillSeconds = 1.0e9;
        model.slotTokensPerSecond = 1.0e-9;
        return model;
    }
    // The router's window model charges one joint prefill per
    // admission group of up to maxBatch requests, so calibrate the
    // prefill at the group's batch size, not at batch 1.
    const Seconds step =
        simulator.tokenSeconds(max_batch, typical_context);
    if (step <= 0.0) {
        // Zero is the unservable sentinel (real steps are strictly
        // positive): the decode-context bucket exceeds the replica
        // even though the prompt probe fit.  Same treatment as a
        // dead replica — infinitely slow, never infinitely fast.
        model.prefillSeconds = 1.0e9;
        model.slotTokensPerSecond = 1.0e-9;
        return model;
    }
    model.prefillSeconds =
        simulator.prefillSeconds(max_batch, typical_prompt);
    model.slotTokensPerSecond = 1.0 / step;
    return model;
}

std::vector<sched::ReplicaModel>
FleetSimulator::calibrateAll(std::uint64_t typical_prompt,
                             std::uint64_t typical_context)
{
    const std::size_t count = replicas_.size();
    std::vector<sched::ReplicaModel> models(count);

    unsigned hardware = std::thread::hardware_concurrency();
    if (hardware == 0)
        hardware = 1;
    const std::size_t workers = std::min<std::size_t>(
        count, config_.calibrationThreads > 0
                   ? config_.calibrationThreads
                   : hardware);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            models[i] =
                calibrate(i, typical_prompt, typical_context);
        return models;
    }

    // Each worker claims whole replicas, so one replica's cost
    // cache is only ever touched by one thread and the calibrated
    // models are identical to the serial loop regardless of
    // scheduling.  Large-fleet sweeps stop paying one engine
    // simulation chain per replica in series.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            try {
                for (std::size_t i = next.fetch_add(1); i < count;
                     i = next.fetch_add(1))
                    models[i] = calibrate(i, typical_prompt,
                                          typical_context);
            } catch (...) {
                errors[w] = std::current_exception();
            }
        });
    }
    for (std::thread &thread : pool)
        thread.join();
    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return models;
}

void
FleetSimulator::runTwoPhase(
    FleetReport &report,
    const std::vector<serving::ServedRequest> &workload,
    std::vector<sched::ReplicaModel> models)
{
    const std::size_t replica_count = replicas_.size();
    sched::Router router(config_.policy, std::move(models),
                         config_.ttftDeadline);

    // Route in arrival order; each decision updates the router's
    // backlog estimate, so later requests see earlier placements —
    // but never the replicas' ground truth.
    std::vector<std::vector<serving::ServedRequest>> assigned(
        replica_count);
    report.assignment.assign(workload.size(), -1);
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const serving::ServedRequest &request = workload[i];
        const sched::RouteDecision decision = router.route(
            request.arrival, request.generateTokens);
        report.assignment[i] = decision.replica;
        if (decision.replica < 0) {
            ++report.shed;
            continue;
        }
        assigned[static_cast<std::size_t>(decision.replica)]
            .push_back(request);
    }

    // Ground truth: every replica serves its sub-trace with the full
    // continuous-batching simulation, in isolation.
    for (std::size_t r = 0; r < replica_count; ++r)
        report.replicaReports.push_back(
            replicas_[r]->run(assigned[r]));
}

void
FleetSimulator::runEventDriven(
    FleetReport &report,
    const std::vector<serving::ServedRequest> &workload,
    std::vector<sched::ReplicaModel> models)
{
    const std::size_t replica_count = replicas_.size();
    sched::Router router(config_.policy, std::move(models),
                         config_.ttftDeadline);

    for (auto &replica : replicas_)
        replica->beginSession();

    // id -> workload index, for re-assignment under work stealing
    // (ids are unique; run() guards that).
    std::unordered_map<std::uint64_t, std::size_t> index_of_id;
    if (config_.workStealing) {
        index_of_id.reserve(workload.size());
        for (std::size_t i = 0; i < workload.size(); ++i)
            index_of_id[workload[i].id] = i;
    }

    sim::EventQueue queue;
    for (std::size_t i = 0; i < workload.size(); ++i)
        queue.push(workload[i].arrival, sim::EventKind::Arrival,
                   -1, i);
    std::vector<char> wake_scheduled(replica_count, 0);
    report.assignment.assign(workload.size(), -1);

    const auto schedule = [&](std::size_t r,
                              const serving::StepAction &action) {
        switch (action.kind) {
        case serving::StepKind::Prefill:
            queue.push(action.until,
                       sim::EventKind::PrefillComplete,
                       static_cast<std::int32_t>(r), 0);
            break;
        case serving::StepKind::Decode:
            queue.push(action.until, sim::EventKind::StepComplete,
                       static_cast<std::int32_t>(r), 0);
            break;
        case serving::StepKind::WaitArrival:
            // Unreachable: every delivery (arrival event or steal)
            // happens at or after the request's arrival instant,
            // so a boundary never sees a future-only queue.
            hermes_panic("event kernel: future-only queue at a "
                         "replica boundary");

        case serving::StepKind::Idle:
            break;
        }
    };

    const auto try_steal = [&](std::size_t thief, Seconds now) {
        // Only a replica proven able to serve may steal; a dead (or
        // never-probed) replica would strand what it takes.
        if (!replicas_[thief]->knownServable())
            return;
        std::size_t victim = replica_count;
        std::uint32_t deepest = 0;
        for (std::size_t r = 0; r < replica_count; ++r) {
            if (r == thief)
                continue;
            // A victim must be genuinely stuck: mid-step with a
            // queue behind it, or known dead.  An idle replica
            // with fresh deliveries has a same-instant Wake coming
            // and will serve them itself — stealing those would
            // override the router's placement for no gain.
            if (!replicas_[r]->busy() &&
                !replicas_[r]->knownDead())
                continue;
            const std::uint32_t queued =
                replicas_[r]->queuedCount();
            if (queued > deepest) {
                deepest = queued;
                victim = r;
            }
        }
        if (victim == replica_count || deepest == 0)
            return;
        const std::uint32_t cap = std::max<std::uint32_t>(
            config_.replicas[thief].serving.maxBatch, 1);
        const std::vector<serving::ServedRequest> stolen =
            replicas_[victim]->stealQueued(
                std::min((deepest + 1) / 2, cap));
        if (stolen.empty())
            return;
        ++report.kernelStats.steals;
        report.kernelStats.stolenRequests += stolen.size();
        for (const serving::ServedRequest &request : stolen) {
            report.assignment[index_of_id.at(request.id)] =
                static_cast<int>(thief);
            replicas_[thief]->deliver(request);
        }
        // The thief is idle, so the stolen group starts at once.
        schedule(thief, replicas_[thief]->startNextWork(now));
    };

    const auto advance = [&](std::size_t r, Seconds now) {
        const serving::StepAction action =
            replicas_[r]->startNextWork(now);
        schedule(r, action);
        if (action.kind == serving::StepKind::Idle &&
            config_.workStealing)
            try_steal(r, now);
    };

    // The co-simulation loop: one virtual clock, earliest event
    // first, deterministic tie order (see core/event_sim.hh).
    while (!queue.empty()) {
        const sim::Event event = queue.pop();
        switch (event.kind) {
        case sim::EventKind::Arrival: {
            const serving::ServedRequest &request =
                workload[event.id];
            // Sample ground truth at the decision instant — only
            // for the policies that rank by it (the gather walks
            // every replica's queues).
            std::vector<sched::ReplicaObservation> observed;
            if (sched::routerPolicyNeedsObservations(
                    config_.policy)) {
                observed.resize(replica_count);
                for (std::size_t r = 0; r < replica_count; ++r) {
                    observed[r].outstanding =
                        replicas_[r]->observedOutstanding();
                    observed[r].backlogTokens =
                        replicas_[r]->observedBacklogTokens();
                }
            }
            const sched::RouteDecision decision = router.route(
                request.arrival, request.generateTokens,
                observed.empty() ? nullptr : &observed);
            report.assignment[event.id] = decision.replica;
            if (decision.replica < 0) {
                ++report.shed;
                break;
            }
            const auto r =
                static_cast<std::size_t>(decision.replica);
            replicas_[r]->deliver(request);
            // Wake an idle replica once all same-instant arrivals
            // are delivered (Wake sorts after Arrival at a tie), so
            // a simultaneous burst prefills as one group, exactly
            // like the closed loop.
            if (!replicas_[r]->busy() && !wake_scheduled[r]) {
                queue.push(event.time, sim::EventKind::Wake,
                           decision.replica, 0);
                wake_scheduled[r] = 1;
            }
            break;
        }
        case sim::EventKind::Wake: {
            const auto r =
                static_cast<std::size_t>(event.replica);
            wake_scheduled[r] = 0;
            if (!replicas_[r]->busy())
                advance(r, event.time);
            break;
        }
        case sim::EventKind::PrefillComplete:
        case sim::EventKind::StepComplete: {
            const auto r =
                static_cast<std::size_t>(event.replica);
            for (const std::uint64_t id :
                 replicas_[r]->completeWork())
                queue.push(event.time,
                           sim::EventKind::RequestDone,
                           event.replica, id);
            advance(r, event.time);
            break;
        }
        case sim::EventKind::RequestDone:
            // Pure bookkeeping; counted by the queue's stats.
            break;
        }
    }
    report.kernelStats.events = queue.stats();

    for (auto &replica : replicas_)
        report.replicaReports.push_back(replica->finishSession());
}

void
FleetSimulator::mergeReports(
    FleetReport &report,
    const std::vector<serving::ServedRequest> &workload)
{
    for (const serving::ServingReport &replica :
         report.replicaReports) {
        report.completed += replica.completed;
        report.rejected += replica.rejected;
        report.makespan =
            std::max(report.makespan, replica.makespan);
        report.throughputTps += replica.throughputTps;
        report.costModelSaturated |= replica.costModelSaturated;
    }
    report.rejected += report.shed;

    // Merge per-request metrics back into arrival order with an
    // explicit request-id join — replica report rows are found by
    // id, never by slot position, so the merge cannot silently
    // misalign when a replica reorders, drops, or (under work
    // stealing) gains rows relative to the router's bookkeeping.
    std::unordered_map<std::uint64_t,
                       std::pair<std::size_t, std::size_t>>
        row_of_id;
    for (std::size_t r = 0; r < report.replicaReports.size();
         ++r) {
        const auto &rows = report.replicaReports[r].requests;
        for (std::size_t j = 0; j < rows.size(); ++j)
            row_of_id[rows[j].id] = {r, j};
    }

    report.requests.resize(workload.size());
    std::vector<Seconds> ttft_samples;
    std::uint64_t within_deadline = 0;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        if (report.assignment[i] < 0) {
            serving::RequestMetrics &metrics = report.requests[i];
            metrics.id = workload[i].id;
            metrics.arrival = workload[i].arrival;
            metrics.rejected = true;
            continue;
        }
        const auto it = row_of_id.find(workload[i].id);
        hermes_assert(
            it != row_of_id.end() &&
                it->second.first ==
                    static_cast<std::size_t>(
                        report.assignment[i]),
            "fleet merge: request ", workload[i].id,
            " missing from its replica report");
        report.requests[i] =
            report.replicaReports[it->second.first]
                .requests[it->second.second];
        const serving::RequestMetrics &metrics =
            report.requests[i];
        if (!metrics.rejected) {
            ttft_samples.push_back(metrics.ttft());
            within_deadline +=
                metrics.ttft() <= config_.ttftDeadline ? 1 : 0;
        }
    }
    report.p50Ttft = serving::percentile(ttft_samples, 50.0);
    report.p99Ttft = serving::percentile(ttft_samples, 99.0);
    report.sloAttainment =
        workload.empty()
            ? 1.0
            : static_cast<double>(within_deadline) /
                  static_cast<double>(workload.size());
}

FleetReport
FleetSimulator::run(std::vector<serving::ServedRequest> workload)
{
    serving::sortByArrival(workload);

    // The merge joins replica rows back to the trace by request id;
    // duplicates would make the join ambiguous.
    {
        std::unordered_set<std::uint64_t> seen;
        seen.reserve(workload.size());
        for (const serving::ServedRequest &request : workload) {
            if (!seen.insert(request.id).second)
                throw std::invalid_argument(
                    "FleetSimulator: request ids must be unique "
                    "(the report merge joins by id)");
        }
    }
    if (config_.kernel == FleetKernel::TwoPhase &&
        (sched::routerPolicyNeedsObservations(config_.policy) ||
         config_.workStealing))
        throw std::invalid_argument(
            "FleetSimulator: feedback policies and work stealing "
            "need the event-driven kernel");

    FleetReport report;
    report.policy = sched::routerPolicyName(config_.policy);
    report.kernel = fleetKernelName(config_.kernel);
    report.ttftDeadline = config_.ttftDeadline;
    for (const ReplicaConfig &replica : config_.replicas)
        report.replicaNames.push_back(replica.name);

    // The router's typical request shape depends only on the
    // workload: compute it once, calibrate every replica against it.
    std::vector<std::uint64_t> prompts;
    std::vector<std::uint64_t> generates;
    prompts.reserve(workload.size());
    generates.reserve(workload.size());
    for (const serving::ServedRequest &request : workload) {
        prompts.push_back(request.promptTokens);
        generates.push_back(request.generateTokens);
    }
    const std::uint64_t typical_prompt =
        std::max<std::uint64_t>(median(std::move(prompts)), 1);
    // Decode runs at a context that grows from the prompt; half the
    // typical generation is the representative midpoint.
    const std::uint64_t typical_context =
        typical_prompt + median(std::move(generates)) / 2;

    std::vector<sched::ReplicaModel> models =
        calibrateAll(typical_prompt, typical_context);

    if (config_.kernel == FleetKernel::EventDriven)
        runEventDriven(report, workload, std::move(models));
    else
        runTwoPhase(report, workload, std::move(models));

    mergeReports(report, workload);
    return report;
}

} // namespace hermes::fleet
