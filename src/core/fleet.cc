#include "core/fleet.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/threads.hh"

namespace hermes::fleet {

namespace {

/** "r<i>", the default display name of replica i. */
std::string
defaultReplicaName(std::uint32_t index)
{
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "r%u", index);
    return buffer;
}

/** Median of a (copied) sample set; 0 when empty. */
std::uint64_t
median(std::vector<std::uint64_t> values)
{
    if (values.empty())
        return 0;
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid,
                     values.end());
    return values[mid];
}

/** The calibration operating point a workload implies. */
struct WorkloadShape
{
    std::uint64_t typicalPrompt = 1;
    std::uint64_t typicalContext = 1;
    std::uint64_t typicalGenerate = 1;
    std::uint64_t maxPrompt = 0;
    std::uint64_t maxContext = 0;
};

/**
 * The router's typical request shape depends only on the workload:
 * compute it once, calibrate every replica against it.
 */
WorkloadShape
workloadShape(const std::vector<serving::ServedRequest> &workload)
{
    std::vector<std::uint64_t> prompts;
    std::vector<std::uint64_t> generates;
    prompts.reserve(workload.size());
    generates.reserve(workload.size());
    WorkloadShape shape;
    for (const serving::ServedRequest &request : workload) {
        prompts.push_back(request.promptTokens);
        generates.push_back(request.generateTokens);
        shape.maxPrompt = std::max<std::uint64_t>(
            shape.maxPrompt, request.promptTokens);
        shape.maxContext = std::max<std::uint64_t>(
            shape.maxContext, static_cast<std::uint64_t>(
                                  request.promptTokens) +
                                  request.generateTokens);
    }
    shape.typicalPrompt =
        std::max<std::uint64_t>(median(std::move(prompts)), 1);
    // Decode runs at a context that grows from the prompt; half the
    // typical generation is the representative midpoint.
    shape.typicalGenerate =
        std::max<std::uint64_t>(median(std::move(generates)), 1);
    shape.typicalContext =
        shape.typicalPrompt + shape.typicalGenerate / 2;
    return shape;
}

/** "s<k>", the default name of the k-th replica spawned mid-run. */
std::string
spawnedReplicaName(std::uint64_t index)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "s%llu",
                  static_cast<unsigned long long>(index));
    return buffer;
}

/**
 * Calibrate the router's view of one replica at the workload's
 * typical operating point, and warm its cost cache across the
 * batch ramp (see FleetSimulator::calibrate).  Shared between
 * up-front fleet calibration and mid-run spawns: a replica stood
 * up by the autoscaler gets the identical model a configured
 * sibling would, from the identical probe set.
 */
sched::ReplicaModel
calibrateReplicaModel(serving::ServingSimulator &simulator,
                      std::uint32_t max_batch,
                      const WorkloadShape &shape)
{
    sched::ReplicaModel model;
    model.maxBatch = max_batch;
    if (!simulator.servable(1, shape.typicalPrompt)) {
        // Dead replica (platform cannot run the model): make it look
        // infinitely slow, so the SLO-aware policy never picks it
        // and backlog-aware policies back off once its never-
        // draining queue estimate piles up.  Round-robin still hits
        // it — by design.
        model.prefillSeconds = 1.0e9;
        model.slotTokensPerSecond = 1.0e-9;
        model.prefillTokensPerSecond = 1.0e-9;
        return model;
    }
    // The router's window model charges one joint prefill per
    // admission group of up to maxBatch requests, so calibrate the
    // prefill at the group's batch size, not at batch 1.
    const Seconds step =
        simulator.tokenSeconds(max_batch, shape.typicalContext);
    if (step <= 0.0) {
        // Zero is the unservable sentinel (real steps are strictly
        // positive): the decode-context bucket exceeds the replica
        // even though the prompt probe fit.  Same treatment as a
        // dead replica — infinitely slow, never infinitely fast.
        model.prefillSeconds = 1.0e9;
        model.slotTokensPerSecond = 1.0e-9;
        model.prefillTokensPerSecond = 1.0e-9;
        return model;
    }
    model.prefillSeconds =
        simulator.prefillSeconds(max_batch, shape.typicalPrompt);
    model.slotTokensPerSecond = 1.0 / step;
    // Prefill throughput in prompt tokens: what the affinity score
    // converts a KV-resident prefix with (prefill is much cheaper
    // per token than decode, so cached and backlog tokens must not
    // compare 1:1).
    model.prefillTokensPerSecond =
        static_cast<double>(shape.typicalPrompt) /
        std::max(model.prefillSeconds, 1.0e-12);
    model.typicalGenerateTokens =
        static_cast<double>(shape.typicalGenerate);
    // Warm the cost cache across the whole batch ramp at both the
    // workload-typical contexts and the workload maxima (heavy-
    // tailed prompt distributions put a few requests one context
    // bucket up): the admission loop touches every power-of-two
    // batch bucket as batches grow, and probing the buckets here —
    // outside the measured event loop, once per cache group —
    // turns mid-run engine simulations into cache hits.
    const std::uint64_t far_prompt =
        std::max<std::uint64_t>(shape.maxPrompt, 1);
    const std::uint64_t far_context =
        std::max<std::uint64_t>(shape.maxContext, 1);
    for (std::uint32_t ramp = 1;; ramp *= 2) {
        const std::uint32_t batch = std::min(ramp, max_batch);
        simulator.prefillSeconds(batch, shape.typicalPrompt);
        simulator.tokenSeconds(batch, shape.typicalContext);
        simulator.prefillSeconds(batch, far_prompt);
        simulator.tokenSeconds(batch, far_context);
        if (ramp >= max_batch)
            break;
    }
    return model;
}

/**
 * Virtual seconds a freshly spawned replica spends replaying the
 * calibration batch ramp as its first steps — one joint prefill
 * plus one decode step per power-of-two batch bucket, priced on the
 * replica's own (just warmed) cost surface.  This is the Warming
 * phase of the spawn lifecycle: the cold-start penalty a fixed
 * fleet paid before the clock started, which a scaler pays on it.
 */
Seconds
warmupReplaySeconds(serving::ServingSimulator &simulator,
                    std::uint32_t max_batch,
                    const WorkloadShape &shape)
{
    double total = 0.0;
    for (std::uint32_t ramp = 1;; ramp *= 2) {
        const std::uint32_t batch = std::min(ramp, max_batch);
        // Unservable probes return the -1 sentinel; they add no
        // warm-up time (the replica will calibrate dead anyway).
        total += std::max(
            0.0,
            simulator.prefillSeconds(batch, shape.typicalPrompt));
        total += std::max(
            0.0,
            simulator.tokenSeconds(batch, shape.typicalContext));
        if (ramp >= max_batch)
            break;
    }
    return total;
}

/**
 * Immutable request-id -> workload-index map.  Trace ids are almost
 * always dense (0..n-1 from the generators), so the common case is
 * one direct vector lookup; scattered ids fall back to binary
 * search over a sorted array.  Replaces the hash maps the kernel
 * used to probe on every steal / migrate / report-merge lookup.
 */
class IdIndex
{
  public:
    static constexpr std::size_t npos =
        std::numeric_limits<std::size_t>::max();

    explicit IdIndex(
        const std::vector<serving::ServedRequest> &workload)
    {
        std::uint64_t max_id = 0;
        for (const serving::ServedRequest &request : workload)
            max_id = std::max(max_id, request.id);
        const std::size_t n = workload.size();
        if (n > 0 && max_id < 2 * n + 64) {
            dense_.assign(static_cast<std::size_t>(max_id) + 1,
                          npos);
            for (std::size_t i = 0; i < n; ++i) {
                std::size_t &slot =
                    dense_[static_cast<std::size_t>(
                        workload[i].id)];
                duplicate_ |= slot != npos;
                slot = i;
            }
        } else {
            sorted_.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                sorted_.emplace_back(workload[i].id, i);
            std::sort(sorted_.begin(), sorted_.end());
            for (std::size_t k = 1; k < sorted_.size(); ++k)
                duplicate_ |=
                    sorted_[k].first == sorted_[k - 1].first;
        }
    }

    /** Workload index of `id`, or npos when absent. */
    std::size_t
    find(std::uint64_t id) const
    {
        if (!sorted_.empty()) {
            const auto it = std::lower_bound(
                sorted_.begin(), sorted_.end(),
                std::make_pair(id, std::size_t{0}));
            return it != sorted_.end() && it->first == id
                       ? it->second
                       : npos;
        }
        return id < dense_.size()
                   ? dense_[static_cast<std::size_t>(id)]
                   : npos;
    }

    /** Workload index of `id`; the id must be present. */
    std::size_t
    at(std::uint64_t id) const
    {
        const std::size_t index = find(id);
        hermes_assert(index != npos,
                      "IdIndex: unknown request id ", id);
        return index;
    }

    /** Some id occurred more than once in the workload. */
    bool hasDuplicateIds() const { return duplicate_; }

  private:
    std::vector<std::size_t> dense_;
    std::vector<std::pair<std::uint64_t, std::size_t>> sorted_;
    bool duplicate_ = false;
};

/**
 * The event-driven co-simulation loop, wired to one ControlPolicy:
 * the kernel owns physics (virtual clock, replica boundaries,
 * report bookkeeping) and implements the policy's read surface
 * (sched::FleetView) and capability-checked action surface
 * (sched::FleetActions).  Misuse of an action throws
 * std::logic_error before any kernel state changes.
 */
class EventKernel final : public sched::FleetView,
                          public sched::FleetActions
{
  public:
    EventKernel(
        const FleetConfig &config, const model::LlmConfig &llm,
        std::vector<std::unique_ptr<serving::ServingSimulator>>
            &replicas,
        std::vector<std::size_t> &cache_group_of,
        std::vector<sched::ReplicaModel> models,
        const WorkloadShape &shape, FleetReport &report,
        const std::vector<serving::ServedRequest> &workload,
        sched::ControlPolicy &control,
        const serving::SessionTrace *sessions = nullptr,
        std::vector<serving::ServedRequest> *mutable_workload =
            nullptr)
        : config_(config), llm_(llm), replicas_(replicas),
          cacheGroupOf_(cache_group_of),
          models_(std::move(models)), shape_(shape),
          report_(report), workload_(workload),
          control_(control), wants_(control.wants()),
          sessions_(sessions), mutableWorkload_(mutable_workload),
          idIndex_(workload)
    {
        const std::size_t n = replicas_.size();
        // The kernel owns a mutable replica table: spawnReplica
        // appends to it mid-run, so every per-replica lookup reads
        // specs_ (seeded from the configured fleet), never
        // config_.replicas.
        specs_.reserve(n);
        for (const ReplicaConfig &replica : config_.replicas) {
            sched::ReplicaSpec spec;
            spec.name = replica.name;
            spec.system = replica.system;
            spec.serving = replica.serving;
            specs_.push_back(std::move(spec));
        }
        lifecycle_.assign(n, sched::ReplicaLifecycle::Active);
        activeStart_.assign(n, 0.0);
        retiredAt_.assign(n, -1.0);
        warmupSeconds_.assign(n, 0.0);
        wakeScheduled_.assign(n, 0);
        draining_.assign(n, 0);
        deadNotified_.assign(n, 0);
        if (wants_ & sched::ControlPolicy::kObservations) {
            observed_.resize(n); // One buffer, reused per arrival.
            // All replicas start dirty so the first gather samples
            // everyone; afterwards only replicas the kernel touched
            // since the last arrival are re-probed.
            observedDirty_.assign(n, 1);
        }
        hermes_assert(sessions_ == nullptr ||
                          mutableWorkload_ != nullptr,
                      "session kernel needs the mutable workload");
    }

    /** Drive the whole co-simulation (see class doc). */
    void
    run()
    {
        control_.begin(
            sched::ControlContext{models_, config_.ttftDeadline});
        // Pre-reserve the per-replica session tables for a fair
        // share of the trace (a hint: stealing and skew can exceed
        // it) so bulk phases do not reallocate them mid-run.
        const std::size_t expected =
            workload_.size() / replicas_.size() + 16;
        for (auto &replica : replicas_) {
            replica->beginSession();
            replica->reserveSession(expected);
        }
        report_.assignment.assign(workload_.size(), -1);
        // Shard the event queue per replica and pre-reserve every
        // heap from the trace size (about four events per request:
        // arrival, prefill share, decode steps, done) so heap
        // growth never reallocates mid-run.  The workload is sorted
        // by arrival and the event id is the ascending workload
        // index, so the whole trace preloads as a presorted stream
        // — no heap at all for the dominant event kind.
        queue_.shard(static_cast<std::uint32_t>(replicas_.size()));
        queue_.reserve(workload_.size() * 4 + 64);
        queue_.reserveSorted(workload_.size());
        if (sessions_ == nullptr) {
            for (std::size_t i = 0; i < workload_.size(); ++i)
                queue_.pushSorted(workload_[i].arrival,
                                  sim::EventKind::Arrival, i);
        } else {
            // Session mode: only first turns have workload-known
            // arrival instants (nondecreasing, ids ascending — the
            // presorted stream still applies).  Follow-up turns are
            // scheduled as SessionContinue events when their
            // predecessor completes.
            for (std::size_t i = 0; i < workload_.size(); ++i) {
                if (sessions_->turnOf[i] == 0)
                    queue_.pushSorted(workload_[i].arrival,
                                      sim::EventKind::Arrival, i);
            }
        }
        const Seconds tick_period = control_.tickPeriod();
        if ((wants_ & sched::ControlPolicy::kTick) &&
            tick_period > 0.0 && !workload_.empty())
            queue_.push(tick_period, sim::EventKind::Tick, -1, 0);

        const auto wall_start =
            std::chrono::steady_clock::now();
        while (!queue_.empty()) {
            const sim::Event event = queue_.pop();
            switch (event.kind) {
            case sim::EventKind::Arrival:
                onArrivalEvent(event);
                break;
            case sim::EventKind::Wake: {
                const auto r =
                    static_cast<std::size_t>(event.replica);
                wakeScheduled_[r] = 0;
                if (!replicas_[r]->busy())
                    advance(r, event.time);
                break;
            }
            case sim::EventKind::PrefillComplete:
            case sim::EventKind::StepComplete: {
                const auto r =
                    static_cast<std::size_t>(event.replica);
                markObservedDirty(r);
                for (const std::uint64_t id :
                     replicas_[r]->completeWork())
                    queue_.push(event.time,
                                sim::EventKind::RequestDone,
                                event.replica, id);
                if (wants_ &
                    sched::ControlPolicy::kReplicaEvents) {
                    const auto replica =
                        static_cast<std::uint32_t>(r);
                    if (event.kind ==
                        sim::EventKind::PrefillComplete)
                        control_.onPrefillComplete(
                            replica, event.time, *this, *this);
                    else
                        control_.onStepComplete(
                            replica, event.time, *this, *this);
                }
                // A hook may have restarted this very replica (a
                // steal into the replica that just finished); only
                // an idle replica takes a fresh boundary.
                if (!replicas_[r]->busy())
                    advance(r, event.time);
                break;
            }
            case sim::EventKind::Tick:
                control_.onTick(event.time, *this, *this);
                // The heartbeat sustains itself only while other
                // work remains, so the loop always terminates.
                if (!queue_.empty())
                    queue_.push(event.time + tick_period,
                                sim::EventKind::Tick, -1, 0);
                break;
            case sim::EventKind::ResumeReady:
                onResumeReadyEvent(event);
                break;
            case sim::EventKind::RequestDone:
                // Pure bookkeeping for plain traces; in session
                // mode a completed turn schedules its follow-up.
                if (sessions_ != nullptr)
                    onRequestDoneEvent(event);
                break;
            case sim::EventKind::SessionContinue:
                onSessionContinueEvent(event);
                break;
            case sim::EventKind::ReplicaReady:
                onReplicaReadyEvent(
                    static_cast<std::size_t>(event.replica),
                    event.time);
                break;
            }
        }
        report_.kernelStats.loopSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        report_.kernelStats.events = queue_.stats();

        // Cost accounting on the virtual clock: a replica bills
        // from its spawn instant (0 for the configured fleet) to
        // its retire instant, or to the end of the run when it was
        // never retired.  Provisioning and warming time is billable
        // — the instance is up.
        const Seconds end = queue_.now();
        report_.replicaActiveSeconds.reserve(replicas_.size());
        for (std::size_t r = 0; r < replicas_.size(); ++r) {
            const Seconds stop =
                retiredAt_[r] >= 0.0 ? retiredAt_[r] : end;
            report_.replicaActiveSeconds.push_back(
                std::max(0.0, stop - activeStart_[r]));
            report_.replicaSeconds +=
                report_.replicaActiveSeconds.back();
        }

        for (auto &replica : replicas_)
            report_.replicaReports.push_back(
                replica->finishSession());
    }

    // ---- sched::FleetView ----

    std::uint32_t
    replicaCount() const override
    {
        return static_cast<std::uint32_t>(replicas_.size());
    }

    const sched::ReplicaModel &
    model(std::uint32_t replica) const override
    {
        return models_.at(replica);
    }

    std::uint32_t
    maxBatch(std::uint32_t replica) const override
    {
        return specs_.at(replica).serving.maxBatch;
    }

    bool
    busy(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->busy();
    }

    bool
    knownServable(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->knownServable();
    }

    bool
    knownDead(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->knownDead();
    }

    bool
    draining(std::uint32_t replica) const override
    {
        return draining_.at(replica) != 0;
    }

    sched::ReplicaLifecycle
    lifecycle(std::uint32_t replica) const override
    {
        return lifecycle_.at(replica);
    }

    sched::ReplicaSpec
    replicaSpec(std::uint32_t replica) const override
    {
        // The name identifies the instance, not the spec template:
        // a scaler cloning this spec gets a fresh "s<k>" default
        // instead of a report full of duplicate names.
        sched::ReplicaSpec spec = specs_.at(replica);
        spec.name.clear();
        return spec;
    }

    std::uint32_t
    queuedCount(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->queuedCount();
    }

    std::uint32_t
    observedOutstanding(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->observedOutstanding();
    }

    double
    observedBacklogTokens(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->observedBacklogTokens();
    }

    std::vector<serving::RequestInfo>
    runningRequests(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->runningInfos();
    }

    std::vector<serving::RequestInfo>
    queuedRequests(std::uint32_t replica) const override
    {
        return replicas_.at(replica)->queuedInfos();
    }

    serving::RequestState
    requestState(std::uint32_t replica,
                 std::uint64_t id) const override
    {
        return replicas_.at(replica)->stateOf(id);
    }

    std::uint64_t
    cachedSessionTokens(std::uint32_t replica,
                        std::uint64_t session) const override
    {
        return replicas_.at(replica)->cachedSessionTokens(session);
    }

    Seconds
    ttftDeadline() const override
    {
        return config_.ttftDeadline;
    }

    // ---- sched::FleetActions ----

    void
    routeTo(std::uint32_t replica) override
    {
        requireArrival("routeTo");
        if (replica >= replicas_.size())
            throw std::logic_error(
                "FleetActions::routeTo: replica out of range");
        if (draining_[replica])
            throw std::logic_error(
                "FleetActions::routeTo: replica is draining");
        if (lifecycle_[replica] != sched::ReplicaLifecycle::Active)
            throw std::logic_error(
                "FleetActions::routeTo: replica is " +
                sched::replicaLifecycleName(lifecycle_[replica]) +
                ", not active — only Active replicas are "
                "routable");
        decided_ = true;
        report_.assignment[arrivalIndex_] =
            static_cast<int>(replica);
        markObservedDirty(replica);
        replicas_[replica]->deliver(workload_[arrivalIndex_]);
        // Wake an idle replica once all same-instant arrivals are
        // delivered (Wake sorts after Arrival at a tie), so a
        // simultaneous burst prefills as one group, exactly like
        // the closed loop.
        wakeIfIdle(replica);
    }

    void
    shed() override
    {
        requireArrival("shed");
        decided_ = true;
        ++report_.shed;
    }

    std::uint32_t
    steal(std::uint32_t thief, std::uint32_t victim,
          std::uint32_t max_count) override
    {
        if (thief >= replicas_.size() ||
            victim >= replicas_.size())
            throw std::logic_error(
                "FleetActions::steal: replica out of range");
        if (thief == victim)
            throw std::logic_error(
                "FleetActions::steal: thief == victim");
        if (max_count == 0)
            throw std::logic_error(
                "FleetActions::steal: zero count");
        if (!replicas_[thief]->knownServable())
            throw std::logic_error(
                "FleetActions::steal: thief cannot serve (dead "
                "or unprobed) — it would strand the work");
        if (draining_[thief])
            throw std::logic_error(
                "FleetActions::steal: thief is draining — it "
                "accepts no new work");
        if (lifecycle_[thief] != sched::ReplicaLifecycle::Active)
            throw std::logic_error(
                "FleetActions::steal: thief is " +
                sched::replicaLifecycleName(lifecycle_[thief]) +
                ", not active — it accepts no new work");
        if (replicas_[victim]->queuedCount() == 0)
            throw std::logic_error(
                "FleetActions::steal: victim has no queued "
                "requests (running requests cannot be stolen)");
        const std::vector<serving::ServedRequest> stolen =
            replicas_[victim]->stealQueued(max_count);
        markObservedDirty(thief);
        markObservedDirty(victim);
        ++report_.kernelStats.steals;
        report_.kernelStats.stolenRequests += stolen.size();
        for (const serving::ServedRequest &request : stolen) {
            report_.assignment[idIndex_.at(request.id)] =
                static_cast<int>(thief);
            replicas_[thief]->deliver(request);
        }
        // An idle thief starts the stolen group at once, exactly
        // like the legacy stealing hook.
        if (!replicas_[thief]->busy())
            schedule(thief,
                     replicas_[thief]->startNextWork(queue_.now()));
        return static_cast<std::uint32_t>(stolen.size());
    }

    void
    preempt(std::uint32_t replica, std::uint64_t id) override
    {
        requireCapability(sched::ControlPolicy::kPreempt,
                          "preempt", "kPreempt");
        if (replica >= replicas_.size())
            throw std::logic_error(
                "FleetActions::preempt: replica out of range");
        if (replicas_[replica]->busy())
            throw std::logic_error(
                "FleetActions::preempt: replica is mid-step — "
                "preemption happens at decode boundaries");
        // Throws on a queued/unknown id before any state changes.
        const serving::ResumableRequest resumed =
            replicas_[replica]->preempt(id);
        markObservedDirty(replica);
        ++report_.kernelStats.preemptions;
        // The KV stays cached on the replica: requeueing is free,
        // and the priority-aware admission decides who gets the
        // freed slot at the next boundary.
        replicas_[replica]->deliverResumed(resumed, queue_.now(),
                                           resumed.contextLength());
        wakeIfIdle(replica);
    }

    void
    migrate(std::uint64_t id, std::uint32_t to_replica) override
    {
        requireCapability(sched::ControlPolicy::kMigrate,
                          "migrate", "kMigrate");
        if (to_replica >= replicas_.size())
            throw std::logic_error(
                "FleetActions::migrate: destination out of range");
        if (draining_[to_replica])
            throw std::logic_error(
                "FleetActions::migrate: destination is draining — "
                "it accepts no new work");
        if (lifecycle_[to_replica] !=
            sched::ReplicaLifecycle::Active)
            throw std::logic_error(
                "FleetActions::migrate: destination is " +
                sched::replicaLifecycleName(
                    lifecycle_[to_replica]) +
                ", not active — it accepts no new work");
        if (replicas_[to_replica]->knownDead())
            throw std::logic_error(
                "FleetActions::migrate: destination is dead — the "
                "request would strand again");
        if (pendingResume(id) != resumesInFlight_.end())
            throw std::logic_error(
                "FleetActions::migrate: request " +
                std::to_string(id) +
                " is already migrating (KV in flight)");
        const std::size_t workload_index = idIndex_.find(id);
        if (workload_index == IdIndex::npos)
            throw std::logic_error(
                "FleetActions::migrate: unknown request " +
                std::to_string(id));
        const int from_signed =
            report_.assignment[workload_index];
        if (from_signed < 0)
            throw std::logic_error(
                "FleetActions::migrate: request " +
                std::to_string(id) +
                " is not placed on any replica (shed?)");
        const auto from = static_cast<std::uint32_t>(from_signed);
        if (from == to_replica)
            throw std::logic_error(
                "FleetActions::migrate: request " +
                std::to_string(id) +
                " is already on the destination");

        serving::ServingSimulator &source = *replicas_[from];
        serving::ResumableRequest resumed;
        switch (source.stateOf(id)) {
        case serving::RequestState::Queued:
            resumed = source.takeQueued(id);
            break;
        case serving::RequestState::Running:
            if (source.busy())
                throw std::logic_error(
                    "FleetActions::migrate: source replica is "
                    "mid-step — preemption happens at decode "
                    "boundaries");
            resumed = source.preempt(id);
            break;
        default:
            throw std::logic_error(
                "FleetActions::migrate: request " +
                std::to_string(id) +
                " is neither queued nor running on its replica");
        }
        ++resumed.migrations;
        markObservedDirty(from);
        ++report_.kernelStats.migrations;
        // The accumulated KV travels over the DIMM-link fabric; the
        // destination sees the arrival only when the transfer lands
        // (zero-length context — a request that never started —
        // moves instantly).
        const Seconds transfer = kvMigrationSeconds(
            specs_[from].system, llm_,
            resumed.tokensGenerated == 0 ? 0
                                         : resumed.contextLength());
        report_.kernelStats.kvTransferSeconds += transfer;
        queue_.push(queue_.now() + transfer,
                    sim::EventKind::ResumeReady, -1, id);
        resumesInFlight_.push_back(
            {id, PendingResume{std::move(resumed), to_replica}});
    }

    std::uint32_t
    spawnReplica(const sched::ReplicaSpec &spec) override
    {
        requireCapability(sched::ControlPolicy::kSpawn,
                          "spawnReplica", "kSpawn");
        const auto index =
            static_cast<std::uint32_t>(replicas_.size());
        sched::ReplicaSpec stored = spec;
        if (stored.name.empty())
            stored.name = spawnedReplicaName(
                report_.kernelStats.spawnedReplicas);

        // Construct the replica and join a matching cost-cache
        // group, exactly like FleetSimulator's constructor: a spec
        // cloned from an existing replica shares its calibrated
        // surface bit-identically, so the calibration below is all
        // warm hits.
        replicas_.push_back(
            std::make_unique<serving::ServingSimulator>(
                stored.system, llm_, stored.serving));
        serving::ServingSimulator &replica = *replicas_[index];
        cacheGroupOf_.push_back(index);
        for (std::size_t j = 0; j < index; ++j) {
            if (cacheGroupOf_[j] == j &&
                specs_[j].system == stored.system &&
                specs_[j].serving == stored.serving) {
                cacheGroupOf_[index] = j;
                replica.shareCostCacheWith(*replicas_[j]);
                break;
            }
        }
        if (cacheGroupOf_[index] == index) {
            // A novel spec still shares interpolation anchors with
            // any replica whose physics match (same engine, model,
            // seed — differing only in batch caps or bucketing),
            // so even a cold spawn reuses every anchor simulation
            // already paid for.
            for (std::size_t j = 0; j < index; ++j) {
                if (replica.shareAnchorStoreWith(*replicas_[j]))
                    break;
            }
        }

        // Calibrate now — cold engine simulations (if any) bill to
        // the run's calibrationSeconds through the cache-group
        // accounting — and price the Warming phase on the freshly
        // warmed surface.
        const std::uint32_t max_batch = std::max<std::uint32_t>(
            stored.serving.maxBatch, 1);
        models_.push_back(
            calibrateReplicaModel(replica, max_batch, shape_));
        const Seconds warmup =
            warmupReplaySeconds(replica, max_batch, shape_);

        report_.replicaNames.push_back(stored.name);
        specs_.push_back(std::move(stored));
        lifecycle_.push_back(sched::ReplicaLifecycle::Provisioning);
        activeStart_.push_back(queue_.now());
        retiredAt_.push_back(-1.0);
        warmupSeconds_.push_back(warmup);
        wakeScheduled_.push_back(0);
        draining_.push_back(0);
        deadNotified_.push_back(0);
        if (!observedDirty_.empty()) {
            observed_.push_back(sched::ReplicaObservation{});
            observedDirty_.push_back(1);
        }
        replica.beginSession();
        replica.reserveSession(16);
        ++report_.kernelStats.spawnedReplicas;

        // Phase one of the lifecycle walk: the instance stands up
        // (provisioning), then ReplicaReady moves it to Warming and
        // schedules the warm-up replay (onReplicaReadyEvent).
        queue_.push(queue_.now() +
                        std::max(spec.provisionSeconds, 0.0),
                    sim::EventKind::ReplicaReady,
                    static_cast<std::int32_t>(index), 0);
        return index;
    }

    void
    requestSpawn() override
    {
        ++report_.kernelStats.spawnRequests;
    }

    void
    requestDrain(std::uint32_t replica) override
    {
        if (replica >= replicas_.size())
            throw std::logic_error(
                "FleetActions::requestDrain: replica out of "
                "range");
        if (!draining_[replica]) {
            draining_[replica] = 1;
            ++report_.kernelStats.drainRequests;
            if (lifecycle_[replica] !=
                sched::ReplicaLifecycle::Retired)
                lifecycle_[replica] =
                    sched::ReplicaLifecycle::Draining;
            // An empty idle replica (or one drained mid-spawn,
            // before it ever went Active) retires on the spot.
            maybeRetire(replica, queue_.now());
        }
    }

  private:
    /** A migrated request's KV transfer: what ResumeReady carries. */
    struct PendingResume
    {
        serving::ResumableRequest resumed;
        std::uint32_t destination = 0;
    };

    /**
     * The kernel is the only actor that mutates replicas, so any
     * mutation marks the replica's cached observation stale; the
     * per-arrival gather then refreshes only the marked ones.
     */
    void
    markObservedDirty(std::size_t replica)
    {
        if (!observedDirty_.empty())
            observedDirty_[replica] = 1;
    }

    /** Schedule a same-instant Wake for an idle replica (once). */
    void
    wakeIfIdle(std::uint32_t replica)
    {
        if (!replicas_[replica]->busy() &&
            !wakeScheduled_[replica]) {
            queue_.push(queue_.now(), sim::EventKind::Wake,
                        static_cast<std::int32_t>(replica), 0);
            wakeScheduled_[replica] = 1;
        }
    }

    /** A spawned replica finished its current lifecycle phase. */
    void
    onReplicaReadyEvent(std::size_t replica, Seconds now)
    {
        switch (lifecycle_[replica]) {
        case sched::ReplicaLifecycle::Provisioning:
            // The instance is up: replay the batch-ramp warm-up as
            // its first (virtual) steps, then go Active.
            lifecycle_[replica] = sched::ReplicaLifecycle::Warming;
            queue_.push(now + warmupSeconds_[replica],
                        sim::EventKind::ReplicaReady,
                        static_cast<std::int32_t>(replica), 0);
            break;
        case sched::ReplicaLifecycle::Warming:
            lifecycle_[replica] = sched::ReplicaLifecycle::Active;
            markObservedDirty(replica);
            // The replica is routable from this instant; take an
            // idle boundary now so onReplicaIdle subscribers
            // (stealers, drain-migrate) see the fresh capacity
            // immediately instead of at the next arrival.
            wakeIfIdle(static_cast<std::uint32_t>(replica));
            break;
        default:
            // Drained (and possibly retired) mid-spawn: the
            // pending phase transition is void.
            break;
        }
    }

    /**
     * Retire a draining replica once it holds nothing: no running
     * batch, no queue, no undecided deliveries, and no migration
     * KV in flight toward it.  Retiring stops the replica's
     * active-seconds clock (FleetReport::replicaActiveSeconds).
     */
    void
    maybeRetire(std::size_t replica, Seconds now)
    {
        if (lifecycle_[replica] !=
            sched::ReplicaLifecycle::Draining)
            return;
        if (replicas_[replica]->busy() ||
            replicas_[replica]->observedOutstanding() > 0)
            return;
        for (const auto &entry : resumesInFlight_) {
            if (entry.second.destination == replica)
                return; // Committed before the drain; wait for it.
        }
        lifecycle_[replica] = sched::ReplicaLifecycle::Retired;
        retiredAt_[replica] = now;
        ++report_.kernelStats.retiredReplicas;
    }

    /** Lifecycle verbs are capability-gated on wants() bits. */
    void
    requireCapability(std::uint32_t bit, const char *action,
                      const char *bit_name) const
    {
        if (!(wants_ & bit)) {
            std::string message = "FleetActions::";
            message += action;
            message += ": the policy did not declare the ";
            message += bit_name;
            message += " capability in wants()";
            throw std::logic_error(message);
        }
    }

    /** The in-flight migration of `id`, or end() when none. */
    std::vector<std::pair<std::uint64_t, PendingResume>>::iterator
    pendingResume(std::uint64_t id)
    {
        return std::find_if(
            resumesInFlight_.begin(), resumesInFlight_.end(),
            [id](const auto &entry) { return entry.first == id; });
    }

    /** A migrated request's KV landed: deliver to the destination. */
    void
    onResumeReadyEvent(const sim::Event &event)
    {
        const auto it = pendingResume(event.id);
        hermes_assert(it != resumesInFlight_.end(),
                      "ResumeReady without a migration in flight");
        const PendingResume pending = std::move(it->second);
        // Unordered removal: each id is unique among in-flight
        // migrations, and nothing orders the pending list.
        *it = std::move(resumesInFlight_.back());
        resumesInFlight_.pop_back();
        report_.assignment[idIndex_.at(event.id)] =
            static_cast<int>(pending.destination);
        // A never-started request (tokensGenerated == 0) carries no
        // KV, so nothing was cached by the transfer and it re-runs
        // a full prefill; a started one rejoins for free — the KV
        // just arrived.  Either way the lifecycle counters travel
        // with it.  The destination was validated when migrate()
        // was called; one that started draining while the KV was
        // in flight still receives the request (it was committed
        // before the drain, like in-flight routed work), and one
        // whose capability probe later fails holds it like any
        // other delivery.
        markObservedDirty(pending.destination);
        replicas_[pending.destination]->deliverResumed(
            pending.resumed, event.time,
            pending.resumed.tokensGenerated == 0
                ? 0
                : pending.resumed.contextLength());
        wakeIfIdle(pending.destination);
    }

    /** A completed turn schedules its session's follow-up. */
    void
    onRequestDoneEvent(const sim::Event &event)
    {
        const std::size_t index = idIndex_.at(event.id);
        const std::int64_t next = sessions_->successor[index];
        if (next < 0)
            return;
        // The follow-up arrives think-time after this completion;
        // its event id is the successor's workload index, exactly
        // like a preloaded arrival's.
        const std::size_t next_index =
            idIndex_.at(static_cast<std::uint64_t>(next));
        queue_.push(event.time + sessions_->thinkAfter[index],
                    sim::EventKind::SessionContinue, -1,
                    next_index);
    }

    /** A follow-up turn's think time elapsed: it arrives now. */
    void
    onSessionContinueEvent(const sim::Event &event)
    {
        hermes_assert(sessions_ != nullptr,
                      "SessionContinue outside a session run");
        // The trace's stored arrival was a placeholder; the real
        // arrival instant is only known now.  The kernel owns the
        // mutable trace copy, so the report merge and the routed
        // request both see the true instant.
        (*mutableWorkload_)[static_cast<std::size_t>(event.id)]
            .arrival = event.time;
        onArrivalEvent(event);
    }

    /** Arrival event: gather observations (if wanted), ask the
     * policy for exactly one decision. */
    void
    onArrivalEvent(const sim::Event &event)
    {
        const serving::ServedRequest &request =
            workload_[event.id];
        sched::ArrivalContext context;
        context.requestId = request.id;
        context.arrival = request.arrival;
        context.promptTokens = request.promptTokens;
        context.generateTokens = request.generateTokens;
        context.priority = request.priority;
        context.sessionId = request.sessionId;
        if (wants_ & sched::ControlPolicy::kObservations) {
            // Sample ground truth at the decision instant into the
            // preallocated buffer.  The two direct probes, not
            // snapshot(): the one-call snapshot now also copies the
            // per-request lifecycle vectors, which this hot path
            // does not want to allocate.  Only replicas the kernel
            // touched since the last gather are re-probed — the
            // values cannot have changed otherwise, so the refresh
            // is bit-identical to a full rebuild.
            for (std::size_t r = 0; r < replicas_.size(); ++r) {
                if (!observedDirty_[r])
                    continue;
                observedDirty_[r] = 0;
                observed_[r].outstanding =
                    replicas_[r]->observedOutstanding();
                observed_[r].backlogTokens =
                    replicas_[r]->observedBacklogTokens();
            }
            context.observed = &observed_;
        }
        inArrival_ = true;
        decided_ = false;
        arrivalIndex_ = event.id;
        control_.onArrival(context, *this, *this);
        inArrival_ = false;
        if (!decided_) {
            std::string message = "control policy '";
            message += control_.name();
            message += "' made no routing decision for request ";
            message += std::to_string(request.id);
            throw std::logic_error(message);
        }
    }

    /** Schedule the follow-up event of a started unit of work. */
    void
    schedule(std::size_t replica,
             const serving::StepAction &action)
    {
        switch (action.kind) {
        case serving::StepKind::Prefill:
            queue_.push(action.until,
                        sim::EventKind::PrefillComplete,
                        static_cast<std::int32_t>(replica), 0);
            break;
        case serving::StepKind::Decode:
            queue_.push(action.until, sim::EventKind::StepComplete,
                        static_cast<std::int32_t>(replica), 0);
            break;
        case serving::StepKind::WaitArrival:
            // Unreachable: every delivery (arrival event or steal)
            // happens at or after the request's arrival instant,
            // so a boundary never sees a future-only queue.
            hermes_panic("event kernel: future-only queue at a "
                         "replica boundary");

        case serving::StepKind::Idle:
            break;
        }
    }

    /** Start a replica's next work; fire dead/idle subscriptions. */
    void
    advance(std::size_t replica, Seconds now)
    {
        markObservedDirty(replica);
        const serving::StepAction action =
            replicas_[replica]->startNextWork(now);
        schedule(replica, action);
        const auto r = static_cast<std::uint32_t>(replica);
        if (!deadNotified_[replica] &&
            replicas_[replica]->knownDead()) {
            deadNotified_[replica] = 1;
            if (wants_ & sched::ControlPolicy::kDead)
                control_.onReplicaDead(r, now, *this, *this);
        }
        if (action.kind == serving::StepKind::Idle) {
            if (wants_ & sched::ControlPolicy::kIdle)
                control_.onReplicaIdle(r, now, *this, *this);
            // After the idle hook, so an evacuation policy
            // (drain-migrate) moves the replica's work out before
            // the retire check runs — a drained replica that just
            // went empty stops its clock at this boundary.
            maybeRetire(replica, now);
        }
    }

    void
    requireArrival(const char *action) const
    {
        std::string message = "FleetActions::";
        message += action;
        if (!inArrival_) {
            message += ": only legal inside onArrival";
            throw std::logic_error(message);
        }
        if (decided_) {
            message +=
                ": a decision was already made for this arrival";
            throw std::logic_error(message);
        }
    }

    const FleetConfig &config_;
    const model::LlmConfig &llm_;

    /**
     * The fleet's replica table and cost-cache grouping, owned by
     * FleetSimulator and borrowed mutably: spawnReplica appends to
     * both (the simulator trims spawned replicas after the run —
     * they are run state, not configuration).
     */
    std::vector<std::unique_ptr<serving::ServingSimulator>>
        &replicas_;
    std::vector<std::size_t> &cacheGroupOf_;

    /** Calibrated models; spawnReplica appends the new replica's. */
    std::vector<sched::ReplicaModel> models_;

    /** Calibration operating point, for spawn-time calibration. */
    const WorkloadShape shape_;

    FleetReport &report_;
    const std::vector<serving::ServedRequest> &workload_;
    sched::ControlPolicy &control_;
    const std::uint32_t wants_;

    /**
     * Session mode (nullptr for plain traces): the continuation
     * plan, and the run's own mutable copy of the trace whose
     * placeholder follow-up arrivals the kernel overwrites at
     * done + think (workload_ aliases it).
     */
    const serving::SessionTrace *sessions_ = nullptr;
    std::vector<serving::ServedRequest> *mutableWorkload_ =
        nullptr;

    /** Migrations whose KV transfer has not landed yet (a handful
     * at a time, so a scanned flat list beats a hash map). */
    std::vector<std::pair<std::uint64_t, PendingResume>>
        resumesInFlight_;

    sim::EventQueue queue_;
    std::vector<char> wakeScheduled_;
    std::vector<char> draining_;
    std::vector<char> deadNotified_;

    /**
     * Per-replica lifecycle (configured replicas are born Active;
     * spawned ones walk Provisioning → Warming → Active) and its
     * cost-accounting clock: the spawn instant, the retire instant
     * (-1 while alive), and the Warming phase's replay length.
     * specs_ mirrors the construction parameters so maxBatch /
     * migrate / replicaSpec lookups cover spawned replicas too.
     */
    std::vector<sched::ReplicaSpec> specs_;
    std::vector<sched::ReplicaLifecycle> lifecycle_;
    std::vector<Seconds> activeStart_;
    std::vector<Seconds> retiredAt_;
    std::vector<Seconds> warmupSeconds_;

    std::vector<sched::ReplicaObservation> observed_;

    /** Which observed_ rows are stale (empty without
     * kObservations); see markObservedDirty(). */
    std::vector<char> observedDirty_;

    /** id -> workload index, for steal/migrate re-assignment. */
    const IdIndex idIndex_;

    bool inArrival_ = false;
    bool decided_ = false;
    std::uint64_t arrivalIndex_ = 0;
};

} // namespace

Seconds
kvMigrationSeconds(const runtime::SystemConfig &system,
                   const model::LlmConfig &llm,
                   std::uint64_t context_tokens)
{
    if (context_tokens == 0)
        return 0.0;
    const Bytes bytes = static_cast<Bytes>(context_tokens) *
                        llm.kvBytesPerToken();
    // One point-to-point transfer on the source's link fabric (a
    // dead replica may report zero DIMMs; the fabric still needs
    // two endpoints to price the hop).
    const interconnect::DimmLinkNetwork network(
        std::max<std::uint32_t>(system.numDimms, 2), system.link);
    return network.migrationTime(
        {interconnect::Transfer{0, 1, bytes}});
}

Seconds
ttftPercentile(const FleetReport &report, double p,
               std::uint32_t min_priority)
{
    std::vector<Seconds> samples;
    for (const serving::RequestMetrics &request : report.requests) {
        if (!request.rejected && request.priority >= min_priority)
            samples.push_back(request.ttft());
    }
    return serving::percentile(std::move(samples), p);
}

Seconds
latencyPercentile(const FleetReport &report, double p,
                  std::uint32_t min_priority)
{
    std::vector<Seconds> samples;
    for (const serving::RequestMetrics &request : report.requests) {
        if (!request.rejected && request.priority >= min_priority)
            samples.push_back(request.latency());
    }
    return serving::percentile(std::move(samples), p);
}

std::string
fleetKernelName(FleetKernel kernel)
{
    switch (kernel) {
    case FleetKernel::EventDriven:
        return "event";
    case FleetKernel::TwoPhase:
        return "two-phase";
    }
    return "?";
}

FleetKernel
fleetKernelByName(const std::string &name)
{
    if (name == "event")
        return FleetKernel::EventDriven;
    if (name == "two-phase")
        return FleetKernel::TwoPhase;
    throw std::invalid_argument(
        "fleetKernelByName: unknown kernel '" + name + "'");
}

FleetConfig
uniformFleet(std::uint32_t count,
             const runtime::SystemConfig &system,
             const serving::ServingConfig &serving,
             sched::RouterPolicy policy, Seconds ttft_deadline)
{
    FleetConfig config;
    config.policy = policy;
    config.ttftDeadline = ttft_deadline;
    config.replicas.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        ReplicaConfig replica;
        replica.name = defaultReplicaName(i);
        replica.system = system;
        replica.serving = serving;
        config.replicas.push_back(std::move(replica));
    }
    return config;
}

FleetSimulator::FleetSimulator(FleetConfig config,
                               model::LlmConfig llm)
    : config_(std::move(config)), llm_(std::move(llm))
{
    if (config_.replicas.empty())
        throw std::invalid_argument("FleetSimulator: no replicas");
    cacheGroupOf_.resize(config_.replicas.size());
    for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
        ReplicaConfig &replica = config_.replicas[i];
        if (replica.name.empty())
            replica.name =
                defaultReplicaName(static_cast<std::uint32_t>(i));
        replicas_.push_back(
            std::make_unique<serving::ServingSimulator>(
                replica.system, llm_, replica.serving));
        // Equal-config replicas share one calibrated cost cache
        // (bit-identical physics, see cacheGroupOf_): a uniform
        // fleet pays each cold (batch, context) bucket one engine
        // simulation instead of one per replica.
        cacheGroupOf_[i] = i;
        for (std::size_t j = 0; j < i; ++j) {
            if (cacheGroupOf_[j] == j &&
                config_.replicas[j].system == replica.system &&
                config_.replicas[j].serving == replica.serving) {
                cacheGroupOf_[i] = j;
                replicas_[i]->shareCostCacheWith(*replicas_[j]);
                break;
            }
        }
        // A new group leader may still share *physics* with an
        // earlier leader (differing only in serving-policy knobs
        // like maxBatch or seqBucket): share the exact-anchor store
        // so both groups pay for each engine simulation once.
        if (cacheGroupOf_[i] == i) {
            for (std::size_t j = 0; j < i; ++j) {
                if (cacheGroupOf_[j] == j &&
                    replicas_[i]->shareAnchorStoreWith(
                        *replicas_[j]))
                    break;
            }
        }
    }
}

sched::ReplicaModel
FleetSimulator::calibrate(std::size_t index,
                          std::uint64_t typical_prompt,
                          std::uint64_t typical_context,
                          std::uint64_t max_prompt,
                          std::uint64_t max_context)
{
    WorkloadShape shape;
    shape.typicalPrompt = typical_prompt;
    shape.typicalContext = typical_context;
    shape.maxPrompt = max_prompt;
    shape.maxContext = max_context;
    return calibrateReplicaModel(
        *replicas_[index],
        std::max<std::uint32_t>(
            config_.replicas[index].serving.maxBatch, 1),
        shape);
}

std::vector<sched::ReplicaModel>
FleetSimulator::calibrateAll(std::uint64_t typical_prompt,
                             std::uint64_t typical_context,
                             std::uint64_t max_prompt,
                             std::uint64_t max_context)
{
    const std::size_t count = replicas_.size();
    std::vector<sched::ReplicaModel> models(count);

    // Only cache-group representatives run cold engine
    // simulations; members re-probe afterwards against the warm
    // shared cache — pure hits, and their own saturation flags
    // latch exactly as if they had calibrated cold.  A uniform
    // 1024-replica fleet calibrates once, not 1024 times.
    std::vector<std::size_t> leaders;
    leaders.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (cacheGroupOf_[i] == i)
            leaders.push_back(i);
    }

    const std::size_t workers = resolveWorkerCount(
        config_.calibrationThreads, hardwareThreads(),
        leaders.size());
    if (workers <= 1) {
        for (const std::size_t i : leaders)
            models[i] = calibrate(i, typical_prompt,
                                  typical_context, max_prompt,
                                  max_context);
    } else {
        // Each worker claims whole representatives, so one cost
        // cache is only ever touched by one thread and the
        // calibrated models are identical to the serial loop
        // regardless of scheduling.  (Physics-equal leaders share a
        // mutex-guarded exact-anchor store across threads; its
        // values are pure functions of the operating point, so the
        // models stay interleaving-independent.)  Heterogeneous-
        // fleet sweeps stop paying one engine simulation chain per
        // group in series.
        std::atomic<std::size_t> next{0};
        std::vector<std::exception_ptr> errors(workers);
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                try {
                    for (std::size_t k = next.fetch_add(1);
                         k < leaders.size();
                         k = next.fetch_add(1))
                        models[leaders[k]] = calibrate(
                            leaders[k], typical_prompt,
                            typical_context, max_prompt,
                            max_context);
                } catch (...) {
                    errors[w] = std::current_exception();
                }
            });
        }
        for (std::thread &thread : pool)
            thread.join();
        for (const std::exception_ptr &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }
    for (std::size_t i = 0; i < count; ++i) {
        if (cacheGroupOf_[i] != i)
            models[i] = calibrate(i, typical_prompt,
                                  typical_context, max_prompt,
                                  max_context);
    }
    return models;
}

double
FleetSimulator::totalCalibrationSeconds() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
        if (cacheGroupOf_[i] == i)
            total += replicas_[i]->calibrationSeconds();
    }
    return total;
}

void
FleetSimulator::warmSessionCosts(std::uint64_t max_context)
{
    const std::uint32_t threads = effectiveThreads(
        config_.calibrationThreads, hardwareThreads());
    // Warming the whole trajectory grid up front computes cells a
    // lazy run may never touch (e.g. full-batch decodes at the very
    // largest contexts); that trade only wins when the pool can
    // overlap the simulations.  Single-threaded, lazy misses pick
    // exactly the anchors the run needs — skip.
    if (threads <= 1)
        return;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
        if (cacheGroupOf_[i] != i)
            continue;
        const serving::ServingConfig &serving =
            config_.replicas[i].serving;
        const std::uint32_t max_batch =
            std::max<std::uint32_t>(serving.maxBatch, 1);
        const std::uint32_t bucket =
            std::max<std::uint32_t>(serving.seqBucket, 1);
        const std::uint64_t max_column =
            std::max<std::uint64_t>(max_context, 1) / bucket;
        std::uint64_t rows = 0;
        for (std::uint32_t ramp = 1;; ramp *= 2) {
            ++rows;
            if (ramp >= max_batch)
                break;
        }
        // Exact mode simulates the whole grid — skip oversized ones
        // (tiny seqBucket); interp mode collapses the grid to the
        // log-spaced anchors inside warmCosts.
        if (serving.costModel == serving::CostModel::Exact &&
            rows * (max_column + 1) > 4096)
            continue;
        std::vector<serving::CostProbe> probes;
        probes.reserve(rows * (max_column + 1));
        for (std::uint32_t ramp = 1;; ramp *= 2) {
            const std::uint32_t batch =
                std::min(ramp, max_batch);
            for (std::uint64_t column = 0; column <= max_column;
                 ++column)
                probes.push_back(serving::CostProbe{
                    batch, column * bucket});
            if (ramp >= max_batch)
                break;
        }
        replicas_[i]->warmCosts(probes, threads);
    }
}

void
FleetSimulator::runTwoPhase(
    FleetReport &report,
    const std::vector<serving::ServedRequest> &workload,
    std::vector<sched::ReplicaModel> models)
{
    const std::size_t replica_count = replicas_.size();
    sched::Router router(config_.policy, std::move(models),
                         config_.ttftDeadline);

    // Route in arrival order; each decision updates the router's
    // backlog estimate, so later requests see earlier placements —
    // but never the replicas' ground truth.
    std::vector<std::vector<serving::ServedRequest>> assigned(
        replica_count);
    report.assignment.assign(workload.size(), -1);
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const serving::ServedRequest &request = workload[i];
        const sched::RouteDecision decision = router.route(
            request.arrival, request.generateTokens);
        report.assignment[i] = decision.replica;
        if (decision.replica < 0) {
            ++report.shed;
            continue;
        }
        assigned[static_cast<std::size_t>(decision.replica)]
            .push_back(request);
    }

    // Ground truth: every replica serves its sub-trace with the full
    // continuous-batching simulation, in isolation.
    for (std::size_t r = 0; r < replica_count; ++r)
        report.replicaReports.push_back(
            replicas_[r]->run(assigned[r]));
}

void
FleetSimulator::runEventDriven(
    FleetReport &report,
    const std::vector<serving::ServedRequest> &workload,
    std::vector<sched::ReplicaModel> models,
    sched::ControlPolicy &control,
    std::uint64_t typical_prompt, std::uint64_t typical_context,
    std::uint64_t max_prompt, std::uint64_t max_context,
    const serving::SessionTrace *sessions,
    std::vector<serving::ServedRequest> *mutable_workload)
{
    // The kernel needs the calibration operating point so a replica
    // spawned mid-run calibrates against the same workload shape
    // the configured fleet did.
    WorkloadShape shape;
    shape.typicalPrompt = typical_prompt;
    shape.typicalContext = typical_context;
    shape.maxPrompt = max_prompt;
    shape.maxContext = max_context;
    EventKernel(config_, llm_, replicas_, cacheGroupOf_,
                std::move(models), shape, report, workload,
                control, sessions, mutable_workload)
        .run();
}

void
FleetSimulator::mergeReports(
    FleetReport &report,
    const std::vector<serving::ServedRequest> &workload)
{
    for (const serving::ServingReport &replica :
         report.replicaReports) {
        report.completed += replica.completed;
        report.rejected += replica.rejected;
        report.makespan =
            std::max(report.makespan, replica.makespan);
        report.throughputTps += replica.throughputTps;
        report.costModelSaturated |= replica.costModelSaturated;
    }
    report.rejected += report.shed;

    // Merge per-request metrics back into arrival order with an
    // explicit request-id join — replica report rows are found by
    // id, never by slot position, so the merge cannot silently
    // misalign when a replica reorders, drops, or (under work
    // stealing) gains rows relative to the router's bookkeeping.
    const IdIndex ids(workload);
    std::vector<std::pair<std::size_t, std::size_t>> row_of(
        workload.size(), {IdIndex::npos, IdIndex::npos});
    for (std::size_t r = 0; r < report.replicaReports.size();
         ++r) {
        const auto &rows = report.replicaReports[r].requests;
        for (std::size_t j = 0; j < rows.size(); ++j) {
            const std::size_t slot = ids.find(rows[j].id);
            if (slot != IdIndex::npos)
                row_of[slot] = {r, j};
        }
    }

    report.requests.resize(workload.size());
    std::vector<Seconds> ttft_samples;
    std::uint64_t within_deadline = 0;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        if (report.assignment[i] < 0) {
            serving::RequestMetrics &metrics = report.requests[i];
            metrics.id = workload[i].id;
            metrics.arrival = workload[i].arrival;
            metrics.rejected = true;
            continue;
        }
        const std::pair<std::size_t, std::size_t> row = row_of[i];
        hermes_assert(
            row.first == static_cast<std::size_t>(
                             report.assignment[i]),
            "fleet merge: request ", workload[i].id,
            " missing from its replica report");
        report.requests[i] =
            report.replicaReports[row.first].requests[row.second];
        const serving::RequestMetrics &metrics =
            report.requests[i];
        if (!metrics.rejected) {
            ttft_samples.push_back(metrics.ttft());
            within_deadline +=
                metrics.ttft() <= config_.ttftDeadline ? 1 : 0;
        }
    }
    report.p50Ttft = serving::percentile(ttft_samples, 50.0);
    report.p99Ttft = serving::percentile(ttft_samples, 99.0);
    report.sloAttainment =
        workload.empty()
            ? 1.0
            : static_cast<double>(within_deadline) /
                  static_cast<double>(workload.size());

    // The autoscaling scorecard: replica-seconds bought per request
    // completed.  A scaler wins when it holds this below every fixed
    // fleet size at equal-or-better SLO attainment.  Zero under the
    // two-phase kernel, which does not meter replica lifetimes.
    report.costPerRequest =
        report.completed > 0
            ? report.replicaSeconds /
                  static_cast<double>(report.completed)
            : 0.0;
}

FleetReport
FleetSimulator::run(std::vector<serving::ServedRequest> workload)
{
    serving::sortByArrival(workload);

    // The merge joins replica rows back to the trace by request id;
    // duplicates would make the join ambiguous.
    if (IdIndex(workload).hasDuplicateIds())
        throw std::invalid_argument(
            "FleetSimulator: request ids must be unique "
            "(the report merge joins by id)");
    if (config_.kernel == FleetKernel::TwoPhase &&
        (sched::routerPolicyNeedsObservations(config_.policy) ||
         config_.workStealing))
        throw std::invalid_argument(
            "FleetSimulator: feedback policies and work stealing "
            "need the event-driven kernel");
    if (config_.kernel == FleetKernel::TwoPhase && config_.control)
        throw std::invalid_argument(
            "FleetSimulator: control policies need the "
            "event-driven kernel");

    // Resolve the active control plane: an explicit policy object,
    // or the deprecated enum/bool fields adapted onto the same API
    // (bit-identical to the pre-control-plane kernel).
    std::shared_ptr<sched::ControlPolicy> control =
        config_.control;
    if (!control && config_.kernel == FleetKernel::EventDriven) {
        std::vector<std::shared_ptr<sched::ControlPolicy>> parts;
        parts.push_back(sched::makeRouterPolicy(config_.policy));
        if (config_.workStealing)
            parts.push_back(sched::makeGreedyStealPolicy());
        control = sched::composeControlPolicies(std::move(parts));
    }

    FleetReport report;
    report.policy = control
                        ? control->name()
                        : sched::routerPolicyName(config_.policy);
    report.kernel = fleetKernelName(config_.kernel);
    report.ttftDeadline = config_.ttftDeadline;
    for (const ReplicaConfig &replica : config_.replicas)
        report.replicaNames.push_back(replica.name);

    const WorkloadShape shape = workloadShape(workload);
    const double calibration_start = totalCalibrationSeconds();
    std::vector<sched::ReplicaModel> models =
        calibrateAll(shape.typicalPrompt, shape.typicalContext,
                     shape.maxPrompt, shape.maxContext);
    const double calibration_warm = totalCalibrationSeconds();

    if (config_.kernel == FleetKernel::EventDriven)
        runEventDriven(report, workload, std::move(models),
                       *control, shape.typicalPrompt,
                       shape.typicalContext, shape.maxPrompt,
                       shape.maxContext);
    else
        runTwoPhase(report, workload, std::move(models));

    // Cold buckets the loop still hit ran engine simulations on the
    // event thread; subtract that wall time so loopSeconds prices
    // the kernel, and report the full calibration bill separately.
    const double calibration_end = totalCalibrationSeconds();
    report.kernelStats.calibrationSeconds =
        calibration_end - calibration_start;
    report.kernelStats.loopSeconds =
        std::max(0.0, report.kernelStats.loopSeconds -
                          (calibration_end - calibration_warm));

    // Replicas spawned by the autoscaler are run state, not fleet
    // configuration: drop them (after the calibration snapshot
    // above, so a unique-spec spawn's calibration still bills) so
    // later runs on this simulator start from the configured
    // fleet.  Buckets a spawn contributed to a *shared* cost cache
    // are pure-function values a rerun recomputes bit-identically.
    replicas_.resize(config_.replicas.size());
    cacheGroupOf_.resize(config_.replicas.size());

    mergeReports(report, workload);
    return report;
}

FleetReport
FleetSimulator::run(const serving::SessionTrace &sessions)
{
    if (config_.kernel != FleetKernel::EventDriven)
        throw std::invalid_argument(
            "FleetSimulator: session traces need the event-driven "
            "kernel — follow-up arrival instants depend on "
            "completion instants, which the open-loop two-phase "
            "path cannot express");
    const std::size_t turns = sessions.requests.size();
    if (sessions.turnOf.size() != turns ||
        sessions.successor.size() != turns ||
        sessions.thinkAfter.size() != turns)
        throw std::invalid_argument(
            "FleetSimulator: session trace parallel arrays "
            "disagree on size");
    if (IdIndex(sessions.requests).hasDuplicateIds())
        throw std::invalid_argument(
            "FleetSimulator: request ids must be unique "
            "(the report merge joins by id)");
    // The kernel preloads first turns as a presorted stream, so
    // their arrivals must be nondecreasing in trace order (the
    // generator's natural order; follow-up arrivals are decided by
    // the simulation and may be anything).
    Seconds last_start = 0.0;
    for (std::size_t i = 0; i < turns; ++i) {
        if (sessions.turnOf[i] != 0)
            continue;
        if (sessions.requests[i].arrival < last_start)
            throw std::invalid_argument(
                "FleetSimulator: session first-turn arrivals must "
                "be nondecreasing in trace order");
        last_start = sessions.requests[i].arrival;
    }

    // The run's own mutable copy of the trace: the kernel
    // overwrites each follow-up turn's placeholder arrival when it
    // actually fires.  No arrival sort — the continuation plan is
    // indexed by workload position.
    std::vector<serving::ServedRequest> workload =
        sessions.requests;

    std::shared_ptr<sched::ControlPolicy> control =
        config_.control;
    if (!control) {
        std::vector<std::shared_ptr<sched::ControlPolicy>> parts;
        parts.push_back(sched::makeRouterPolicy(config_.policy));
        if (config_.workStealing)
            parts.push_back(sched::makeGreedyStealPolicy());
        control = sched::composeControlPolicies(std::move(parts));
    }

    FleetReport report;
    report.policy = control->name();
    report.kernel = fleetKernelName(config_.kernel);
    report.ttftDeadline = config_.ttftDeadline;
    for (const ReplicaConfig &replica : config_.replicas)
        report.replicaNames.push_back(replica.name);

    const WorkloadShape shape = workloadShape(workload);
    const double calibration_start = totalCalibrationSeconds();
    std::vector<sched::ReplicaModel> models =
        calibrateAll(shape.typicalPrompt, shape.typicalContext,
                     shape.maxPrompt, shape.maxContext);
    // A session trace announces its whole context trajectory up
    // front (every turn's prompt already carries its history):
    // pre-warm the surface across the calibration pool instead of
    // paying one cold bucket per growing turn inside the loop.
    warmSessionCosts(shape.maxContext);
    const double calibration_warm = totalCalibrationSeconds();

    runEventDriven(report, workload, std::move(models), *control,
                   shape.typicalPrompt, shape.typicalContext,
                   shape.maxPrompt, shape.maxContext, &sessions,
                   &workload);

    const double calibration_end = totalCalibrationSeconds();
    report.kernelStats.calibrationSeconds =
        calibration_end - calibration_start;
    report.kernelStats.loopSeconds =
        std::max(0.0, report.kernelStats.loopSeconds -
                          (calibration_end - calibration_warm));

    // Spawned replicas are run state, not configuration; trim after
    // the calibration snapshot so their calibration still bills.
    replicas_.resize(config_.replicas.size());
    cacheGroupOf_.resize(config_.replicas.size());

    // Merge against the mutated copy, so served follow-up turns
    // carry their true arrival instants (turns whose predecessor
    // was shed never arrived and merge as rejected).
    mergeReports(report, workload);
    return report;
}

} // namespace hermes::fleet
